/**
 * @file
 * Trace replay: export a synthetic harvesting trace to CSV, load it
 * back, and show that replaying the same energy environment gives
 * bit-identical results — the workflow for using *measured* traces
 * (like the paper's BatterylessSim captures) with this simulator.
 */

#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

int
main()
{
    setQuiet(true);
    Program prog = assembleWorkload("hist");
    SystemConfig cfg;
    cfg.capacitorFarads = 7.5e-3;

    // 1. Run with a generated trace.
    HarvestTrace generated(TraceKind::Rf, 31337, 7.5);
    JitPolicy p1;
    Simulator sim1(prog, ArchKind::Nvmr, cfg, p1, generated);
    RunResult r1 = sim1.run();

    // 2. Export it to CSV -- this file is exactly what you would
    //    produce from your own power measurements (one mW sample per
    //    millisecond).
    const char *path = "/tmp/nvmr_trace_demo.csv";
    generated.toCsvFile(path);
    std::printf("exported %zu samples to %s (mean %.2f mW)\n",
                generated.samples().size(), path,
                generated.meanMw());

    // 3. Load it back and re-run.
    HarvestTrace loaded = HarvestTrace::fromCsvFile(path);
    JitPolicy p2;
    Simulator sim2(prog, ArchKind::Nvmr, cfg, p2, loaded);
    RunResult r2 = sim2.run();

    std::printf("\ngenerated trace: %s\n",
                formatRunLine(r1).c_str());
    std::printf("replayed trace:  %s\n", formatRunLine(r2).c_str());

    bool identical = r1.totalEnergyNj == r2.totalEnergyNj &&
                     r1.backups == r2.backups &&
                     r1.powerFailures == r2.powerFailures &&
                     r1.instructions == r2.instructions;
    std::printf("\nreplay %s: energy %.3f uJ vs %.3f uJ, "
                "%llu vs %llu backups, %llu vs %llu failures\n",
                identical ? "is bit-identical" : "DIVERGED",
                r1.totalEnergyNj / 1000.0, r2.totalEnergyNj / 1000.0,
                static_cast<unsigned long long>(r1.backups),
                static_cast<unsigned long long>(r2.backups),
                static_cast<unsigned long long>(r1.powerFailures),
                static_cast<unsigned long long>(r2.powerFailures));
    return identical && r1.validated && r2.validated ? 0 : 1;
}

/**
 * @file
 * Quickstart: assemble a tiny program, run it intermittently on the
 * NvMR architecture with a JIT backup policy over a synthetic RF
 * harvesting trace, and print what happened.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/simulator.hh"

using namespace nvmr;

int
main()
{
    // 1. A program in iisa assembly: increment every element of a
    //    seeded random array for a few passes. The load-then-store
    //    pattern is exactly what causes idempotency violations.
    Program prog = assemble("quickstart", R"(
        .data
arr:    .rand 512 2024 0 999
        .text
main:
        li   r1, 0              # pass counter
pass:
        li   r2, 0              # element index
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)          # read...
        addi r5, r5, 1
        st   r5, 0(r3)          # ...modify-write
        addi r2, r2, 1
        li   r6, 512
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 8
        blt  r1, r6, pass
        halt
)");

    // 2. A system: Table 2 defaults (256 B cache, 512-entry map
    //    table cache, 4096-entry map table, 100 mF supercapacitor).
    SystemConfig cfg;

    // 3. An energy environment and a backup policy.
    HarvestTrace trace(TraceKind::Rf, /*seed=*/7, /*mean_mw=*/8.0);
    JitPolicy policy;

    // 4. Run intermittently on NvMR; the simulator validates the
    //    final NVM state against a continuously-powered run.
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
    RunResult r = sim.run();

    std::printf("program:        %s\n", r.program.c_str());
    std::printf("arch / policy:  %s / %s on %s\n", r.arch.c_str(),
                r.policy.c_str(), r.trace.c_str());
    std::printf("completed:      %s\n", r.completed ? "yes" : "no");
    std::printf("validated:      %s (final NVM state == continuous "
                "run)\n",
                r.validated ? "yes" : "no");
    std::printf("instructions:   %llu (includes re-execution)\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("power failures: %llu, restores: %llu\n",
                static_cast<unsigned long long>(r.powerFailures),
                static_cast<unsigned long long>(r.restores));
    std::printf("violations:     %llu, renames: %llu, backups: "
                "%llu\n",
                static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.renames),
                static_cast<unsigned long long>(r.backups));
    std::printf("energy:         %.1f uJ total (forward %.1f, "
                "backup %.1f, overheads %.1f)\n",
                r.totalEnergyNj / 1000.0,
                r.energyOf(ECat::Forward) / 1000.0,
                r.energyOf(ECat::Backup) / 1000.0,
                (r.energyOf(ECat::ForwardOverhead) +
                 r.energyOf(ECat::BackupOverhead)) /
                    1000.0);
    return r.completed && r.validated ? 0 : 1;
}

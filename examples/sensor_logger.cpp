/**
 * @file
 * Batteryless sensor logger: the motivating scenario of intermittent
 * computing. A device wakes on harvested RF energy, reads "sensor"
 * samples, maintains a ring buffer of recent readings plus running
 * min / max / sum statistics and an exceedance counter — all in NVM,
 * all read-modify-write state that must survive power failures.
 *
 * The example runs the same firmware on Clank, NvMR and HOOP and
 * shows where the harvested energy went.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/simulator.hh"

using namespace nvmr;

namespace
{

const char *kFirmware = R"(
# Sensor logging firmware.
#   samples : pre-generated "ADC" readings (the sensor)
#   ring    : last 64 readings
#   stats   : [min, max, sum, exceedances]
        .data
samples: .rand 4096 31337 0 1023
ring:    .space 256
stats:   .word 1023 0 0 0

        .text
main:
        li   r1, 0              # sample index
loop:
        slli r2, r1, 2          # value = samples[i]
        li   r3, samples
        add  r2, r2, r3
        ld   r4, 0(r2)

        andi r5, r1, 63         # ring[i & 63] = value
        slli r5, r5, 2
        li   r3, ring
        add  r5, r5, r3
        st   r4, 0(r5)

        li   r3, stats          # min
        ld   r6, 0(r3)
        bge  r4, r6, no_min
        st   r4, 0(r3)
no_min:
        ld   r6, 4(r3)          # max
        ble  r4, r6, no_max
        st   r4, 4(r3)
no_max:
        ld   r6, 8(r3)          # sum += value
        add  r6, r6, r4
        st   r6, 8(r3)
        li   r7, 900            # exceedance threshold
        blt  r4, r7, no_exc
        ld   r6, 12(r3)
        addi r6, r6, 1
        st   r6, 12(r3)
no_exc:
        addi r1, r1, 1
        li   r7, 4096
        blt  r1, r7, loop
        halt
)";

} // namespace

int
main()
{
    Program prog = assemble("sensor_logger", kFirmware);
    SystemConfig cfg;
    // A small storage capacitor: this device dies often.
    cfg.capacitorFarads = 7.5e-3;
    HarvestTrace trace(TraceKind::Rf, 99, 7.0);

    std::printf("sensor logger firmware on a 7.5 mF device, RF "
                "harvesting\n\n");
    std::printf("%-8s %10s %10s %9s %9s %11s %11s\n", "arch",
                "energy uJ", "backups", "failures", "renames",
                "violations", "validated");

    for (ArchKind kind :
         {ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop}) {
        JitPolicy policy;
        Simulator sim(prog, kind, cfg, policy, trace);
        RunResult r = sim.run();
        std::printf("%-8s %10.1f %10llu %9llu %9llu %11llu %11s\n",
                    r.arch.c_str(), r.totalEnergyNj / 1000.0,
                    static_cast<unsigned long long>(r.backups),
                    static_cast<unsigned long long>(r.powerFailures),
                    static_cast<unsigned long long>(r.renames),
                    static_cast<unsigned long long>(r.violations),
                    r.validated ? "yes" : "NO");
    }

    std::printf("\nthe hot statistics words (min/max/sum/count) are "
                "read-modify-write NVM state:\nClank must back up on "
                "every violating eviction, NvMR just renames them.\n");
    return 0;
}

/**
 * @file
 * Policy explorer: the paper's core argument is that NvMR decouples
 * *when* to back up from *program correctness*, so the policy can be
 * chosen purely for the energy environment. This example sweeps
 * policies (JIT, several watchdog periods) and capacitor sizes on
 * one workload and prints the resulting energy/backup grid for both
 * Clank and NvMR — on Clank the program (violations) dominates the
 * backup count; on NvMR the policy does.
 */

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

void
runCell(const Program &prog, ArchKind arch, const SystemConfig &cfg,
        const PolicySpec &spec, const std::string &label,
        const std::vector<HarvestTrace> &traces)
{
    RunOptions opts;
    opts.maxCycles = 60000000ull; // stalled cells give up quickly
    Aggregate agg = runAveraged(prog, arch, cfg, spec, traces, opts);
    const char *note = "";
    if (!agg.allCompleted) {
        // The watchdog period exceeded the charge lifetime: the
        // device re-executes the same interval forever. Clank
        // escapes by accident (violation backups are incidental
        // checkpoints); NvMR makes the policy responsible -- so the
        // policy must actually be sane for the capacitor.
        note = "  <- no forward progress (period > charge lifetime)";
    } else if (!agg.allValidated) {
        note = "  VALIDATION FAILED";
    }
    std::printf("  %-12s %10.1f uJ %8.0f backups, %6.0f violations%s\n",
                label.c_str(), agg.totalEnergyNj / 1000.0,
                agg.backups, agg.violations, note);
}

} // namespace

int
main()
{
    setQuiet(true);
    Program prog = assembleWorkload("hist");
    auto traces = HarvestTrace::standardSet(3);

    for (double farads : {0.1, 7.5e-3}) {
        std::printf("capacitor %.4g F:\n", farads);
        for (ArchKind arch : {ArchKind::Clank, ArchKind::Nvmr}) {
            std::printf(" %s:\n", archKindName(arch));
            SystemConfig cfg;
            cfg.capacitorFarads = farads;

            PolicySpec jit;
            runCell(prog, arch, cfg, jit, "jit", traces);
            for (Cycles period : {2000u, 4000u, 8000u}) {
                PolicySpec wd;
                wd.kind = PolicyKind::Watchdog;
                wd.watchdogPeriod = period;
                runCell(prog, arch, cfg, wd,
                        "wdt/" + std::to_string(period), traces);
            }
        }
        std::printf("\n");
    }

    std::printf("takeaway: Clank's backup count barely moves with "
                "the policy (violations force it);\nNvMR's tracks "
                "the policy choice, which is the decoupling the "
                "paper argues for.\n");
    return 0;
}

/**
 * @file
 * Batteryless image pipeline: runs the 2dconv and dwt workloads (the
 * PERFECT-suite kernels the paper ports) back to back on a single
 * energy budget, comparing Clank and NvMR under two backup policies.
 * This is the "process an image whenever there is ambient energy"
 * use case from the paper's introduction.
 */

#include <cstdio>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

int
main()
{
    setQuiet(true);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet(3);

    std::printf("image pipeline: 2dconv + dwt, averaged over %zu "
                "traces\n\n",
                traces.size());
    std::printf("%-8s %-10s %12s %12s %10s\n", "kernel", "policy",
                "clank uJ", "nvmr uJ", "saved");

    for (const char *kernel : {"2dconv", "dwt"}) {
        Program prog = assembleWorkload(kernel);
        for (PolicyKind kind :
             {PolicyKind::Jit, PolicyKind::Watchdog}) {
            PolicySpec spec;
            spec.kind = kind;
            Aggregate clank = runAveraged(prog, ArchKind::Clank, cfg,
                                          spec, traces);
            Aggregate nvmr = runAveraged(prog, ArchKind::Nvmr, cfg,
                                         spec, traces);
            if (!clank.allValidated || !nvmr.allValidated) {
                std::printf("validation failure on %s\n", kernel);
                return 1;
            }
            std::printf("%-8s %-10s %12.1f %12.1f %9.1f%%\n", kernel,
                        policyKindName(kind),
                        clank.totalEnergyNj / 1000.0,
                        nvmr.totalEnergyNj / 1000.0,
                        percentSaved(clank, nvmr));
        }
    }

    std::printf("\nboth kernels transform buffers in place, so NvMR "
                "renames their blocks instead of backing up.\n");
    return 0;
}

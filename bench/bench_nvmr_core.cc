/**
 * @file
 * Core performance/regression record: a fixed, fast subset of the
 * paper's headline comparison (NvMR vs Clank under JIT) plus
 * simulator throughput, exported as BENCH_nvmr_core.json through the
 * BenchRecorder. This is the record CI and the repo commit carry so
 * the bench trajectory is never empty; the full-figure harnesses
 * remain the source of truth for the paper tables.
 *
 *     bench_nvmr_core                      # writes BENCH_nvmr_core.json
 *     bench_nvmr_core --stats-json out.json
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("nvmr_core", argc, argv,
                      "BENCH_nvmr_core.json");

    SystemConfig cfg;
    PolicySpec jit;
    auto traces = HarvestTrace::standardSet(2);
    const std::vector<std::string> workloads = {"hist", "qsort"};

    double sum_saved = 0, sum_backup_ratio = 0, sum_wear_red = 0;
    double instructions = 0;
    for (const std::string &name : workloads) {
        Program prog = assembleWorkload(name);
        Aggregate clank =
            runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
        Aggregate nvmr =
            runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
        requireClean(clank, name);
        requireClean(nvmr, name);
        sum_saved += percentSaved(clank, nvmr);
        sum_backup_ratio +=
            nvmr.backups > 0 ? clank.backups / nvmr.backups : 0;
        sum_wear_red +=
            clank.maxWear > 0
                ? (1.0 - nvmr.maxWear / clank.maxWear) * 100.0
                : 0;
        instructions += clank.instructions + nvmr.instructions;
    }
    double n = static_cast<double>(workloads.size());

    rec.add("energy_saved_vs_clank_pct", sum_saved / n, "%");
    rec.add("backup_reduction", sum_backup_ratio / n, "x");
    rec.add("max_wear_reduction_pct", sum_wear_red / n, "%");
    rec.add("simulated_instructions",
            instructions * static_cast<double>(traces.size()));
    rec.write();

    std::printf("nvmr core record: %.1f%% energy saved, %.1fx fewer "
                "backups, %.1f%% lower max wear (hist+qsort, %zu "
                "traces)\n",
                sum_saved / n, sum_backup_ratio / n, sum_wear_red / n,
                traces.size());
    return 0;
}

/**
 * @file
 * Reproduces Figure 13: sensitivity of NvMR's energy savings (vs
 * Clank, JIT scheme) to (a) map-table-cache entries, (b) map-table-
 * cache associativity, (c) map-table entries and (d) the
 * supercapacitor size. Pass a subset of "a b c d" as arguments to run
 * individual sweeps; default runs all four.
 *
 * Paper shapes: (a) savings grow steadily with MT$ size; (b) nearly
 * flat past associativity 4 ('0' = fully associative); (c) ~1% from
 * 1024 to 8192 entries; (d) savings grow with capacitor size, with
 * slowing growth (500uF -> 7.5mF -> 100mF).
 */

#include <cstring>

#include "bench_common.hh"

using namespace nvmr;

namespace
{

/** A reduced trace set keeps the four sweeps tractable. */
std::vector<HarvestTrace>
sweepTraces()
{
    return HarvestTrace::standardSet(5);
}

double
averageSavings(const SystemConfig &nvmr_cfg,
               const SystemConfig &clank_cfg,
               const std::vector<HarvestTrace> &traces)
{
    PolicySpec jit;
    double sum = 0;
    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate clank = runAveraged(prog, ArchKind::Clank,
                                      clank_cfg, jit, traces);
        Aggregate nvmr = runAveraged(prog, ArchKind::Nvmr, nvmr_cfg,
                                     jit, traces);
        requireClean(clank, name);
        requireClean(nvmr, name);
        sum += percentSaved(clank, nvmr);
    }
    return sum / static_cast<double>(paperWorkloadOrder().size());
}

void
sweepMtCacheEntries()
{
    std::printf("--- Figure 13a: map table cache entries "
                "(assoc 2, map table 4096) ---\n");
    TablePrinter table({"mt$ entries", "avg % saved vs clank"});
    auto traces = sweepTraces();
    for (uint32_t entries : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        SystemConfig cfg;
        cfg.mtCacheEntries = entries;
        cfg.mtCacheWays = 2;
        table.addRow({std::to_string(entries),
                      pct(averageSavings(cfg, SystemConfig{},
                                         traces))});
    }
    table.print();
    std::printf("paper shape: steady increase with size\n\n");
}

void
sweepMtCacheAssoc()
{
    std::printf("--- Figure 13b: map table cache associativity "
                "(32 entries) ---\n");
    TablePrinter table({"associativity", "avg % saved vs clank"});
    auto traces = sweepTraces();
    for (uint32_t ways : {1u, 2u, 4u, 8u, 16u, 0u}) {
        SystemConfig cfg;
        cfg.mtCacheEntries = 32;
        cfg.mtCacheWays = ways; // 0 = fully associative
        std::string label = ways ? std::to_string(ways) : "full";
        table.addRow({label, pct(averageSavings(cfg, SystemConfig{},
                                                traces))});
    }
    table.print();
    std::printf("paper shape: nearly flat beyond associativity 4\n\n");
}

void
sweepMapTable()
{
    std::printf("--- Figure 13c: map table entries "
                "(mt$ 512, 8-way) ---\n");
    TablePrinter table({"map table entries", "avg % saved vs clank"});
    auto traces = sweepTraces();
    for (uint32_t entries : {1024u, 2048u, 4096u, 8192u}) {
        SystemConfig cfg;
        cfg.mapTableEntries = entries;
        table.addRow({std::to_string(entries),
                      pct(averageSavings(cfg, SystemConfig{},
                                         traces))});
    }
    table.print();
    std::printf("paper shape: ~1%% between 1024 and 8192\n\n");
}

void
sweepCapacitor()
{
    // Section 6.3.3 also reports that the number of idempotency
    // violations grows with the capacitor (longer active periods
    // mean fewer backup-driven section resets): +14% from 500 uF to
    // 7.5 mF, +3% to 100 mF. Report violation counts alongside.
    std::printf("--- Figure 13d: supercapacitor size ---\n");
    TablePrinter table({"capacitor", "avg % saved vs clank",
                        "avg violations (nvmr)"});
    auto traces = sweepTraces();
    PolicySpec jit;
    struct Point
    {
        const char *label;
        double farads;
    };
    for (Point p : {Point{"500uF", 500e-6}, Point{"7.5mF", 7.5e-3},
                    Point{"100mF", 0.1}}) {
        SystemConfig cfg;
        cfg.capacitorFarads = p.farads;
        double viol = 0;
        for (const std::string &name : paperWorkloadOrder()) {
            Program prog = assembleWorkload(name);
            Aggregate nvmr = runAveraged(prog, ArchKind::Nvmr, cfg,
                                         jit, traces);
            requireClean(nvmr, name);
            viol += nvmr.violations;
        }
        viol /= static_cast<double>(paperWorkloadOrder().size());
        table.addRow(
            {p.label, pct(averageSavings(cfg, cfg, traces)),
             TablePrinter::num(viol, 0)});
    }
    table.print();
    std::printf("paper shape: savings grow with capacitor size with "
                "slowing growth; violations grow ~14%% then ~3%%\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    SystemConfig banner_cfg;
    printBanner("Figure 13: sensitivity studies (JIT)", banner_cfg,
                static_cast<int>(sweepTraces().size()));

    bool all = argc <= 1;
    auto wants = [&](const char *flag) {
        if (all)
            return true;
        for (int i = 1; i < argc; ++i)
            if (std::strcmp(argv[i], flag) == 0)
                return true;
        return false;
    };

    if (wants("a"))
        sweepMtCacheEntries();
    if (wants("b"))
        sweepMtCacheAssoc();
    if (wants("c"))
        sweepMapTable();
    if (wants("d"))
        sweepCapacitor();
    return 0;
}

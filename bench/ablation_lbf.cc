/**
 * @file
 * Ablation: LBF tracking granularity. Table 2's LBF tracks words
 * (footnote 4), which forces partial-word (byte) stores to count as
 * reads — a conservatism our differential fuzzer showed is required
 * for correctness at that granularity. A byte-granular LBF (4x the
 * SRAM) removes it: byte stores become precise overwrites. This
 * sweep measures what the extra hardware buys on the byte-light
 * evaluation workloads.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    auto traces = HarvestTrace::standardSet(5);
    SystemConfig banner;
    printBanner("Ablation: LBF granularity (word vs byte, JIT)",
                banner, static_cast<int>(traces.size()));

    PolicySpec jit;
    TablePrinter table({"benchmark", "word LBF: saved",
                        "byte LBF: saved", "word violations (nvmr)",
                        "byte violations (nvmr)"});
    double sum_w = 0, sum_b = 0;

    SystemConfig word_cfg;
    SystemConfig byte_cfg;
    byte_cfg.cache.lbfGranularityBytes = 1;

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate clank_w = runAveraged(prog, ArchKind::Clank,
                                        word_cfg, jit, traces);
        Aggregate nvmr_w = runAveraged(prog, ArchKind::Nvmr,
                                       word_cfg, jit, traces);
        Aggregate clank_b = runAveraged(prog, ArchKind::Clank,
                                        byte_cfg, jit, traces);
        Aggregate nvmr_b = runAveraged(prog, ArchKind::Nvmr,
                                       byte_cfg, jit, traces);
        requireClean(clank_w, name);
        requireClean(nvmr_w, name);
        requireClean(clank_b, name);
        requireClean(nvmr_b, name);

        double s_w = percentSaved(clank_w, nvmr_w);
        double s_b = percentSaved(clank_b, nvmr_b);
        sum_w += s_w;
        sum_b += s_b;
        table.addRow({name, pct(s_w), pct(s_b),
                      TablePrinter::num(nvmr_w.violations, 0),
                      TablePrinter::num(nvmr_b.violations, 0)});
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", pct(sum_w / n), pct(sum_b / n)});
    table.print();
    std::printf("\nexpected: near-identical on these word-oriented "
                "kernels -- Table 2's cheaper word-granular LBF is "
                "the right trade unless workloads are byte-heavy\n");
    return 0;
}

/**
 * @file
 * Ablation: global-bloom-filter size. Table 2 fixes the GBF at 8
 * one-bit entries; this sweep shows the effect of its false-positive
 * rate on both architectures. A saturated tiny GBF conservatively
 * marks everything read-dominated — which costs Clank a backup per
 * dirty eviction but NvMR only a rename, so (counter-intuitively)
 * the tiny filter can *widen* NvMR's advantage.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    auto traces = HarvestTrace::standardSet(5);
    SystemConfig banner;
    printBanner("Ablation: GBF size (JIT)", banner,
                static_cast<int>(traces.size()));

    PolicySpec jit;
    TablePrinter table({"gbf bits", "avg % saved vs clank",
                        "avg clank violations",
                        "avg nvmr violations"});

    for (unsigned bits : {4u, 8u, 32u, 128u, 512u, 2048u}) {
        SystemConfig cfg;
        cfg.gbfBits = bits;
        double sum = 0, viol_clank = 0, viol_nvmr = 0;
        for (const std::string &name : paperWorkloadOrder()) {
            Program prog = assembleWorkload(name);
            Aggregate clank =
                runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
            Aggregate nvmr =
                runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
            requireClean(clank, name);
            requireClean(nvmr, name);
            sum += percentSaved(clank, nvmr);
            viol_clank += clank.violations;
            viol_nvmr += nvmr.violations;
        }
        size_t n = paperWorkloadOrder().size();
        table.addRow({std::to_string(bits), pct(sum / n),
                      TablePrinter::num(viol_clank / n, 0),
                      TablePrinter::num(viol_nvmr / n, 0)});
    }
    table.print();
    std::printf("\nTable 2 uses 8 bits; the paper reports that "
                "configuration works best for its version of "
                "Clank\n");
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the hot hardware structures:
 * the data cache, the bloom filter, the map-table cache, the free
 * list, the map table, the CPU interpreter and the assembler. These
 * gate simulator throughput, which bounds how many configuration
 * sweeps the figure harnesses can afford.
 */

#include <benchmark/benchmark.h>

#include "common/xorshift.hh"
#include "core/freelist.hh"
#include "core/maptable.hh"
#include "core/mtcache.hh"
#include "cpu/cpu.hh"
#include "isa/assembler.hh"
#include "mem/bloom.hh"
#include "mem/cache.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

void
BM_CacheLookupHit(benchmark::State &state)
{
    TechParams tech;
    NullEnergySink sink;
    CacheConfig cfg;
    DataCache cache(cfg, tech, sink);
    std::vector<Word> data(cfg.wordsPerBlock(), 1);
    for (uint32_t i = 0; i < cfg.numBlocks(); ++i)
        cache.fill(cache.victim(i * 16), i * 16, data);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a));
        a = (a + 16) & 0xff;
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheFill(benchmark::State &state)
{
    TechParams tech;
    NullEnergySink sink;
    CacheConfig cfg;
    DataCache cache(cfg, tech, sink);
    std::vector<Word> data(cfg.wordsPerBlock(), 1);
    Addr a = 0;
    for (auto _ : state) {
        cache.fill(cache.victim(a), a, data);
        a += 16;
    }
}
BENCHMARK(BM_CacheFill);

void
BM_BloomInsertLookup(benchmark::State &state)
{
    TechParams tech;
    NullEnergySink sink;
    BloomFilter bf(static_cast<unsigned>(state.range(0)), 1, tech,
                   sink);
    Addr a = 0;
    for (auto _ : state) {
        bf.insert(a);
        benchmark::DoNotOptimize(bf.maybeContains(a + 16));
        a += 32;
    }
}
BENCHMARK(BM_BloomInsertLookup)->Arg(8)->Arg(64)->Arg(1024);

void
BM_MtCacheLookup(benchmark::State &state)
{
    TechParams tech;
    NullEnergySink sink;
    MapTableCache mtc(512, 8, tech, sink);
    for (Addr a = 0; a < 512 * 16; a += 16)
        mtc.install(mtc.victim(a), a, a, a, false, true);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mtc.lookup(a));
        a = (a + 16) & 0x1fff;
    }
}
BENCHMARK(BM_MtCacheLookup);

void
BM_MapTableSetLookup(benchmark::State &state)
{
    TechParams tech;
    NullEnergySink sink;
    MapTable mt(4096, tech, sink);
    Addr a = 0;
    for (auto _ : state) {
        mt.set(a & 0xffff, a);
        benchmark::DoNotOptimize(mt.lookup(a & 0xffff));
        a += 16;
    }
}
BENCHMARK(BM_MapTableSetLookup);

void
BM_FreeListPopPush(benchmark::State &state)
{
    TechParams tech;
    NullEnergySink sink;
    FreeList fl(4609, tech, sink);
    fl.initFill(0x100000, 16, 4609);
    for (auto _ : state) {
        Addr a = fl.pop();
        fl.push(a);
    }
}
BENCHMARK(BM_FreeListPopPush);

void
BM_CpuInterpreterThroughput(benchmark::State &state)
{
    Program prog = assemble("spin", R"(
        .data
arr:    .rand 64 1 0 100
        .text
main:
        li   r1, arr
loop:
        ld   r2, 0(r1)
        addi r2, r2, 1
        st   r2, 0(r1)
        xor  r3, r3, r2
        jmp  loop
)");
    class FlatPort : public DataPort
    {
      public:
        Word mem[64] = {};
        Word loadWord(Addr a) override { return mem[(a / 4) & 63]; }
        void storeWord(Addr a, Word v) override
        {
            mem[(a / 4) & 63] = v;
        }
        uint8_t loadByte(Addr) override { return 0; }
        void storeByte(Addr, uint8_t) override {}
    } port;
    Cpu cpu(prog, port);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.step().cycles);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpuInterpreterThroughput);

void
BM_AssembleWorkload(benchmark::State &state)
{
    for (auto _ : state) {
        Program p = assembleWorkload("hist");
        benchmark::DoNotOptimize(p.text.size());
    }
}
BENCHMARK(BM_AssembleWorkload);

void
BM_EndToEndIntermittentRun(benchmark::State &state)
{
    Program prog = assemble("tiny", R"(
        .data
arr:    .rand 128 5 0 100
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 128
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 2
        blt  r1, r6, pass
        halt
)");
    SystemConfig cfg;
    HarvestTrace trace(TraceKind::Solar, 1, 8.0);
    for (auto _ : state) {
        JitPolicy policy;
        RunOptions opts;
        opts.validate = false;
        Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace,
                      opts);
        RunResult r = sim.run();
        benchmark::DoNotOptimize(r.totalEnergyNj);
    }
}
BENCHMARK(BM_EndToEndIntermittentRun);

} // namespace
} // namespace nvmr

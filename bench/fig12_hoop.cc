/**
 * @file
 * Reproduces Figure 12: percent energy saved by NvMR compared to the
 * simplified HOOP (Table 4 configuration: OOP buffer 128, OOP region
 * 2048, infinite free mapping table), under the JIT and watchdog
 * backup schemes.
 *
 * Paper shape: NvMR saves ~40% on average under JIT and ~19.4% under
 * the watchdog; HOOP wins on a few benchmarks with high store
 * locality (stringsearch, picojpeg, basicmath in the paper).
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet();
    printBanner("Figure 12: % energy saved, NvMR vs HOOP", cfg,
                static_cast<int>(traces.size()));
    std::printf("HOOP config (Table 4): OOP buffer %u, OOP region "
                "%u, infinite zero-cost mapping table\n\n",
                cfg.oopBufferEntries, cfg.oopRegionEntries);

    PolicySpec jit{PolicyKind::Jit, 8000, 1.5, nullptr};
    PolicySpec wdt{PolicyKind::Watchdog, 8000, 1.5, nullptr};

    TablePrinter table({"benchmark", "jit", "watchdog"});
    double sum_jit = 0, sum_wdt = 0;

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate hoop_jit =
            runAveraged(prog, ArchKind::Hoop, cfg, jit, traces);
        Aggregate nvmr_jit =
            runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
        Aggregate hoop_wdt =
            runAveraged(prog, ArchKind::Hoop, cfg, wdt, traces);
        Aggregate nvmr_wdt =
            runAveraged(prog, ArchKind::Nvmr, cfg, wdt, traces);
        requireClean(hoop_jit, name);
        requireClean(nvmr_jit, name);
        requireClean(hoop_wdt, name);
        requireClean(nvmr_wdt, name);

        double s_jit = percentSaved(hoop_jit, nvmr_jit);
        double s_wdt = percentSaved(hoop_wdt, nvmr_wdt);
        sum_jit += s_jit;
        sum_wdt += s_wdt;
        table.addRow({name, pct(s_jit), pct(s_wdt)});
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", pct(sum_jit / n), pct(sum_wdt / n)});
    table.print();
    std::printf("\npaper: ~40%% avg under JIT, ~19.4%% under "
                "watchdog; HOOP may win on store-local benchmarks\n");
    return 0;
}

/**
 * @file
 * Quantifies Figure 2's taxonomy of backup schemes on real workloads:
 * (a) a log-based system committing at backups (HOOP, JIT policy),
 * (b) backup-on-violation (Clank, JIT),
 * (c) checkpoints at programmer-defined task boundaries (TaskArch,
 *     no policy at all — the program is the policy), and
 * (d) NvMR renaming with a free choice of policy (JIT).
 *
 * Expected shape: the task scheme backs up far more often than the
 * energy situation requires (the paper's critique of Figure 2c);
 * Clank's backups track violations; NvMR's track the policy alone.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet(5);
    printBanner("Figure 2: backup-scheme taxonomy, total energy (uJ) "
                "and backups",
                cfg, static_cast<int>(traces.size()));

    PolicySpec jit;
    PolicySpec none;
    none.kind = PolicyKind::None;

    TablePrinter table({"benchmark", "hoop (a)", "clank (b)",
                        "task (c)", "nvmr (d)", "task backups",
                        "clank backups", "nvmr backups"});
    double sums[4] = {0, 0, 0, 0};

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate hoop =
            runAveraged(prog, ArchKind::Hoop, cfg, jit, traces);
        Aggregate clank =
            runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
        Aggregate task =
            runAveraged(prog, ArchKind::Task, cfg, none, traces);
        Aggregate nvmr =
            runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
        requireClean(hoop, name);
        requireClean(clank, name);
        requireClean(task, name);
        requireClean(nvmr, name);

        sums[0] += hoop.totalEnergyNj;
        sums[1] += clank.totalEnergyNj;
        sums[2] += task.totalEnergyNj;
        sums[3] += nvmr.totalEnergyNj;
        table.addRow(
            {name, TablePrinter::num(hoop.totalEnergyNj / 1000, 1),
             TablePrinter::num(clank.totalEnergyNj / 1000, 1),
             TablePrinter::num(task.totalEnergyNj / 1000, 1),
             TablePrinter::num(nvmr.totalEnergyNj / 1000, 1),
             TablePrinter::num(task.backups, 0),
             TablePrinter::num(clank.backups, 0),
             TablePrinter::num(nvmr.backups, 0)});
    }
    table.addRow({"total", TablePrinter::num(sums[0] / 1000, 1),
                  TablePrinter::num(sums[1] / 1000, 1),
                  TablePrinter::num(sums[2] / 1000, 1),
                  TablePrinter::num(sums[3] / 1000, 1)});
    table.print();
    std::printf("\nexpected: NvMR lowest total; task-based does by "
                "far the most backups (tasks are sized much smaller "
                "than the energy supply, as the paper argues)\n");
    return 0;
}

/**
 * @file
 * Reproduces Table 3: the number of idempotency violations per
 * benchmark, measured on the ideal architecture (backups only from
 * the JIT policy, never from structural hazards), averaged across
 * the 10-trace set.
 */

#include <cinttypes>

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("table3_violations", argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet();
    printBanner("Table 3: idempotency violations per benchmark "
                "(ideal architecture, JIT backups)",
                cfg, static_cast<int>(traces.size()));

    PolicySpec jit;
    jit.kind = PolicyKind::Jit;

    TablePrinter table({"benchmark", "violations", "instructions",
                        "violations/kinst"});
    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate agg = runAveraged(prog, ArchKind::Ideal, cfg, jit,
                                    traces);
        requireClean(agg, name);
        table.addRow({name, TablePrinter::num(agg.violations, 0),
                      TablePrinter::num(agg.instructions, 0),
                      TablePrinter::num(
                          agg.violations / agg.instructions * 1000.0,
                          2)});
        rec.add("violations_per_kinst_" + name,
                agg.violations / agg.instructions * 1000.0,
                "1/kinst");
    }
    table.print();
    std::printf("\npaper shape: violation counts span orders of "
                "magnitude across benchmarks\n");
    rec.write();
    return 0;
}

/**
 * @file
 * Reproduces Figure 10: percent energy saved by NvMR relative to
 * Clank under the three backup schemes (JIT, Spendthrift, watchdog
 * timer), averaged across the 10-trace set.
 *
 * Paper shape: JIT saves ~20% on average (2%..37% per benchmark),
 * Spendthrift ~15.6%, watchdog ~9%; a couple of benchmarks may lose
 * slightly under the non-oracle schemes.
 */

#include "bench_common.hh"

#include "common/barchart.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("fig10_energy_saved", argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet();
    printBanner("Figure 10: % energy saved, NvMR vs Clank, by backup "
                "scheme",
                cfg, static_cast<int>(traces.size()));

    // Train one Spendthrift model per architecture (Section 5.2),
    // on a training subset under the JIT oracle.
    std::printf("training spendthrift models (7 train / 3 test "
                "traces)...\n");
    std::vector<std::string> train_set = {"hist", "dwt",
                                          "adpcm_encode"};
    // Train on a smaller capacitor so the JIT oracle fires often
    // enough to label positive samples; the learned voltage
    // threshold transfers to the evaluation capacitor.
    SystemConfig train_cfg = cfg;
    train_cfg.capacitorFarads = 7.5e-3;
    double acc_clank = 0, acc_nvmr = 0;
    SpendthriftModel model_clank = trainSpendthriftModel(
        ArchKind::Clank, train_cfg, train_set, &acc_clank);
    SpendthriftModel model_nvmr = trainSpendthriftModel(
        ArchKind::Nvmr, train_cfg, train_set, &acc_nvmr);
    std::printf("spendthrift held-out accuracy: clank %.1f%%, "
                "nvmr %.1f%%\n\n",
                acc_clank * 100, acc_nvmr * 100);

    struct Scheme
    {
        const char *name;
        PolicySpec clank;
        PolicySpec nvmr;
    };
    PolicySpec jit{PolicyKind::Jit, 8000, 1.5, nullptr};
    PolicySpec wdt{PolicyKind::Watchdog, 8000, 1.5, nullptr};
    PolicySpec st_clank{PolicyKind::Spendthrift, 8000, 1.5,
                        &model_clank};
    PolicySpec st_nvmr{PolicyKind::Spendthrift, 8000, 1.5,
                       &model_nvmr};
    std::vector<Scheme> schemes = {
        {"jit", jit, jit},
        {"spendthrift", st_clank, st_nvmr},
        {"watchdog", wdt, wdt},
    };

    TablePrinter table(
        {"benchmark", "jit", "spendthrift", "watchdog"});
    std::vector<double> sums(schemes.size(), 0);
    BarChart chart("%");

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        std::vector<std::string> row = {name};
        for (size_t s = 0; s < schemes.size(); ++s) {
            Aggregate clank = runAveraged(prog, ArchKind::Clank, cfg,
                                          schemes[s].clank, traces);
            Aggregate nvmr = runAveraged(prog, ArchKind::Nvmr, cfg,
                                         schemes[s].nvmr, traces);
            requireClean(clank, name);
            requireClean(nvmr, name);
            double saved = percentSaved(clank, nvmr);
            sums[s] += saved;
            row.push_back(pct(saved));
            if (s == 0)
                chart.add(name, saved);
        }
        table.addRow(row);
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", pct(sums[0] / n), pct(sums[1] / n),
                  pct(sums[2] / n)});
    table.print();
    std::printf("\n%% energy saved under JIT (the headline "
                "figure):\n");
    chart.print();
    std::printf("\npaper: jit ~20%% avg, spendthrift ~15.6%%, "
                "watchdog ~9%%; ordering jit > spendthrift > "
                "watchdog\n");

    rec.addVsPaper("energy_saved_jit_pct", sums[0] / n, "%", 20.0);
    rec.addVsPaper("energy_saved_spendthrift_pct", sums[1] / n, "%",
                   15.6);
    rec.addVsPaper("energy_saved_watchdog_pct", sums[2] / n, "%",
                   9.0);
    rec.add("spendthrift_accuracy_clank_pct", acc_clank * 100, "%");
    rec.add("spendthrift_accuracy_nvmr_pct", acc_nvmr * 100, "%");
    rec.write();
    return 0;
}

/**
 * @file
 * Ablation: NVM technology. The paper evaluates Flash (footnote 8
 * notes FRAM would cost three orders of magnitude less per write and
 * run from nF-range capacitors). This sweep reruns the Figure 10 JIT
 * comparison with a FRAM-like technology: cheap writes shrink every
 * backup and rename, so the architectures converge — renaming is an
 * optimization for *write-expensive* NVM.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    auto traces = HarvestTrace::standardSet(5);
    SystemConfig banner;
    printBanner("Ablation: NVM technology (Flash vs FRAM, JIT)",
                banner, static_cast<int>(traces.size()));

    PolicySpec jit;
    TablePrinter table({"benchmark", "flash: saved", "fram: saved",
                        "flash nvmr uJ", "fram nvmr uJ"});
    double sum_flash = 0, sum_fram = 0;

    SystemConfig flash_cfg;
    flash_cfg.tech = TechParams::flash();
    SystemConfig fram_cfg;
    fram_cfg.tech = TechParams::fram();

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate clank_fl = runAveraged(prog, ArchKind::Clank,
                                         flash_cfg, jit, traces);
        Aggregate nvmr_fl = runAveraged(prog, ArchKind::Nvmr,
                                        flash_cfg, jit, traces);
        Aggregate clank_fr = runAveraged(prog, ArchKind::Clank,
                                         fram_cfg, jit, traces);
        Aggregate nvmr_fr = runAveraged(prog, ArchKind::Nvmr,
                                        fram_cfg, jit, traces);
        requireClean(clank_fl, name);
        requireClean(nvmr_fl, name);
        requireClean(clank_fr, name);
        requireClean(nvmr_fr, name);

        double s_fl = percentSaved(clank_fl, nvmr_fl);
        double s_fr = percentSaved(clank_fr, nvmr_fr);
        sum_flash += s_fl;
        sum_fram += s_fr;
        table.addRow(
            {name, pct(s_fl), pct(s_fr),
             TablePrinter::num(nvmr_fl.totalEnergyNj / 1000.0, 1),
             TablePrinter::num(nvmr_fr.totalEnergyNj / 1000.0, 1)});
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", pct(sum_flash / n), pct(sum_fram / n)});
    table.print();
    std::printf("\nexpected: savings shrink under FRAM (cheap "
                "writes leave little backup energy to eliminate)\n");
    return 0;
}

/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard trace set, configuration banners, percent formatting and
 * the machine-readable BENCH_*.json export path.
 */

#ifndef NVMR_BENCH_BENCH_COMMON_HH
#define NVMR_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "par/par.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

namespace nvmr
{

/**
 * Wire a harness's `--jobs N` flag into the parallel engine. Every
 * harness runs its cells through runOnTraces/runAveraged, which fan
 * out across par::parallelFor workers; without the flag the count
 * comes from NVMR_JOBS or the hardware. Results are bit-identical
 * for every worker count (docs/performance.md).
 */
inline void
applyJobsFlag(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--jobs") == 0)
            par::setGlobalJobs(par::parseJobsValue(argv[i + 1]));
}

/** The paper's reporting order of benchmarks (Figures 10-14). */
inline std::vector<std::string>
paperWorkloadOrder()
{
    return {"adpcm_encode", "basicmath", "blowfish", "dijkstra",
            "picojpeg",     "qsort",     "stringsearch", "2dconv",
            "dwt",          "hist"};
}

/** Print the experiment banner with the Table 2 configuration. */
inline void
printBanner(const std::string &title, const SystemConfig &cfg,
            int traces)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf(
        "config: D$ %uB/%u-way/%uB-blk, GBF %u, MT$ %u/%u-way, "
        "MT %u, free list %u, cap %.4gF (scale %.3g), %d traces\n\n",
        cfg.cache.sizeBytes, cfg.cache.ways, cfg.cache.blockBytes,
        cfg.gbfBits, cfg.mtCacheEntries, cfg.mtCacheWays,
        cfg.mapTableEntries, cfg.effectiveFreeListEntries(),
        cfg.capacitorFarads, cfg.capScale, traces);
}

/** Format a percentage cell. */
inline std::string
pct(double v)
{
    return TablePrinter::num(v, 1) + "%";
}

/** Abort the harness if a cell failed to complete or validate. */
inline void
requireClean(const Aggregate &agg, const std::string &what)
{
    fatal_if(!agg.allCompleted, what, ": a run did not complete");
    fatal_if(!agg.allValidated, what,
             ": a run failed final-state validation");
}

/**
 * Machine-readable export for the figure/ablation harnesses: named
 * metrics collected while the tables print, written as one JSON
 * document (schema "nvmr-bench-v1", the BENCH_*.json record format).
 *
 * Construct it from main's argv; it activates when `--stats-json
 * FILE` is present (or when a default path is supplied) and is
 * otherwise free. Every metric carries a unit and, optionally, the
 * paper's reference value so downstream tooling can diff the
 * reproduction against the publication mechanically.
 */
class BenchRecorder
{
  public:
    static constexpr const char *kSchema = "nvmr-bench-v1";

    /**
     * @param bench_name Record name, e.g. "fig10_energy_saved".
     * @param argc,argv The harness's command line (scanned for
     *        `--stats-json FILE`).
     * @param default_path When non-empty, write here even without
     *        the flag (the committed BENCH_nvmr_core.json path).
     */
    BenchRecorder(std::string bench_name, int argc, char **argv,
                  std::string default_path = "")
        : bench(std::move(bench_name)), path(std::move(default_path)),
          start(std::chrono::steady_clock::now())
    {
        for (int i = 1; i + 1 < argc; ++i)
            if (std::strcmp(argv[i], "--stats-json") == 0)
                path = argv[i + 1];
    }

    bool active() const { return !path.empty(); }

    /** Record one metric. */
    void
    add(const std::string &name, double value,
        const std::string &unit = "", double paper_value = 0,
        bool has_paper_value = false)
    {
        if (active())
            metrics.push_back({name, unit, value, paper_value,
                               has_paper_value});
    }

    /** Record one metric with the paper's reference value. */
    void
    addVsPaper(const std::string &name, double value,
               const std::string &unit, double paper_value)
    {
        add(name, value, unit, paper_value, true);
    }

    /** Render and write the record; no-op when inactive. */
    void
    write()
    {
        if (!active())
            return;
        using namespace std::chrono;
        double wall_s =
            duration_cast<duration<double>>(steady_clock::now() -
                                            start)
                .count();
        JsonWriter w;
        w.beginObject();
        w.kv("schema", kSchema);
        w.kv("bench", bench);
        w.kv("timestamp_unix",
             static_cast<int64_t>(
                 duration_cast<seconds>(
                     system_clock::now().time_since_epoch())
                     .count()));
        w.kv("wall_seconds", wall_s);
        w.key("metrics");
        w.beginArray();
        for (const Metric &m : metrics) {
            w.beginObject();
            w.kv("name", m.name);
            w.kv("value", m.value);
            if (!m.unit.empty())
                w.kv("unit", m.unit);
            if (m.hasPaperValue)
                w.kv("paper_value", m.paperValue);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::ofstream os(path);
        fatal_if(!os, "cannot write ", path);
        os << w.str() << "\n";
    }

  private:
    struct Metric
    {
        std::string name;
        std::string unit;
        double value;
        double paperValue;
        bool hasPaperValue;
    };

    std::string bench;
    std::string path;
    std::chrono::steady_clock::time_point start;
    std::vector<Metric> metrics;
};

} // namespace nvmr

#endif // NVMR_BENCH_BENCH_COMMON_HH

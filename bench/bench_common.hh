/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard trace set, configuration banners and percent formatting.
 */

#ifndef NVMR_BENCH_BENCH_COMMON_HH
#define NVMR_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

namespace nvmr
{

/** The paper's reporting order of benchmarks (Figures 10-14). */
inline std::vector<std::string>
paperWorkloadOrder()
{
    return {"adpcm_encode", "basicmath", "blowfish", "dijkstra",
            "picojpeg",     "qsort",     "stringsearch", "2dconv",
            "dwt",          "hist"};
}

/** Print the experiment banner with the Table 2 configuration. */
inline void
printBanner(const std::string &title, const SystemConfig &cfg,
            int traces)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf(
        "config: D$ %uB/%u-way/%uB-blk, GBF %u, MT$ %u/%u-way, "
        "MT %u, free list %u, cap %.4gF (scale %.3g), %d traces\n\n",
        cfg.cache.sizeBytes, cfg.cache.ways, cfg.cache.blockBytes,
        cfg.gbfBits, cfg.mtCacheEntries, cfg.mtCacheWays,
        cfg.mapTableEntries, cfg.effectiveFreeListEntries(),
        cfg.capacitorFarads, cfg.capScale, traces);
}

/** Format a percentage cell. */
inline std::string
pct(double v)
{
    return TablePrinter::num(v, 1) + "%";
}

/** Abort the harness if a cell failed to complete or validate. */
inline void
requireClean(const Aggregate &agg, const std::string &what)
{
    fatal_if(!agg.allCompleted, what, ": a run did not complete");
    fatal_if(!agg.allValidated, what,
             ": a run failed final-state validation");
}

} // namespace nvmr

#endif // NVMR_BENCH_BENCH_COMMON_HH

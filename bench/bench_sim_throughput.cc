/**
 * @file
 * Simulator-throughput record: simulated-instructions/sec on one
 * worker and cells/sec for a fixed campaign grid, serial vs parallel,
 * exported as BENCH_sim_throughput.json through the BenchRecorder.
 * This is the trajectory the parallel engine and the hot-path work
 * are regressed against (docs/performance.md).
 *
 *     bench_sim_throughput                 # writes BENCH_sim_throughput.json
 *     bench_sim_throughput --jobs 8
 *     bench_sim_throughput --stats-json out.json
 */

#include <chrono>

#include "bench_common.hh"
#include "par/par.hh"

using namespace nvmr;

namespace
{

struct Cell
{
    const Program *prog;
    ArchKind arch;
    const HarvestTrace *trace;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double>>(steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("sim_throughput", argc, argv,
                      "BENCH_sim_throughput.json");
    unsigned jobs = par::defaultJobs();
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = par::parseJobsValue(argv[i + 1]);

    SystemConfig cfg;
    PolicySpec jit;
    auto traces = HarvestTrace::standardSet(4);
    const std::vector<std::string> names = {"hist", "qsort",
                                            "dijkstra"};
    const std::vector<ArchKind> archs = {
        ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop};

    std::vector<Program> progs;
    for (const std::string &name : names)
        progs.push_back(assembleWorkload(name));

    std::vector<Cell> cells;
    for (const Program &prog : progs)
        for (ArchKind arch : archs)
            for (const HarvestTrace &trace : traces)
                cells.push_back({&prog, arch, &trace});

    auto runPass = [&](unsigned pass_jobs,
                       std::vector<uint64_t> &instret) {
        instret.assign(cells.size(), 0);
        auto t0 = std::chrono::steady_clock::now();
        par::parallelFor(
            cells.size(),
            [&](size_t i) {
                const Cell &cell = cells[i];
                auto pol = makePolicy(jit);
                RunOptions opts;
                opts.validate = false;
                Simulator sim(*cell.prog, cell.arch, cfg, *pol,
                              *cell.trace, opts);
                RunResult r = sim.run();
                fatal_if(!r.completed, "throughput cell ", i,
                         " did not complete");
                instret[i] = r.instructions;
            },
            pass_jobs);
        return secondsSince(t0);
    };

    std::vector<uint64_t> warm, serial, parallel;
    runPass(1, warm); // warm caches/allocators; untimed pass
    double serial_s = runPass(1, serial);
    double parallel_s = runPass(jobs, parallel);
    fatal_if(serial != parallel,
             "parallel pass diverged from the serial pass");

    double instructions = 0;
    for (uint64_t n : serial)
        instructions += static_cast<double>(n);
    double n_cells = static_cast<double>(cells.size());
    double ips = instructions / serial_s;
    double serial_cps = n_cells / serial_s;
    double par_cps = n_cells / parallel_s;

    rec.add("jobs", static_cast<double>(jobs));
    rec.add("host_hw_concurrency",
            static_cast<double>(par::hardwareJobs()));
    rec.add("cells", n_cells);
    rec.add("simulated_instructions", instructions);
    rec.add("single_thread_instructions_per_sec", ips, "instr/s");
    rec.add("single_thread_cells_per_sec", serial_cps, "cells/s");
    rec.add("parallel_cells_per_sec", par_cps, "cells/s");
    rec.add("parallel_speedup", par_cps / serial_cps, "x");
    rec.write();

    std::printf("sim throughput: %.0f instr/s single-thread, "
                "%.2f cells/s serial, %.2f cells/s at --jobs %u "
                "(%.2fx), %zu cells, host has %u cores\n",
                ips, serial_cps, par_cps, jobs, par_cps / serial_cps,
                cells.size(), par::hardwareJobs());
    return 0;
}

/**
 * @file
 * Reproduces Figure 11: the breakdown of energy consumption of Clank
 * and NvMR per benchmark under the JIT scheme, normalized to Clank's
 * total. Restore and dead energy are negligible under JIT (as in the
 * paper) and reported only in the totals.
 *
 * Paper shape: Clank spends a large fraction on violation backups;
 * NvMR replaces them with small forward/backup overheads (~3% of its
 * total for renaming + reclaiming); stringsearch is forward-dominated
 * and saves least.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet();
    printBanner(
        "Figure 11: normalized energy breakdown, Clank vs NvMR (JIT)",
        cfg, static_cast<int>(traces.size()));

    PolicySpec jit;

    TablePrinter table({"benchmark", "arch", "forward", "fwd_ovh",
                        "backup", "bk_ovh", "reclaim", "restore",
                        "dead", "total"});

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate clank =
            runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
        Aggregate nvmr =
            runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
        requireClean(clank, name);
        requireClean(nvmr, name);

        double base = clank.totalEnergyNj;
        auto row = [&](const char *arch, const Aggregate &a) {
            auto frac = [&](ECat cat) {
                return pct(a.energyOf(cat) / base * 100.0);
            };
            double restore = a.energyOf(ECat::Restore) +
                             a.energyOf(ECat::RestoreOverhead);
            table.addRow({name, arch, frac(ECat::Forward),
                          frac(ECat::ForwardOverhead),
                          frac(ECat::Backup),
                          frac(ECat::BackupOverhead),
                          frac(ECat::Reclaim),
                          pct(restore / base * 100.0),
                          frac(ECat::Dead),
                          pct(a.totalEnergyNj / base * 100.0)});
        };
        row("clank", clank);
        row("nvmr", nvmr);
    }
    table.print();
    std::printf("\npaper: NvMR's right bar is shorter; its rename + "
                "reclaim overheads are ~3%% of its total\n");
    return 0;
}

/**
 * @file
 * Reproduces the Section 6.5 overhead numbers: the reduction in the
 * number of backups (paper: 185x on average), the reduction in
 * maximum per-location NVM wear (paper: 80.8%), the energy share of
 * renaming + reclaiming in NvMR (paper: ~3%), and the flash
 * footprint of the reserved renaming region (paper: ~6% of 2 MB).
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("overheads", argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet();
    printBanner("Section 6.5: NvMR overheads (JIT)", cfg,
                static_cast<int>(traces.size()));

    PolicySpec jit;
    TablePrinter table({"benchmark", "clank backups", "nvmr backups",
                        "backup reduction", "clank max wear",
                        "nvmr max wear", "wear reduction",
                        "rename+reclaim share"});

    double sum_backup_ratio = 0, sum_wear_red = 0, sum_ovh = 0;
    int n = 0;

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate clank =
            runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
        Aggregate nvmr =
            runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
        requireClean(clank, name);
        requireClean(nvmr, name);

        double backup_ratio =
            nvmr.backups > 0 ? clank.backups / nvmr.backups : 0;
        double wear_red =
            clank.maxWear > 0
                ? (1.0 - nvmr.maxWear / clank.maxWear) * 100.0
                : 0;
        double ovh_share =
            (nvmr.energyOf(ECat::ForwardOverhead) +
             nvmr.energyOf(ECat::BackupOverhead) +
             nvmr.energyOf(ECat::RestoreOverhead) +
             nvmr.energyOf(ECat::Reclaim)) /
            nvmr.totalEnergyNj * 100.0;

        sum_backup_ratio += backup_ratio;
        sum_wear_red += wear_red;
        sum_ovh += ovh_share;
        ++n;

        table.addRow({name, TablePrinter::num(clank.backups, 0),
                      TablePrinter::num(nvmr.backups, 0),
                      TablePrinter::num(backup_ratio, 1) + "x",
                      TablePrinter::num(clank.maxWear, 0),
                      TablePrinter::num(nvmr.maxWear, 0),
                      pct(wear_red), pct(ovh_share)});
    }
    table.addRow({"average", "", "",
                  TablePrinter::num(sum_backup_ratio / n, 1) + "x",
                  "", "", pct(sum_wear_red / n), pct(sum_ovh / n)});
    table.print();

    // Wear distribution detail (single representative run per
    // benchmark; the averages above use the full trace set).
    std::printf("\nwear distribution (trace %s):\n",
                traces[0].name().c_str());
    std::printf("%-13s %18s %18s\n", "benchmark", "clank p90/max",
                "nvmr p90/max");
    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        uint64_t p90[2], mx[2];
        int i = 0;
        for (ArchKind kind : {ArchKind::Clank, ArchKind::Nvmr}) {
            auto pol = makePolicy(jit);
            Simulator sim(prog, kind, cfg, *pol, traces[0]);
            RunResult r = sim.run();
            fatal_if(!r.completed || !r.validated,
                     name, ": wear run failed");
            Nvm &nvm = sim.archRef().nvmRef();
            p90[i] = nvm.wearPercentile(0.9);
            mx[i] = nvm.maxWear();
            ++i;
        }
        std::printf("%-13s %10llu / %-5llu %10llu / %-5llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(p90[0]),
                    static_cast<unsigned long long>(mx[0]),
                    static_cast<unsigned long long>(p90[1]),
                    static_cast<unsigned long long>(mx[1]));
    }

    double footprint =
        static_cast<double>(cfg.effectiveFreeListEntries()) *
        cfg.cache.blockBytes / cfg.nvmBytes * 100.0;
    std::printf("\nreserved renaming region: %u mappings x %u B = "
                "%.1f%% of the %u MB flash (paper: ~6%%)\n",
                cfg.effectiveFreeListEntries(), cfg.cache.blockBytes,
                footprint, cfg.nvmBytes >> 20);
    std::printf("paper: 185x fewer backups, 80.8%% lower max wear, "
                "~3%% rename+reclaim energy\n");

    rec.addVsPaper("backup_reduction", sum_backup_ratio / n, "x",
                   185.0);
    rec.addVsPaper("max_wear_reduction_pct", sum_wear_red / n, "%",
                   80.8);
    rec.addVsPaper("rename_reclaim_share_pct", sum_ovh / n, "%", 3.0);
    rec.addVsPaper("renaming_region_footprint_pct", footprint, "%",
                   6.0);
    rec.write();
    return 0;
}

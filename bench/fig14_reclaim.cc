/**
 * @file
 * Reproduces Figure 14: NvMR's energy savings (vs Clank, JIT) with
 * and without map-table reclamation, at the default 4096-entry map
 * table and at the 1024-entry ablation the paper mentions (where
 * reclaiming saves ~9% more).
 *
 * Paper shape: with the default map table reclaiming is a ~1%
 * average improvement concentrated in the benchmarks that fill the
 * table (qsort +9%, dwt +1%), and roughly neutral-to-slightly-
 * negative elsewhere; with a 1024-entry table it matters much more.
 */

#include "bench_common.hh"

using namespace nvmr;

namespace
{

/** Returns the average reclaim benefit (percentage points). */
double
reclaimSweep(uint32_t map_table_entries,
             const std::vector<HarvestTrace> &traces)
{
    std::printf("--- map table with %u entries ---\n",
                map_table_entries);
    PolicySpec jit;
    TablePrinter table({"benchmark", "no reclaim", "reclaim",
                        "reclaim benefit"});
    double sum_no = 0, sum_yes = 0;

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);

        SystemConfig base;
        base.mapTableEntries = map_table_entries;

        SystemConfig no_reclaim = base;
        SystemConfig reclaim = base;
        reclaim.reclaimEnabled = true;

        Aggregate clank = runAveraged(prog, ArchKind::Clank,
                                      SystemConfig{}, jit, traces);
        Aggregate off = runAveraged(prog, ArchKind::Nvmr, no_reclaim,
                                    jit, traces);
        Aggregate on = runAveraged(prog, ArchKind::Nvmr, reclaim,
                                   jit, traces);
        requireClean(clank, name);
        requireClean(off, name);
        requireClean(on, name);

        double s_off = percentSaved(clank, off);
        double s_on = percentSaved(clank, on);
        sum_no += s_off;
        sum_yes += s_on;
        table.addRow(
            {name, pct(s_off), pct(s_on), pct(s_on - s_off)});
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", pct(sum_no / n), pct(sum_yes / n),
                  pct((sum_yes - sum_no) / n)});
    table.print();
    std::printf("\n");
    return (sum_yes - sum_no) / static_cast<double>(n);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("fig14_reclaim", argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet(5);
    printBanner("Figure 14: reclaim vs no reclaim (NvMR vs Clank, "
                "JIT)",
                cfg, static_cast<int>(traces.size()));

    double benefit_4096 = reclaimSweep(4096, traces);
    double benefit_1024 = reclaimSweep(1024, traces);

    std::printf("paper: ~1%% average benefit at 4096 entries "
                "(qsort +9%%, dwt +1%%); ~9%% at 1024 entries\n");

    rec.addVsPaper("reclaim_benefit_4096_pct", benefit_4096, "%",
                   1.0);
    rec.addVsPaper("reclaim_benefit_1024_pct", benefit_1024, "%",
                   9.0);
    rec.write();
    return 0;
}

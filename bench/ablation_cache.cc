/**
 * @file
 * Ablation: data-cache size. The paper (after [10, 48]) argues a
 * write-back cache is essential for intermittent architectures; this
 * sweep shows absolute energy and NvMR-vs-Clank savings across cache
 * sizes. Larger caches absorb more read-modify-write traffic, which
 * shrinks the violation stream both systems must handle.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    auto traces = HarvestTrace::standardSet(5);
    SystemConfig banner;
    printBanner("Ablation: data cache size (JIT)", banner,
                static_cast<int>(traces.size()));

    PolicySpec jit;
    TablePrinter table({"cache", "avg clank uJ", "avg nvmr uJ",
                        "avg % saved", "avg violations (nvmr)"});

    for (uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
        SystemConfig cfg;
        cfg.cache.sizeBytes = size;
        // Keep 8 ways when possible; small caches drop to fewer.
        cfg.cache.ways = size / cfg.cache.blockBytes >= 8
                             ? 8
                             : size / cfg.cache.blockBytes;
        double clank_sum = 0, nvmr_sum = 0, saved_sum = 0,
               viol_sum = 0;
        for (const std::string &name : paperWorkloadOrder()) {
            Program prog = assembleWorkload(name);
            Aggregate clank =
                runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
            Aggregate nvmr =
                runAveraged(prog, ArchKind::Nvmr, cfg, jit, traces);
            requireClean(clank, name);
            requireClean(nvmr, name);
            clank_sum += clank.totalEnergyNj;
            nvmr_sum += nvmr.totalEnergyNj;
            saved_sum += percentSaved(clank, nvmr);
            viol_sum += nvmr.violations;
        }
        size_t n = paperWorkloadOrder().size();
        table.addRow({std::to_string(size) + "B",
                      TablePrinter::num(clank_sum / n / 1000.0, 1),
                      TablePrinter::num(nvmr_sum / n / 1000.0, 1),
                      pct(saved_sum / n),
                      TablePrinter::num(viol_sum / n, 0)});
    }
    table.print();
    std::printf("\nTable 2 uses 256 B; bigger caches absorb RMW "
                "traffic, fewer violations reach NVM\n");
    return 0;
}

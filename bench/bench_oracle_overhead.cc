/**
 * @file
 * Quantifies the cost of the src/check layer: for each architecture
 * it times identically configured simulations with and without the
 * lockstep InvariantSink attached (plus the golden-oracle run and
 * final-state diff on top), and — because sinks must never charge
 * energy or cycles — asserts that every simulation statistic is
 * bit-identical between the checked and unchecked runs.
 *
 * Writes BENCH_oracle_overhead.json (override with --stats-json).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "check/runner.hh"
#include "isa/assembler.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

using namespace nvmr;

namespace
{

/** Wall-clock one call. */
template <typename Fn>
double
timeMs(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Mirror the checked harness's platform sizing (check/runner.cc). */
SystemConfig
configFor(const CheckCase &c)
{
    SystemConfig cfg = c.farads < 1e-3 ? SystemConfig::smallPlatform()
                                       : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    return cfg;
}

RunResult
runOnce(const Program &prog, const CheckCase &c, InvariantSink **sink)
{
    SystemConfig cfg = configFor(c);
    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;
    auto policy = makePolicy(spec);
    HarvestTrace trace(c.traceKind, c.traceSeed, c.traceMeanMw);
    RunOptions opts;
    opts.maxCycles = c.maxCycles;
    opts.faults = c.faults;
    opts.validate = false;
    Simulator sim(prog, c.arch, cfg, *policy, trace, opts);
    InvariantSink inv(sim.archRef(), cfg);
    if (sink) {
        sim.attachTrace(&inv);
        *sink = &inv;
    }
    RunResult r = sim.run();
    if (sink) {
        inv.finalize();
        fatal_if(!inv.clean(), "invariant violation during overhead "
                               "measurement:\n",
                 inv.report());
        *sink = nullptr;
    }
    return r;
}

void
requireBitIdentical(const RunResult &a, const RunResult &b,
                    const char *arch)
{
    auto same = [&](auto x, auto y, const char *what) {
        fatal_if(x != y, arch, ": checked run perturbed ", what, " (",
                 x, " vs ", y, ")");
    };
    same(a.completed, b.completed, "completion");
    same(a.activeCycles, b.activeCycles, "activeCycles");
    same(a.totalCycles, b.totalCycles, "totalCycles");
    same(a.instructions, b.instructions, "instructions");
    same(a.totalEnergyNj, b.totalEnergyNj, "totalEnergyNj");
    same(a.backups, b.backups, "backups");
    same(a.violations, b.violations, "violations");
    same(a.renames, b.renames, "renames");
    same(a.reclaims, b.reclaims, "reclaims");
    same(a.restores, b.restores, "restores");
    same(a.powerFailures, b.powerFailures, "powerFailures");
    same(a.nvmReads, b.nvmReads, "nvmReads");
    same(a.nvmWrites, b.nvmWrites, "nvmWrites");
    same(a.maxWear, b.maxWear, "maxWear");
    same(a.cacheHits, b.cacheHits, "cacheHits");
    same(a.cacheMisses, b.cacheMisses, "cacheMisses");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    BenchRecorder rec("bench_oracle_overhead", argc, argv,
                      "BENCH_oracle_overhead.json");

    constexpr int kReps = 40;
    constexpr uint64_t kSeed = 7;
    const std::string text = makeRandomProgram(kSeed);

    std::printf("== oracle / invariant-checking overhead ==\n");
    std::printf("%-16s %12s %12s %10s %12s\n", "arch",
                "unchecked ms", "checked ms", "overhead", "oracle ms");

    for (ArchKind arch :
         {ArchKind::Nvmr, ArchKind::Clank, ArchKind::Hoop}) {
        CheckCase c;
        c.name = std::string(archKindName(arch)) + "-overhead";
        c.arch = arch;
        c.policy = PolicyKind::Watchdog;
        c.farads = 500e-6;
        c.traceSeed = 40000 + kSeed;
        c.programText = text;
        c.programSeed = kSeed;
        Program prog = assemble(c.name, c.programText);

        RunResult bare_r, checked_r;
        double bare_ms = timeMs([&] {
            for (int i = 0; i < kReps; ++i)
                bare_r = runOnce(prog, c, nullptr);
        });
        double checked_ms = timeMs([&] {
            for (int i = 0; i < kReps; ++i) {
                InvariantSink *sink = nullptr;
                checked_r = runOnce(prog, c, &sink);
            }
        });
        requireBitIdentical(bare_r, checked_r, archKindName(arch));

        // The oracle itself amortizes across every schedule of the
        // same program, so report it separately from the per-run
        // lockstep cost.
        OracleResult oracle;
        double oracle_ms =
            timeMs([&] { oracle = runOracle(prog); });
        fatal_if(!oracle.halted, "oracle did not halt");

        double over_pct =
            bare_ms > 0 ? 100.0 * (checked_ms - bare_ms) / bare_ms
                        : 0;
        std::printf("%-16s %12.2f %12.2f %9.1f%% %12.3f\n",
                    archKindName(arch), bare_ms / kReps,
                    checked_ms / kReps, over_pct, oracle_ms);

        std::string p = archKindName(arch);
        rec.add(p + ".unchecked_ms", bare_ms / kReps, "ms/run");
        rec.add(p + ".checked_ms", checked_ms / kReps, "ms/run");
        rec.add(p + ".lockstep_overhead_pct", over_pct, "%");
        rec.add(p + ".oracle_ms", oracle_ms, "ms");
        rec.add(p + ".stats_bit_identical", 1, "bool");
    }

    std::printf("\nall statistics bit-identical with the checker "
                "attached\n");
    rec.write();
    return 0;
}

/**
 * @file
 * Ablation: how much of NvMR's saving comes from escaping the
 * atomicity (double-buffering) constraint of Section 3.4? We rerun
 * the Figure 10 JIT comparison with the journal cost of in-place
 * backups disabled (an idealized Clank whose backups are magically
 * atomic for free). The remaining savings isolate the
 * backup-frequency and register-persist effects.
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    auto traces = HarvestTrace::standardSet(5);
    SystemConfig with;
    printBanner("Ablation: atomicity (double-buffering) cost of "
                "in-place backups (JIT)",
                with, static_cast<int>(traces.size()));

    SystemConfig without = with;
    without.modelBackupAtomicity = false;

    PolicySpec jit;
    TablePrinter table({"benchmark", "saved (atomicity modeled)",
                        "saved (free atomicity)", "atomicity share"});
    double sum_with = 0, sum_without = 0;

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate clank_w =
            runAveraged(prog, ArchKind::Clank, with, jit, traces);
        Aggregate nvmr_w =
            runAveraged(prog, ArchKind::Nvmr, with, jit, traces);
        Aggregate clank_wo =
            runAveraged(prog, ArchKind::Clank, without, jit, traces);
        Aggregate nvmr_wo =
            runAveraged(prog, ArchKind::Nvmr, without, jit, traces);
        requireClean(clank_w, name);
        requireClean(nvmr_w, name);
        requireClean(clank_wo, name);
        requireClean(nvmr_wo, name);

        double s_w = percentSaved(clank_w, nvmr_w);
        double s_wo = percentSaved(clank_wo, nvmr_wo);
        sum_with += s_w;
        sum_without += s_wo;
        table.addRow({name, pct(s_w), pct(s_wo), pct(s_w - s_wo)});
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", pct(sum_with / n), pct(sum_without / n),
                  pct((sum_with - sum_without) / n)});
    table.print();
    std::printf("\nthe last column is the part of NvMR's win that "
                "comes purely from not needing atomic in-place "
                "persists\n");
    return 0;
}

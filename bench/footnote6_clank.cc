/**
 * @file
 * Reproduces footnote 6 of the paper: "For the same on-chip data
 * storage, our version of Clank saves 11% more energy than the
 * original Clank." Our-version Clank (GBF/LBF + 256 B write-back
 * cache) is compared against the original buffer-based, cacheless
 * Clank with an equivalent on-chip budget (32+32 word-address
 * buffer entries).
 */

#include "bench_common.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    applyJobsFlag(argc, argv);
    SystemConfig cfg;
    auto traces = HarvestTrace::standardSet(5);
    printBanner("Footnote 6: our-version Clank vs original Clank "
                "(JIT)",
                cfg, static_cast<int>(traces.size()));
    std::printf("original Clank: no cache, read-first %u + "
                "write-first %u word-address buffers\n\n",
                cfg.rfBufferEntries, cfg.wfBufferEntries);

    PolicySpec jit;
    TablePrinter table({"benchmark", "original uJ", "our version uJ",
                        "our version saves"});
    double sum = 0;

    for (const std::string &name : paperWorkloadOrder()) {
        Program prog = assembleWorkload(name);
        Aggregate orig = runAveraged(prog, ArchKind::ClankOriginal,
                                     cfg, jit, traces);
        Aggregate ours =
            runAveraged(prog, ArchKind::Clank, cfg, jit, traces);
        requireClean(orig, name);
        requireClean(ours, name);
        double saved = percentSaved(orig, ours);
        sum += saved;
        table.addRow(
            {name, TablePrinter::num(orig.totalEnergyNj / 1000.0, 1),
             TablePrinter::num(ours.totalEnergyNj / 1000.0, 1),
             pct(saved)});
    }
    size_t n = paperWorkloadOrder().size();
    table.addRow({"average", "", "", pct(sum / n)});
    table.print();
    std::printf("\npaper (footnote 6): our version saves ~11%% over "
                "the original for the same on-chip storage\n");
    return 0;
}

/**
 * @file
 * Our version of Clank [16] per Section 5.1: the original Clank's
 * read-first/write-first buffers are replaced by the same GBF/LBF
 * structures NvMR uses, and the write-back buffer by a write-back
 * data cache. On a dirty, read-dominated eviction (an idempotency
 * violation) Clank must back up the whole system before the violating
 * block may be written to NVM.
 */

#ifndef NVMR_ARCH_CLANK_HH
#define NVMR_ARCH_CLANK_HH

#include "arch/arch.hh"

namespace nvmr
{

/** Backup-on-violation architecture (the paper's baseline). */
class ClankArch : public DominanceArch
{
  public:
    ClankArch(const SystemConfig &cfg, Nvm &nvm, EnergySink &sink);

    const char *name() const override { return "clank"; }

    void performBackup(const CpuSnapshot &snap,
                       BackupReason reason) override;
    NanoJoules backupCostNowNj() const override;

  protected:
    std::vector<Word> fetchBlock(Addr block_addr) override;
    void violatingWriteback(CacheLine &line) override;
};

} // namespace nvmr

#endif // NVMR_ARCH_CLANK_HH

#include "arch/ideal.hh"

namespace nvmr
{

IdealArch::IdealArch(const SystemConfig &config, Nvm &nvm_,
                     EnergySink &snk)
    : DominanceArch(config, nvm_, snk)
{
}

std::vector<Word>
IdealArch::fetchBlock(Addr block_addr)
{
    std::vector<Word> data(cfg.cache.wordsPerBlock());
    for (uint32_t w = 0; w < data.size(); ++w)
        data[w] = nvm.readWord(block_addr + w * kWordBytes);
    return data;
}

void
IdealArch::violatingWriteback(CacheLine &line)
{
    // Count the violation (DominanceArch already did) and write the
    // block home anyway: with a perfect JIT policy a backup always
    // persists before any power loss, so the unsafe writeback is
    // never observed.
    normalWriteback(line);
}

void
IdealArch::performBackup(const CpuSnapshot &snap, BackupReason reason)
{
    // Persist every dirty block to its home address, double-buffered
    // like Clank (the backup overwrites recovery state in place).
    cache.forEachLine([&](CacheLine &line) {
        if (line.valid && line.dirty) {
            journaledWriteBlock(line.blockAddr, line);
            line.markClean();
            line.dirtyWordMask = 0;
        }
    });
    persistSnapshot(snap);
    resetDominanceState();
    commitBackup(reason);
}

NanoJoules
IdealArch::backupCostNowNj() const
{
    uint64_t words = static_cast<uint64_t>(cache.dirtyCount()) *
                     cfg.cache.wordsPerBlock();
    double factor = cfg.modelBackupAtomicity ? 2.0 : 1.0;
    return (factor * nvmWriteCostNj(words) + snapshotCostNj()) *
               1.05 +
           10.0;
}

} // namespace nvmr

/**
 * @file
 * Task-based software checkpointing (Section 2.2, Figure 2c): the
 * programmer decomposes the application into tasks (`task`
 * instructions in iisa) and the system checkpoints at every task
 * boundary, as in Chain/DINO/Alpaca [7, 22, 26]. Between boundaries
 * the inherited Clank machinery acts as the privatization safety net
 * for imperfect decompositions (tasks that are not idempotent still
 * execute correctly, at the cost of extra backups — the programmer
 * burden the paper highlights).
 */

#ifndef NVMR_ARCH_TASK_HH
#define NVMR_ARCH_TASK_HH

#include "arch/clank.hh"

namespace nvmr
{

/** Checkpoint-at-task-boundary architecture. */
class TaskArch : public ClankArch
{
  public:
    TaskArch(const SystemConfig &cfg, Nvm &nvm, EnergySink &sink);

    const char *name() const override { return "task"; }

    /** Every task boundary is a checkpoint. */
    void taskBoundary() override;

    /** Task boundaries crossed (== boundary backups). */
    uint64_t taskBoundaries() const { return boundaries; }

  private:
    uint64_t boundaries = 0;
};

} // namespace nvmr

#endif // NVMR_ARCH_TASK_HH

/**
 * @file
 * Simplified HOOP [6] (Sections 2.1 and 6.2): a log-based,
 * transaction-style intermittent system. Dirty cache evictions push
 * word updates into a volatile OOP buffer; backups pack the buffer
 * into slices and append them to the NVM OOP region (a redo log).
 * Restore garbage-collects the log onto the home addresses. The
 * mapping table is infinitely large and free, per Table 4.
 */

#ifndef NVMR_ARCH_HOOP_HH
#define NVMR_ARCH_HOOP_HH

#include <map>
#include <unordered_map>

#include "arch/arch.hh"

namespace nvmr
{

/** Log-structured out-of-place-update architecture. */
class HoopArch : public IntermittentArch
{
  public:
    HoopArch(const SystemConfig &cfg, Nvm &nvm, EnergySink &sink);

    const char *name() const override { return "hoop"; }

    void performBackup(const CpuSnapshot &snap,
                       BackupReason reason) override;
    NanoJoules backupCostNowNj() const override;

    void onPowerFail() override;
    CpuSnapshot performRestore() override;
    NanoJoules restoreCostNowNj() const override;

    Word inspectWord(Addr addr) const override;

    /** Committed redo-log entries currently in the OOP region. */
    uint32_t oopRegionFill() const { return regionFill; }

    /** Word updates waiting in the volatile OOP buffer. */
    uint32_t oopBufferFill() const
    {
        return static_cast<uint32_t>(oopBuffer.size());
    }

    /** Garbage collections performed (restore + region-full). */
    uint64_t gcCount() const { return gcs; }

  protected:
    std::vector<Word> fetchBlock(Addr block_addr) override;
    void evictLine(CacheLine &line) override;

    /** Backup-transaction hooks: the committed log *is* HOOP's
     *  recovery metadata, so a torn backup must roll it back. */
    void shadowCapture() override;
    void shadowRollback() override;
    void onBackupCommitted() override;

  private:
    /** Volatile OOP buffer: an append-only log of un-committed word
     *  updates (hardware appends; only reads search it, newest
     *  first). Repeated updates to one word occupy multiple slots --
     *  the store locality the paper says HOOP's packing depends
     *  on. */
    std::vector<std::pair<Addr, Word>> oopBuffer;

    /** Committed redo log contents: word address -> latest committed
     *  value. Stand-in for the infinite, zero-cost mapping table over
     *  the OOP region. */
    std::unordered_map<Addr, Word> committedLog;

    /**
     * Incremental census of the buffer's packed shape: the number of
     * same-block runs it holds and the block of the newest entry.
     * Kept in step with oopBuffer so backupCostNowNj — polled every
     * instruction by JIT policies — never walks the buffer.
     */
    uint64_t bufGroups = 0;
    Addr bufLastBlock = kNoAddr;

    /** Entries (word updates) occupying the OOP region. */
    uint32_t regionFill = 0;

    uint64_t gcs = 0;

    /** Pre-backup shadow of the committed log (fault injection). */
    std::unordered_map<Addr, Word> shadowLog;
    uint32_t shadowFill = 0;
    bool shadowValid = false;

    /** Latest architectural value of a word, bypassing the cache. */
    Word backingWord(Addr word_addr) const;

    /** Apply the committed log onto the home addresses (charged). */
    void garbageCollect();

    /** Flush the OOP buffer into the OOP region as packed slices. */
    void flushBufferToRegion();

    /** NVM words a buffer flush would write right now. */
    uint64_t packedFlushWords() const;
};

} // namespace nvmr

#endif // NVMR_ARCH_HOOP_HH

/**
 * @file
 * Base classes for intermittent architectures.
 *
 * IntermittentArch owns the write-back data cache and implements the
 * CPU-facing DataPort; subclasses decide where cache blocks are
 * fetched from and written back to, and how idempotency violations
 * are handled (Ideal counts them, Clank backs up, NvMR renames, HOOP
 * logs out-of-place). The simulator orchestrates backups through the
 * BackupHost interface so the CPU register snapshot and energy-mode
 * switching live in one place.
 */

#ifndef NVMR_ARCH_ARCH_HH
#define NVMR_ARCH_ARCH_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "cpu/cpu.hh"
#include "fault/fault.hh"
#include "mem/bloom.hh"
#include "mem/cache.hh"
#include "mem/nvm.hh"
#include "mem/port.hh"
#include "obs/trace.hh"
#include "power/energy.hh"
#include "sim/config.hh"

namespace nvmr
{

/** Why a backup was invoked. */
enum class BackupReason : uint8_t
{
    Initial,              ///< persist the entry state before running
    Policy,               ///< the backup policy fired
    IdempotencyViolation, ///< Clank: violating eviction
    MtCacheEviction,      ///< NvMR: dirty map-table-cache entry evicted
    MapTableFull,         ///< NvMR: rename needed but map table full
    FreeListEmpty,        ///< NvMR: rename needed but no mappings left
    OopBufferFull,        ///< HOOP: out-of-place buffer full
    BufferFull,           ///< original Clank: rf/wf buffer full
    TaskBoundary,         ///< task-based scheme: `task` instruction
    Final,                ///< program halted; persist everything
    NUM
};

const char *backupReasonName(BackupReason reason);

constexpr size_t kNumBackupReasons =
    static_cast<size_t>(BackupReason::NUM);

// PowerFailure lives in fault/fault.hh so the injector can throw it
// without depending on the architecture layer.

/**
 * The simulator-side interface an architecture uses to invoke a full
 * backup from inside the memory system (violating eviction, structure
 * full, ...). The call is synchronous: when it returns, the backup
 * has persisted (or PowerFailure was thrown).
 */
class BackupHost
{
  public:
    virtual ~BackupHost() = default;
    virtual void requestBackup(BackupReason reason) = 0;
};

/** Counters every architecture maintains. */
struct ArchStats
{
    Scalar backups{"backups", "persisted backups"};
    Scalar violations{"violations", "idempotency violations detected"};
    Scalar renames{"renames", "NVM block renames performed"};
    Scalar reclaims{"reclaims", "map table entries reclaimed"};
    Scalar restores{"restores", "restores after power loss"};
    Scalar powerFailures{"power_failures", "brown-outs"};
    Scalar tornBackups{"torn_backups",
                       "backups cut by power loss and rolled back"};
    Scalar eccCorrected{"ecc_corrected",
                        "NVM bit errors corrected by SECDED"};
    Scalar eccUncorrectable{"ecc_uncorrectable",
                            "NVM reads with uncorrectable errors"};
    std::array<uint64_t, kNumBackupReasons> backupsByReason{};
};

/**
 * Common machinery: cache-front memory port, backup/restore of the
 * register snapshot, region layout, validation hooks.
 */
class IntermittentArch : public DataPort
{
  public:
    IntermittentArch(const SystemConfig &cfg, Nvm &nvm,
                     EnergySink &sink);
    ~IntermittentArch() override = default;

    /** Human-readable architecture name. */
    virtual const char *name() const = 0;

    /** Wire up the simulator's backup orchestration. */
    void attachHost(BackupHost *backup_host) { host = backup_host; }

    /** Wire up the fault injector (null keeps the fault-free
     *  fast path). NvMR forwards it to its NVM structures. */
    virtual void attachFaults(FaultInjector *injector)
    {
        faults = injector;
    }

    /** Attach an event sink (null keeps the trace-free fast path).
     *  NvMR forwards it to its map-table cache. */
    virtual void attachTrace(TraceSink *sink_) { tracer = sink_; }

    /** Register an externally-owned stat (the simulator adds its
     *  interval / wear histograms to the same registry). */
    void addStat(StatBase *stat) { statRegistry.add(stat); }

    /**
     * Load the program's data image into NVM and lay out the
     * reserved regions. Must be called once before execution.
     */
    virtual void initialize(const Program &prog);

    // ------------------------------------------------------------------
    // DataPort (CPU side)
    // ------------------------------------------------------------------
    Word loadWord(Addr addr) override;
    void storeWord(Addr addr, Word value) override;
    uint8_t loadByte(Addr addr) override;
    void storeByte(Addr addr, uint8_t value) override;

    // ------------------------------------------------------------------
    // Intermittence control (called by the simulator)
    // ------------------------------------------------------------------

    /**
     * Persist a full backup: register snapshot, dirty data, and any
     * architecture-specific metadata. The simulator has already
     * verified the energy budget and set the Backup energy mode.
     */
    virtual void performBackup(const CpuSnapshot &snap,
                               BackupReason reason) = 0;

    /**
     * Upper bound on the energy a backup would cost right now; used
     * by the JIT policy and the simulator's atomic-backup precheck.
     */
    virtual NanoJoules backupCostNowNj() const = 0;

    /** Run after a persisted backup (NvMR reclaims here). */
    virtual void postBackup(BackupReason reason) { (void)reason; }

    /**
     * Open the two-phase backup transaction (fault injection only;
     * a no-op when the injector is off). Metadata structures shadow
     * their pre-backup state so a mid-backup crash rolls back to the
     * previous recovery image, and in-place persists of recovery
     * data are journaled with the home write deferred until after
     * the commit record.
     */
    void beginBackupTxn();

    /**
     * Close the transaction after a committed backup: replay the
     * deferred journal home writes (charged; crash-safe, replay is
     * idempotent and re-runs at restore if cut short).
     */
    void finishBackupTxn();

    /** Power was lost: drop all volatile state. */
    virtual void onPowerFail();

    /**
     * Power is back: charge restore costs and return the snapshot to
     * load into the CPU. Restore energy mode is already set.
     */
    virtual CpuSnapshot performRestore();

    /** Energy a restore costs (precheck at power-on). */
    virtual NanoJoules restoreCostNowNj() const;

    /** True once any backup has committed. */
    bool hasPersistedState() const { return committedSeq != 0; }

    /** Sequence number of the last committed backup (0 = none). */
    uint64_t committedBackupSeq() const { return committedSeq; }

    /** Copy the injector's ECC counters into ArchStats. */
    void syncFaultCounters(const FaultStats &fs);

    // ------------------------------------------------------------------
    // Validation / inspection (no energy accounting)
    // ------------------------------------------------------------------

    /**
     * Read the architecturally current value of an application word:
     * cache first, then the architecture's latest mapping of the
     * address. Used by the correctness oracle and tests.
     */
    virtual Word inspectWord(Addr addr) const;

    /** End of application region (program data, block aligned). */
    Addr appRegionEnd() const { return appEnd; }

    const ArchStats &stats() const { return archStats; }

    /** Name-indexed view of the counters (gem5-style stats). */
    const StatGroup &statGroup() const { return statRegistry; }

    const DataCache &dataCache() const { return cache; }
    Nvm &nvmRef() { return nvm; }

  protected:
    const SystemConfig &cfg;
    Nvm &nvm;
    EnergySink &sink;
    DataCache cache;
    BackupHost *host = nullptr;
    FaultInjector *faults = nullptr;
    TraceSink *tracer = nullptr;

    /** True when onAccess is DominanceArch's LBF span touch: access()
     *  then inlines it (batched energy charge, no virtual dispatch on
     *  the hit path). Set once by the DominanceArch constructor. */
    bool lbfTracking = false;

    /**
     * One half of the double-buffered NVM backup region. The last
     * word persisted for a backup acts as its sequence-numbered
     * commit record: until it lands, the slot's seq stays stale and
     * restore falls back to the other (last complete) slot.
     */
    struct BackupSlot
    {
        uint64_t seq = 0;
        CpuSnapshot snap;
    };

    std::array<BackupSlot, 2> snapSlots;
    /** Slot holding the last *committed* backup. persistSnapshot
     *  always writes the other one. */
    uint32_t activeSlot = 0;
    /** Seq of the last committed backup; 0 before the first. */
    uint64_t committedSeq = 0;

    /** Two-phase backup transaction state (fault injection only). */
    bool txnOpen = false;
    bool txnCommitted = false;
    bool snapStaged = false;

    /** Redo journal: home writes of in-place persists, deferred
     *  until after the commit record (replayed by finishBackupTxn
     *  or, after a crash mid-replay, by performRestore). */
    std::vector<std::pair<Addr, Word>> redoJournal;

    Addr appEnd = 0;

    ArchStats archStats;
    StatGroup statRegistry;

    /** Fetch the current data of a block from backing storage
     *  (charged reads); used on cache misses. */
    virtual std::vector<Word> fetchBlock(Addr block_addr) = 0;

    /** Handle eviction of a valid line (writeback, violations,
     *  renaming, logging...). Must leave the line clean. */
    virtual void evictLine(CacheLine &line) = 0;

    /** Hook run after a miss fill (GBF conservative marking). */
    virtual void afterFill(CacheLine &line) { (void)line; }

    /** Hook run on every access for dominance tracking; the span
     *  is [offset_in_block, offset_in_block + nbytes). */
    virtual void onAccess(CacheLine &line, uint32_t offset_in_block,
                          uint32_t nbytes, bool is_store);

    /** The architecturally-latest NVM location of an application
     *  word, ignoring the cache (no energy). */
    virtual Addr inspectMapping(Addr addr) const;

    /** Miss path shared by all architectures. */
    CacheLine &handleMiss(Addr block_addr);

    /** Access path shared by loadWord/storeWord/loadByte/storeByte. */
    CacheLine &access(Addr addr, uint32_t nbytes, bool is_store);

    /**
     * Persist the register snapshot (17 NVM word writes) into the
     * inactive backup slot. The backup only becomes recoverable when
     * commitBackup() validates its commit record -- every
     * architecture's last persisted word doubles as that record, so
     * the protocol costs no extra NVM traffic.
     */
    void persistSnapshot(const CpuSnapshot &snap);

    /**
     * Architecture hooks around the transaction: capture shadow
     * copies of NVM metadata at txn open, roll them back after a
     * pre-commit crash, make staged updates durable at commit.
     */
    virtual void shadowCapture() {}
    virtual void shadowRollback() {}
    virtual void onBackupCommitted() {}

    /**
     * Persist a block as part of a backup's recovery image when the
     * target is live recovery state (in-place home writes). Charges
     * the journal copy (footnote 3 of the paper) plus -- under an
     * open transaction -- defers the home write into the redo
     * journal so a mid-backup crash leaves the previous image
     * intact. Without a transaction this is exactly the seed's
     * chargeJournalWrite + writeBlockTo sequence.
     */
    void journaledWriteBlock(Addr home, const CacheLine &line);

    /** Word-granular variant (HOOP's straight-home fallback). */
    void journaledWriteWord(Addr addr, Word value);

    /** Write a block's words to an NVM location (charged). */
    void writeBlockTo(Addr target, const CacheLine &line);

    /**
     * Charge the journal copy of a double-buffered persist: backups
     * that overwrite recovery state in place (Clank persisting
     * read-dominated blocks to their home addresses) must write the
     * data twice -- once into the journal, once home -- to stay
     * atomic (footnote 3 of the paper). Renamed persists don't pay
     * this, which is the heart of NvMR's saving.
     */
    void chargeJournalWrite(uint64_t words);

    /** Cost of persisting the register snapshot. */
    NanoJoules snapshotCostNj() const;

    /** Cost helper: n NVM word writes including stall-cycle energy. */
    NanoJoules nvmWriteCostNj(uint64_t words) const;

    /** Cost helper: n NVM word reads including stall-cycle energy. */
    NanoJoules nvmReadCostNj(uint64_t words) const;

    /**
     * Commit point of a backup: runs directly after the backup's
     * final NVM persist (which is its commit record), marks the
     * staged slot live and bumps the counters. A crash anywhere
     * before this call tears the backup; onPowerFail rolls it back.
     */
    void commitBackup(BackupReason reason);
};

/**
 * Shared base for the idempotency-violation-aware architectures
 * (Ideal, Clank, NvMR): owns the GBF and drives the LBF word-state
 * protocol of Sections 4.3-4.5.
 */
class DominanceArch : public IntermittentArch
{
  public:
    DominanceArch(const SystemConfig &cfg, Nvm &nvm, EnergySink &sink);

    void onPowerFail() override;

  protected:
    BloomFilter gbf;

    void onAccess(CacheLine &line, uint32_t offset_in_block,
                  uint32_t nbytes, bool is_store) override;

    /** GBF-driven conservative LBF initialization on fill. */
    void afterFill(CacheLine &line) override;

    /**
     * Eviction protocol: log read-dominance in the GBF, flag
     * violations on dirty read-dominated blocks, delegate the
     * violating writeback to the subclass.
     */
    void evictLine(CacheLine &line) final;

    /** Dirty, read-dominated block is leaving the cache. */
    virtual void violatingWriteback(CacheLine &line) = 0;

    /** Dirty, write-dominated/unknown block is leaving the cache. */
    virtual void normalWriteback(CacheLine &line);

    /** Reset GBF and LBF states (every backup does this). */
    void resetDominanceState();
};

} // namespace nvmr

#endif // NVMR_ARCH_ARCH_HH

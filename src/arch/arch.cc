#include "arch/arch.hh"

#include "common/log.hh"

namespace nvmr
{

const char *
backupReasonName(BackupReason reason)
{
    switch (reason) {
      case BackupReason::Initial: return "initial";
      case BackupReason::Policy: return "policy";
      case BackupReason::IdempotencyViolation: return "violation";
      case BackupReason::MtCacheEviction: return "mtcache_eviction";
      case BackupReason::MapTableFull: return "maptable_full";
      case BackupReason::FreeListEmpty: return "freelist_empty";
      case BackupReason::OopBufferFull: return "oop_buffer_full";
      case BackupReason::BufferFull: return "buffer_full";
      case BackupReason::TaskBoundary: return "task_boundary";
      case BackupReason::Final: return "final";
      default: return "<bad>";
    }
}

const char *
archKindName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Ideal: return "ideal";
      case ArchKind::Clank: return "clank";
      case ArchKind::ClankOriginal: return "clank_original";
      case ArchKind::Task: return "task";
      case ArchKind::Nvmr: return "nvmr";
      case ArchKind::Hoop: return "hoop";
      default: return "<bad>";
    }
}

IntermittentArch::IntermittentArch(const SystemConfig &config, Nvm &nvm_,
                                   EnergySink &snk)
    : cfg(config), nvm(nvm_), sink(snk), cache(config.cache,
                                              config.tech, snk)
{
    statRegistry.add(&archStats.backups);
    statRegistry.add(&archStats.violations);
    statRegistry.add(&archStats.renames);
    statRegistry.add(&archStats.reclaims);
    statRegistry.add(&archStats.restores);
    statRegistry.add(&archStats.powerFailures);
    statRegistry.add(&archStats.tornBackups);
    statRegistry.add(&archStats.eccCorrected);
    statRegistry.add(&archStats.eccUncorrectable);
}

void
IntermittentArch::initialize(const Program &prog)
{
    nvm.loadImage(0, prog.data);
    Addr end = prog.dataSize();
    uint32_t block = cfg.cache.blockBytes;
    appEnd = (end + block - 1) / block * block;
    fatal_if(appEnd > nvm.sizeBytes(),
             "program data does not fit in NVM");
}

// ----------------------------------------------------------------------
// Access paths
// ----------------------------------------------------------------------

CacheLine &
IntermittentArch::handleMiss(Addr block_addr)
{
    if (tracer)
        tracer->record(EventKind::CacheMiss, block_addr);
    CacheLine &victim = cache.victim(block_addr);
    if (victim.valid) {
        if (tracer)
            tracer->record(EventKind::CacheEvict, victim.blockAddr,
                           victim.compositeReadDominated() ? 1 : 0);
        evictLine(victim);
    }
    // evictLine must leave the line clean; drop it.
    panic_if(victim.valid && victim.dirty,
             "evictLine left a dirty line behind");
    cache.invalidate(victim);

    std::vector<Word> data = fetchBlock(block_addr);
    cache.fill(victim, block_addr, data);
    afterFill(victim);
    return victim;
}

CacheLine &
IntermittentArch::access(Addr addr, uint32_t nbytes, bool is_store)
{
    Addr block = cache.blockAlign(addr);
    CacheLine *line;
    if (lbfTracking) {
        // Dominance-tracking hot path: the SRAM lookup and the LBF
        // state update are charged in one batched sink call and the
        // span touch is inlined, so a cache hit costs no virtual
        // dispatch.
        sink.consume(cfg.tech.cacheAccessNj + cfg.tech.bloomNj);
        line = cache.lookupUncharged(block);
        if (!line)
            line = &handleMiss(block);
        else if (tracer)
            tracer->record(EventKind::CacheHit, block);
        line->touchSpan(addr - block, nbytes, is_store);
    } else {
        line = cache.lookup(block);
        if (!line)
            line = &handleMiss(block);
        else if (tracer)
            tracer->record(EventKind::CacheHit, block);
        onAccess(*line, addr - block, nbytes, is_store);
    }
    if (tracer)
        tracer->record(EventKind::MemAccess, addr,
                       (static_cast<uint64_t>(is_store) << 8) | nbytes);
    return *line;
}

void
IntermittentArch::onAccess(CacheLine &, uint32_t, uint32_t, bool)
{
}

Word
IntermittentArch::loadWord(Addr addr)
{
    panic_if(addr % kWordBytes != 0, "misaligned load at ", addr);
    CacheLine &line = access(addr, kWordBytes, false);
    return line.data[cache.wordIndex(addr)];
}

void
IntermittentArch::storeWord(Addr addr, Word value)
{
    panic_if(addr % kWordBytes != 0, "misaligned store at ", addr);
    CacheLine &line = access(addr, kWordBytes, true);
    uint32_t wi = cache.wordIndex(addr);
    line.data[wi] = value;
    line.markDirty();
    line.dirtyWordMask |= 1u << wi;
}

uint8_t
IntermittentArch::loadByte(Addr addr)
{
    CacheLine &line = access(addr, 1, false);
    uint32_t wi = cache.wordIndex(addr & ~3u);
    return static_cast<uint8_t>(line.data[wi] >> (8 * (addr & 3u)));
}

void
IntermittentArch::storeByte(Addr addr, uint8_t value)
{
    // Dominance handling of the partial write lives in
    // CacheLine::touchSpan: with word-granular LBF (Table 2) a byte
    // store counts as a read (it only partially overwrites the
    // tracked unit -- found by differential fuzzing, see the
    // PartialWordStore* regressions); with byte-granular LBF it is
    // a genuine overwrite of its unit.
    CacheLine &line = access(addr, 1, true);
    uint32_t wi = cache.wordIndex(addr & ~3u);
    unsigned shift = 8 * (addr & 3u);
    line.data[wi] = (line.data[wi] & ~(0xffu << shift)) |
                    (static_cast<Word>(value) << shift);
    line.markDirty();
    line.dirtyWordMask |= 1u << wi;
}

// ----------------------------------------------------------------------
// Backup / restore shared pieces
// ----------------------------------------------------------------------

void
IntermittentArch::persistSnapshot(const CpuSnapshot &snap)
{
    // Registers + PC are written to a double-buffered NVM region;
    // model as persistWords word writes (no address-level wear, the
    // region alternates between two buffers). Under fault injection
    // each word is an interruptible persist boundary; a crash mid-
    // sequence leaves the staged slot's commit record unwritten, so
    // restore keeps using the other slot.
    if (faults && faults->enabled()) {
        for (unsigned i = 0; i < CpuSnapshot::persistWords; ++i) {
            faults->persistPoint();
            sink.addCycles(cfg.tech.flashWriteCycles);
            sink.consume(cfg.tech.flashWriteWordNj);
        }
    } else {
        for (unsigned i = 0; i < CpuSnapshot::persistWords; ++i) {
            sink.addCycles(cfg.tech.flashWriteCycles);
            sink.consume(cfg.tech.flashWriteWordNj);
        }
    }
    BackupSlot &target = snapSlots[1 - activeSlot];
    target.seq = committedSeq + 1;
    target.snap = snap;
    snapStaged = true;
}

void
IntermittentArch::commitBackup(BackupReason reason)
{
    panic_if(!snapStaged, "backup committed without a snapshot");
    // The last NVM word this backup persisted is its commit record;
    // at this point it has landed, so the staged slot becomes the
    // recovery image. Pure bookkeeping: no charges, no persists.
    activeSlot = 1 - activeSlot;
    committedSeq = snapSlots[activeSlot].seq;
    snapStaged = false;
    if (faults && faults->enabled())
        faults->noteBackupCommit();
    if (txnOpen) {
        txnCommitted = true;
        onBackupCommitted();
    }
    ++archStats.backups;
    ++archStats.backupsByReason[static_cast<size_t>(reason)];
}

void
IntermittentArch::beginBackupTxn()
{
    if (!faults || !faults->enabled())
        return; // zero-cost when fault injection is off
    txnOpen = true;
    txnCommitted = false;
    redoJournal.clear();
    shadowCapture();
}

void
IntermittentArch::finishBackupTxn()
{
    if (!txnOpen)
        return;
    // Replay the deferred home writes now that the commit record is
    // durable. A crash mid-replay re-runs the whole journal at
    // restore -- replay is idempotent (last-write-wins per word and
    // the journal only holds committed data).
    for (const auto &entry : redoJournal)
        nvm.writeWord(entry.first, entry.second);
    redoJournal.clear();
    txnOpen = false;
    txnCommitted = false;
}

void
IntermittentArch::journaledWriteBlock(Addr home, const CacheLine &line)
{
    chargeJournalWrite(cfg.cache.wordsPerBlock());
    if (txnOpen) {
        for (uint32_t w = 0; w < cfg.cache.wordsPerBlock(); ++w)
            redoJournal.emplace_back(home + w * kWordBytes,
                                     line.data[w]);
    } else {
        writeBlockTo(home, line);
    }
}

void
IntermittentArch::journaledWriteWord(Addr addr, Word value)
{
    if (txnOpen) {
        chargeJournalWrite(1);
        redoJournal.emplace_back(addr, value);
    } else {
        nvm.writeWord(addr, value);
    }
}

void
IntermittentArch::writeBlockTo(Addr target, const CacheLine &line)
{
    for (uint32_t w = 0; w < cfg.cache.wordsPerBlock(); ++w)
        nvm.writeWord(target + w * kWordBytes, line.data[w]);
}

void
IntermittentArch::chargeJournalWrite(uint64_t words)
{
    // The journal alternates between two dedicated NVM regions, so
    // it is charged for energy and time but not per-word wear.
    if (!cfg.modelBackupAtomicity)
        return;
    if (faults && faults->enabled()) {
        // Word-granular, interruptible journal appends. Kept on a
        // separate branch so the fault-free path charges in the
        // exact same bulk operations as the seed (bit-identical
        // accounting).
        for (uint64_t w = 0; w < words; ++w) {
            faults->persistPoint();
            sink.addCycles(cfg.tech.flashWriteCycles);
            sink.consume(cfg.tech.flashWriteWordNj);
        }
    } else {
        sink.addCycles(words * cfg.tech.flashWriteCycles);
        sink.consume(static_cast<double>(words) *
                     cfg.tech.flashWriteWordNj);
    }
}

NanoJoules
IntermittentArch::nvmWriteCostNj(uint64_t words) const
{
    // Stall cycles charge core energy *and* structure leakage (and,
    // for NvMR, map-table-cache leakage); bound them all so backup
    // prechecks never under-estimate.
    double per_cycle = cfg.tech.cpuCycleNj + cfg.tech.leakNjPerCycle +
                       cfg.tech.mtCacheLeakNjPerCycle;
    return static_cast<double>(words) *
           (cfg.tech.flashWriteWordNj +
            static_cast<double>(cfg.tech.flashWriteCycles) *
                per_cycle);
}

NanoJoules
IntermittentArch::nvmReadCostNj(uint64_t words) const
{
    double per_cycle = cfg.tech.cpuCycleNj + cfg.tech.leakNjPerCycle +
                       cfg.tech.mtCacheLeakNjPerCycle;
    return static_cast<double>(words) *
           (cfg.tech.flashReadWordNj +
            static_cast<double>(cfg.tech.flashReadCycles) *
                per_cycle);
}

NanoJoules
IntermittentArch::snapshotCostNj() const
{
    return nvmWriteCostNj(CpuSnapshot::persistWords);
}

void
IntermittentArch::onPowerFail()
{
    ++archStats.powerFailures;
    cache.invalidateAll();
    if (txnOpen && !txnCommitted) {
        // Torn backup: its commit record never landed. Roll the
        // shadowed NVM metadata back to the previous recovery image
        // and drop the un-replayed journal. Volatile bookkeeping
        // only -- the physical prefix the crash left behind is in
        // blocks the previous image does not reference.
        shadowRollback();
        redoJournal.clear();
        ++archStats.tornBackups;
        if (tracer)
            tracer->record(EventKind::BackupRollback, 0,
                           committedSeq + 1);
    }
    // A committed txn keeps its journal: performRestore replays it.
    txnOpen = false;
    txnCommitted = false;
    snapStaged = false;
}

CpuSnapshot
IntermittentArch::performRestore()
{
    panic_if(committedSeq == 0, "restore without a persisted backup");
    // Committed backup, crash before the journal home writes
    // finished replaying: replay the whole journal (idempotent).
    if (!redoJournal.empty()) {
        for (const auto &entry : redoJournal)
            nvm.writeWord(entry.first, entry.second);
        redoJournal.clear();
    }
    // Read back registers + PC from the slot whose commit record
    // matches the last committed sequence number.
    for (unsigned i = 0; i < CpuSnapshot::persistWords; ++i) {
        sink.addCycles(cfg.tech.flashReadCycles);
        sink.consume(cfg.tech.flashReadWordNj);
    }
    ++archStats.restores;
    panic_if(snapSlots[activeSlot].seq != committedSeq,
             "backup slot does not match committed sequence");
    return snapSlots[activeSlot].snap;
}

void
IntermittentArch::syncFaultCounters(const FaultStats &fs)
{
    archStats.eccCorrected.set(static_cast<double>(fs.eccCorrected));
    archStats.eccUncorrectable.set(
        static_cast<double>(fs.eccUncorrectable));
}

NanoJoules
IntermittentArch::restoreCostNowNj() const
{
    return nvmReadCostNj(CpuSnapshot::persistWords);
}

Addr
IntermittentArch::inspectMapping(Addr addr) const
{
    return addr;
}

Word
IntermittentArch::inspectWord(Addr addr) const
{
    Addr block = addr & ~(cfg.cache.blockBytes - 1);
    // Walk the cache without charging energy.
    Word result = 0;
    bool found = false;
    cache.forEachLine([&](const CacheLine &line) {
        if (line.valid && line.blockAddr == block) {
            result = line.data[(addr - block) / kWordBytes];
            found = true;
        }
    });
    if (found)
        return result;
    Addr mapped = inspectMapping(block) + (addr - block);
    return nvm.inspectWord(mapped);
}

// ----------------------------------------------------------------------
// DominanceArch
// ----------------------------------------------------------------------

DominanceArch::DominanceArch(const SystemConfig &config, Nvm &nvm_,
                             EnergySink &snk)
    : IntermittentArch(config, nvm_, snk),
      gbf(config.gbfBits, config.gbfHashes, config.tech, snk)
{
    lbfTracking = true;
}

void
DominanceArch::onAccess(CacheLine &line, uint32_t offset_in_block,
                        uint32_t nbytes, bool is_store)
{
    sink.consume(cfg.tech.bloomNj); // LBF state update
    line.touchSpan(offset_in_block, nbytes, is_store);
}

void
DominanceArch::afterFill(CacheLine &line)
{
    // Section 4.5: a GBF hit means the block was read-dominated when
    // it was last evicted in this code section; conservatively mark
    // every word read-dominated.
    bool hit;
    if (gbf.singleWord()) {
        // Hash the lanes once per cache residency: the eviction-path
        // insert reuses the mask.
        line.gbfMask = gbf.laneMask(line.blockAddr);
        hit = gbf.maybeContainsMask(line.gbfMask);
    } else {
        line.gbfMask = 0;
        hit = gbf.maybeContains(line.blockAddr);
    }
    if (tracer)
        tracer->record(EventKind::GbfQuery, line.blockAddr, hit);
    if (hit)
        line.markAllReadDominated();
}

void
DominanceArch::evictLine(CacheLine &line)
{
    bool read_dom = line.compositeReadDominated();
    if (read_dom) {
        if (line.gbfMask)
            gbf.insertMask(line.gbfMask);
        else
            gbf.insert(line.blockAddr);
        if (tracer)
            tracer->record(EventKind::GbfInsert, line.blockAddr);
    }
    if (!line.dirty)
        return;
    if (read_dom) {
        ++archStats.violations;
        if (tracer)
            tracer->record(EventKind::Violation, line.blockAddr);
        violatingWriteback(line);
    } else {
        normalWriteback(line);
    }
}

void
DominanceArch::normalWriteback(CacheLine &line)
{
    writeBlockTo(line.blockAddr, line);
    line.markClean();
}

void
DominanceArch::resetDominanceState()
{
    gbf.reset();
    cache.resetLbf();
    if (tracer)
        tracer->record(EventKind::DominanceReset);
}

void
DominanceArch::onPowerFail()
{
    IntermittentArch::onPowerFail();
    // The GBF/LBF are SRAM: their state is lost. A restore begins a
    // new intermittent code section anyway, which starts empty.
    gbf.reset();
}

} // namespace nvmr

/**
 * @file
 * The original Clank [16], as described in Section 2.1 of the paper:
 * no data cache — loads and stores go straight to NVM — with two
 * fixed-size address buffers detecting idempotency violations:
 *
 *  - the read-first buffer holds word addresses whose first access
 *    since the last backup was a load;
 *  - the write-first buffer holds those first written.
 *
 * A store to a read-first address is an idempotency violation and
 * forces a backup *before* the store persists; a buffer running out
 * of entries also forces a backup (which clears both). Backups only
 * persist the register file — there is no dirty cache — but stores
 * pay an NVM write each, which is why the paper's cache-based
 * "our version of Clank" saves ~11% over this design (footnote 6);
 * bench/footnote6_clank reproduces that comparison.
 */

#ifndef NVMR_ARCH_CLANK_ORIGINAL_HH
#define NVMR_ARCH_CLANK_ORIGINAL_HH

#include <set>

#include "arch/arch.hh"

namespace nvmr
{

/** Cacheless, buffer-based Clank. */
class ClankOriginalArch : public IntermittentArch
{
  public:
    ClankOriginalArch(const SystemConfig &cfg, Nvm &nvm,
                      EnergySink &sink);

    const char *name() const override { return "clank_original"; }

    // Direct-to-NVM data port (no cache).
    Word loadWord(Addr addr) override;
    void storeWord(Addr addr, Word value) override;
    uint8_t loadByte(Addr addr) override;
    void storeByte(Addr addr, uint8_t value) override;

    void performBackup(const CpuSnapshot &snap,
                       BackupReason reason) override;
    NanoJoules backupCostNowNj() const override;

    void onPowerFail() override;

    Word inspectWord(Addr addr) const override;

    uint32_t readFirstFill() const
    {
        return static_cast<uint32_t>(readFirst.size());
    }
    uint32_t writeFirstFill() const
    {
        return static_cast<uint32_t>(writeFirst.size());
    }

  protected:
    // The cache-centric base hooks are never reached: the port
    // methods above bypass the cache entirely.
    std::vector<Word> fetchBlock(Addr block_addr) override;
    void evictLine(CacheLine &line) override;

  private:
    std::set<Addr> readFirst;  ///< word addresses read first
    std::set<Addr> writeFirst; ///< word addresses written first

    /** SRAM energy for a buffer lookup/insert. */
    static constexpr NanoJoules kBufferTouchNj = 0.05;

    /**
     * Classify an access and enforce the protocol: may back up on a
     * violation or when a needed buffer is full. Returns after the
     * address is tracked (or the section was reset).
     */
    void trackAccess(Addr word_addr, bool is_store);
};

} // namespace nvmr

#endif // NVMR_ARCH_CLANK_ORIGINAL_HH

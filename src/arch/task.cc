#include "arch/task.hh"

#include "common/log.hh"

namespace nvmr
{

TaskArch::TaskArch(const SystemConfig &config, Nvm &nvm_,
                   EnergySink &snk)
    : ClankArch(config, nvm_, snk)
{
}

void
TaskArch::taskBoundary()
{
    ++boundaries;
    if (tracer)
        tracer->record(EventKind::TaskBoundary, boundaries);
    panic_if(!host, "TaskArch needs an attached BackupHost");
    host->requestBackup(BackupReason::TaskBoundary);
}

} // namespace nvmr

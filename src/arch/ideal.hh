/**
 * @file
 * The "ideal architecture" of Table 3: idempotency violations are
 * detected and counted, but never force a backup (backups happen only
 * when the policy asks). Safe only under a perfect JIT policy, which
 * is exactly how the paper uses it to characterize per-benchmark
 * violation counts.
 */

#ifndef NVMR_ARCH_IDEAL_HH
#define NVMR_ARCH_IDEAL_HH

#include "arch/arch.hh"

namespace nvmr
{

/** Violation-counting architecture (no structural-hazard backups). */
class IdealArch : public DominanceArch
{
  public:
    IdealArch(const SystemConfig &cfg, Nvm &nvm, EnergySink &sink);

    const char *name() const override { return "ideal"; }

    void performBackup(const CpuSnapshot &snap,
                       BackupReason reason) override;
    NanoJoules backupCostNowNj() const override;

  protected:
    std::vector<Word> fetchBlock(Addr block_addr) override;
    void violatingWriteback(CacheLine &line) override;
};

} // namespace nvmr

#endif // NVMR_ARCH_IDEAL_HH

#include "arch/clank_original.hh"

#include "common/log.hh"

namespace nvmr
{

ClankOriginalArch::ClankOriginalArch(const SystemConfig &config,
                                     Nvm &nvm_, EnergySink &snk)
    : IntermittentArch(config, nvm_, snk)
{
}

void
ClankOriginalArch::trackAccess(Addr word_addr, bool is_store)
{
    sink.consume(kBufferTouchNj);
    if (readFirst.count(word_addr)) {
        if (!is_store)
            return; // reads of read-first addresses are free
        // Write-after-read on NVM: the idempotency violation. Back
        // up first; the backup clears both buffers and starts a new
        // section in which this store is the first access.
        ++archStats.violations;
        if (tracer)
            tracer->record(EventKind::Violation, word_addr);
        panic_if(!host, "ClankOriginalArch needs a BackupHost");
        host->requestBackup(BackupReason::IdempotencyViolation);
        sink.consume(kBufferTouchNj);
        writeFirst.insert(word_addr);
        return;
    }
    if (writeFirst.count(word_addr))
        return; // write-dominated: loads and stores both safe

    // First access to this address in the current section: it needs
    // a buffer entry. A full buffer forces a backup (which clears
    // both buffers) before the entry is inserted.
    std::set<Addr> &buffer = is_store ? writeFirst : readFirst;
    uint32_t capacity = is_store ? cfg.wfBufferEntries
                                 : cfg.rfBufferEntries;
    if (buffer.size() >= capacity) {
        panic_if(!host, "ClankOriginalArch needs a BackupHost");
        host->requestBackup(BackupReason::BufferFull);
        sink.consume(kBufferTouchNj);
    }
    buffer.insert(word_addr);
}

Word
ClankOriginalArch::loadWord(Addr addr)
{
    panic_if(addr % kWordBytes != 0, "misaligned load at ", addr);
    trackAccess(addr, false);
    if (tracer)
        tracer->record(EventKind::MemAccess, addr, kWordBytes);
    return nvm.readWord(addr);
}

void
ClankOriginalArch::storeWord(Addr addr, Word value)
{
    panic_if(addr % kWordBytes != 0, "misaligned store at ", addr);
    trackAccess(addr, true);
    if (tracer)
        tracer->record(EventKind::MemAccess, addr,
                       (1ull << 8) | kWordBytes);
    nvm.writeWord(addr, value);
}

uint8_t
ClankOriginalArch::loadByte(Addr addr)
{
    Addr word = addr & ~3u;
    trackAccess(word, false);
    if (tracer)
        tracer->record(EventKind::MemAccess, addr, 1);
    Word w = nvm.readWord(word);
    return static_cast<uint8_t>(w >> (8 * (addr & 3u)));
}

void
ClankOriginalArch::storeByte(Addr addr, uint8_t value)
{
    // A byte store is a word read-modify-write in hardware. It must
    // not mark the word write-first (it only partially overwrites
    // it), but a byte store to a word that was already read-first
    // is still a violation (word-granular tracking cannot tell
    // whether the read touched the same byte). A *fresh* byte store
    // is idempotent by itself and marks the word read-first, so any
    // later full-word store gets caught.
    Addr word = addr & ~3u;
    sink.consume(kBufferTouchNj);
    if (readFirst.count(word)) {
        ++archStats.violations;
        if (tracer)
            tracer->record(EventKind::Violation, word);
        panic_if(!host, "ClankOriginalArch needs a BackupHost");
        host->requestBackup(BackupReason::IdempotencyViolation);
        sink.consume(kBufferTouchNj);
        readFirst.insert(word);
    } else if (!writeFirst.count(word)) {
        if (readFirst.size() >= cfg.rfBufferEntries) {
            panic_if(!host, "ClankOriginalArch needs a BackupHost");
            host->requestBackup(BackupReason::BufferFull);
            sink.consume(kBufferTouchNj);
        }
        readFirst.insert(word);
    }
    if (tracer)
        tracer->record(EventKind::MemAccess, addr, (1ull << 8) | 1);
    Word w = nvm.inspectWord(word); // RMW read, charged as a read
    sink.addCycles(cfg.tech.flashReadCycles);
    sink.consume(cfg.tech.flashReadWordNj);
    unsigned shift = 8 * (addr & 3u);
    w = (w & ~(0xffu << shift)) | (static_cast<Word>(value) << shift);
    nvm.writeWord(word, w);
}

void
ClankOriginalArch::performBackup(const CpuSnapshot &snap,
                                 BackupReason reason)
{
    // No dirty data anywhere: stores already persisted. Only the
    // register file is saved, and the buffers reset.
    persistSnapshot(snap);
    readFirst.clear();
    writeFirst.clear();
    commitBackup(reason);
}

NanoJoules
ClankOriginalArch::backupCostNowNj() const
{
    return snapshotCostNj() * 1.05 + 10.0;
}

void
ClankOriginalArch::onPowerFail()
{
    IntermittentArch::onPowerFail();
    readFirst.clear();
    writeFirst.clear();
}

Word
ClankOriginalArch::inspectWord(Addr addr) const
{
    return nvm.inspectWord(addr & ~3u);
}

std::vector<Word>
ClankOriginalArch::fetchBlock(Addr)
{
    panic("ClankOriginalArch has no cache fetch path");
}

void
ClankOriginalArch::evictLine(CacheLine &)
{
    panic("ClankOriginalArch has no cache eviction path");
}

} // namespace nvmr

#include "arch/hoop.hh"

#include "common/log.hh"

namespace nvmr
{

namespace
{

/** SRAM energy for touching one OOP-buffer entry. */
constexpr NanoJoules kOopBufferTouchNj = 0.2;

} // namespace

HoopArch::HoopArch(const SystemConfig &config, Nvm &nvm_,
                   EnergySink &snk)
    : IntermittentArch(config, nvm_, snk)
{
}

Word
HoopArch::backingWord(Addr word_addr) const
{
    // Newest update wins: search the buffer backwards.
    for (auto it = oopBuffer.rbegin(); it != oopBuffer.rend(); ++it)
        if (it->first == word_addr)
            return it->second;
    auto log = committedLog.find(word_addr);
    if (log != committedLog.end())
        return log->second;
    return nvm.inspectWord(word_addr);
}

std::vector<Word>
HoopArch::fetchBlock(Addr block_addr)
{
    // Reconstruct the block: OOP buffer first (newest), then the
    // committed redo log (via the free mapping table), then home.
    // Either way each word costs one NVM-scale read; buffer hits are
    // an SRAM touch.
    std::vector<Word> data(cfg.cache.wordsPerBlock());
    for (uint32_t w = 0; w < data.size(); ++w) {
        Addr addr = block_addr + w * kWordBytes;
        bool in_buffer = false;
        for (const auto &[a, v] : oopBuffer)
            in_buffer = in_buffer || a == addr;
        if (in_buffer) {
            sink.consume(kOopBufferTouchNj);
            data[w] = backingWord(addr);
        } else if (faults && faults->enabled() &&
                   committedLog.find(addr) == committedLog.end()) {
            // A genuine home read: go through the Nvm so the word
            // passes the bit-error / ECC pipeline (log hits below
            // serve SRAM-held data and only charge at NVM scale).
            data[w] = nvm.readWord(addr);
        } else {
            sink.addCycles(cfg.tech.flashReadCycles);
            sink.consume(cfg.tech.flashReadWordNj);
            data[w] = backingWord(addr);
        }
    }
    return data;
}

void
HoopArch::evictLine(CacheLine &line)
{
    // The cache has no per-word dirty bits (neither do Clank's or
    // NvMR's), so the whole block's words are appended to the OOP
    // buffer; the paper's "high store locality packs better"
    // observation follows from this block-granular ingestion.
    if (!line.dirty)
        return;
    for (uint32_t w = 0; w < cfg.cache.wordsPerBlock(); ++w) {
        Addr addr = line.blockAddr + w * kWordBytes;
        if (oopBuffer.size() >= cfg.oopBufferEntries) {
            // Buffer full: HOOP backs up, which commits this line's
            // words too and leaves nothing to insert.
            panic_if(!host, "HoopArch needs an attached BackupHost");
            host->requestBackup(BackupReason::OopBufferFull);
            panic_if(line.dirty, "backup left the line dirty");
            return;
        }
        sink.consume(kOopBufferTouchNj);
        oopBuffer.emplace_back(addr, line.data[w]);
        if (line.blockAddr != bufLastBlock) {
            ++bufGroups;
            bufLastBlock = line.blockAddr;
        }
        if (tracer)
            tracer->record(EventKind::OopAppend, addr);
    }
    line.markClean();
    line.dirtyWordMask = 0;
}

uint64_t
HoopArch::packedFlushWords() const
{
    // Pack word updates into slices: one header word per run of
    // same-block updates plus one word per update. No temporal
    // deduplication -- the buffer is a log. The buffer's run count is
    // maintained incrementally (bufGroups/bufLastBlock), so only the
    // dirty cache lines -- which flush after the buffer and continue
    // its run sequence -- are walked here.
    uint64_t words = oopBuffer.size();
    uint64_t groups = bufGroups;
    if (cache.dirtyCount() != 0) {
        Addr prev_block = bufLastBlock;
        cache.forEachLine([&](const CacheLine &line) {
            if (!line.valid || !line.dirty)
                return;
            if (line.blockAddr != prev_block) {
                ++groups;
                prev_block = line.blockAddr;
            }
            words += cfg.cache.wordsPerBlock();
        });
    }
    return words + groups;
}

void
HoopArch::garbageCollect()
{
    // Scan the log (one read per region entry) and apply the latest
    // committed value of every word to its home address.
    sink.addCycles(regionFill * cfg.tech.flashReadCycles);
    sink.consume(static_cast<double>(regionFill) *
                 cfg.tech.flashReadWordNj);
    if (tracer)
        tracer->record(EventKind::OopGc, committedLog.size(),
                       regionFill);
    for (const auto &[addr, val] : committedLog)
        nvm.writeWord(addr, val);
    committedLog.clear();
    regionFill = 0;
    ++gcs;
}

void
HoopArch::flushBufferToRegion()
{
    // Gather the update log: buffered entries in order, then the
    // dirty words still sitting in the cache (they are newest).
    std::vector<std::pair<Addr, Word>> updates = oopBuffer;
    cache.forEachLine([&](CacheLine &line) {
        if (!line.valid || !line.dirty)
            return;
        for (uint32_t w = 0; w < cfg.cache.wordsPerBlock(); ++w)
            updates.emplace_back(line.blockAddr + w * kWordBytes,
                                 line.data[w]);
        line.markClean();
        line.dirtyWordMask = 0;
    });

    uint32_t incoming = static_cast<uint32_t>(updates.size());
    if (regionFill + incoming > cfg.oopRegionEntries)
        garbageCollect();
    if (incoming > cfg.oopRegionEntries) {
        // The update set cannot fit the region at all (tiny-platform
        // configuration): apply it straight to the home addresses.
        // The in-place writes destroy recovery state, so under an
        // open backup transaction they are journaled and deferred
        // past the commit record; any stale committed-log entries
        // for these words must go (shadow-rolled on a torn backup).
        for (const auto &[addr, val] : updates) {
            journaledWriteWord(addr, val);
            committedLog.erase(addr);
        }
        oopBuffer.clear();
        bufGroups = 0;
        bufLastBlock = kNoAddr;
        return;
    }

    // Append packed slices: one header write per run of same-block
    // updates plus one write per word update.
    Addr prev_block = kNoAddr;
    for (const auto &[addr, val] : updates) {
        Addr block = addr & ~(cfg.cache.blockBytes - 1);
        if (block != prev_block) {
            sink.addCycles(cfg.tech.flashWriteCycles);
            sink.consume(cfg.tech.flashWriteWordNj);
            prev_block = block;
        }
        sink.addCycles(cfg.tech.flashWriteCycles);
        sink.consume(cfg.tech.flashWriteWordNj);
        committedLog[addr] = val;
    }
    regionFill += incoming;
    oopBuffer.clear();
    bufGroups = 0;
    bufLastBlock = kNoAddr;
}

void
HoopArch::performBackup(const CpuSnapshot &snap, BackupReason reason)
{
    flushBufferToRegion();
    persistSnapshot(snap);
    commitBackup(reason);
}

void
HoopArch::shadowCapture()
{
    shadowLog = committedLog;
    shadowFill = regionFill;
    shadowValid = true;
}

void
HoopArch::shadowRollback()
{
    if (!shadowValid)
        return;
    committedLog = std::move(shadowLog);
    regionFill = shadowFill;
    shadowLog.clear();
    shadowValid = false;
}

void
HoopArch::onBackupCommitted()
{
    shadowLog.clear();
    shadowValid = false;
}

NanoJoules
HoopArch::backupCostNowNj() const
{
    NanoJoules cost = snapshotCostNj();
    uint64_t flush_words = packedFlushWords();
    cost += nvmWriteCostNj(flush_words);
    // A flush may first have to garbage-collect the region.
    uint64_t incoming = flush_words; // upper bound on update count
    if (regionFill + incoming > cfg.oopRegionEntries) {
        cost += nvmReadCostNj(regionFill);
        cost += nvmWriteCostNj(committedLog.size());
    }
    return cost * 1.05 + 10.0;
}

void
HoopArch::onPowerFail()
{
    IntermittentArch::onPowerFail();
    oopBuffer.clear();
    bufGroups = 0;
    bufLastBlock = kNoAddr;
}

CpuSnapshot
HoopArch::performRestore()
{
    CpuSnapshot snap = IntermittentArch::performRestore();
    // HOOP garbage-collects the redo log during restore (Section 2.1).
    garbageCollect();
    return snap;
}

NanoJoules
HoopArch::restoreCostNowNj() const
{
    return IntermittentArch::restoreCostNowNj() +
           nvmReadCostNj(regionFill) +
           nvmWriteCostNj(committedLog.size()) + 10.0;
}

Word
HoopArch::inspectWord(Addr addr) const
{
    Addr block = addr & ~(cfg.cache.blockBytes - 1);
    Word result = 0;
    bool found = false;
    cache.forEachLine([&](const CacheLine &line) {
        if (line.valid && line.blockAddr == block) {
            result = line.data[(addr - block) / kWordBytes];
            found = true;
        }
    });
    if (found)
        return result;
    return backingWord(addr);
}

} // namespace nvmr

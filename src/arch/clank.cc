#include "arch/clank.hh"

#include "common/log.hh"

namespace nvmr
{

ClankArch::ClankArch(const SystemConfig &config, Nvm &nvm_,
                     EnergySink &snk)
    : DominanceArch(config, nvm_, snk)
{
}

std::vector<Word>
ClankArch::fetchBlock(Addr block_addr)
{
    std::vector<Word> data(cfg.cache.wordsPerBlock());
    for (uint32_t w = 0; w < data.size(); ++w)
        data[w] = nvm.readWord(block_addr + w * kWordBytes);
    return data;
}

void
ClankArch::violatingWriteback(CacheLine &line)
{
    // An idempotency violation: the block's home address still holds
    // the value a re-execution would need to load. Back up first;
    // the backup persists this block (among everything else) and
    // starts a fresh code section, after which nothing remains to
    // write back.
    panic_if(!host, "ClankArch needs an attached BackupHost");
    host->requestBackup(BackupReason::IdempotencyViolation);
    panic_if(line.dirty, "backup left the violating line dirty");
}

void
ClankArch::performBackup(const CpuSnapshot &snap, BackupReason reason)
{
    // Persisting dirty blocks overwrites their home addresses -- the
    // recovery image -- so the whole data set must be journalled
    // first to keep the backup atomic (Section 3.4's atomicity
    // constraint; footnote 3). That doubles the write traffic.
    cache.forEachLine([&](CacheLine &line) {
        if (line.valid && line.dirty) {
            journaledWriteBlock(line.blockAddr, line);
            line.markClean();
            line.dirtyWordMask = 0;
        }
    });
    persistSnapshot(snap);
    resetDominanceState();
    commitBackup(reason);
}

NanoJoules
ClankArch::backupCostNowNj() const
{
    uint64_t words = static_cast<uint64_t>(cache.dirtyCount()) *
                     cfg.cache.wordsPerBlock();
    double factor = cfg.modelBackupAtomicity ? 2.0 : 1.0;
    return (factor * nvmWriteCostNj(words) + snapshotCostNj()) *
               1.05 +
           10.0;
}

} // namespace nvmr

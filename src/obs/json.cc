#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace nvmr
{

// ----------------------------------------------------------------------
// JsonWriter
// ----------------------------------------------------------------------

void
JsonWriter::preValue()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!stack.empty()) {
        if (stack.back().items > 0)
            out += ',';
        ++stack.back().items;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    out += '{';
    stack.push_back(Scope{true});
}

void
JsonWriter::endObject()
{
    panic_if(stack.empty() || !stack.back().object,
             "endObject without a matching beginObject");
    stack.pop_back();
    out += '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    out += '[';
    stack.push_back(Scope{false});
}

void
JsonWriter::endArray()
{
    panic_if(stack.empty() || stack.back().object,
             "endArray without a matching beginArray");
    stack.pop_back();
    out += ']';
}

void
JsonWriter::key(const std::string &name)
{
    panic_if(stack.empty() || !stack.back().object,
             "key() outside an object");
    panic_if(afterKey, "key() while a key is already pending");
    if (stack.back().items > 0)
        out += ',';
    ++stack.back().items;
    out += '"';
    out += escape(name);
    out += "\":";
    afterKey = true;
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    out += number(v);
}

void
JsonWriter::value(uint64_t v)
{
    preValue();
    out += std::to_string(v);
}

void
JsonWriter::value(int64_t v)
{
    preValue();
    out += std::to_string(v);
}

void
JsonWriter::value(bool v)
{
    preValue();
    out += v ? "true" : "false";
}

void
JsonWriter::valueNull()
{
    preValue();
    out += "null";
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN literals
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        return std::to_string(static_cast<int64_t>(v));
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// ----------------------------------------------------------------------
// Validating parser
// ----------------------------------------------------------------------

namespace
{

/** Strict recursive-descent JSON validator. */
class Validator
{
  public:
    Validator(const std::string &text, std::string *error)
        : s(text), err(error)
    {}

    bool
    run()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    const std::string &s;
    std::string *err;
    size_t pos = 0;
    unsigned depth = 0;
    static constexpr unsigned kMaxDepth = 512;

    bool
    fail(const std::string &why)
    {
        if (err)
            *err = why + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    parseValue()
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return parseNumber();
        }
    }

    bool
    parseObject()
    {
        ++depth;
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            --depth;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            if (!parseString())
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                --depth;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray()
    {
        ++depth;
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            --depth;
            return true;
        }
        for (;;) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                --depth;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString()
    {
        ++pos; // '"'
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("unterminated escape");
                char e = s[pos];
                if (e == 'u') {
                    for (unsigned i = 1; i <= 4; ++i) {
                        if (pos + i >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[pos + i])))
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
                ++pos;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return fail("bad number");
        if (s[pos] == '0') {
            ++pos;
        } else {
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad fraction");
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad exponent");
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        return pos > start;
    }
};

} // namespace

bool
jsonValidate(const std::string &text, std::string *error)
{
    return Validator(text, error).run();
}

} // namespace nvmr

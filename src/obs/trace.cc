#include "obs/trace.hh"

#include <istream>
#include <ostream>

#include "arch/arch.hh"
#include "common/log.hh"
#include "obs/json.hh"

namespace nvmr
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::PowerOn: return "power_on";
      case EventKind::PowerFail: return "power_failure";
      case EventKind::Hibernate: return "hibernate";
      case EventKind::Wake: return "wake";
      case EventKind::BackupBegin: return "backup_begin";
      case EventKind::BackupCommit: return "backup_commit";
      case EventKind::BackupRollback: return "backup_rollback";
      case EventKind::Restore: return "restore";
      case EventKind::CacheHit: return "cache_hit";
      case EventKind::CacheMiss: return "cache_miss";
      case EventKind::CacheEvict: return "cache_evict";
      case EventKind::Violation: return "violation";
      case EventKind::GbfInsert: return "gbf_insert";
      case EventKind::DominanceReset: return "dominance_reset";
      case EventKind::Rename: return "rename";
      case EventKind::Reclaim: return "reclaim";
      case EventKind::MtcHit: return "mtcache_hit";
      case EventKind::MtcMiss: return "mtcache_miss";
      case EventKind::MtcEvict: return "mtcache_evict";
      case EventKind::OopAppend: return "oop_append";
      case EventKind::OopGc: return "oop_gc";
      case EventKind::TaskBoundary: return "task_boundary";
      case EventKind::CpuHalt: return "cpu_halt";
      case EventKind::CpuReset: return "cpu_reset";
      case EventKind::FaultCrash: return "fault_crash";
      case EventKind::EccCorrected: return "ecc_corrected";
      case EventKind::EccUncorrectable: return "ecc_uncorrectable";
      case EventKind::StuckBit: return "stuck_bit";
      case EventKind::MemAccess: return "mem_access";
      case EventKind::NvmWrite: return "nvm_write";
      case EventKind::GbfQuery: return "gbf_query";
      default: return "<bad>";
    }
}

namespace
{

/** Per-layer track an event kind renders on in the Chrome export. */
struct Track
{
    int tid;
    const char *name;
};

Track
trackOf(EventKind kind)
{
    switch (kind) {
      case EventKind::PowerOn:
      case EventKind::PowerFail:
      case EventKind::Hibernate:
      case EventKind::Wake:
        return {0, "power"};
      case EventKind::BackupBegin:
      case EventKind::BackupCommit:
      case EventKind::BackupRollback:
      case EventKind::Restore:
        return {1, "backup"};
      case EventKind::CacheHit:
      case EventKind::CacheMiss:
      case EventKind::CacheEvict:
      case EventKind::Violation:
      case EventKind::GbfInsert:
      case EventKind::DominanceReset:
      case EventKind::GbfQuery:
        return {2, "cache"};
      case EventKind::Rename:
      case EventKind::Reclaim:
      case EventKind::MtcHit:
      case EventKind::MtcMiss:
      case EventKind::MtcEvict:
        return {3, "rename"};
      case EventKind::OopAppend:
      case EventKind::OopGc:
      case EventKind::TaskBoundary:
        return {4, "arch"};
      case EventKind::CpuHalt:
      case EventKind::CpuReset:
        return {5, "cpu"};
      case EventKind::MemAccess:
        return {5, "cpu"};
      case EventKind::NvmWrite:
        return {7, "nvm"};
      default:
        return {6, "fault"};
    }
}

void
putU64(std::ostream &os, uint64_t v)
{
    char buf[8];
    for (unsigned i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf, 8);
}

bool
getU64(std::istream &is, uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, 8))
        return false;
    v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

constexpr char kBinaryMagic[4] = {'N', 'V', 'T', 'R'};
constexpr uint64_t kBinaryVersion = 1;

} // namespace

// ----------------------------------------------------------------------
// TraceBuffer
// ----------------------------------------------------------------------

TraceBuffer::TraceBuffer(size_t capacity) : cap(capacity)
{
    panic_if(cap == 0, "TraceBuffer capacity must be positive");
    ring.reserve(cap < 4096 ? cap : 4096);
}

void
TraceBuffer::consume(const TraceEvent &ev)
{
    ++recorded;
    if (ring.size() < cap) {
        ring.push_back(ev);
        return;
    }
    // Full: overwrite the oldest retained event.
    ring[head] = ev;
    head = (head + 1) % cap;
    wrapped = true;
}

std::vector<TraceEvent>
TraceBuffer::events() const
{
    if (!wrapped)
        return ring;
    std::vector<TraceEvent> out;
    out.reserve(ring.size());
    for (size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % cap]);
    return out;
}

void
TraceBuffer::clear()
{
    ring.clear();
    head = 0;
    wrapped = false;
    recorded = 0;
}

std::string
TraceBuffer::toChromeJson() const
{
    JsonWriter w;
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.kv("generator", "nvmr");
    w.kv("clock", "cycles-as-microseconds");
    w.kv("dropped_events", dropped());
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    // Name the per-layer tracks once.
    bool named[8] = {};
    for (const TraceEvent &ev : events()) {
        Track t = trackOf(ev.kind);
        if (named[t.tid])
            continue;
        named[t.tid] = true;
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 0);
        w.kv("tid", t.tid);
        w.key("args");
        w.beginObject();
        w.kv("name", t.name);
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &ev : events()) {
        Track t = trackOf(ev.kind);
        w.beginObject();
        w.kv("name", eventKindName(ev.kind));
        w.kv("cat", t.name);
        w.kv("ph", "i");
        w.kv("s", "t");
        w.kv("ts", ev.cycle); // 1 cycle rendered as 1 us
        w.kv("pid", 0);
        w.kv("tid", t.tid);
        w.key("args");
        w.beginObject();
        w.kv("active_cycles", ev.active);
        w.kv("a0", ev.a0);
        w.kv("a1", ev.a1);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
TraceBuffer::writeBinary(std::ostream &os) const
{
    os.write(kBinaryMagic, 4);
    putU64(os, kBinaryVersion);
    std::vector<TraceEvent> evs = events();
    putU64(os, evs.size());
    putU64(os, dropped());
    for (const TraceEvent &ev : evs) {
        putU64(os, ev.cycle);
        putU64(os, ev.active);
        putU64(os, static_cast<uint64_t>(ev.kind));
        putU64(os, ev.a0);
        putU64(os, ev.a1);
    }
}

std::vector<TraceEvent>
TraceBuffer::readBinary(std::istream &is)
{
    char magic[4];
    fatal_if(!is.read(magic, 4) || magic[0] != 'N' || magic[1] != 'V' ||
                 magic[2] != 'T' || magic[3] != 'R',
             "not an NVTR trace file");
    uint64_t version = 0, count = 0, dropped = 0;
    fatal_if(!getU64(is, version) || version != kBinaryVersion,
             "unsupported trace version");
    fatal_if(!getU64(is, count) || !getU64(is, dropped),
             "truncated trace header");
    std::vector<TraceEvent> out;
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t cycle, active, kind, a0, a1;
        fatal_if(!getU64(is, cycle) || !getU64(is, active) ||
                     !getU64(is, kind) || !getU64(is, a0) ||
                     !getU64(is, a1),
                 "truncated trace record");
        fatal_if(kind >= kNumEventKinds, "bad event kind in trace");
        out.push_back(TraceEvent{cycle, active,
                                 static_cast<EventKind>(kind), a0, a1});
    }
    return out;
}

// ----------------------------------------------------------------------
// TextSink
// ----------------------------------------------------------------------

namespace
{

/** The narrative kinds the historical --events view printed. */
bool
isNarrative(EventKind kind)
{
    switch (kind) {
      case EventKind::BackupCommit:
      case EventKind::PowerFail:
      case EventKind::Restore:
      case EventKind::Hibernate:
      case EventKind::Wake:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
TextSink::formatEvent(const TraceEvent &ev, bool verbose)
{
    char buf[160];
    unsigned long long at =
        static_cast<unsigned long long>(ev.active);
    // The five narrative lines keep the historical --events format.
    switch (ev.kind) {
      case EventKind::BackupCommit:
        std::snprintf(buf, sizeof(buf), "[%12llu] backup (%s)", at,
                      ev.a0 < kNumBackupReasons
                          ? backupReasonName(
                                static_cast<BackupReason>(ev.a0))
                          : "?");
        return buf;
      case EventKind::PowerFail:
        std::snprintf(buf, sizeof(buf), "[%12llu] power failure", at);
        return buf;
      case EventKind::Restore:
        std::snprintf(buf, sizeof(buf), "[%12llu] restore", at);
        return buf;
      case EventKind::Hibernate:
        std::snprintf(buf, sizeof(buf), "[%12llu] hibernate", at);
        return buf;
      case EventKind::Wake:
        std::snprintf(buf, sizeof(buf), "[%12llu] wake", at);
        return buf;
      default:
        break;
    }
    if (!verbose)
        return "";
    std::snprintf(buf, sizeof(buf),
                  "[%12llu] %s a0=%llu a1=%llu", at,
                  eventKindName(ev.kind),
                  static_cast<unsigned long long>(ev.a0),
                  static_cast<unsigned long long>(ev.a1));
    return buf;
}

void
TextSink::consume(const TraceEvent &ev)
{
    if (!verbose && !isNarrative(ev.kind))
        return;
    std::string line = formatEvent(ev, verbose);
    if (line.empty())
        return;
    std::fputs(line.c_str(), out);
    std::fputc('\n', out);
}

} // namespace nvmr

/**
 * @file
 * TraceSink: the collection side of the observability layer. A sink
 * is attached to a Simulator (which forwards it down to the
 * architecture, the fault injector and the CPU); components call
 * record() at interesting moments. When no sink is attached the hooks
 * are a null-pointer check -- tracing off changes no simulation
 * result, by construction: sinks never charge energy or cycles.
 *
 * Shipped sinks:
 *   - TraceBuffer: bounded ring buffer with exporters to
 *     Chrome/Perfetto trace JSON and a compact binary format.
 *   - TextSink: live line-per-event printing (the `--events` view).
 *   - TeeSink: fan-out to several sinks.
 */

#ifndef NVMR_OBS_TRACE_HH
#define NVMR_OBS_TRACE_HH

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace nvmr
{

/** Abstract event consumer with the clock-stamping record() front. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Bind the wall-cycle and active-cycle counters the sink stamps
     * events with (the Simulator binds its own counters on attach).
     * Unbound clocks stamp 0.
     */
    void
    bindClocks(const uint64_t *total_cycles,
               const uint64_t *active_cycles)
    {
        wallClock = total_cycles;
        activeClock = active_cycles;
    }

    /** Record an event stamped with the bound clocks. */
    void
    record(EventKind kind, uint64_t a0 = 0, uint64_t a1 = 0)
    {
        consume(TraceEvent{wallClock ? *wallClock : 0,
                           activeClock ? *activeClock : 0, kind, a0,
                           a1});
    }

    /** Record with explicit timestamps (tests, replay). */
    void
    recordAt(uint64_t cycle, uint64_t active, EventKind kind,
             uint64_t a0 = 0, uint64_t a1 = 0)
    {
        consume(TraceEvent{cycle, active, kind, a0, a1});
    }

    /** Sink-specific event handling. */
    virtual void consume(const TraceEvent &ev) = 0;

  private:
    const uint64_t *wallClock = nullptr;
    const uint64_t *activeClock = nullptr;
};

/**
 * Bounded ring buffer of events. When full, the oldest events are
 * overwritten and counted as dropped; exporters always see the
 * retained suffix in recording order.
 */
class TraceBuffer : public TraceSink
{
  public:
    /** @param capacity Maximum retained events (must be > 0). */
    explicit TraceBuffer(size_t capacity = 1u << 20);

    void consume(const TraceEvent &ev) override;

    size_t capacity() const { return cap; }
    size_t size() const { return ring.size(); }
    uint64_t totalRecorded() const { return recorded; }
    uint64_t dropped() const { return recorded - ring.size(); }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    void clear();

    // ------------------------------------------------------------------
    // Exporters
    // ------------------------------------------------------------------

    /**
     * Chrome trace-event JSON (the legacy format Perfetto and
     * chrome://tracing load). Wall cycles map to microseconds;
     * events land on named per-layer tracks.
     */
    std::string toChromeJson() const;

    /** Compact binary export (magic "NVTR", version 1, little-endian
     *  fixed-width records; see docs/observability.md). */
    void writeBinary(std::ostream &os) const;

    /** Parse a binary export back (tests / offline tooling). */
    static std::vector<TraceEvent> readBinary(std::istream &is);

  private:
    size_t cap;
    size_t head = 0; ///< index of the oldest event when wrapped
    bool wrapped = false;
    uint64_t recorded = 0;
    std::vector<TraceEvent> ring;
};

/**
 * Live text printing of the narrative events (backup / power failure
 * / restore / hibernate / wake), matching the historical `--events`
 * output byte for byte; optionally verbose (every event kind).
 */
class TextSink : public TraceSink
{
  public:
    explicit TextSink(std::FILE *out, bool verbose = false)
        : out(out), verbose(verbose)
    {}

    void consume(const TraceEvent &ev) override;

    /** Render one event as the text line (without newline). */
    static std::string formatEvent(const TraceEvent &ev, bool verbose);

  private:
    std::FILE *out;
    bool verbose;
};

/** Fan-out to several sinks (e.g. --events plus --trace-json). */
class TeeSink : public TraceSink
{
  public:
    void addSink(TraceSink *sink) { sinks.push_back(sink); }

    void
    consume(const TraceEvent &ev) override
    {
        for (TraceSink *s : sinks)
            s->consume(ev);
    }

  private:
    std::vector<TraceSink *> sinks;
};

} // namespace nvmr

#endif // NVMR_OBS_TRACE_HH

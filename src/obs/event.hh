/**
 * @file
 * The typed event taxonomy of the observability layer. Every layer of
 * the simulator -- power, backup orchestration, caches, the renaming
 * structures, fault injection, the CPU -- records TraceEvents into an
 * attached TraceSink; exporters turn the stream into human text,
 * Chrome/Perfetto trace JSON or a compact binary format
 * (docs/observability.md documents the taxonomy and the per-kind
 * argument meanings).
 */

#ifndef NVMR_OBS_EVENT_HH
#define NVMR_OBS_EVENT_HH

#include <cstdint>

namespace nvmr
{

/**
 * Event kinds, grouped by the layer that records them. The a0/a1
 * arguments of TraceEvent are kind-specific (addresses, reasons,
 * counts); eventKindName() gives the stable wire name.
 */
enum class EventKind : uint8_t
{
    // Power layer (Simulator / power policy).
    PowerOn,    ///< execution (re)started; a0 = restores so far
    PowerFail,  ///< supply browned out or a crash was injected
    Hibernate,  ///< JIT-style policy put the core to sleep
    Wake,       ///< supply recovered from hibernation

    // Backup / restore orchestration.
    BackupBegin,    ///< a0 = BackupReason
    BackupCommit,   ///< a0 = BackupReason, a1 = committed sequence
    BackupRollback, ///< torn backup rolled back; a1 = dropped seq
    Restore,        ///< a1 = restored backup sequence

    // Data cache and dominance tracking (mem/arch layer).
    CacheHit,       ///< a0 = block address
    CacheMiss,      ///< a0 = block address
    CacheEvict,     ///< a0 = block address, a1 = 1 if read-dominated
    Violation,      ///< idempotency violation; a0 = block address
    GbfInsert,      ///< a0 = block address
    DominanceReset, ///< GBF/LBF cleared (new code section)

    // NvMR renaming structures (core layer).
    Rename,   ///< a0 = home (tag) address, a1 = fresh location
    Reclaim,  ///< a0 = tag, a1 = mapping returned to the free list
    MtcHit,   ///< map-table-cache hit; a0 = tag
    MtcMiss,  ///< map-table-cache miss; a0 = tag
    MtcEvict, ///< entry evicted; a0 = tag, a1 = 1 if dirty

    // Other architectures.
    OopAppend,    ///< HOOP buffered a word update; a0 = address
    OopGc,        ///< HOOP garbage-collected its OOP region
    TaskBoundary, ///< task-based scheme hit a `task` instruction

    // CPU.
    CpuHalt,  ///< program executed halt; a0 = instret
    CpuReset, ///< core rebooted from its reset state

    // Fault injection (fault layer).
    FaultCrash,       ///< injected power cut; a0 = persist#, a1 = cycle
    EccCorrected,     ///< a0 = word address
    EccUncorrectable, ///< a0 = word address
    StuckBit,         ///< wear-out stuck-at fault born; a0 = address

    // Checker feed (src/check lockstep invariants). Appended after the
    // PR 2 kinds so existing binary traces keep their kind numbering.
    MemAccess, ///< CPU access; a0 = addr, a1 = (is_store << 8) | bytes
    NvmWrite,  ///< NVM word persisted; a0 = word addr, a1 = changed-byte mask
    GbfQuery,  ///< GBF probed on fill; a0 = block addr, a1 = 1 if hit

    NUM
};

constexpr unsigned kNumEventKinds = static_cast<unsigned>(EventKind::NUM);

/** Stable wire name of an event kind (manifest / exporters). */
const char *eventKindName(EventKind kind);

/**
 * One recorded event. `cycle` is wall time (totalCycles, off periods
 * included); `active` is powered-on time (activeCycles) -- the pair
 * lets exporters show either view. a0/a1 are kind-specific.
 */
struct TraceEvent
{
    uint64_t cycle = 0;
    uint64_t active = 0;
    EventKind kind = EventKind::PowerOn;
    uint64_t a0 = 0;
    uint64_t a1 = 0;
};

} // namespace nvmr

#endif // NVMR_OBS_EVENT_HH

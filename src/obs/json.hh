/**
 * @file
 * Minimal JSON utilities for the observability layer: a streaming
 * writer with automatic comma/nesting management (used by the run
 * manifest, the Chrome trace exporter and the bench records) and a
 * strict validating parser (used by tests and the trace-smoke target
 * to prove emitted documents are well-formed).
 */

#ifndef NVMR_OBS_JSON_HH
#define NVMR_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvmr
{

/** Append-only JSON document builder. */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Write an object key; the next value belongs to it. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(unsigned v) { value(static_cast<uint64_t>(v)); }
    void value(bool v);
    void valueNull();

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    /** The document so far (complete once all scopes are closed). */
    const std::string &str() const { return out; }

    /** True once every opened scope has been closed. */
    bool complete() const { return !stack.empty() ? false : !out.empty(); }

    /** JSON-escape a string (quotes not included). */
    static std::string escape(const std::string &s);

    /** Render a double the way value(double) does. */
    static std::string number(double v);

  private:
    struct Scope
    {
        bool object;
        unsigned items = 0;
    };

    std::string out;
    std::vector<Scope> stack;
    bool afterKey = false;

    void preValue();
};

/**
 * Validate that `text` is one well-formed JSON document (with nothing
 * but whitespace after it). On failure returns false and, when `error`
 * is non-null, stores a human-readable reason with an offset.
 */
bool jsonValidate(const std::string &text, std::string *error = nullptr);

} // namespace nvmr

#endif // NVMR_OBS_JSON_HH

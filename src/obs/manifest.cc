#include "obs/manifest.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/log.hh"
#include "obs/json.hh"
#include "power/energy.hh"

namespace nvmr
{

void
ManifestWriter::setConfig(const SystemConfig &cfg)
{
    JsonWriter w;
    w.beginObject();
    w.key("cache");
    w.beginObject();
    w.kv("size_bytes", cfg.cache.sizeBytes);
    w.kv("ways", cfg.cache.ways);
    w.kv("block_bytes", cfg.cache.blockBytes);
    w.endObject();
    w.kv("gbf_bits", cfg.gbfBits);
    w.kv("gbf_hashes", cfg.gbfHashes);
    w.kv("mtcache_entries", cfg.mtCacheEntries);
    w.kv("mtcache_ways", cfg.mtCacheWays);
    w.kv("maptable_entries", cfg.mapTableEntries);
    w.kv("freelist_entries", cfg.effectiveFreeListEntries());
    w.kv("reclaim_enabled", cfg.reclaimEnabled);
    w.kv("reclaim_batch", cfg.effectiveReclaimBatch());
    w.kv("model_backup_atomicity", cfg.modelBackupAtomicity);
    w.kv("strict_atomic", cfg.strictAtomic);
    w.kv("nvm_bytes", cfg.nvmBytes);
    w.kv("capacitor_farads", cfg.capacitorFarads);
    w.kv("v_max", cfg.vMax);
    w.kv("v_on", cfg.vOn);
    w.kv("v_off", cfg.vOff);
    w.kv("oop_buffer_entries", cfg.oopBufferEntries);
    w.kv("oop_region_entries", cfg.oopRegionEntries);
    w.kv("rf_buffer_entries", cfg.rfBufferEntries);
    w.kv("wf_buffer_entries", cfg.wfBufferEntries);
    w.endObject();
    configJson = w.str();
}

std::string
ManifestWriter::runJson(const RunResult &r)
{
    JsonWriter w;
    w.beginObject();
    w.kv("program", r.program);
    w.kv("arch", r.arch);
    w.kv("policy", r.policy);
    w.kv("trace", r.trace);
    w.kv("completed", r.completed);
    w.kv("validated", r.validated);
    w.kv("validation_checked", r.validationChecked);
    w.kv("active_cycles", r.activeCycles);
    w.kv("total_cycles", r.totalCycles);
    w.kv("instructions", r.instructions);
    w.kv("total_energy_nj", r.totalEnergyNj);
    w.key("energy_nj");
    w.beginObject();
    for (size_t i = 0; i < kNumECats; ++i)
        w.kv(ecatName(static_cast<ECat>(i)), r.energy[i]);
    w.endObject();
    w.kv("backups", r.backups);
    w.key("backups_by_reason");
    w.beginObject();
    for (size_t i = 0; i < kNumBackupReasons; ++i) {
        if (r.backupsByReason[i] == 0)
            continue;
        w.kv(backupReasonName(static_cast<BackupReason>(i)),
             r.backupsByReason[i]);
    }
    w.endObject();
    w.kv("violations", r.violations);
    w.kv("renames", r.renames);
    w.kv("reclaims", r.reclaims);
    w.kv("restores", r.restores);
    w.kv("power_failures", r.powerFailures);
    w.kv("nvm_reads", r.nvmReads);
    w.kv("nvm_writes", r.nvmWrites);
    w.kv("max_wear", r.maxWear);
    w.kv("cache_hits", r.cacheHits);
    w.kv("cache_misses", r.cacheMisses);
    w.kv("torn_backups", r.tornBackups);
    w.kv("injected_crashes", r.injectedCrashes);
    w.kv("ecc_corrected", r.eccCorrected);
    w.kv("ecc_uncorrectable", r.eccUncorrectable);
    w.endObject();
    return w.str();
}

std::string
ManifestWriter::statJson(const StatBase &stat)
{
    JsonWriter w;
    w.beginObject();
    w.kv("name", stat.name());
    w.kv("desc", stat.desc());
    switch (stat.kind()) {
      case StatKind::Scalar: {
        const auto &s = static_cast<const Scalar &>(stat);
        w.kv("kind", "scalar");
        w.kv("value", s.value());
        break;
      }
      case StatKind::Histogram: {
        const auto &h = static_cast<const Histogram &>(stat);
        w.kv("kind", "histogram");
        w.kv("count", h.count());
        w.kv("sum", h.sum());
        w.kv("min", h.min());
        w.kv("max", h.max());
        w.kv("mean", h.mean());
        w.kv("p50", h.percentile(0.50));
        w.kv("p99", h.percentile(0.99));
        // Buckets as [low, high, count] triples; empty ones omitted.
        w.key("buckets");
        w.beginArray();
        for (unsigned b = 0; b < h.numBuckets(); ++b) {
            if (!h.bucketCount(b))
                continue;
            w.beginArray();
            w.value(Histogram::bucketLow(b));
            w.value(Histogram::bucketHigh(b));
            w.value(h.bucketCount(b));
            w.endArray();
        }
        w.endArray();
        break;
      }
      case StatKind::Distribution: {
        const auto &d = static_cast<const Distribution &>(stat);
        w.kv("kind", "distribution");
        w.kv("count", d.count());
        w.kv("sum", d.sum());
        w.kv("min", d.min());
        w.kv("max", d.max());
        w.kv("mean", d.mean());
        w.kv("stddev", d.stddev());
        break;
      }
    }
    w.endObject();
    return w.str();
}

void
ManifestWriter::addRun(const RunResult &r)
{
    runJsons.push_back(runJson(r));
}

void
ManifestWriter::addStatGroup(const std::string &label,
                             const StatGroup &group)
{
    std::string section = "{\"label\":\"" + JsonWriter::escape(label) +
                          "\",\"stats\":[";
    bool first = true;
    for (const StatBase *stat : group.all()) {
        if (!first)
            section += ',';
        first = false;
        section += statJson(*stat);
    }
    section += "]}";
    statSections.push_back(std::move(section));
}

void
ManifestWriter::addExtra(const std::string &key, double v)
{
    extras.emplace_back(key, JsonWriter::number(v));
}

void
ManifestWriter::addExtra(const std::string &key, const std::string &v)
{
    extras.emplace_back(key,
                        "\"" + JsonWriter::escape(v) + "\"");
}

void
ManifestWriter::addExtraJson(const std::string &key,
                             const std::string &raw)
{
    extras.emplace_back(key, raw);
}

std::string
ManifestWriter::json() const
{
    std::string out = "{\"schema\":\"";
    out += kSchema;
    out += "\",\"tool\":\"";
    out += JsonWriter::escape(tool);
    out += "\",\"config\":";
    out += configJson.empty() ? "null" : configJson;
    out += ",\"runs\":[";
    for (size_t i = 0; i < runJsons.size(); ++i) {
        if (i)
            out += ',';
        out += runJsons[i];
    }
    out += "],\"stats\":[";
    for (size_t i = 0; i < statSections.size(); ++i) {
        if (i)
            out += ',';
        out += statSections[i];
    }
    out += "],\"extra\":{";
    for (size_t i = 0; i < extras.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += JsonWriter::escape(extras[i].first);
        out += "\":";
        out += extras[i].second;
    }
    out += "}}";
    return out;
}

void
ManifestWriter::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open ", path, " for writing");
    std::string doc = json();
    os << doc << "\n";
    fatal_if(!os.good(), "error writing ", path);
}

bool
ManifestWriter::tryWriteFile(const std::string &path) const
{
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
        warn("cannot open ", tmp, " for writing: ",
             std::strerror(errno));
        return false;
    }
    std::string doc = json();
    doc += '\n';
    size_t off = 0;
    while (off < doc.size()) {
        ssize_t n = ::write(fd, doc.data() + off, doc.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            warn("error writing ", tmp, ": ",
                 n < 0 ? std::strerror(errno) : "short write");
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        warn("error flushing ", tmp, ": ", std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename ", tmp, " to ", path, ": ",
             std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace nvmr

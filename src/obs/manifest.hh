/**
 * @file
 * Run-manifest writer: one JSON document per tool invocation that
 * captures the system configuration, every run's results and a
 * snapshot of every registered stat (scalars, histograms,
 * distributions). Tools expose it as `--stats-json FILE`; the schema
 * ("nvmr-run-manifest-v1") is documented in docs/observability.md.
 *
 * StatGroups die with their Simulator, so the writer snapshots each
 * section into rendered JSON at the time it is added.
 */

#ifndef NVMR_OBS_MANIFEST_HH
#define NVMR_OBS_MANIFEST_HH

#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace nvmr
{

/** Accumulates config / runs / stat snapshots; renders to JSON. */
class ManifestWriter
{
  public:
    static constexpr const char *kSchema = "nvmr-run-manifest-v1";

    explicit ManifestWriter(std::string tool_name)
        : tool(std::move(tool_name))
    {}

    /** Record the system configuration (last call wins). */
    void setConfig(const SystemConfig &cfg);

    /** Append one run record. */
    void addRun(const RunResult &r);

    /** Snapshot every stat in `group` under `label` (call while the
     *  owning Simulator is still alive). */
    void addStatGroup(const std::string &label, const StatGroup &group);

    /** Tool-specific top-level extras (numbers and strings). */
    void addExtra(const std::string &key, double v);
    void addExtra(const std::string &key, const std::string &v);

    /** Tool-specific extra carrying pre-rendered JSON. */
    void addExtraJson(const std::string &key, const std::string &json);

    /** Render the complete manifest document. */
    std::string json() const;

    /** Render and write to `path`; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

    /**
     * Render and write atomically: the document lands in `path`.tmp,
     * is fsync'd, then renamed over `path`, so a crash mid-write
     * never leaves a torn manifest behind. Returns false (with a
     * warning) instead of exiting on I/O failure, so campaign tools
     * can keep their computed results and exit degraded.
     */
    bool tryWriteFile(const std::string &path) const;

    /** Render one RunResult as a JSON object (shared with bench). */
    static std::string runJson(const RunResult &r);

    /** Render one stat as a JSON object. */
    static std::string statJson(const StatBase &stat);

  private:
    std::string tool;
    std::string configJson;                 ///< rendered object or ""
    std::vector<std::string> runJsons;      ///< rendered objects
    std::vector<std::string> statSections;  ///< rendered objects
    /// key -> rendered JSON value
    std::vector<std::pair<std::string, std::string>> extras;
};

} // namespace nvmr

#endif // NVMR_OBS_MANIFEST_HH

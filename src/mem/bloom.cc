#include "mem/bloom.hh"

#include <bit>

#include "common/log.hh"

namespace nvmr
{

BloomFilter::BloomFilter(unsigned num_bits, unsigned hashes,
                         const TechParams &params, EnergySink &snk)
    : words((num_bits + 63) / 64, 0), nBits(num_bits),
      numHashes(hashes), tech(params), sink(snk)
{
    fatal_if(num_bits == 0, "bloom filter needs at least one bit");
    fatal_if(hashes == 0, "bloom filter needs at least one hash");
}

unsigned
BloomFilter::hashOf(Addr block_addr, unsigned which) const
{
    // splitmix64-style finalizer, salted per hash function.
    uint64_t x = (static_cast<uint64_t>(block_addr) << 1) | 1;
    x += 0x9e3779b97f4a7c15ull * (which + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<unsigned>(x % nBits);
}

void
BloomFilter::insert(Addr block_addr)
{
    sink.consume(tech.bloomNj);
    for (unsigned h = 0; h < numHashes; ++h) {
        unsigned bit = hashOf(block_addr, h);
        words[bit / 64] |= 1ull << (bit % 64);
    }
}

bool
BloomFilter::maybeContains(Addr block_addr)
{
    sink.consume(tech.bloomNj);
    for (unsigned h = 0; h < numHashes; ++h) {
        unsigned bit = hashOf(block_addr, h);
        if (!(words[bit / 64] & (1ull << (bit % 64))))
            return false;
    }
    return true;
}

void
BloomFilter::reset()
{
    words.assign(words.size(), 0);
}

double
BloomFilter::occupancy() const
{
    size_t set = 0;
    for (uint64_t w : words)
        set += static_cast<size_t>(std::popcount(w));
    return static_cast<double>(set) / static_cast<double>(nBits);
}

} // namespace nvmr

/**
 * @file
 * Write-back write-allocate (WBWA) set-associative data cache with the
 * per-line local bloom filter (LBF) word-state tracking that Clank and
 * NvMR use to classify words as read-dominated or write-dominated
 * within an intermittent code section.
 */

#ifndef NVMR_MEM_CACHE_HH
#define NVMR_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

/**
 * LBF per-word dominance state (2 bits each in hardware):
 * Unknown=00, Read-dominated=01, Write-dominated=10. The composite
 * state of a block ORs the LSBs, so it is 1 iff any word is
 * read-dominated.
 */
enum class WordState : uint8_t
{
    Unknown = 0,
    ReadDom = 1,
    WriteDom = 2,
};

/** Cache geometry. */
struct CacheConfig
{
    uint32_t sizeBytes = 256;
    uint32_t blockBytes = 16;
    uint32_t ways = 8;

    /**
     * LBF tracking granularity in bytes: 4 (per word, Table 2's
     * design, footnote 4) or 1 (per byte — 4x the LBF SRAM, but
     * partial-word stores can then be tracked as true overwrites;
     * see bench/ablation_lbf).
     */
    uint32_t lbfGranularityBytes = 4;

    uint32_t wordsPerBlock() const { return blockBytes / kWordBytes; }
    uint32_t numBlocks() const { return sizeBytes / blockBytes; }
    uint32_t numSets() const { return numBlocks() / ways; }
    uint32_t lbfEntries() const
    {
        return blockBytes / lbfGranularityBytes;
    }
};

/** One cache line plus its tightly coupled LBF state. */
struct CacheLine
{
    bool valid = false;
    bool dirty = false;
    Addr blockAddr = kNoAddr;
    std::vector<Word> data;
    std::vector<WordState> lbf;
    uint64_t lruTick = 0;

    /** LBF tracking unit in bytes (mirrors the cache config). */
    uint32_t lbfGranularity = kWordBytes;

    /** Bit per word set by stores since the fill (HOOP packs these). */
    uint32_t dirtyWordMask = 0;

    /** GBF lane mask of blockAddr, precomputed at fill time so the
     *  eviction-path insert needs no re-hash (single-word GBF). */
    uint64_t gbfMask = 0;

    /** Owning cache's dirty-line counter (null for free-standing
     *  lines in tests); keeps dirtyCount() O(1) on the per-
     *  instruction backup-cost path. */
    uint32_t *dirtyCounter = nullptr;

    /** Set/clear the dirty flag through the owner's counter. All
     *  writers must use these (not the raw field) so the counter
     *  stays exact. */
    void
    markDirty()
    {
        if (!dirty) {
            dirty = true;
            if (dirtyCounter)
                ++*dirtyCounter;
        }
    }

    void
    markClean()
    {
        if (dirty) {
            dirty = false;
            if (dirtyCounter)
                --*dirtyCounter;
        }
    }

    /** Composite LBF state: true iff any unit is read-dominated. */
    bool
    compositeReadDominated() const
    {
        for (WordState s : lbf)
            if (s == WordState::ReadDom)
                return true;
        return false;
    }

    /**
     * Record an access covering [offset, offset+nbytes) within the
     * block; first access to a unit wins (sticky). A store only
     * write-dominates units it *fully* overwrites — a partial write
     * is a hardware read-modify-write and counts as a read
     * (re-execution would not rewrite the untouched part).
     */
    void
    touchSpan(uint32_t offset, uint32_t nbytes, bool is_store)
    {
        uint32_t first = offset / lbfGranularity;
        uint32_t last = (offset + nbytes - 1) / lbfGranularity;
        for (uint32_t u = first; u <= last; ++u) {
            if (lbf[u] != WordState::Unknown)
                continue;
            uint32_t unit_begin = u * lbfGranularity;
            bool full = is_store && offset <= unit_begin &&
                        offset + nbytes >= unit_begin + lbfGranularity;
            lbf[u] = full ? WordState::WriteDom : WordState::ReadDom;
        }
    }

    /** Word-granular convenience used by tests. */
    void
    touchWord(uint32_t word_idx, bool is_store)
    {
        touchSpan(word_idx * kWordBytes, kWordBytes, is_store);
    }

    /** Conservatively mark every unit read-dominated (GBF hit). */
    void
    markAllReadDominated()
    {
        for (WordState &s : lbf)
            s = WordState::ReadDom;
    }
};

/**
 * The data cache. Miss handling (fetch source, eviction policy
 * consequences like renaming or violation backups) is the owning
 * architecture's business: the cache only provides lookup, victim
 * selection, fill and iteration, charging SRAM access energy as it
 * goes.
 */
class DataCache
{
  public:
    DataCache(const CacheConfig &cfg, const TechParams &params,
              EnergySink &sink);

    const CacheConfig &config() const { return cfg; }

    /** Block-align an address. */
    Addr blockAlign(Addr addr) const { return addr & ~blockMask; }

    /** Word index of an address within its block. */
    uint32_t wordIndex(Addr addr) const
    {
        return (addr & blockMask) / kWordBytes;
    }

    /**
     * Look up a block. Charges one SRAM access and refreshes LRU on a
     * hit. Returns nullptr on miss.
     */
    CacheLine *
    lookup(Addr block_addr)
    {
        sink.consume(tech.cacheAccessNj);
        return lookupUncharged(block_addr);
    }

    /**
     * Hit/miss bookkeeping and LRU refresh without the energy
     * charge: the architecture access path batches the SRAM charge
     * with the LBF charge into one sink call per access.
     */
    CacheLine *
    lookupUncharged(Addr block_addr)
    {
        debug_assert((block_addr & blockMask) == 0,
                     "lookup of unaligned block address ", block_addr);
        uint32_t set = (block_addr >> blockShift) & setMask;
        CacheLine *way = &lines[set * cfg.ways];
        for (uint32_t w = 0; w < cfg.ways; ++w, ++way) {
            if (way->valid && way->blockAddr == block_addr) {
                way->lruTick = ++tick;
                ++_hits;
                return way;
            }
        }
        ++_misses;
        return nullptr;
    }

    /**
     * Pick the fill victim for a block address: an invalid way if one
     * exists, else the LRU way. Does not modify the line; the caller
     * writes back / invalidates as needed, then calls fill().
     */
    CacheLine &victim(Addr block_addr);

    /**
     * Install a block into a line previously obtained from victim().
     * Data is copied; LBF resets to Unknown; line becomes valid,
     * clean, LRU-refreshed. Charges one SRAM access.
     */
    void fill(CacheLine &line, Addr block_addr,
              const std::vector<Word> &data);

    /** Drop a line (no writeback). */
    void invalidate(CacheLine &line);

    /** Drop everything (power loss). */
    void invalidateAll();

    /** Reset all LBF states to Unknown (done at every backup). */
    void resetLbf();

    /** Visit every line (backup flush walks the dirty ones). */
    void forEachLine(const std::function<void(CacheLine &)> &fn);
    void forEachLine(
        const std::function<void(const CacheLine &)> &fn) const;

    /** Count of valid+dirty lines (O(1): maintained by the
     *  CacheLine::markDirty/markClean protocol). */
    uint32_t dirtyCount() const;

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    void resetStats() { _hits = _misses = 0; }

  private:
    CacheConfig cfg;
    const TechParams &tech;
    EnergySink &sink;
    std::vector<CacheLine> lines; // [set * ways + way]
    uint64_t tick = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint32_t dirtyLines = 0;

    /** Precomputed geometry (the per-access path must not divide). */
    Addr blockMask = 0;
    uint32_t blockShift = 0;
    uint32_t setMask = 0;

    uint32_t setOf(Addr block_addr) const;
};

} // namespace nvmr

#endif // NVMR_MEM_CACHE_HH

/**
 * @file
 * Non-volatile memory (Flash) model: a flat byte array with per-word
 * access energies charged to an EnergySink and per-word wear counters
 * (Section 6.5 reports NVM wear-out reduction).
 */

#ifndef NVMR_MEM_NVM_HH
#define NVMR_MEM_NVM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

class FaultInjector;
class TraceSink;

/**
 * The on-board Flash. Reads and writes are word-granular and charge
 * energy to the attached sink; peek/poke bypass accounting for
 * initialization and validation.
 */
class Nvm
{
  public:
    /**
     * @param size_bytes Flash capacity (2 MB in Table 2).
     * @param params Technology constants for access energies.
     * @param sink Where access energy is charged.
     */
    Nvm(uint32_t size_bytes, const TechParams &params, EnergySink &sink);

    uint32_t sizeBytes() const { return size; }

    /**
     * Attach the crash/bit-error injector. Every accounted write
     * becomes an interruptible persist boundary and every accounted
     * read runs through the ECC pipeline. Null (the default) keeps
     * the fault-free fast path.
     */
    void attachFaults(FaultInjector *injector) { faults = injector; }

    /**
     * Attach a trace sink: every accounted word write that lands
     * records an NvmWrite event carrying the changed-byte mask. Null
     * (the default) keeps the zero-overhead fast path; the sink is
     * never charged energy, so tracing cannot perturb simulation.
     */
    void attachTrace(TraceSink *sink) { tracer = sink; }

    /** Accounted word read. */
    Word readWord(Addr addr);

    /** Accounted word write; bumps the wear counter. */
    void writeWord(Addr addr, Word value);

    /** Unaccounted read (initialization / validation / tests). */
    Word peekWord(Addr addr) const;

    /**
     * Unaccounted read through the deterministic fault view: stuck
     * bits and ECC correction applied, no transient sampling, no
     * energy. Validation paths use this so that a correctable stuck
     * bit is not flagged as divergence while an uncorrectable one is.
     */
    Word inspectWord(Addr addr) const;

    /** Unaccounted write (initialization / tests); no wear. */
    void pokeWord(Addr addr, Word value);

    /** Unaccounted byte accessors for loading program images. */
    uint8_t peekByte(Addr addr) const { return bytesAt(addr, 1)[0]; }
    void pokeByte(Addr addr, uint8_t value);

    /** Load a byte image starting at the given address. */
    void loadImage(Addr base, const std::vector<uint8_t> &image);

    /** Number of accounted writes to the word containing addr. */
    uint64_t wearOf(Addr addr) const;

    /** Maximum accounted writes to any single word (wear-out). */
    uint64_t maxWear() const;

    /**
     * Wear at a percentile over the *worn* words (words never
     * written are excluded; flash wear-out is governed by the hot
     * tail, not the untouched expanse). p in [0, 1]; 1.0 == maxWear.
     * Returns 0 when nothing was written.
     */
    uint64_t wearPercentile(double p) const;

    /** Number of distinct words written at least once. */
    uint64_t wornWords() const;

    /** Visit every worn word as fn(word_addr, wear); skips words
     *  never written (observability: per-location wear histogram). */
    template <typename Fn>
    void
    forEachWornWord(Fn fn) const
    {
        for (size_t i = 0; i < wear.size(); ++i)
            if (wear[i])
                fn(static_cast<Addr>(i * kWordBytes),
                   static_cast<uint64_t>(wear[i]));
    }

    /** Total accounted word writes. */
    uint64_t totalWrites() const { return writes; }

    /** Total accounted word reads. */
    uint64_t totalReads() const { return reads; }

    void resetStats();

  private:
    uint32_t size;
    const TechParams &tech;
    EnergySink &sink;
    FaultInjector *faults = nullptr;
    TraceSink *tracer = nullptr;
    std::vector<uint8_t> mem;
    std::vector<uint32_t> wear; // per word
    uint64_t writes = 0;
    uint64_t reads = 0;

    const uint8_t *bytesAt(Addr addr, uint32_t n) const;
    uint32_t wordIndex(Addr addr) const;
};

} // namespace nvmr

#endif // NVMR_MEM_NVM_HH

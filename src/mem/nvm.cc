#include "mem/nvm.hh"

#include <algorithm>

#include "common/log.hh"
#include "fault/fault.hh"
#include "obs/trace.hh"

namespace nvmr
{

Nvm::Nvm(uint32_t size_bytes, const TechParams &params, EnergySink &snk)
    : size(size_bytes), tech(params), sink(snk)
{
    fatal_if(size_bytes == 0 || size_bytes % kWordBytes != 0,
             "NVM size must be a positive multiple of the word size");
    mem.assign(size_bytes, 0);
    wear.assign(size_bytes / kWordBytes, 0);
}

const uint8_t *
Nvm::bytesAt(Addr addr, uint32_t n) const
{
    panic_if(addr + n > size, "NVM access out of range: ", addr);
    return mem.data() + addr;
}

uint32_t
Nvm::wordIndex(Addr addr) const
{
    panic_if(addr % kWordBytes != 0, "misaligned NVM word access: ",
             addr);
    panic_if(addr + kWordBytes > size, "NVM access out of range: ",
             addr);
    return addr / kWordBytes;
}

Word
Nvm::readWord(Addr addr)
{
    ++reads;
    sink.addCycles(tech.flashReadCycles);
    sink.consume(tech.flashReadWordNj);
    Word stored = peekWord(addr);
    if (!faults || !faults->enabled() || !faults->bitErrorsPossible())
        return stored;
    FaultInjector::ReadOutcome out = faults->applyReadFaults(addr,
                                                             stored);
    // Each bounded retry is a full re-read: charged like the first.
    for (uint32_t i = 0; i < out.retries; ++i) {
        ++reads;
        sink.addCycles(tech.flashReadCycles);
        sink.consume(tech.flashReadWordNj);
    }
    return out.value;
}

void
Nvm::writeWord(Addr addr, Word value)
{
    uint32_t idx = wordIndex(addr);
    // Persist boundary: an injected crash here means this word (and
    // everything after it in a multi-word persist) never landed.
    if (faults && faults->enabled())
        faults->persistPoint();
    ++writes;
    ++wear[idx];
    sink.addCycles(tech.flashWriteCycles);
    sink.consume(tech.flashWriteWordNj);
    if (tracer) {
        // Changed-byte mask (bit i = byte i differs): the WAR-freedom
        // checker only cares about bytes a persist actually altered.
        Word old = peekWord(addr);
        uint64_t mask = 0;
        for (unsigned i = 0; i < kWordBytes; ++i)
            if (((old ^ value) >> (8 * i)) & 0xffu)
                mask |= 1ull << i;
        tracer->record(EventKind::NvmWrite, addr, mask);
    }
    pokeWord(addr, value);
    if (faults && faults->enabled())
        faults->onWordWritten(addr, wear[idx]);
}

Word
Nvm::inspectWord(Addr addr) const
{
    Word stored = peekWord(addr);
    if (!faults || !faults->enabled())
        return stored;
    return faults->inspectStored(addr, stored);
}

Word
Nvm::peekWord(Addr addr) const
{
    wordIndex(addr); // bounds/alignment check
    Word w = 0;
    for (unsigned i = 0; i < kWordBytes; ++i)
        w |= static_cast<Word>(mem[addr + i]) << (8 * i);
    return w;
}

void
Nvm::pokeWord(Addr addr, Word value)
{
    wordIndex(addr);
    for (unsigned i = 0; i < kWordBytes; ++i)
        mem[addr + i] = static_cast<uint8_t>(value >> (8 * i));
}

void
Nvm::pokeByte(Addr addr, uint8_t value)
{
    panic_if(addr >= size, "NVM access out of range: ", addr);
    mem[addr] = value;
}

void
Nvm::loadImage(Addr base, const std::vector<uint8_t> &image)
{
    panic_if(base + image.size() > size, "image does not fit in NVM");
    std::copy(image.begin(), image.end(), mem.begin() + base);
}

uint64_t
Nvm::wearOf(Addr addr) const
{
    return wear[addr / kWordBytes];
}

uint64_t
Nvm::maxWear() const
{
    uint32_t m = 0;
    for (uint32_t w : wear)
        m = std::max(m, w);
    return m;
}

uint64_t
Nvm::wearPercentile(double p) const
{
    std::vector<uint32_t> worn;
    for (uint32_t w : wear)
        if (w > 0)
            worn.push_back(w);
    if (worn.empty())
        return 0;
    std::sort(worn.begin(), worn.end());
    double clamped = std::min(std::max(p, 0.0), 1.0);
    size_t idx = static_cast<size_t>(
        clamped * static_cast<double>(worn.size() - 1) + 0.5);
    return worn[idx];
}

uint64_t
Nvm::wornWords() const
{
    uint64_t n = 0;
    for (uint32_t w : wear)
        n += w > 0;
    return n;
}

void
Nvm::resetStats()
{
    std::fill(wear.begin(), wear.end(), 0);
    writes = 0;
    reads = 0;
}

} // namespace nvmr

#include "mem/cache.hh"

#include "common/log.hh"

namespace nvmr
{

DataCache::DataCache(const CacheConfig &config, const TechParams &params,
                     EnergySink &snk)
    : cfg(config), tech(params), sink(snk)
{
    fatal_if(cfg.blockBytes == 0 || cfg.blockBytes % kWordBytes != 0,
             "block size must be a multiple of the word size");
    fatal_if(cfg.sizeBytes % cfg.blockBytes != 0,
             "cache size must be a multiple of the block size");
    fatal_if(cfg.ways == 0 || cfg.numBlocks() % cfg.ways != 0,
             "cache blocks must divide evenly into ways");
    fatal_if((cfg.numSets() & (cfg.numSets() - 1)) != 0,
             "number of sets must be a power of two");

    fatal_if(cfg.lbfGranularityBytes == 0 ||
                 cfg.blockBytes % cfg.lbfGranularityBytes != 0,
             "LBF granularity must divide the block size");
    fatal_if((cfg.blockBytes & (cfg.blockBytes - 1)) != 0,
             "block size must be a power of two");
    blockMask = cfg.blockBytes - 1;
    while ((1u << blockShift) < cfg.blockBytes)
        ++blockShift;
    setMask = cfg.numSets() - 1;
    lines.resize(cfg.numBlocks());
    for (CacheLine &line : lines) {
        line.data.assign(cfg.wordsPerBlock(), 0);
        line.lbf.assign(cfg.lbfEntries(), WordState::Unknown);
        line.lbfGranularity = cfg.lbfGranularityBytes;
        line.dirtyCounter = &dirtyLines;
    }
}

uint32_t
DataCache::setOf(Addr block_addr) const
{
    return (block_addr >> blockShift) & setMask;
}

CacheLine &
DataCache::victim(Addr block_addr)
{
    uint32_t set = setOf(block_addr);
    CacheLine *lru = nullptr;
    for (uint32_t w = 0; w < cfg.ways; ++w) {
        CacheLine &line = lines[set * cfg.ways + w];
        if (!line.valid)
            return line;
        if (!lru || line.lruTick < lru->lruTick)
            lru = &line;
    }
    return *lru;
}

void
DataCache::fill(CacheLine &line, Addr block_addr,
                const std::vector<Word> &data)
{
    panic_if(data.size() != cfg.wordsPerBlock(),
             "fill with wrong block size");
    sink.consume(tech.cacheAccessNj);
    line.valid = true;
    line.markClean();
    line.blockAddr = block_addr;
    line.data = data;
    line.lbf.assign(cfg.lbfEntries(), WordState::Unknown);
    line.dirtyWordMask = 0;
    line.lruTick = ++tick;
}

void
DataCache::invalidate(CacheLine &line)
{
    line.valid = false;
    line.markClean();
    line.blockAddr = kNoAddr;
    line.dirtyWordMask = 0;
}

void
DataCache::invalidateAll()
{
    for (CacheLine &line : lines)
        invalidate(line);
}

void
DataCache::resetLbf()
{
    for (CacheLine &line : lines)
        line.lbf.assign(cfg.lbfEntries(), WordState::Unknown);
}

void
DataCache::forEachLine(const std::function<void(CacheLine &)> &fn)
{
    for (CacheLine &line : lines)
        fn(line);
}

void
DataCache::forEachLine(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const CacheLine &line : lines)
        fn(line);
}

uint32_t
DataCache::dirtyCount() const
{
#if NVMR_DEBUG_ASSERTS
    uint32_t n = 0;
    for (const CacheLine &line : lines)
        n += line.dirty;
    debug_assert(n == dirtyLines,
                 "dirty-line counter out of sync: ", dirtyLines,
                 " != ", n);
#endif
    return dirtyLines;
}

} // namespace nvmr

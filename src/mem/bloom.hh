/**
 * @file
 * The global bloom filter (GBF): a small bit-vector bloom filter that
 * records which evicted cache blocks were read-dominated in the
 * current intermittent code section. False positives conservatively
 * mark blocks read-dominated (extra renames/backups, never
 * incorrectness); false negatives cannot occur for inserted blocks.
 */

#ifndef NVMR_MEM_BLOOM_HH
#define NVMR_MEM_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

/** Bloom filter over cache-block addresses. */
class BloomFilter
{
  public:
    /**
     * @param bits Number of one-bit entries (8 in Table 2).
     * @param hashes Number of hash functions (1 in the paper).
     * @param params Technology constants (lookup/update energy).
     * @param sink Where access energy is charged.
     */
    BloomFilter(unsigned bits, unsigned hashes,
                const TechParams &params, EnergySink &sink);

    /** Record a (read-dominated) block address. */
    void insert(Addr block_addr);

    /** Membership test; may return false positives. */
    bool maybeContains(Addr block_addr);

    /** Clear all bits (done at every backup). */
    void reset();

    /** Fraction of bits set, for diagnostics. */
    double occupancy() const;

    unsigned numBits() const { return static_cast<unsigned>(bits.size()); }

  private:
    std::vector<bool> bits;
    unsigned numHashes;
    const TechParams &tech;
    EnergySink &sink;

    unsigned hashOf(Addr block_addr, unsigned which) const;
};

} // namespace nvmr

#endif // NVMR_MEM_BLOOM_HH

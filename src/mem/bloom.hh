/**
 * @file
 * The global bloom filter (GBF): a small bit-vector bloom filter that
 * records which evicted cache blocks were read-dominated in the
 * current intermittent code section. False positives conservatively
 * mark blocks read-dominated (extra renames/backups, never
 * incorrectness); false negatives cannot occur for inserted blocks.
 */

#ifndef NVMR_MEM_BLOOM_HH
#define NVMR_MEM_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

/**
 * Bloom filter over cache-block addresses. Bits are packed into
 * 64-bit words; the paper's configurations (8 bits, Table 2) fit a
 * single word, so callers can precompute an address's hash-lane mask
 * once (at cache fill) and insert/query with plain bitwise ops
 * instead of re-hashing per operation.
 */
class BloomFilter
{
  public:
    /**
     * @param bits Number of one-bit entries (8 in Table 2).
     * @param hashes Number of hash functions (1 in the paper).
     * @param params Technology constants (lookup/update energy).
     * @param sink Where access energy is charged.
     */
    BloomFilter(unsigned bits, unsigned hashes,
                const TechParams &params, EnergySink &sink);

    /** Record a (read-dominated) block address. */
    void insert(Addr block_addr);

    /** Membership test; may return false positives. */
    bool maybeContains(Addr block_addr);

    /** Clear all bits (done at every backup). */
    void reset();

    /** Fraction of bits set, for diagnostics. */
    double occupancy() const;

    unsigned numBits() const { return nBits; }

    /** True when the filter fits one 64-bit word and the
     *  precomputed-mask fast path below applies. */
    bool singleWord() const { return nBits <= 64; }

    /**
     * OR of the address's hash-lane bits. Pure hashing, no energy
     * charge; only meaningful when singleWord(). Precompute at cache
     * fill, then use the mask variants for the per-access work.
     */
    uint64_t
    laneMask(Addr block_addr) const
    {
        uint64_t mask = 0;
        for (unsigned h = 0; h < numHashes; ++h)
            mask |= 1ull << hashOf(block_addr, h);
        return mask;
    }

    /** insert() via a precomputed lane mask (same energy charge). */
    void
    insertMask(uint64_t mask)
    {
        sink.consume(tech.bloomNj);
        words[0] |= mask;
    }

    /** maybeContains() via a precomputed lane mask. */
    bool
    maybeContainsMask(uint64_t mask)
    {
        sink.consume(tech.bloomNj);
        return (words[0] & mask) == mask;
    }

  private:
    std::vector<uint64_t> words;
    unsigned nBits;
    unsigned numHashes;
    const TechParams &tech;
    EnergySink &sink;

    unsigned hashOf(Addr block_addr, unsigned which) const;
};

} // namespace nvmr

#endif // NVMR_MEM_BLOOM_HH

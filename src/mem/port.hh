/**
 * @file
 * The data port through which the CPU issues loads and stores. Each
 * intermittent architecture implements this interface; cycle and energy
 * costs of the memory system are charged internally by the
 * implementation (the CPU only accounts its own pipeline cycles).
 */

#ifndef NVMR_MEM_PORT_HH
#define NVMR_MEM_PORT_HH

#include "common/types.hh"

namespace nvmr
{

/** Abstract CPU-side memory interface (word and byte granularity). */
class DataPort
{
  public:
    virtual ~DataPort() = default;

    /** Load a 32-bit word from a word-aligned address. */
    virtual Word loadWord(Addr addr) = 0;

    /** Store a 32-bit word to a word-aligned address. */
    virtual void storeWord(Addr addr, Word value) = 0;

    /** Load one byte (zero-extended). */
    virtual uint8_t loadByte(Addr addr) = 0;

    /** Store one byte. */
    virtual void storeByte(Addr addr, uint8_t value) = 0;

    /**
     * The program crossed a `task` boundary (Section 2.2).
     * Task-based architectures back up here; everything else
     * ignores it.
     */
    virtual void taskBoundary() {}
};

} // namespace nvmr

#endif // NVMR_MEM_PORT_HH

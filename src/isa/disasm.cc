#include "isa/isa.hh"

#include <sstream>

namespace nvmr
{

bool
isLoad(Op op)
{
    return op == Op::LD || op == Op::LDB;
}

bool
isStore(Op op)
{
    return op == Op::ST || op == Op::STB;
}

bool
isControl(Op op)
{
    switch (op) {
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
      case Op::BLTU:
      case Op::BGEU:
      case Op::JMP:
      case Op::JAL:
      case Op::JR:
        return true;
      default:
        return false;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::ADD: return "add";
      case Op::SUB: return "sub";
      case Op::MUL: return "mul";
      case Op::DIV: return "div";
      case Op::REM: return "rem";
      case Op::AND: return "and";
      case Op::OR: return "or";
      case Op::XOR: return "xor";
      case Op::SLL: return "sll";
      case Op::SRL: return "srl";
      case Op::SRA: return "sra";
      case Op::SLT: return "slt";
      case Op::SLTU: return "sltu";
      case Op::ADDI: return "addi";
      case Op::ANDI: return "andi";
      case Op::ORI: return "ori";
      case Op::XORI: return "xori";
      case Op::SLLI: return "slli";
      case Op::SRLI: return "srli";
      case Op::SRAI: return "srai";
      case Op::SLTI: return "slti";
      case Op::MULI: return "muli";
      case Op::LUI: return "li";
      case Op::LD: return "ld";
      case Op::ST: return "st";
      case Op::LDB: return "ldb";
      case Op::STB: return "stb";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLT: return "blt";
      case Op::BGE: return "bge";
      case Op::BLTU: return "bltu";
      case Op::BGEU: return "bgeu";
      case Op::JMP: return "jmp";
      case Op::JAL: return "jal";
      case Op::JR: return "jr";
      case Op::HALT: return "halt";
      case Op::TASK: return "task";
      default: return "<bad>";
    }
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opName(inst.op);
    auto r = [](unsigned n) { return "r" + std::to_string(n); };

    switch (inst.op) {
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::REM: case Op::AND: case Op::OR: case Op::XOR:
      case Op::SLL: case Op::SRL: case Op::SRA: case Op::SLT:
      case Op::SLTU:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << r(inst.rs2);
        break;
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLLI: case Op::SRLI: case Op::SRAI: case Op::SLTI:
      case Op::MULI:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << inst.imm;
        break;
      case Op::LUI:
        os << " " << r(inst.rd) << ", " << inst.imm;
        break;
      case Op::LD: case Op::LDB:
        os << " " << r(inst.rd) << ", " << inst.imm << "("
           << r(inst.rs1) << ")";
        break;
      case Op::ST: case Op::STB:
        os << " " << r(inst.rs2) << ", " << inst.imm << "("
           << r(inst.rs1) << ")";
        break;
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::BLTU: case Op::BGEU:
        os << " " << r(inst.rs1) << ", " << r(inst.rs2) << ", "
           << inst.imm;
        break;
      case Op::JMP:
        os << " " << inst.imm;
        break;
      case Op::JAL:
        os << " " << r(inst.rd) << ", " << inst.imm;
        break;
      case Op::JR:
        os << " " << r(inst.rs1) << ", " << inst.imm;
        break;
      case Op::HALT:
      case Op::TASK:
      default:
        break;
    }
    return os.str();
}

} // namespace nvmr

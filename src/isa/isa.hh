/**
 * @file
 * The `iisa` instruction set: a 16-register, 32-bit Thumb-class RISC
 * ISA executed by the simulated Cortex M0+-style core.
 *
 * This is the repo's substitute for the ARM Thumb ISA the paper runs
 * (see DESIGN.md, substitution 1). Instructions are held pre-decoded;
 * immediates are full 32-bit values. The PC is an instruction index
 * into the program's text section (instructions execute from a separate
 * instruction flash and are not subject to idempotency concerns).
 *
 * Register conventions (assembler mnemonics accept both `rN` and the
 * aliases below):
 *   r0  ("zero") — hardwired zero: reads 0, writes are discarded.
 *   r14 ("sp")   — stack pointer by convention.
 *   r15 ("ra")   — link register used by CALL/RET pseudo-ops.
 */

#ifndef NVMR_ISA_ISA_HH
#define NVMR_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace nvmr
{

/** Number of architectural registers. */
constexpr unsigned kNumRegs = 16;

/** Register index of the hardwired zero register. */
constexpr unsigned kRegZero = 0;

/** Conventional stack pointer register. */
constexpr unsigned kRegSp = 14;

/** Conventional link register. */
constexpr unsigned kRegRa = 15;

/** Opcodes of the iisa instruction set. */
enum class Op : uint8_t
{
    // R-type: rd = rs1 op rs2
    ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // I-type: rd = rs1 op imm
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, MULI,
    // rd = imm (32-bit load-immediate; assembler pseudo `li`)
    LUI,
    // Memory: word and byte granularity. Address = rs1 + imm.
    LD, ST, LDB, STB,
    // Branches: compare rs1, rs2; target in imm (instruction index).
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Unconditional control flow.
    JMP,  // pc = imm
    JAL,  // rd = pc + 1; pc = imm
    JR,   // pc = rs1 + imm
    // Stop execution (program completed).
    HALT,
    // Task boundary marker (Section 2.2's software schemes): a
    // no-op for hardware-checkpointing architectures; task-based
    // architectures back up here.
    TASK,
    NUM_OPS
};

/** A fully decoded instruction. */
struct Instruction
{
    Op op = Op::HALT;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;
};

/** True for LD/LDB. */
bool isLoad(Op op);

/** True for ST/STB. */
bool isStore(Op op);

/** True for any instruction that can redirect the PC. */
bool isControl(Op op);

/** Mnemonic string for an opcode. */
const char *opName(Op op);

/** Render one instruction as assembly text (for diagnostics). */
std::string disassemble(const Instruction &inst);

} // namespace nvmr

#endif // NVMR_ISA_ISA_HH

#include "isa/program.hh"

#include "common/log.hh"

namespace nvmr
{

uint32_t
Program::labelOf(const std::string &label_name) const
{
    auto it = labels.find(label_name);
    fatal_if(it == labels.end(),
             "program ", name, ": unknown label '", label_name, "'");
    return it->second;
}

Word
Program::initialWord(Addr addr) const
{
    panic_if(addr + kWordBytes > data.size(),
             "initialWord out of range: ", addr);
    Word w = 0;
    for (unsigned i = 0; i < kWordBytes; ++i)
        w |= static_cast<Word>(data[addr + i]) << (8 * i);
    return w;
}

} // namespace nvmr

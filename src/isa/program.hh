/**
 * @file
 * A loaded program image: decoded text section plus the initial
 * contents of the NVM data segment.
 */

#ifndef NVMR_ISA_PROGRAM_HH
#define NVMR_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace nvmr
{

/**
 * An assembled program. The data image is loaded into the application
 * region of NVM (starting at address 0) before execution; the text
 * section lives in instruction flash and is addressed by instruction
 * index.
 */
class Program
{
  public:
    /** Assembled name, for diagnostics and result tables. */
    std::string name;

    /** Decoded instructions; PC is an index into this vector. */
    std::vector<Instruction> text;

    /** Initial bytes of the data segment (NVM address 0 upward). */
    std::vector<uint8_t> data;

    /** Label name -> value (byte address or instruction index). */
    std::map<std::string, uint32_t> labels;

    /** Entry point (instruction index of label `main`, or 0). */
    uint32_t entry = 0;

    /** Byte size of the data segment. */
    uint32_t dataSize() const { return static_cast<uint32_t>(data.size()); }

    /** Look up a label or die; used by tests and golden models. */
    uint32_t labelOf(const std::string &label_name) const;

    /** Read an initial data word (little-endian); for tests. */
    Word initialWord(Addr addr) const;
};

} // namespace nvmr

#endif // NVMR_ISA_PROGRAM_HH

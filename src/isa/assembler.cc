#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "common/xorshift.hh"

namespace nvmr
{

namespace
{

/** One operand token, either resolved now (numbers) or in pass 2
 *  (labels). */
struct Token
{
    std::string text;
};

/** A parsed source line (after label extraction). */
struct Stmt
{
    int lineNo = 0;
    std::string mnemonic;          // lowercase instruction or directive
    std::vector<Token> operands;
    std::string memBase;           // register inside imm(reg), if any
    bool hasMemOperand = false;
};

/** Assembler working state shared between passes. */
struct AsmState
{
    std::string progName;
    std::map<std::string, uint32_t> labels;
    std::vector<Stmt> textStmts;
    Program prog;
};

[[noreturn]] void
asmError(const AsmState &st, int line_no, const std::string &msg)
{
    fatal(st.progName, ".asm:", line_no, ": ", msg);
}

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string line = raw;
    bool in_str = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"')
            in_str = !in_str;
        if (!in_str && (c == '#' || c == ';')) {
            line.erase(i);
            break;
        }
    }
    size_t b = line.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = line.find_last_not_of(" \t\r\n");
    return line.substr(b, e - b + 1);
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

/** Parse a register name; returns nullopt if not a register. */
std::optional<unsigned>
parseReg(const std::string &tok)
{
    if (tok == "zero")
        return kRegZero;
    if (tok == "sp")
        return kRegSp;
    if (tok == "ra")
        return kRegRa;
    if (tok.size() >= 2 && tok[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        unsigned v = 0;
        for (size_t i = 1; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                return std::nullopt;
            v = v * 10 + (tok[i] - '0');
        }
        if (v < kNumRegs)
            return v;
    }
    return std::nullopt;
}

/** Parse an integer literal (dec, hex, negative, or 'c'). */
std::optional<int64_t>
parseIntLiteral(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    if (tok.size() == 3 && tok.front() == '\'' && tok.back() == '\'')
        return static_cast<int64_t>(tok[1]);
    size_t pos = 0;
    bool neg = false;
    if (tok[pos] == '-' || tok[pos] == '+') {
        neg = tok[pos] == '-';
        ++pos;
    }
    if (pos >= tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.size() > pos + 2 && tok[pos] == '0' &&
        (tok[pos + 1] == 'x' || tok[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    int64_t v = 0;
    for (; pos < tok.size(); ++pos) {
        char c = tok[pos];
        int digit;
        if (std::isdigit(static_cast<unsigned char>(c)))
            digit = c - '0';
        else if (base == 16 && std::isxdigit(static_cast<unsigned char>(c)))
            digit = std::tolower(c) - 'a' + 10;
        else
            return std::nullopt;
        v = v * base + digit;
    }
    return neg ? -v : v;
}

/**
 * Evaluate an operand expression: integer literal, label, or
 * label+int / label-int.
 */
int64_t
evalExpr(const AsmState &st, int line_no, const std::string &expr)
{
    if (auto lit = parseIntLiteral(expr))
        return *lit;

    // Split at the last top-level '+' or '-' (not the leading char).
    size_t split = std::string::npos;
    for (size_t i = 1; i < expr.size(); ++i)
        if (expr[i] == '+' || expr[i] == '-')
            split = i;

    std::string base = expr;
    int64_t offset = 0;
    if (split != std::string::npos) {
        base = expr.substr(0, split);
        auto off = parseIntLiteral(expr.substr(split));
        if (!off)
            asmError(st, line_no, "bad offset in expression '" + expr + "'");
        offset = *off;
    }
    auto it = st.labels.find(base);
    if (it == st.labels.end())
        asmError(st, line_no, "undefined symbol '" + base + "'");
    return static_cast<int64_t>(it->second) + offset;
}

/** Tokenize the operand part of a line, splitting on commas/space and
 *  recognizing the mem-operand form expr(reg). */
void
parseOperands(AsmState &st, Stmt &stmt, const std::string &text)
{
    size_t i = 0;
    auto skip_ws = [&] {
        while (i < text.size() &&
               (text[i] == ' ' || text[i] == '\t' || text[i] == ','))
            ++i;
    };
    skip_ws();
    while (i < text.size()) {
        if (text[i] == '"') { // string literal (for .asciiz)
            size_t end = text.find('"', i + 1);
            if (end == std::string::npos)
                asmError(st, stmt.lineNo, "unterminated string");
            stmt.operands.push_back({text.substr(i, end - i + 1)});
            i = end + 1;
        } else {
            size_t start = i;
            while (i < text.size() && text[i] != ',' && text[i] != ' ' &&
                   text[i] != '\t' && text[i] != '(')
                ++i;
            std::string tok = text.substr(start, i - start);
            if (i < text.size() && text[i] == '(') {
                size_t close = text.find(')', i);
                if (close == std::string::npos)
                    asmError(st, stmt.lineNo, "missing ')'");
                stmt.memBase = text.substr(i + 1, close - i - 1);
                stmt.hasMemOperand = true;
                i = close + 1;
            }
            if (!tok.empty() || stmt.hasMemOperand)
                stmt.operands.push_back({tok});
        }
        skip_ws();
    }
}

struct OpInfo
{
    Op op;
    enum class Kind { RType, IType, Li, Mem, Branch, Jmp, Jal, Jr, None }
        kind;
};

const std::map<std::string, OpInfo> &
opTable()
{
    using K = OpInfo::Kind;
    static const std::map<std::string, OpInfo> table = {
        {"add", {Op::ADD, K::RType}},   {"sub", {Op::SUB, K::RType}},
        {"mul", {Op::MUL, K::RType}},   {"div", {Op::DIV, K::RType}},
        {"rem", {Op::REM, K::RType}},   {"and", {Op::AND, K::RType}},
        {"or", {Op::OR, K::RType}},     {"xor", {Op::XOR, K::RType}},
        {"sll", {Op::SLL, K::RType}},   {"srl", {Op::SRL, K::RType}},
        {"sra", {Op::SRA, K::RType}},   {"slt", {Op::SLT, K::RType}},
        {"sltu", {Op::SLTU, K::RType}},
        {"addi", {Op::ADDI, K::IType}}, {"andi", {Op::ANDI, K::IType}},
        {"ori", {Op::ORI, K::IType}},   {"xori", {Op::XORI, K::IType}},
        {"slli", {Op::SLLI, K::IType}}, {"srli", {Op::SRLI, K::IType}},
        {"srai", {Op::SRAI, K::IType}}, {"slti", {Op::SLTI, K::IType}},
        {"muli", {Op::MULI, K::IType}},
        {"li", {Op::LUI, K::Li}},
        {"ld", {Op::LD, K::Mem}},       {"st", {Op::ST, K::Mem}},
        {"ldb", {Op::LDB, K::Mem}},     {"stb", {Op::STB, K::Mem}},
        {"beq", {Op::BEQ, K::Branch}},  {"bne", {Op::BNE, K::Branch}},
        {"blt", {Op::BLT, K::Branch}},  {"bge", {Op::BGE, K::Branch}},
        {"bltu", {Op::BLTU, K::Branch}},{"bgeu", {Op::BGEU, K::Branch}},
        {"jmp", {Op::JMP, K::Jmp}},     {"jal", {Op::JAL, K::Jal}},
        {"jr", {Op::JR, K::Jr}},        {"halt", {Op::HALT, K::None}},
        {"task", {Op::TASK, K::None}},
    };
    return table;
}

unsigned
expectReg(const AsmState &st, const Stmt &stmt, size_t idx)
{
    if (idx >= stmt.operands.size())
        asmError(st, stmt.lineNo, "missing register operand");
    auto r = parseReg(stmt.operands[idx].text);
    if (!r)
        asmError(st, stmt.lineNo,
                 "expected register, got '" + stmt.operands[idx].text + "'");
    return *r;
}

int32_t
expectExpr(const AsmState &st, const Stmt &stmt, size_t idx)
{
    if (idx >= stmt.operands.size())
        asmError(st, stmt.lineNo, "missing immediate operand");
    return static_cast<int32_t>(
        evalExpr(st, stmt.lineNo, stmt.operands[idx].text));
}

/** Expand pseudo-instructions into base statements. Returns how many
 *  real instructions a mnemonic occupies (all pseudos here are 1:1). */
bool
isPseudo(const std::string &m)
{
    return m == "mv" || m == "nop" || m == "neg" || m == "not" ||
           m == "call" || m == "ret" || m == "bgt" || m == "ble" ||
           m == "bgtu" || m == "bleu";
}

/** Encode one text statement (pass 2). */
Instruction
encode(AsmState &st, const Stmt &stmt)
{
    using K = OpInfo::Kind;
    Instruction inst;
    const std::string &m = stmt.mnemonic;

    // Pseudo-instruction rewriting.
    if (m == "nop")
        return {Op::ADDI, kRegZero, kRegZero, 0, 0};
    if (m == "mv") {
        inst.op = Op::ADDI;
        inst.rd = expectReg(st, stmt, 0);
        inst.rs1 = expectReg(st, stmt, 1);
        inst.imm = 0;
        return inst;
    }
    if (m == "neg") {
        inst.op = Op::SUB;
        inst.rd = expectReg(st, stmt, 0);
        inst.rs1 = kRegZero;
        inst.rs2 = expectReg(st, stmt, 1);
        return inst;
    }
    if (m == "not") {
        inst.op = Op::XORI;
        inst.rd = expectReg(st, stmt, 0);
        inst.rs1 = expectReg(st, stmt, 1);
        inst.imm = -1;
        return inst;
    }
    if (m == "call") {
        inst.op = Op::JAL;
        inst.rd = kRegRa;
        inst.imm = expectExpr(st, stmt, 0);
        return inst;
    }
    if (m == "ret")
        return {Op::JR, 0, kRegRa, 0, 0};
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
        // bgt a,b,t == blt b,a,t ; ble a,b,t == bge b,a,t
        inst.op = (m == "bgt") ? Op::BLT
                : (m == "ble") ? Op::BGE
                : (m == "bgtu") ? Op::BLTU
                : Op::BGEU;
        inst.rs1 = expectReg(st, stmt, 1);
        inst.rs2 = expectReg(st, stmt, 0);
        inst.imm = expectExpr(st, stmt, 2);
        return inst;
    }

    auto it = opTable().find(m);
    if (it == opTable().end())
        asmError(st, stmt.lineNo, "unknown mnemonic '" + m + "'");
    const OpInfo &info = it->second;
    inst.op = info.op;

    switch (info.kind) {
      case K::RType:
        inst.rd = expectReg(st, stmt, 0);
        inst.rs1 = expectReg(st, stmt, 1);
        inst.rs2 = expectReg(st, stmt, 2);
        break;
      case K::IType:
        inst.rd = expectReg(st, stmt, 0);
        inst.rs1 = expectReg(st, stmt, 1);
        inst.imm = expectExpr(st, stmt, 2);
        break;
      case K::Li:
        inst.rd = expectReg(st, stmt, 0);
        inst.rs1 = kRegZero;
        inst.imm = expectExpr(st, stmt, 1);
        break;
      case K::Mem:
        if (!stmt.hasMemOperand)
            asmError(st, stmt.lineNo, "expected imm(reg) operand");
        // operands: reg, offsetExpr; memBase holds the base register.
        inst.rd = expectReg(st, stmt, 0);   // data reg (dest or src)
        inst.imm = expectExpr(st, stmt, 1);
        {
            auto base = parseReg(stmt.memBase);
            if (!base)
                asmError(st, stmt.lineNo,
                         "bad base register '" + stmt.memBase + "'");
            inst.rs1 = *base;
        }
        if (isStore(inst.op)) {
            inst.rs2 = inst.rd; // store data register
            inst.rd = 0;
        }
        break;
      case K::Branch:
        inst.rs1 = expectReg(st, stmt, 0);
        inst.rs2 = expectReg(st, stmt, 1);
        inst.imm = expectExpr(st, stmt, 2);
        break;
      case K::Jmp:
        inst.imm = expectExpr(st, stmt, 0);
        break;
      case K::Jal:
        inst.rd = expectReg(st, stmt, 0);
        inst.imm = expectExpr(st, stmt, 1);
        break;
      case K::Jr:
        inst.rs1 = expectReg(st, stmt, 0);
        inst.imm = stmt.operands.size() > 1 ? expectExpr(st, stmt, 1) : 0;
        break;
      case K::None:
        break;
    }
    return inst;
}

void
appendWord(std::vector<uint8_t> &data, uint32_t w)
{
    for (unsigned i = 0; i < kWordBytes; ++i)
        data.push_back(static_cast<uint8_t>(w >> (8 * i)));
}

} // namespace

Program
assemble(const std::string &name, const std::string &source)
{
    AsmState st;
    st.progName = name;
    st.prog.name = name;

    // ------------------------------------------------------------------
    // Pass 1: scan lines, record labels, lay out the data section, and
    // collect text statements. Data directives are executed here except
    // for .word operands that reference labels (patched in pass 2).
    // ------------------------------------------------------------------
    struct WordPatch
    {
        size_t offset;     // byte offset in data image
        std::string expr;
        int lineNo;
    };
    std::vector<WordPatch> patches;

    enum class Section { Text, Data };
    Section section = Section::Text;

    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    uint32_t text_idx = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        // Extract leading labels ("name:").
        while (true) {
            size_t i = 0;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            if (i == 0 || i >= line.size() || line[i] != ':')
                break;
            std::string label = line.substr(0, i);
            if (st.labels.count(label))
                asmError(st, line_no, "duplicate label '" + label + "'");
            st.labels[label] = section == Section::Text
                                   ? text_idx
                                   : static_cast<uint32_t>(
                                         st.prog.data.size());
            line = cleanLine(line.substr(i + 1));
            if (line.empty())
                break;
        }
        if (line.empty())
            continue;

        // Split mnemonic from operands.
        size_t sp = line.find_first_of(" \t");
        std::string mnemonic = line.substr(0, sp);
        std::string rest = sp == std::string::npos
                               ? ""
                               : cleanLine(line.substr(sp));
        for (auto &c : mnemonic)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));

        if (mnemonic == ".data") {
            section = Section::Data;
            continue;
        }
        if (mnemonic == ".text") {
            section = Section::Text;
            continue;
        }

        if (mnemonic[0] == '.') {
            if (section != Section::Data)
                asmError(st, line_no,
                         "directive " + mnemonic + " outside .data");
            Stmt stmt;
            stmt.lineNo = line_no;
            parseOperands(st, stmt, rest);
            auto &data = st.prog.data;
            if (mnemonic == ".word") {
                while (data.size() % kWordBytes)
                    data.push_back(0);
                for (const Token &t : stmt.operands) {
                    if (auto lit = parseIntLiteral(t.text)) {
                        appendWord(data, static_cast<uint32_t>(*lit));
                    } else {
                        patches.push_back({data.size(), t.text, line_no});
                        appendWord(data, 0);
                    }
                }
            } else if (mnemonic == ".space") {
                if (stmt.operands.size() != 1)
                    asmError(st, line_no, ".space takes one operand");
                auto n = parseIntLiteral(stmt.operands[0].text);
                if (!n || *n < 0)
                    asmError(st, line_no, "bad .space size");
                data.insert(data.end(), static_cast<size_t>(*n), 0);
            } else if (mnemonic == ".rand") {
                if (stmt.operands.size() != 4)
                    asmError(st, line_no,
                             ".rand takes: count seed lo hi");
                auto cnt = parseIntLiteral(stmt.operands[0].text);
                auto seed = parseIntLiteral(stmt.operands[1].text);
                auto lo = parseIntLiteral(stmt.operands[2].text);
                auto hi = parseIntLiteral(stmt.operands[3].text);
                if (!cnt || !seed || !lo || !hi || *cnt < 0)
                    asmError(st, line_no, "bad .rand operands");
                while (data.size() % kWordBytes)
                    data.push_back(0);
                XorShift rng(static_cast<uint64_t>(*seed));
                for (int64_t i = 0; i < *cnt; ++i)
                    appendWord(data, static_cast<uint32_t>(
                                         rng.range(*lo, *hi)));
            } else if (mnemonic == ".asciiz") {
                if (stmt.operands.size() != 1 ||
                    stmt.operands[0].text.size() < 2 ||
                    stmt.operands[0].text.front() != '"')
                    asmError(st, line_no, ".asciiz takes a string");
                const std::string &s = stmt.operands[0].text;
                for (size_t i = 1; i + 1 < s.size(); ++i)
                    data.push_back(static_cast<uint8_t>(s[i]));
                data.push_back(0);
            } else if (mnemonic == ".align") {
                if (stmt.operands.size() != 1)
                    asmError(st, line_no, ".align takes one operand");
                auto n = parseIntLiteral(stmt.operands[0].text);
                if (!n || *n <= 0)
                    asmError(st, line_no, "bad .align value");
                while (data.size() % static_cast<size_t>(*n))
                    data.push_back(0);
            } else {
                asmError(st, line_no,
                         "unknown directive '" + mnemonic + "'");
            }
            continue;
        }

        // Text statement.
        if (section != Section::Text)
            asmError(st, line_no, "instruction inside .data section");
        Stmt stmt;
        stmt.lineNo = line_no;
        stmt.mnemonic = mnemonic;
        parseOperands(st, stmt, rest);
        if (!isPseudo(mnemonic) && !opTable().count(mnemonic))
            asmError(st, line_no, "unknown mnemonic '" + mnemonic + "'");
        st.textStmts.push_back(std::move(stmt));
        ++text_idx;
    }

    // ------------------------------------------------------------------
    // Pass 2: encode instructions and patch label-valued data words.
    // ------------------------------------------------------------------
    for (const Stmt &stmt : st.textStmts)
        st.prog.text.push_back(encode(st, stmt));

    for (const WordPatch &p : patches) {
        uint32_t v = static_cast<uint32_t>(
            evalExpr(st, p.lineNo, p.expr));
        for (unsigned i = 0; i < kWordBytes; ++i)
            st.prog.data[p.offset + i] =
                static_cast<uint8_t>(v >> (8 * i));
    }

    st.prog.labels = st.labels;
    auto main_it = st.labels.find("main");
    st.prog.entry = main_it == st.labels.end() ? 0 : main_it->second;
    fatal_if(st.prog.text.empty(),
             name, ": program has no instructions");
    return st.prog;
}

} // namespace nvmr

/**
 * @file
 * Two-pass assembler for the iisa instruction set.
 *
 * Syntax overview (see tests/test_assembler.cc for worked examples):
 *
 *     # comment               ; also a comment
 *         .data
 *     arr:  .word 1 2 -3 0x10 arr       # words; labels allowed
 *     buf:  .space 64                   # zero-filled bytes
 *     rnd:  .rand 256 42 0 1023         # n words from XorShift(seed)
 *     msg:  .asciiz "hello"             # NUL-terminated bytes
 *           .align 4
 *         .text
 *     main:
 *         li   r1, arr                  # 32-bit load immediate
 *         ld   r2, 0(r1)
 *         addi r2, r2, 1
 *         st   r2, 0(r1)
 *         bne  r2, r0, main
 *         halt
 *
 * Registers: r0..r15, with aliases zero (r0), sp (r14), ra (r15).
 * Pseudo-instructions: li, mv, nop, neg, not, call, ret, bgt, ble,
 * bgtu, bleu, jr (1-operand form).
 */

#ifndef NVMR_ISA_ASSEMBLER_HH
#define NVMR_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace nvmr
{

/**
 * Assemble iisa source text into a Program. Calls fatal() with a
 * line-numbered message on any syntax error.
 *
 * @param name Program name recorded in the image (for diagnostics).
 * @param source Full assembly source text.
 * @return The assembled program image.
 */
Program assemble(const std::string &name, const std::string &source);

} // namespace nvmr

#endif // NVMR_ISA_ASSEMBLER_HH

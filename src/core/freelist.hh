/**
 * @file
 * The NvMR free list (Section 4): an NVM-resident circular queue of
 * available mappings in the compiler-reserved region. Renames pop
 * from the head during execution; backups push retired mappings to
 * the tail and persist the read/write pointers. On a power loss the
 * pointers revert to their last persisted values, which hands the
 * un-persisted pops out again.
 */

#ifndef NVMR_CORE_FREELIST_HH
#define NVMR_CORE_FREELIST_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

class FaultInjector;

/** NVM circular queue of available block mappings. */
class FreeList
{
  public:
    /**
     * @param capacity Maximum number of mappings the list can hold.
     * @param params Technology constants (NVM slot access costs).
     * @param sink Overhead-energy sink.
     */
    FreeList(uint32_t capacity, const TechParams &params,
             EnergySink &sink);

    /**
     * Fill the list with the reserved region's block addresses
     * (unaccounted; done by the "compiler" before execution) and
     * persist the initial pointers.
     */
    void initFill(Addr reserved_base, uint32_t block_bytes,
                  uint32_t count);

    bool empty() const { return count == 0; }
    bool full() const { return count == capacity; }
    uint32_t size() const { return count; }

    /** Pop the mapping at the head (1 NVM slot read, charged). */
    Addr pop();

    /** Push a mapping at the tail (1 NVM slot write, charged). */
    void push(Addr mapping);

    /** Persist head/tail pointers (2 NVM word writes, charged). */
    void persistPointers();

    /** Power loss: revert the pointers to the last persisted copy. */
    void restorePointers();

    /** Cost of persisting the pointers (for backup estimates). */
    NanoJoules persistPointersCostNj() const;

    /**
     * Snapshot of the queue's live contents, head first (unaccounted;
     * the src/check conservation checker audits it against the map
     * table). Buffered transaction pushes are not yet live and are
     * excluded; checkers run at commit points where none are pending.
     */
    std::vector<Addr>
    liveSlots() const
    {
        std::vector<Addr> out;
        out.reserve(count);
        for (uint32_t i = 0; i < count; ++i)
            out.push_back(slots[(readPtr + i) % capacity]);
        return out;
    }

    /** Crash/bit-error injection for slot and pointer persists. */
    void attachFaults(FaultInjector *injector) { faults = injector; }

    // ------------------------------------------------------------------
    // Backup transaction (fault injection only)
    // ------------------------------------------------------------------

    /**
     * Open a backup transaction. Until commit, pushes are charged
     * normally but buffered outside the queue (so a rolled-back
     * backup cannot have overwritten live slots, and a pop within
     * the same backup can never hand a just-retired mapping out
     * again), and persistPointers() stages its values instead of
     * making them durable.
     */
    void beginTxn();

    /** Apply buffered pushes and make staged pointers durable. */
    void commitTxn();

    /** Torn backup: drop buffered pushes and staged pointers. The
     *  caller then runs restorePointers() as usual. */
    void rollbackTxn();

  private:
    uint32_t capacity;
    const TechParams &tech;
    EnergySink &sink;
    FaultInjector *faults = nullptr;

    std::vector<Addr> slots;
    uint32_t readPtr = 0;
    uint32_t writePtr = 0;
    uint32_t count = 0;

    uint32_t persistedReadPtr = 0;
    uint32_t persistedWritePtr = 0;
    uint32_t persistedCount = 0;

    bool txnActive = false;
    std::vector<Addr> pendingPushes;
    bool stagedValid = false;
    uint32_t stagedReadPtr = 0;
    uint32_t stagedWritePtr = 0;
    uint32_t stagedCount = 0;
};

} // namespace nvmr

#endif // NVMR_CORE_FREELIST_HH

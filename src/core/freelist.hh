/**
 * @file
 * The NvMR free list (Section 4): an NVM-resident circular queue of
 * available mappings in the compiler-reserved region. Renames pop
 * from the head during execution; backups push retired mappings to
 * the tail and persist the read/write pointers. On a power loss the
 * pointers revert to their last persisted values, which hands the
 * un-persisted pops out again.
 */

#ifndef NVMR_CORE_FREELIST_HH
#define NVMR_CORE_FREELIST_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

/** NVM circular queue of available block mappings. */
class FreeList
{
  public:
    /**
     * @param capacity Maximum number of mappings the list can hold.
     * @param params Technology constants (NVM slot access costs).
     * @param sink Overhead-energy sink.
     */
    FreeList(uint32_t capacity, const TechParams &params,
             EnergySink &sink);

    /**
     * Fill the list with the reserved region's block addresses
     * (unaccounted; done by the "compiler" before execution) and
     * persist the initial pointers.
     */
    void initFill(Addr reserved_base, uint32_t block_bytes,
                  uint32_t count);

    bool empty() const { return count == 0; }
    bool full() const { return count == capacity; }
    uint32_t size() const { return count; }

    /** Pop the mapping at the head (1 NVM slot read, charged). */
    Addr pop();

    /** Push a mapping at the tail (1 NVM slot write, charged). */
    void push(Addr mapping);

    /** Persist head/tail pointers (2 NVM word writes, charged). */
    void persistPointers();

    /** Power loss: revert the pointers to the last persisted copy. */
    void restorePointers();

    /** Cost of persisting the pointers (for backup estimates). */
    NanoJoules persistPointersCostNj() const;

  private:
    uint32_t capacity;
    const TechParams &tech;
    EnergySink &sink;

    std::vector<Addr> slots;
    uint32_t readPtr = 0;
    uint32_t writePtr = 0;
    uint32_t count = 0;

    uint32_t persistedReadPtr = 0;
    uint32_t persistedWritePtr = 0;
    uint32_t persistedCount = 0;
};

} // namespace nvmr

#endif // NVMR_CORE_FREELIST_HH

#include "core/freelist.hh"

#include "common/log.hh"

namespace nvmr
{

FreeList::FreeList(uint32_t cap, const TechParams &params,
                   EnergySink &snk)
    : capacity(cap), tech(params), sink(snk)
{
    fatal_if(cap == 0, "free list needs at least one slot");
    slots.assign(cap, kNoAddr);
}

void
FreeList::initFill(Addr reserved_base, uint32_t block_bytes,
                   uint32_t n)
{
    panic_if(n > capacity, "free list overfilled");
    readPtr = 0;
    writePtr = n % capacity;
    count = n;
    for (uint32_t i = 0; i < n; ++i)
        slots[i] = reserved_base + i * block_bytes;
    persistedReadPtr = readPtr;
    persistedWritePtr = writePtr;
    persistedCount = count;
}

Addr
FreeList::pop()
{
    panic_if(count == 0, "pop from empty free list");
    sink.addCycles(tech.flashReadCycles);
    sink.consumeOverhead(tech.flashReadWordNj);
    Addr mapping = slots[readPtr];
    readPtr = (readPtr + 1) % capacity;
    --count;
    return mapping;
}

void
FreeList::push(Addr mapping)
{
    panic_if(count == capacity, "push to full free list");
    sink.addCycles(tech.flashWriteCycles);
    sink.consumeOverhead(tech.flashWriteWordNj);
    slots[writePtr] = mapping;
    writePtr = (writePtr + 1) % capacity;
    ++count;
}

void
FreeList::persistPointers()
{
    sink.addCycles(2 * tech.flashWriteCycles);
    sink.consumeOverhead(2 * tech.flashWriteWordNj);
    persistedReadPtr = readPtr;
    persistedWritePtr = writePtr;
    persistedCount = count;
}

void
FreeList::restorePointers()
{
    readPtr = persistedReadPtr;
    writePtr = persistedWritePtr;
    count = persistedCount;
}

NanoJoules
FreeList::persistPointersCostNj() const
{
    return 2 * (tech.flashWriteWordNj +
                static_cast<double>(tech.flashWriteCycles) *
                    tech.cpuCycleNj);
}

} // namespace nvmr

#include "core/freelist.hh"

#include "common/log.hh"
#include "fault/fault.hh"

namespace nvmr
{

FreeList::FreeList(uint32_t cap, const TechParams &params,
                   EnergySink &snk)
    : capacity(cap), tech(params), sink(snk)
{
    fatal_if(cap == 0, "free list needs at least one slot");
    slots.assign(cap, kNoAddr);
}

void
FreeList::initFill(Addr reserved_base, uint32_t block_bytes,
                   uint32_t n)
{
    panic_if(n > capacity, "free list overfilled");
    readPtr = 0;
    writePtr = n % capacity;
    count = n;
    for (uint32_t i = 0; i < n; ++i)
        slots[i] = reserved_base + i * block_bytes;
    persistedReadPtr = readPtr;
    persistedWritePtr = writePtr;
    persistedCount = count;
}

Addr
FreeList::pop()
{
    panic_if(count == 0, "pop from empty free list");
    sink.addCycles(tech.flashReadCycles);
    sink.consumeOverhead(tech.flashReadWordNj);
    Addr mapping = slots[readPtr];
    readPtr = (readPtr + 1) % capacity;
    --count;
    return mapping;
}

void
FreeList::push(Addr mapping)
{
    if (faults && faults->enabled())
        faults->persistPoint();
    if (txnActive) {
        // Buffered until commit: the slot write is charged now but
        // the queue's live window is untouched, so a torn backup
        // cannot have clobbered entries the rollback resurrects
        // (pop-then-push wrap-around) and the retired mapping is
        // not poppable within the same backup.
        panic_if(count + pendingPushes.size() >= capacity,
                 "push to full free list");
        sink.addCycles(tech.flashWriteCycles);
        sink.consumeOverhead(tech.flashWriteWordNj);
        pendingPushes.push_back(mapping);
        return;
    }
    panic_if(count == capacity, "push to full free list");
    sink.addCycles(tech.flashWriteCycles);
    sink.consumeOverhead(tech.flashWriteWordNj);
    slots[writePtr] = mapping;
    writePtr = (writePtr + 1) % capacity;
    ++count;
}

void
FreeList::persistPointers()
{
    if (faults && faults->enabled()) {
        // Two interruptible word writes; the pointer pair only
        // becomes the durable record once both land.
        faults->persistPoint();
        sink.addCycles(tech.flashWriteCycles);
        sink.consumeOverhead(tech.flashWriteWordNj);
        faults->persistPoint();
        sink.addCycles(tech.flashWriteCycles);
        sink.consumeOverhead(tech.flashWriteWordNj);
    } else {
        sink.addCycles(2 * tech.flashWriteCycles);
        sink.consumeOverhead(2 * tech.flashWriteWordNj);
    }
    if (txnActive) {
        // Stage the post-commit pointer state (buffered pushes
        // included); commitTxn makes it durable with the rest of
        // the backup.
        uint32_t pending = static_cast<uint32_t>(pendingPushes.size());
        stagedReadPtr = readPtr;
        stagedWritePtr = (writePtr + pending) % capacity;
        stagedCount = count + pending;
        stagedValid = true;
        return;
    }
    persistedReadPtr = readPtr;
    persistedWritePtr = writePtr;
    persistedCount = count;
}

void
FreeList::beginTxn()
{
    txnActive = true;
    pendingPushes.clear();
    stagedValid = false;
}

void
FreeList::commitTxn()
{
    if (!txnActive)
        return;
    for (Addr mapping : pendingPushes) {
        panic_if(count == capacity, "push to full free list");
        slots[writePtr] = mapping;
        writePtr = (writePtr + 1) % capacity;
        ++count;
    }
    pendingPushes.clear();
    if (stagedValid) {
        persistedReadPtr = stagedReadPtr;
        persistedWritePtr = stagedWritePtr;
        persistedCount = stagedCount;
        stagedValid = false;
    }
    txnActive = false;
}

void
FreeList::rollbackTxn()
{
    pendingPushes.clear();
    stagedValid = false;
    txnActive = false;
}

void
FreeList::restorePointers()
{
    readPtr = persistedReadPtr;
    writePtr = persistedWritePtr;
    count = persistedCount;
}

NanoJoules
FreeList::persistPointersCostNj() const
{
    return 2 * (tech.flashWriteWordNj +
                static_cast<double>(tech.flashWriteCycles) *
                    tech.cpuCycleNj);
}

} // namespace nvmr

/**
 * @file
 * The NvMR architecture (Section 4): eliminates idempotency-violation
 * backups by renaming the NVM addresses of read-dominated dirty cache
 * blocks at eviction time. Renames target fresh locations popped from
 * the free list and are recorded in the volatile map-table cache; the
 * NVM map table is only updated at backups, so it always describes
 * the recovery image. Backups are forced only by dirty map-table-cache
 * evictions or by structural exhaustion (map table full / free list
 * empty), which reclamation (Section 4.8) mitigates.
 */

#ifndef NVMR_CORE_NVMR_ARCH_HH
#define NVMR_CORE_NVMR_ARCH_HH

#include <unordered_map>

#include "arch/arch.hh"
#include "core/freelist.hh"
#include "core/maptable.hh"
#include "core/mtcache.hh"

namespace nvmr
{

/** The renaming intermittent architecture. */
class NvmrArch : public DominanceArch
{
  public:
    NvmrArch(const SystemConfig &cfg, Nvm &nvm, EnergySink &sink);

    const char *name() const override { return "nvmr"; }

    void initialize(const Program &prog) override;

    void performBackup(const CpuSnapshot &snap,
                       BackupReason reason) override;
    NanoJoules backupCostNowNj() const override;
    void postBackup(BackupReason reason) override;

    void onPowerFail() override;
    CpuSnapshot performRestore() override;
    NanoJoules restoreCostNowNj() const override;

    /** Forward the injector to the NVM-resident structures. */
    void attachFaults(FaultInjector *injector) override;

    /** Forward the event sink to the map-table cache. */
    void attachTrace(TraceSink *sink_) override;

    /** Base address of the compiler-reserved renaming region. */
    Addr reservedBase() const { return reserved; }

    const MapTable &mapTableRef() const { return mapTable; }
    const MapTableCache &mtCacheRef() const { return mtc; }
    const FreeList &freeListRef() const { return freeList; }

  protected:
    std::vector<Word> fetchBlock(Addr block_addr) override;
    void violatingWriteback(CacheLine &line) override;
    void normalWriteback(CacheLine &line) override;
    Addr inspectMapping(Addr addr) const override;

    /** Backup-transaction hooks: shadow the map table and free list
     *  so a torn backup rolls back to the previous recovery image. */
    void shadowCapture() override;
    void shadowRollback() override;
    void onBackupCommitted() override;

  private:
    MapTable mapTable;
    MapTableCache mtc;
    FreeList freeList;
    Addr reserved = 0;

    /** How many times each tag has been renamed (observability
     *  bookkeeping only; charges nothing). */
    std::unordered_map<Addr, uint64_t> renameDepths;

    Histogram renameChainDepth{
        "rename_chain_depth",
        "per-tag cumulative rename count at each rename"};
    Histogram mtcResidency{
        "mtcache_residency",
        "LRU ticks a map-table-cache entry survived before eviction"};

    /** Count / trace / histogram one rename of `tag` to `fresh`. */
    void noteRename(Addr tag, Addr fresh);

    /** Mutation-hook state for InjectedBug::RenameAlias: the first
     *  fresh location popped, which the bug aliases everything onto. */
    bool bugFreshValid = false;
    Addr bugFirstFresh = 0;

    /** Apply the RenameAlias mutation hook to a popped location. */
    Addr bugAdjustFresh(Addr fresh);

    /**
     * NVM-resident reclamation redo record (mirrored here; survives
     * power failures). Reclaiming an entry performs a durable map-table
     * erase whose matching free-list push only becomes durable at the
     * next pointer persist; a crash in between would orphan the
     * reclaimed location forever. The record closes that window: it is
     * persisted (invalidate, write pair, revalidate -- never torn)
     * before an entry is touched and cleared after the entry's pushes
     * are pointer-persisted, and restore redoes any pending entry. All
     * steps are idempotent, so nested crashes during the redo are safe.
     */
    bool reclaimRecValid = false;
    Addr reclaimRecTag = 0;
    Addr reclaimRecMapping = 0;

    /** Charge (and expose to fault injection) `words` one-word record
     *  persists. */
    void chargeRecordPersist(unsigned words);
    void persistReclaimRecord(Addr tag, Addr mapping);
    void clearReclaimRecord();

    /** Copy `mapping` home to `tag`, erase the map-table entry, push
     *  the freed slot and persist the free-list pointers. Idempotent;
     *  `redo` tolerates already-applied steps. */
    void applyReclaimEntry(Addr tag, Addr mapping, bool redo);

    /** Restore-time repair: finish a reclaim cut short by a crash. */
    void redoPendingReclaim();

    /**
     * Find the map-table-cache entry for a tag, filling it from the
     * NVM map table on a miss (if the tag is mapped there). May
     * trigger a backup if the allocation evicts a dirty entry; in
     * that case any dirty cache line the caller held becomes clean.
     * Returns nullptr if the tag has no mapping anywhere.
     */
    MtcEntry *findOrFillEntry(Addr tag);

    /**
     * Make room for a new map-table-cache entry, backing up first if
     * the victim is dirty. Returns true if a backup ran (mappings
     * and line dirtiness may have changed; the caller must
     * re-resolve).
     */
    bool ensureEntrySpace(Addr tag);

    /** Install a map-table-cache entry into a guaranteed-clean
     *  victim slot (call ensureEntrySpace first). */
    MtcEntry &allocateEntry(Addr tag, Addr old_map, Addr new_map,
                            bool dirty, bool in_map_table);

    /** True if a brand-new tag can still be renamed (map table has a
     *  slot left for the next backup's flush). */
    bool mapTableHasRoomForNewTag() const;

    /** The charged, execution-time mapping of a block address. */
    Addr resolveMapping(Addr tag);
};

} // namespace nvmr

#endif // NVMR_CORE_NVMR_ARCH_HH

#include "core/mtcache.hh"

#include "common/log.hh"

namespace nvmr
{

MapTableCache::MapTableCache(uint32_t num_entries, uint32_t num_ways,
                             const TechParams &params, EnergySink &snk)
    : entries(num_entries), ways(num_ways ? num_ways : num_entries),
      tech(params), sink(snk)
{
    fatal_if(entries == 0, "map table cache needs entries");
    fatal_if(ways > entries || entries % ways != 0,
             "map table cache associativity must divide entries");
    fatal_if((numSets() & (numSets() - 1)) != 0,
             "map table cache set count must be a power of two");
    setMask = numSets() - 1;
    slots.resize(entries);
}

uint32_t
MapTableCache::setOf(Addr tag) const
{
    // Tags are block addresses; hash past the block-offset bits.
    uint64_t x = tag >> 4;
    x = (x ^ (x >> 16)) * 0x45d9f3b5ull;
    return static_cast<uint32_t>(x) & setMask;
}

MtcEntry *
MapTableCache::lookup(Addr tag)
{
    sink.consumeOverhead(tech.mtCacheAccessNj);
    uint32_t set = setOf(tag);
    for (uint32_t w = 0; w < ways; ++w) {
        MtcEntry &e = slots[set * ways + w];
        if (e.valid && e.tag == tag) {
            e.lruTick = ++tick;
            if (tracer)
                tracer->record(EventKind::MtcHit, tag);
            return &e;
        }
    }
    if (tracer)
        tracer->record(EventKind::MtcMiss, tag);
    return nullptr;
}

MtcEntry &
MapTableCache::victim(Addr tag)
{
    uint32_t set = setOf(tag);
    MtcEntry *lru = nullptr;
    for (uint32_t w = 0; w < ways; ++w) {
        MtcEntry &e = slots[set * ways + w];
        if (!e.valid)
            return e;
        if (!lru || e.lruTick < lru->lruTick)
            lru = &e;
    }
    return *lru;
}

void
MapTableCache::markDirty(MtcEntry &entry)
{
    if (!entry.dirty) {
        entry.dirty = true;
        ++dirtyCnt;
    }
}

void
MapTableCache::markClean(MtcEntry &entry)
{
    if (entry.dirty) {
        entry.dirty = false;
        panic_if(dirtyCnt == 0, "dirty count underflow");
        --dirtyCnt;
    }
}

void
MapTableCache::install(MtcEntry &slot, Addr tag, Addr old_map,
                       Addr new_map, bool dirty, bool in_map_table)
{
    sink.consumeOverhead(tech.mtCacheAccessNj);
    if (slot.valid) {
        if (residency)
            residency->sample(
                static_cast<double>(tick - slot.installTick));
        if (tracer)
            tracer->record(EventKind::MtcEvict, slot.tag,
                           slot.dirty ? 1 : 0);
    }
    markClean(slot);
    slot.valid = true;
    if (dirty)
        ++dirtyCnt;
    slot.dirty = dirty;
    slot.tag = tag;
    slot.oldMap = old_map;
    slot.newMap = new_map;
    slot.inMapTable = in_map_table;
    slot.lruTick = ++tick;
    slot.installTick = tick;
}

void
MapTableCache::invalidateTag(Addr tag)
{
    uint32_t set = setOf(tag);
    for (uint32_t w = 0; w < ways; ++w) {
        MtcEntry &e = slots[set * ways + w];
        if (e.valid && e.tag == tag) {
            markClean(e);
            e.valid = false;
            return;
        }
    }
}

void
MapTableCache::invalidateAll()
{
    for (MtcEntry &e : slots) {
        e.valid = false;
        e.dirty = false;
    }
    dirtyCnt = 0;
}

void
MapTableCache::forEach(const std::function<void(MtcEntry &)> &fn)
{
    for (MtcEntry &e : slots)
        fn(e);
}

void
MapTableCache::forEach(
    const std::function<void(const MtcEntry &)> &fn) const
{
    for (const MtcEntry &e : slots)
        fn(e);
}

uint32_t
MapTableCache::dirtyCount() const
{
    return dirtyCnt;
}

uint32_t
MapTableCache::pendingNewTags() const
{
    uint32_t n = 0;
    for (const MtcEntry &e : slots)
        n += e.valid && !e.inMapTable;
    return n;
}

} // namespace nvmr

/**
 * @file
 * The NvMR map table (Section 4): an NVM-resident table mapping
 * application block addresses (tags) to the NVM location holding
 * their most recently backed-up data. Updated only during backups
 * (from dirty map-table-cache entries) and during reclamation, so its
 * contents always describe the recovery image.
 */

#ifndef NVMR_CORE_MAPTABLE_HH
#define NVMR_CORE_MAPTABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

/** NVM-resident block-address mapping table. */
class MapTable
{
  public:
    MapTable(uint32_t capacity, const TechParams &params,
             EnergySink &sink);

    uint32_t capacity() const { return cap; }
    uint32_t size() const { return static_cast<uint32_t>(map.size()); }

    /**
     * Accounted lookup (one 2-word NVM entry read). Refreshes the
     * entry's (volatile) recency metadata used by reclamation.
     */
    std::optional<Addr> lookup(Addr tag);

    /**
     * Insert or update a mapping (one 2-word NVM entry write).
     * Inserting a new tag when full is a simulator bug: callers must
     * check hasRoomFor() first.
     */
    void set(Addr tag, Addr mapping);

    /** Invalidate a mapping (one NVM word write; reclamation). */
    void erase(Addr tag);

    /** True if a new tag could still be inserted. */
    bool hasRoomFor(Addr tag) const;

    /** Least-recently-used entry, the reclaim victim. */
    std::optional<std::pair<Addr, Addr>> lruEntry() const;

    /** Unaccounted lookup for validation/tests. */
    std::optional<Addr> peek(Addr tag) const;

  private:
    struct Entry
    {
        Addr mapping;
        uint64_t lastUse;
    };

    uint32_t cap;
    const TechParams &tech;
    EnergySink &sink;
    std::unordered_map<Addr, Entry> map;
    uint64_t tick = 0;
};

} // namespace nvmr

#endif // NVMR_CORE_MAPTABLE_HH

/**
 * @file
 * The NvMR map table (Section 4): an NVM-resident table mapping
 * application block addresses (tags) to the NVM location holding
 * their most recently backed-up data. Updated only during backups
 * (from dirty map-table-cache entries) and during reclamation, so its
 * contents always describe the recovery image.
 */

#ifndef NVMR_CORE_MAPTABLE_HH
#define NVMR_CORE_MAPTABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/types.hh"
#include "power/energy.hh"

namespace nvmr
{

class FaultInjector;

/** NVM-resident block-address mapping table. */
class MapTable
{
  public:
    MapTable(uint32_t capacity, const TechParams &params,
             EnergySink &sink);

    uint32_t capacity() const { return cap; }
    uint32_t size() const { return static_cast<uint32_t>(map.size()); }

    /**
     * Accounted lookup (one 2-word NVM entry read). Refreshes the
     * entry's (volatile) recency metadata used by reclamation.
     */
    std::optional<Addr> lookup(Addr tag);

    /**
     * Insert or update a mapping (one 2-word NVM entry write).
     * Inserting a new tag when full is a simulator bug: callers must
     * check hasRoomFor() first.
     */
    void set(Addr tag, Addr mapping);

    /** Invalidate a mapping (one NVM word write; reclamation). */
    void erase(Addr tag);

    /** True if a new tag could still be inserted. */
    bool hasRoomFor(Addr tag) const;

    /** Least-recently-used entry, the reclaim victim. */
    std::optional<std::pair<Addr, Addr>> lruEntry() const;

    /** Unaccounted lookup for validation/tests. */
    std::optional<Addr> peek(Addr tag) const;

    /** Visit every mapping as fn(tag, mapping), unaccounted (the
     *  src/check injectivity/conservation audits walk the table). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &kv : map)
            fn(kv.first, kv.second.mapping);
    }

    /** Crash injection for entry persists. An entry update is one
     *  interruptible persist boundary: the hardware flips a per-entry
     *  valid bit last, so a torn update leaves the old entry. */
    void attachFaults(FaultInjector *injector) { faults = injector; }

    // ------------------------------------------------------------------
    // Backup transaction (fault injection only)
    // ------------------------------------------------------------------

    /** Open a backup transaction: set()/erase() record the prior
     *  entry in an undo log until commit. */
    void beginTxn();

    /** Discard the undo log; updates since beginTxn stand. */
    void commitTxn();

    /** Torn backup: undo every update made since beginTxn. */
    void rollbackTxn();

  private:
    struct Entry
    {
        Addr mapping;
        uint64_t lastUse;
    };

    uint32_t cap;
    const TechParams &tech;
    EnergySink &sink;
    FaultInjector *faults = nullptr;
    std::unordered_map<Addr, Entry> map;
    uint64_t tick = 0;

    bool txnActive = false;
    /** First-touch undo log: tag -> entry before the transaction
     *  (nullopt = tag was absent). */
    std::unordered_map<Addr, std::optional<Entry>> undoLog;

    void recordUndo(Addr tag);
};

} // namespace nvmr

#endif // NVMR_CORE_MAPTABLE_HH

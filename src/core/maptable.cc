#include "core/maptable.hh"

#include "common/log.hh"
#include "fault/fault.hh"

namespace nvmr
{

MapTable::MapTable(uint32_t capacity, const TechParams &params,
                   EnergySink &snk)
    : cap(capacity), tech(params), sink(snk)
{
    fatal_if(capacity == 0, "map table needs at least one entry");
    map.reserve(capacity);
}

std::optional<Addr>
MapTable::lookup(Addr tag)
{
    // An entry read: tag + mapping words.
    sink.addCycles(2 * tech.flashReadCycles);
    sink.consumeOverhead(2 * tech.flashReadWordNj);
    auto it = map.find(tag);
    if (it == map.end())
        return std::nullopt;
    it->second.lastUse = ++tick;
    return it->second.mapping;
}

void
MapTable::set(Addr tag, Addr mapping)
{
    // One persist boundary for the whole entry: the valid bit flips
    // last, so a crash here leaves the previous entry readable.
    if (faults && faults->enabled())
        faults->persistPoint();
    if (txnActive)
        recordUndo(tag);
    sink.addCycles(2 * tech.flashWriteCycles);
    sink.consumeOverhead(2 * tech.flashWriteWordNj);
    auto it = map.find(tag);
    if (it != map.end()) {
        it->second.mapping = mapping;
        it->second.lastUse = ++tick;
        return;
    }
    panic_if(map.size() >= cap, "map table overflow");
    map.emplace(tag, Entry{mapping, ++tick});
}

void
MapTable::erase(Addr tag)
{
    if (faults && faults->enabled())
        faults->persistPoint();
    if (txnActive)
        recordUndo(tag);
    sink.addCycles(tech.flashWriteCycles);
    sink.consumeOverhead(tech.flashWriteWordNj);
    map.erase(tag);
}

void
MapTable::recordUndo(Addr tag)
{
    if (undoLog.count(tag))
        return; // first touch wins
    auto it = map.find(tag);
    if (it == map.end())
        undoLog.emplace(tag, std::nullopt);
    else
        undoLog.emplace(tag, it->second);
}

void
MapTable::beginTxn()
{
    txnActive = true;
    undoLog.clear();
}

void
MapTable::commitTxn()
{
    txnActive = false;
    undoLog.clear();
}

void
MapTable::rollbackTxn()
{
    for (const auto &[tag, prior] : undoLog) {
        if (prior)
            map[tag] = *prior;
        else
            map.erase(tag);
    }
    undoLog.clear();
    txnActive = false;
}

bool
MapTable::hasRoomFor(Addr tag) const
{
    return map.size() < cap || map.count(tag);
}

std::optional<std::pair<Addr, Addr>>
MapTable::lruEntry() const
{
    if (map.empty())
        return std::nullopt;
    auto lru = map.begin();
    for (auto it = map.begin(); it != map.end(); ++it)
        if (it->second.lastUse < lru->second.lastUse)
            lru = it;
    return std::make_pair(lru->first, lru->second.mapping);
}

std::optional<Addr>
MapTable::peek(Addr tag) const
{
    auto it = map.find(tag);
    if (it == map.end())
        return std::nullopt;
    return it->second.mapping;
}

} // namespace nvmr

#include "core/nvmr_arch.hh"

#include "common/log.hh"

namespace nvmr
{

NvmrArch::NvmrArch(const SystemConfig &config, Nvm &nvm_,
                   EnergySink &snk)
    : DominanceArch(config, nvm_, snk),
      mapTable(config.mapTableEntries, config.tech, snk),
      mtc(config.mtCacheEntries, config.mtCacheWays, config.tech, snk),
      freeList(config.effectiveFreeListEntries(), config.tech, snk)
{
    statRegistry.add(&renameChainDepth);
    statRegistry.add(&mtcResidency);
    mtc.attachResidency(&mtcResidency);
}

void
NvmrArch::attachTrace(TraceSink *sink_)
{
    DominanceArch::attachTrace(sink_);
    mtc.attachTrace(sink_);
}

void
NvmrArch::noteRename(Addr tag, Addr fresh)
{
    ++archStats.renames;
    renameChainDepth.sample(static_cast<double>(++renameDepths[tag]));
    if (tracer)
        tracer->record(EventKind::Rename, tag, fresh);
}

void
NvmrArch::initialize(const Program &prog)
{
    IntermittentArch::initialize(prog);
    uint32_t block = cfg.cache.blockBytes;
    uint32_t n = cfg.effectiveFreeListEntries();
    fatal_if(static_cast<uint64_t>(n) * block > nvm.sizeBytes(),
             "reserved renaming region does not fit in NVM");
    reserved = nvm.sizeBytes() - n * block;
    fatal_if(appEnd > reserved,
             "program data overlaps the reserved renaming region");
    freeList.initFill(reserved, block, n);
}

// ----------------------------------------------------------------------
// Mapping resolution
// ----------------------------------------------------------------------

bool
NvmrArch::ensureEntrySpace(Addr tag)
{
    MtcEntry &slot = mtc.victim(tag);
    if (slot.valid && slot.dirty) {
        // Section 4.6: evicting a dirty map-table-cache entry forces
        // a backup so the NVM map table stays in sync with the most
        // recent backup. The backup cleans every entry -- and may
        // change this very tag's mapping (rename-at-backup), so the
        // caller must re-resolve the mapping afterwards.
        panic_if(!host, "NvmrArch needs an attached BackupHost");
        host->requestBackup(BackupReason::MtCacheEviction);
        panic_if(slot.dirty, "backup left a dirty map table cache");
        return true;
    }
    return false;
}

MtcEntry &
NvmrArch::allocateEntry(Addr tag, Addr old_map, Addr new_map,
                        bool dirty, bool in_map_table)
{
    MtcEntry &slot = mtc.victim(tag);
    panic_if(slot.valid && slot.dirty,
             "allocating over a dirty map-table-cache entry; call "
             "ensureEntrySpace first");
    mtc.install(slot, tag, old_map, new_map, dirty, in_map_table);
    return slot;
}

MtcEntry *
NvmrArch::findOrFillEntry(Addr tag)
{
    MtcEntry *entry = mtc.lookup(tag);
    if (entry)
        return entry;
    // Make room before reading the map table: the eviction backup
    // can rename this block and update its map-table entry.
    ensureEntrySpace(tag);
    entry = mtc.lookup(tag);
    if (entry)
        return entry; // installed by the backup path
    auto mapping = mapTable.lookup(tag);
    if (!mapping)
        return nullptr;
    return &allocateEntry(tag, *mapping, *mapping, false, true);
}

bool
NvmrArch::mapTableHasRoomForNewTag() const
{
    // Every pending (not yet persisted) new tag will need a map
    // table slot at the next backup; keep the accounting conservative
    // so a backup can never overflow the table.
    return mapTable.size() + mtc.pendingNewTags() <
           mapTable.capacity();
}

Addr
NvmrArch::resolveMapping(Addr tag)
{
    MtcEntry *entry = findOrFillEntry(tag);
    return entry ? entry->newMap : tag;
}

std::vector<Word>
NvmrArch::fetchBlock(Addr block_addr)
{
    Addr src = resolveMapping(block_addr);
    std::vector<Word> data(cfg.cache.wordsPerBlock());
    for (uint32_t w = 0; w < data.size(); ++w)
        data[w] = nvm.readWord(src + w * kWordBytes);
    return data;
}

// ----------------------------------------------------------------------
// Writebacks
// ----------------------------------------------------------------------

void
NvmrArch::normalWriteback(CacheLine &line)
{
    // Write-dominated (or unknown) dirty block: persisting it in
    // place is idempotent-safe, but it must still go to the block's
    // *latest* mapping (Section 4.4).
    Addr target = resolveMapping(line.blockAddr);
    if (line.dirty) { // a backup inside resolveMapping may have
        writeBlockTo(target, line); // cleaned the line already
        line.markClean();
    }
}

void
NvmrArch::violatingWriteback(CacheLine &line)
{
    const Addr tag = line.blockAddr;

    MtcEntry *entry = findOrFillEntry(tag);
    if (!line.dirty)
        return; // cleaned by a backup during the map-table-cache fill

    if (entry && entry->dirty) {
        // Already renamed since the last backup: entry->newMap is
        // scratch space the recovery image never references, so the
        // block may be persisted there again without a fresh rename.
        writeBlockTo(entry->newMap, line);
        line.markClean();
        return;
    }

    // A fresh rename is needed. Structural hazards force a backup
    // instead (which persists the block and starts a new section).
    panic_if(!host, "NvmrArch needs an attached BackupHost");
    if (!entry && !mapTableHasRoomForNewTag()) {
        host->requestBackup(BackupReason::MapTableFull);
        panic_if(line.dirty, "backup left the violating line dirty");
        return;
    }
    if (freeList.empty()) {
        host->requestBackup(BackupReason::FreeListEmpty);
        panic_if(line.dirty, "backup left the violating line dirty");
        return;
    }

    if (!entry) {
        // First rename of this block: its old (recovery) mapping is
        // the home address itself. If making room forces a backup,
        // the backup persists (and may rename) this line, so there
        // is nothing left to do.
        if (ensureEntrySpace(tag)) {
            panic_if(line.dirty, "backup left the line dirty");
            return;
        }
        entry = &allocateEntry(tag, tag, tag, false, false);
    }

    Addr fresh = bugAdjustFresh(freeList.pop());
    entry->newMap = fresh;
    mtc.markDirty(*entry);
    sink.consumeOverhead(cfg.tech.mtCacheAccessNj);
    noteRename(tag, fresh);
    writeBlockTo(fresh, line);
    line.markClean();
}

Addr
NvmrArch::bugAdjustFresh(Addr fresh)
{
    // Mutation hook for the src/check acceptance tests: alias every
    // rename onto the first location ever popped, violating map-table
    // injectivity and corrupting any aliased tag's recovery data.
    if (cfg.injectedBug != InjectedBug::RenameAlias)
        return fresh;
    if (!bugFreshValid) {
        bugFreshValid = true;
        bugFirstFresh = fresh;
        return fresh;
    }
    return bugFirstFresh;
}

// ----------------------------------------------------------------------
// Backup / restore / reclaim
// ----------------------------------------------------------------------

void
NvmrArch::performBackup(const CpuSnapshot &snap, BackupReason reason)
{
    // 1. Persist every dirty cache block. Write-dominated blocks may
    //    be persisted to their current mapping in place (idempotent
    //    re-execution nullifies a torn write), but a read-dominated
    //    block's current mapping *is* its recovery image, so it is
    //    renamed and persisted out of place instead -- this is how
    //    NvMR escapes the atomicity (double-buffering) constraint
    //    Clank pays for (Sections 3.4-3.6).
    cache.forEachLine([&](CacheLine &line) {
        if (!line.valid || !line.dirty)
            return;
        const Addr tag = line.blockAddr;
        MtcEntry *entry = mtc.lookup(tag);
        bool needs_oop = line.compositeReadDominated() &&
                         (!entry || !entry->dirty);

        // Renaming a tag the NVM map table does not know yet needs a
        // table slot at flush time; account for all pending inserts.
        auto room_for = [&](const MtcEntry *e) {
            if (e)
                return e->inMapTable ||
                       mapTable.size() + mtc.pendingNewTags() <=
                           mapTable.capacity();
            return mapTableHasRoomForNewTag();
        };

        if (entry && !needs_oop) {
            writeBlockTo(entry->newMap, line);
        } else if (entry) {
            // Clean entry, read-dominated block: rename in place of
            // a journalled double write.
            if (!freeList.empty() && room_for(entry)) {
                Addr fresh = bugAdjustFresh(freeList.pop());
                entry->newMap = fresh;
                mtc.markDirty(*entry);
                noteRename(tag, fresh);
                writeBlockTo(fresh, line);
            } else {
                // In-place overwrite of the recovery image: journal
                // it (home write deferred under fault injection).
                journaledWriteBlock(entry->newMap, line);
            }
        } else {
            // No cached entry: consult the NVM map table directly
            // (allocating here could evict a dirty entry and recurse
            // into another backup).
            auto mapping = mapTable.lookup(tag);
            Addr current = mapping ? *mapping : tag;
            if (!needs_oop) {
                writeBlockTo(current, line);
            } else if (!freeList.empty() &&
                       (mapping || room_for(nullptr))) {
                Addr fresh = bugAdjustFresh(freeList.pop());
                noteRename(tag, fresh);
                writeBlockTo(fresh, line);
                mapTable.set(tag, fresh);
                if (!cfg.reclaimEnabled || current >= reserved)
                    freeList.push(current);
            } else {
                // Structures exhausted: fall back to the journalled
                // double write, like Clank.
                journaledWriteBlock(current, line);
            }
        }
        line.markClean();
        line.dirtyWordMask = 0;
    });

    // 2. Flush dirty map-table-cache entries into the NVM map table,
    //    retiring the old mappings onto the free list (Figure 9).
    mtc.forEach([&](MtcEntry &entry) {
        if (!entry.valid || !entry.dirty)
            return;
        mapTable.set(entry.tag, entry.newMap);
        bool push_old = entry.oldMap != entry.newMap &&
                        (!cfg.reclaimEnabled || entry.oldMap >= reserved);
        // Mutation hook: FreeListLeak drops the retired mapping on
        // the floor instead of returning it (a conservation leak the
        // src/check invariant layer must catch).
        if (push_old && cfg.injectedBug != InjectedBug::FreeListLeak)
            freeList.push(entry.oldMap);
        entry.oldMap = entry.newMap;
        mtc.markClean(entry);
        entry.inMapTable = true;
    });

    // 3. Registers + PC, 4. free-list pointers, 5. dominance reset.
    // The free-list pointer pair is the last NVM persist, so its
    // second word doubles as this backup's commit record.
    persistSnapshot(snap);
    freeList.persistPointers();
    resetDominanceState();
    commitBackup(reason);
}

void
NvmrArch::attachFaults(FaultInjector *injector)
{
    DominanceArch::attachFaults(injector);
    mapTable.attachFaults(injector);
    freeList.attachFaults(injector);
}

void
NvmrArch::shadowCapture()
{
    mapTable.beginTxn();
    freeList.beginTxn();
}

void
NvmrArch::shadowRollback()
{
    mapTable.rollbackTxn();
    freeList.rollbackTxn();
}

void
NvmrArch::onBackupCommitted()
{
    mapTable.commitTxn();
    freeList.commitTxn();
}

NanoJoules
NvmrArch::backupCostNowNj() const
{
    NanoJoules cost = 0;
    // Dirty map-table-cache entries: 2-word map-table write + 1-word
    // free-list push each.
    uint64_t dirty_entries = mtc.dirtyCount();
    cost += static_cast<double>(dirty_entries) *
            (nvmWriteCostNj(2) + nvmWriteCostNj(1) +
             cfg.tech.mtCacheAccessNj);
    // Dirty cache blocks: block write plus the worst-case resolve /
    // rename metadata (map-table read, map-table write, free-list
    // push).
    uint64_t dirty_blocks = cache.dirtyCount();
    cost += static_cast<double>(dirty_blocks) *
            (nvmWriteCostNj(cfg.cache.wordsPerBlock()) +
             nvmReadCostNj(2) + nvmWriteCostNj(3) +
             cfg.tech.mtCacheAccessNj);
    cost += snapshotCostNj();
    cost += freeList.persistPointersCostNj();
    // Margin for SRAM/bloom incidentals.
    return cost * 1.05 + 10.0;
}

void
NvmrArch::postBackup(BackupReason reason)
{
    // Section 4.8 reclaims after a map-table-full violation backup.
    // We also reclaim when the free list runs dry: with reclamation
    // enabled, application addresses are never recycled through the
    // free list, so reclaiming is the only way to replenish it.
    bool structural = reason == BackupReason::MapTableFull ||
                      reason == BackupReason::FreeListEmpty;
    if (!structural || !cfg.reclaimEnabled)
        return;
    // Section 4.8: reclaim map-table entries so renaming can resume.
    // Runs immediately after a persisted backup, so every mapping
    // holds exactly its block's recovery data and every cache line
    // and map-table-cache entry is clean.
    uint32_t batch = cfg.effectiveReclaimBatch();
    for (uint32_t i = 0; i < batch; ++i) {
        auto victim = mapTable.lruEntry();
        if (!victim)
            break;
        auto [tag, mapping] = *victim;
        // Crash-safe per-entry protocol: record, apply (copy home,
        // erase, push, persist pointers), clear. A crash at any point
        // leaves either the committed record to redo from, or a fully
        // durable entry; the orphan window between the durable erase
        // and the pointer persist is closed.
        persistReclaimRecord(tag, mapping);
        applyReclaimEntry(tag, mapping, /*redo=*/false);
        clearReclaimRecord();
        ++archStats.reclaims;
        if (tracer)
            tracer->record(EventKind::Reclaim, tag, mapping);
    }
}

void
NvmrArch::chargeRecordPersist(unsigned words)
{
    for (unsigned i = 0; i < words; ++i) {
        if (faults && faults->enabled())
            faults->persistPoint();
        sink.addCycles(cfg.tech.flashWriteCycles);
        sink.consumeOverhead(cfg.tech.flashWriteWordNj);
    }
}

void
NvmrArch::persistReclaimRecord(Addr tag, Addr mapping)
{
    // Invalidate, write the pair, then revalidate: a crash can never
    // leave a valid record with a torn tag/mapping pair.
    chargeRecordPersist(1);
    reclaimRecValid = false;
    chargeRecordPersist(2);
    reclaimRecTag = tag;
    reclaimRecMapping = mapping;
    chargeRecordPersist(1);
    reclaimRecValid = true;
}

void
NvmrArch::clearReclaimRecord()
{
    chargeRecordPersist(1);
    reclaimRecValid = false;
}

void
NvmrArch::applyReclaimEntry(Addr tag, Addr mapping, bool redo)
{
    if (mapping != tag) {
        // Idempotent: `mapping` stays untouched (it cannot be popped
        // until its push is pointer-persisted, which also clears the
        // record), so re-copying after a crash rewrites the same data.
        for (uint32_t w = 0; w < cfg.cache.wordsPerBlock(); ++w) {
            Word v = nvm.readWord(mapping + w * kWordBytes);
            nvm.writeWord(tag + w * kWordBytes, v);
        }
    }
    if (mapping >= reserved && !freeList.full()) {
        bool present = false;
        if (redo) {
            // The push may already be durable (crash between the
            // pointer persist and the record clear); pushing again
            // would hand the slot out twice.
            for (Addr slot : freeList.liveSlots())
                present |= slot == mapping;
        }
        if (!present)
            freeList.push(mapping);
    }
    mapTable.erase(tag);
    mtc.invalidateTag(tag);
    freeList.persistPointers();
}

void
NvmrArch::redoPendingReclaim()
{
    if (!reclaimRecValid)
        return;
    applyReclaimEntry(reclaimRecTag, reclaimRecMapping, /*redo=*/true);
    clearReclaimRecord();
}

void
NvmrArch::onPowerFail()
{
    DominanceArch::onPowerFail();
    mtc.invalidateAll();
    freeList.restorePointers();
}

CpuSnapshot
NvmrArch::performRestore()
{
    CpuSnapshot snap = IntermittentArch::performRestore();
    // Re-read the persisted free-list pointers.
    sink.addCycles(2 * cfg.tech.flashReadCycles);
    sink.consumeOverhead(2 * cfg.tech.flashReadWordNj);
    // Finish any reclaim entry a crash cut short (see the reclaim
    // record in the header). Runs before execution resumes so the
    // recovery image and free list are consistent again.
    redoPendingReclaim();
    return snap;
}

NanoJoules
NvmrArch::restoreCostNowNj() const
{
    return IntermittentArch::restoreCostNowNj() + nvmReadCostNj(2);
}

Addr
NvmrArch::inspectMapping(Addr addr) const
{
    Addr block = addr & ~(cfg.cache.blockBytes - 1);
    Addr mapped = block;
    bool found = false;
    mtc.forEach([&](const MtcEntry &entry) {
        if (entry.valid && entry.tag == block) {
            mapped = entry.newMap;
            found = true;
        }
    });
    if (!found) {
        if (auto m = mapTable.peek(block))
            mapped = *m;
    }
    return mapped + (addr - block);
}

} // namespace nvmr

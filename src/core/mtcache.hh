/**
 * @file
 * The NvMR map-table cache (Section 4.2): an on-chip SRAM,
 * set-associative cache of map-table entries. Each entry holds the
 * five fields of Figure 7: valid, dirty, tag, old mapping (the
 * persisted recovery location) and new mapping (the location written
 * since the last backup). A dirty entry eviction forces a backup so
 * the NVM map table always reflects the most recent backup.
 */

#ifndef NVMR_CORE_MTCACHE_HH
#define NVMR_CORE_MTCACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"
#include "power/energy.hh"

namespace nvmr
{

/** One map-table cache entry (Figure 7). */
struct MtcEntry
{
    bool valid = false;
    bool dirty = false;
    Addr tag = kNoAddr;
    Addr oldMap = kNoAddr;
    Addr newMap = kNoAddr;
    uint64_t lruTick = 0;
    /** Tick the entry was installed at (residency measurement). */
    uint64_t installTick = 0;

    /** True once this tag has a persisted NVM map-table entry;
     *  used to bound pending new-tag insertions. */
    bool inMapTable = false;
};

/** SRAM cache over the NVM map table. */
class MapTableCache
{
  public:
    /**
     * @param entries Total entries (512 in Table 2).
     * @param ways Associativity; 0 means fully associative.
     */
    MapTableCache(uint32_t entries, uint32_t ways,
                  const TechParams &params, EnergySink &sink);

    uint32_t numEntries() const { return entries; }

    /** Attach an event sink (hit/miss/evict events; null = off). */
    void attachTrace(TraceSink *sink_) { tracer = sink_; }

    /** Attach a residency histogram sampled at each eviction with
     *  the number of LRU ticks the victim stayed installed. */
    void attachResidency(Histogram *hist) { residency = hist; }

    /** Accounted lookup; refreshes LRU on hit, nullptr on miss. */
    MtcEntry *lookup(Addr tag);

    /** Choose the fill victim for a tag (invalid way preferred,
     *  else LRU). The caller handles a dirty victim (backup). */
    MtcEntry &victim(Addr tag);

    /** Install an entry into a line obtained from victim(). */
    void install(MtcEntry &slot, Addr tag, Addr old_map, Addr new_map,
                 bool dirty, bool in_map_table);

    /** Mark an entry dirty (rename recorded since the last backup). */
    void markDirty(MtcEntry &entry);

    /** Mark an entry clean (its mapping was flushed to the map
     *  table). */
    void markClean(MtcEntry &entry);

    /** Invalidate the entry for a tag if present (reclamation). */
    void invalidateTag(Addr tag);

    /** Drop everything (power loss). */
    void invalidateAll();

    /** Visit every entry. */
    void forEach(const std::function<void(MtcEntry &)> &fn);
    void forEach(const std::function<void(const MtcEntry &)> &fn) const;

    uint32_t dirtyCount() const;

    /** Valid entries whose tag has no NVM map-table entry yet. */
    uint32_t pendingNewTags() const;

  private:
    uint32_t entries;
    uint32_t ways;
    const TechParams &tech;
    EnergySink &sink;
    std::vector<MtcEntry> slots;
    uint64_t tick = 0;
    uint32_t dirtyCnt = 0;
    /** numSets() - 1, precomputed so setOf never divides. */
    uint32_t setMask = 0;
    TraceSink *tracer = nullptr;
    Histogram *residency = nullptr;

    uint32_t numSets() const { return entries / ways; }
    uint32_t setOf(Addr tag) const;
};

} // namespace nvmr

#endif // NVMR_CORE_MTCACHE_HH

#include "par/par.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>

#include "common/log.hh"

namespace nvmr::par
{

namespace
{

thread_local bool tInWorker = false;
std::atomic<unsigned> gJobs{0};

} // namespace

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
parseJobsValue(const char *text)
{
    fatal_if(!text || !*text, "--jobs needs a positive count");
    char *end = nullptr;
    unsigned long v = std::strtoul(text, &end, 10);
    fatal_if(*end != '\0' || v == 0 ||
                 v > std::numeric_limits<unsigned>::max(),
             "bad job count '", text, "'");
    return static_cast<unsigned>(v);
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("NVMR_JOBS"))
        return parseJobsValue(env);
    return hardwareJobs();
}

void
setGlobalJobs(unsigned jobs)
{
    gJobs.store(jobs, std::memory_order_relaxed);
}

unsigned
globalJobs()
{
    unsigned j = gJobs.load(std::memory_order_relaxed);
    return j ? j : defaultJobs();
}

bool
inWorker()
{
    return tInWorker;
}

// ----------------------------------------------------------------------
// Progress
// ----------------------------------------------------------------------

Progress::Progress(std::string label_, uint64_t total_, bool enabled_)
    : label(std::move(label_)), total(total_),
      enabled(enabled_ && total_ > 0 && isatty(fileno(stderr))),
      start(std::chrono::steady_clock::now()), lastRender(start)
{
}

Progress::~Progress()
{
    finish();
}

void
Progress::tick()
{
    uint64_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!enabled)
        return;
    // Render at most ~10 times/second; skip when another thread is
    // already rendering.
    if (!renderMutex.try_lock())
        return;
    auto now = std::chrono::steady_clock::now();
    if (d == total || now - lastRender > std::chrono::milliseconds(100)) {
        lastRender = now;
        render(d);
    }
    renderMutex.unlock();
}

void
Progress::render(uint64_t d)
{
    using namespace std::chrono;
    double secs =
        duration_cast<duration<double>>(steady_clock::now() - start)
            .count();
    double eta = d ? secs * static_cast<double>(total - d) /
                         static_cast<double>(d)
                   : 0.0;
    std::fprintf(stderr, "\r%s: %llu/%llu (%.0f%%) ETA %.0fs ",
                 label.c_str(), static_cast<unsigned long long>(d),
                 static_cast<unsigned long long>(total),
                 100.0 * static_cast<double>(d) /
                     static_cast<double>(total),
                 eta);
    std::fflush(stderr);
}

void
Progress::finish()
{
    if (!enabled || finished.exchange(true))
        return;
    std::lock_guard<std::mutex> g(renderMutex);
    std::fprintf(stderr, "\r\033[K");
    std::fflush(stderr);
}

// ----------------------------------------------------------------------
// parallelFor
// ----------------------------------------------------------------------

namespace
{

/** One contiguous index shard with its claim cursor, padded so
 *  cursors of different workers never share a cache line. */
struct alignas(64) Shard
{
    std::atomic<size_t> next{0};
    size_t end = 0;
};

} // namespace

void
parallelFor(size_t n, const std::function<void(size_t)> &body,
            unsigned jobs, Progress *progress)
{
    if (n == 0)
        return;
    unsigned want = jobs ? jobs : globalJobs();
    if (want > n)
        want = static_cast<unsigned>(n);
    if (want <= 1 || tInWorker) {
        // Serial (or nested-on-a-worker) execution: same index
        // order, same results -- the determinism baseline.
        for (size_t i = 0; i < n; ++i) {
            body(i);
            if (progress)
                progress->tick();
        }
        return;
    }

    std::vector<Shard> shards(want);
    for (unsigned w = 0; w < want; ++w) {
        shards[w].next.store(n * w / want,
                             std::memory_order_relaxed);
        shards[w].end = n * (w + 1) / want;
    }

    // Cancellation must preserve the serial failure: only indices
    // ABOVE the lowest recorded failure may be skipped, because a
    // still-unclaimed lower index could fail earlier. The rethrown
    // exception is then exactly the one a serial run would hit first.
    std::atomic<size_t> errorIdx{std::numeric_limits<size_t>::max()};
    std::mutex errMutex;
    std::exception_ptr firstError;

    auto runIndex = [&](size_t i) {
        if (i < errorIdx.load(std::memory_order_acquire)) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(errMutex);
                if (i < errorIdx.load(std::memory_order_relaxed)) {
                    errorIdx.store(i, std::memory_order_release);
                    firstError = std::current_exception();
                }
            }
        }
        if (progress)
            progress->tick();
    };

    auto worker = [&](unsigned self) {
        bool saved = tInWorker;
        tInWorker = true;
        // Drain the worker's own shard first (cache-friendly,
        // contention-free), then steal from the others.
        for (unsigned off = 0; off < want; ++off) {
            Shard &shard = shards[(self + off) % want];
            for (;;) {
                size_t i =
                    shard.next.fetch_add(1, std::memory_order_relaxed);
                if (i >= shard.end)
                    break;
                runIndex(i);
            }
        }
        tInWorker = saved;
    };

    std::vector<std::thread> threads;
    threads.reserve(want - 1);
    for (unsigned w = 1; w < want; ++w)
        threads.emplace_back(worker, w);
    worker(0); // the calling thread participates
    for (std::thread &t : threads)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace nvmr::par

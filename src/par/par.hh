/**
 * @file
 * Deterministic parallel execution engine for simulation campaigns.
 *
 * Every evaluation and verification campaign in this repository is an
 * embarrassingly parallel grid of independent Simulator runs. The
 * engine fans such grids out across a sharded thread pool (one
 * contiguous index shard per worker, work stealing from the busiest
 * neighbours when a shard drains) while preserving the determinism
 * contract (docs/performance.md): the body for index i writes only
 * state owned by index i, results are gathered in canonical index
 * order, and no engine decision ever feeds back into a simulation.
 * `--jobs 1` and `--jobs N` therefore produce bit-identical results.
 *
 * Worker count resolution, in priority order: the explicit `jobs`
 * argument, setGlobalJobs() (tools wire `--jobs` here), the NVMR_JOBS
 * environment variable, std::thread::hardware_concurrency().
 *
 * Nested parallelFor calls run inline on the calling worker, so
 * drivers that parallelise cells may freely call helpers (e.g.
 * runOnTraces) that parallelise internally.
 */

#ifndef NVMR_PAR_PAR_HH
#define NVMR_PAR_PAR_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace nvmr::par
{

/** std::thread::hardware_concurrency(), never 0. */
unsigned hardwareJobs();

/** NVMR_JOBS when set (fatal on garbage), else hardwareJobs(). */
unsigned defaultJobs();

/** Process-wide worker count used when parallelFor's `jobs` is 0.
 *  Passing 0 restores defaultJobs(). Tools call this from --jobs. */
void setGlobalJobs(unsigned jobs);

/** The currently effective worker count. */
unsigned globalJobs();

/** Parse a --jobs operand; fatal() on garbage or 0. */
unsigned parseJobsValue(const char *text);

/**
 * Throttled progress/ETA line on stderr. Thread-safe; renders only
 * when stderr is a terminal (campaign CSV/JSON on stdout stays
 * clean). tick() is cheap enough to call per cell, not per step.
 */
class Progress
{
  public:
    /**
     * @param label Short campaign label ("sweep", "fuzz", ...).
     * @param total Cell count; 0 disables rendering.
     * @param enabled Master switch (tools pass !quiet).
     */
    Progress(std::string label, uint64_t total, bool enabled = true);
    ~Progress();

    /** One cell finished. */
    void tick();

    /** Clear the line (called automatically on destruction). */
    void finish();

  private:
    void render(uint64_t done);

    std::string label;
    uint64_t total;
    bool enabled;
    std::atomic<uint64_t> done{0};
    std::atomic<bool> finished{false};
    std::mutex renderMutex;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point lastRender;
};

/**
 * Run body(i) for every i in [0, n) on up to `jobs` workers (0 =
 * globalJobs()). Returns when every index has run. The first body
 * exception (lowest index) is rethrown after all workers drain.
 * Runs inline when jobs <= 1, n <= 1, or when called from inside
 * another parallelFor body.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body,
                 unsigned jobs = 0, Progress *progress = nullptr);

/** True when the calling thread is a parallelFor worker. */
bool inWorker();

/**
 * Deterministic map: out[i] = fn(i), gathered in index order
 * regardless of execution order. T must be default-constructible
 * and movable.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(size_t n, Fn &&fn, unsigned jobs = 0,
            Progress *progress = nullptr)
{
    std::vector<T> out(n);
    parallelFor(
        n, [&](size_t i) { out[i] = fn(i); }, jobs, progress);
    return out;
}

} // namespace nvmr::par

#endif // NVMR_PAR_PAR_HH

#include "sim/simulator.hh"

#include "arch/clank.hh"
#include "arch/clank_original.hh"
#include "arch/hoop.hh"
#include "arch/ideal.hh"
#include "arch/task.hh"
#include "common/log.hh"
#include "core/nvmr_arch.hh"

namespace nvmr
{

// ----------------------------------------------------------------------
// Golden (continuous) execution
// ----------------------------------------------------------------------

namespace
{

/** Flat, energy-free memory for continuously-powered runs. */
class DirectPort : public DataPort
{
  public:
    explicit DirectPort(uint32_t size_bytes) : mem(size_bytes, 0) {}

    void
    loadImage(const std::vector<uint8_t> &image)
    {
        panic_if(image.size() > mem.size(), "image too large");
        std::copy(image.begin(), image.end(), mem.begin());
    }

    Word
    loadWord(Addr addr) override
    {
        check(addr, kWordBytes);
        Word w = 0;
        for (unsigned i = 0; i < kWordBytes; ++i)
            w |= static_cast<Word>(mem[addr + i]) << (8 * i);
        return w;
    }

    void
    storeWord(Addr addr, Word value) override
    {
        check(addr, kWordBytes);
        for (unsigned i = 0; i < kWordBytes; ++i)
            mem[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    }

    uint8_t
    loadByte(Addr addr) override
    {
        check(addr, 1);
        return mem[addr];
    }

    void
    storeByte(Addr addr, uint8_t value) override
    {
        check(addr, 1);
        mem[addr] = value;
    }

    const std::vector<uint8_t> &bytes() const { return mem; }

  private:
    std::vector<uint8_t> mem;

    void
    check(Addr addr, uint32_t n) const
    {
        panic_if(addr + n > mem.size(),
                 "golden run access out of range: ", addr);
    }
};

} // namespace

GoldenResult
runContinuous(const Program &prog, uint64_t max_instructions)
{
    // Size the flat memory generously past the data segment so the
    // program can use scratch space above its static data, matching
    // the intermittent runs (which have the whole application region
    // of NVM available).
    uint32_t size = std::max<uint32_t>(prog.dataSize() + 4096, 65536);
    DirectPort port(size);
    port.loadImage(prog.data);
    Cpu cpu(prog, port);

    GoldenResult result;
    while (!cpu.halted() && result.instructions < max_instructions) {
        cpu.step();
        ++result.instructions;
    }
    result.halted = cpu.halted();
    result.data = port.bytes();
    return result;
}

std::unique_ptr<IntermittentArch>
makeArch(ArchKind kind, const SystemConfig &cfg, Nvm &nvm,
         EnergySink &sink)
{
    switch (kind) {
      case ArchKind::Ideal:
        return std::make_unique<IdealArch>(cfg, nvm, sink);
      case ArchKind::Clank:
        return std::make_unique<ClankArch>(cfg, nvm, sink);
      case ArchKind::ClankOriginal:
        return std::make_unique<ClankOriginalArch>(cfg, nvm, sink);
      case ArchKind::Task:
        return std::make_unique<TaskArch>(cfg, nvm, sink);
      case ArchKind::Nvmr:
        return std::make_unique<NvmrArch>(cfg, nvm, sink);
      case ArchKind::Hoop:
        return std::make_unique<HoopArch>(cfg, nvm, sink);
      default:
        panic("bad arch kind");
    }
}

// ----------------------------------------------------------------------
// Simulator
// ----------------------------------------------------------------------

Simulator::Simulator(const Program &prog, ArchKind arch_kind,
                     const SystemConfig &config, BackupPolicy &pol,
                     const HarvestTrace &harvest, RunOptions options)
    : program(prog), cfg(config), policy(pol), trace(harvest),
      opts(options),
      cap(config.capacitorFarads, config.vMax, config.vOn,
          config.vOff, config.capScale, config.capExponent),
      nvm(config.nvmBytes, config.tech, *this),
      arch(makeArch(arch_kind, config, nvm, *this)),
      cpu(prog, *arch), injector(options.faults)
{
    arch->attachHost(this);
    nvm.attachFaults(&injector);
    arch->attachFaults(&injector);
    chargesMtLeak = dynamic_cast<NvmrArch *>(arch.get()) != nullptr;
    cap.setVoltage(opts.initialVoltage > 0 ? opts.initialVoltage
                                           : cap.vOnVolts());
    arch->addStat(&backupIntervalHist);
    arch->addStat(&onPeriodHist);
    arch->addStat(&nvmWearHist);
}

void
Simulator::attachTrace(TraceSink *sink_)
{
    tracer = sink_;
    if (sink_)
        sink_->bindClocks(&totalCycles, &activeCycles);
    arch->attachTrace(sink_);
    cpu.attachTrace(sink_);
    injector.attachTrace(sink_);
    nvm.attachTrace(sink_);
}

// ----------------------------------------------------------------------
// Energy sink
// ----------------------------------------------------------------------

ECat
Simulator::categoryFor(bool overhead) const
{
    switch (mode) {
      case EMode::Execute:
        return overhead ? ECat::ForwardOverhead : ECat::Forward;
      case EMode::Backup:
        return overhead ? ECat::BackupOverhead : ECat::Backup;
      case EMode::Restore:
        return overhead ? ECat::RestoreOverhead : ECat::Restore;
      case EMode::Reclaim:
        return ECat::Reclaim;
      default:
        panic("bad energy mode");
    }
}

void
Simulator::applyEnergy(NanoJoules nj, bool overhead)
{
    cap.drainNj(nj);
    ECat cat = categoryFor(overhead);
    if (mode == EMode::Execute)
        account.spendPending(cat, nj);
    else
        account.spendCommitted(cat, nj);
    checkBrownout();
}

void
Simulator::checkBrownout()
{
    if (!cap.dead())
        return;
    // A brown-out inside an atomic section used to be fatal; with
    // partial persists modeled it is just another torn backup the
    // recovery protocol handles. --strict-atomic restores the old
    // behavior for A/B comparison of cost-estimate regressions.
    panic_if(inAtomic && cfg.strictAtomic,
             "brown-out inside an atomic operation: a cost estimate "
             "is too low");
    throw PowerFailure{};
}

void
Simulator::consume(NanoJoules nj)
{
    applyEnergy(nj, false);
}

void
Simulator::consumeOverhead(NanoJoules nj)
{
    applyEnergy(nj, true);
}

void
Simulator::refreshHarvestCache()
{
    harvestMwCached = trace.powerMwAtCycle(totalCycles);
    harvestSampleEnd = (totalCycles / HarvestTrace::cyclesPerSample + 1) *
                       HarvestTrace::cyclesPerSample;
}

double
Simulator::harvestMwNow()
{
    if (totalCycles >= harvestSampleEnd)
        refreshHarvestCache();
    return harvestMwCached;
}

void
Simulator::addCycles(Cycles n)
{
    if (n == 0)
        return;
    if (totalCycles + n <= harvestSampleEnd) {
        // Whole interval inside the cached sample: same multiply
        // harvestedNj would do, without the per-sample walk.
        cap.harvestNj(harvestMwCached * HarvestTrace::njPerMwCycle *
                      static_cast<double>(n));
    } else {
        cap.harvestNj(trace.harvestedNj(totalCycles, n));
    }
    totalCycles += n;
    if (totalCycles >= harvestSampleEnd)
        refreshHarvestCache();
    activeCycles += n;
    double dn = static_cast<double>(n);
    applyEnergy(dn * (cfg.tech.cpuCycleNj + cfg.tech.leakNjPerCycle),
                false);
    if (chargesMtLeak)
        applyEnergy(dn * cfg.tech.mtCacheLeakNjPerCycle, true);
    injector.cyclePoint(totalCycles);
}

// ----------------------------------------------------------------------
// Backup orchestration
// ----------------------------------------------------------------------

void
Simulator::requestBackup(BackupReason reason)
{
    NanoJoules cost = arch->backupCostNowNj();
    if (cap.usableNj() < cost)
        throw PowerFailure{}; // cannot afford the backup: die instead

    if (tracer)
        tracer->record(EventKind::BackupBegin,
                       static_cast<uint64_t>(reason));
    injector.noteBackupStart();
    EMode saved = mode;
    mode = EMode::Backup;
    inAtomic = true;
    arch->beginBackupTxn();
    arch->performBackup(cpu.snapshot(), reason);
    account.commitPending();
    inAtomic = false;

    // The backup committed; replay any journaled home writes (crash-
    // safe: a crash here re-replays the journal at restore).
    arch->finishBackupTxn();

    // Post-backup work (NvMR reclamation) is crash-safe per entry and
    // therefore runs outside the atomic section.
    mode = EMode::Reclaim;
    arch->postBackup(reason);

    mode = saved;
    injector.noteBackupEnd();
    backupIntervalHist.sample(
        static_cast<double>(activeCycles - lastBackupActive));
    lastBackupActive = activeCycles;
    if (observer)
        observer->onBackup(reason, activeCycles);
    if (tracer)
        tracer->record(EventKind::BackupCommit,
                       static_cast<uint64_t>(reason),
                       arch->committedBackupSeq());
}

void
Simulator::hibernate()
{
    // JIT-style policies stop executing after their backup and wait
    // for the supply to recover or die. Volatile state is retained
    // while the capacitor stays above the brown-out voltage.
    if (observer)
        observer->onHibernate(activeCycles);
    if (tracer)
        tracer->record(EventKind::Hibernate);
    while (true) {
        Cycles step = HarvestTrace::cyclesPerSample;
        cap.harvestNj(trace.harvestedNj(totalCycles, step));
        totalCycles += step;
        NanoJoules leak = static_cast<double>(step) *
                          cfg.tech.hibernateLeakNjPerCycle;
        cap.drainNj(leak);
        account.spendCommitted(ECat::Forward, leak);
        if (cap.dead())
            throw PowerFailure{}; // pending is empty: no dead energy
        if (cap.canTurnOn()) {
            if (observer)
                observer->onWake(activeCycles);
            if (tracer)
                tracer->record(EventKind::Wake);
            return; // supply recovered; resume execution
        }
        if (totalCycles > opts.maxCycles)
            return; // give up; the main loop stops the run
    }
}

void
Simulator::waitForRecharge(NanoJoules need_nj)
{
    // A restore that costs more than a full capacitor can ever hold
    // (e.g. a HOOP redo log oversized for the platform) will never
    // become affordable: end the run instead of waiting forever.
    Capacitor full(cfg.capacitorFarads, cfg.vMax, cfg.vOn, cfg.vOff,
                   cfg.capScale, cfg.capExponent);
    full.setVoltage(cfg.vMax);
    if (need_nj > full.usableNj()) {
        warn("restore cost ", need_nj,
             " nJ exceeds a full capacitor (", full.usableNj(),
             " nJ); device cannot recover -- size the NVM "
             "structures to the capacitor");
        totalCycles = opts.maxCycles + 1;
        return;
    }
    while (totalCycles <= opts.maxCycles) {
        Cycles step = HarvestTrace::cyclesPerSample;
        cap.harvestNj(trace.harvestedNj(totalCycles, step));
        totalCycles += step;
        if (cap.canTurnOn() && cap.usableNj() >= need_nj)
            return;
    }
}

void
Simulator::rebootFromReset()
{
    // No backup has ever committed (the initial backup itself was
    // torn): there is nothing to restore. Boot the CPU from its
    // reset state and take the initial backup again -- exactly what
    // a real device does when it dies before its first checkpoint.
    while (totalCycles <= opts.maxCycles) {
        waitForRecharge(arch->backupCostNowNj() * 1.2 + 100.0);
        if (totalCycles > opts.maxCycles)
            return;
        cpu.reset();
        lastBackupActive = activeCycles;
        resumeActive = activeCycles;
        try {
            requestBackup(BackupReason::Initial);
            return;
        } catch (PowerFailure &) {
            panic_if(inAtomic && cfg.strictAtomic,
                     "power failure inside an atomic operation "
                     "(strict-atomic mode)");
            mode = EMode::Execute;
            inAtomic = false;
            account.pendingToDead();
            arch->onPowerFail();
            if (observer)
                observer->onPowerFailure(activeCycles);
            if (tracer)
                tracer->record(EventKind::PowerFail);
        }
    }
}

void
Simulator::handlePowerFailure()
{
    // Under --strict-atomic any power loss inside an atomic section
    // -- a genuine brown-out (already fatal in checkBrownout) or an
    // injected crash -- is the old fatal error.
    panic_if(inAtomic && cfg.strictAtomic,
             "power failure inside an atomic operation "
             "(strict-atomic mode)");
    mode = EMode::Execute;
    inAtomic = false;
    account.pendingToDead();
    arch->onPowerFail();
    onPeriodHist.sample(
        static_cast<double>(activeCycles - resumeActive));
    if (observer)
        observer->onPowerFailure(activeCycles);
    if (tracer)
        tracer->record(EventKind::PowerFail);

    if (!arch->hasPersistedState()) {
        rebootFromReset();
        return;
    }

    while (totalCycles <= opts.maxCycles) {
        waitForRecharge(arch->restoreCostNowNj() * 1.2 + 100.0);
        if (totalCycles > opts.maxCycles)
            return; // never recharged; run() reports incompletion

        mode = EMode::Restore;
        inAtomic = true;
        try {
            CpuSnapshot snap = arch->performRestore();
            inAtomic = false;
            mode = EMode::Execute;
            cpu.restore(snap);
            lastBackupActive = activeCycles;
            resumeActive = activeCycles;
            if (observer)
                observer->onRestore(activeCycles);
            if (tracer)
                tracer->record(EventKind::Restore, 0,
                               arch->committedBackupSeq());
            return;
        } catch (PowerFailure &) {
            // Power died again mid-restore (e.g. while replaying the
            // backup journal). The journal replay is idempotent, so
            // clean up and retry the whole restore.
            panic_if(inAtomic && cfg.strictAtomic,
                     "power failure inside an atomic operation "
                     "(strict-atomic mode)");
            mode = EMode::Execute;
            inAtomic = false;
            account.pendingToDead();
            arch->onPowerFail();
            if (observer)
                observer->onPowerFailure(activeCycles);
            if (tracer)
                tracer->record(EventKind::PowerFail);
        }
    }
}

void
Simulator::maybePolicyBackup()
{
    PolicyContext ctx{cap,
                      activeCycles,
                      activeCycles - lastBackupActive,
                      activeCycles - resumeActive,
                      arch->backupCostNowNj(),
                      harvestMwNow()};
    if (!policy.shouldBackup(ctx))
        return;
    requestBackup(BackupReason::Policy);
    if (policy.hibernateAfterBackup())
        hibernate();
}

// ----------------------------------------------------------------------
// Main loop
// ----------------------------------------------------------------------

RunResult
Simulator::run()
{
    policy.reset();
    if (tracer)
        tracer->record(EventKind::PowerOn);
    cpu.reset();
    arch->initialize(program);

    bool completed = false;
    try {
        requestBackup(BackupReason::Initial);
    } catch (PowerFailure &) {
        handlePowerFailure();
    }

    while (totalCycles <= opts.maxCycles) {
        try {
            StepResult sr = cpu.step();
            addCycles(sr.cycles);
            if (sr.halted) {
                requestBackup(BackupReason::Final);
                completed = true;
                break;
            }
            maybePolicyBackup();
        } catch (PowerFailure &) {
            handlePowerFailure();
            if (totalCycles > opts.maxCycles)
                break;
        }
    }

    bool validated = false;
    bool checked = false;
    if (completed && opts.validate) {
        GoldenResult golden = runContinuous(program);
        panic_if(!golden.halted, "golden run did not halt");
        validated = validateAgainstGolden(golden);
        checked = true;
    }
    arch->syncFaultCounters(injector.stats());
    nvm.forEachWornWord([&](Addr, uint64_t wear_count) {
        nvmWearHist.sample(static_cast<double>(wear_count));
    });
    RunResult result = makeResult(completed, validated);
    result.validationChecked = checked;
    return result;
}

bool
Simulator::validateAgainstGolden(const GoldenResult &golden) const
{
    // Compare every word of the application data segment, reading
    // through the architecture's latest mapping.
    uint32_t words = static_cast<uint32_t>(program.data.size()) /
                     kWordBytes;
    for (uint32_t w = 0; w < words; ++w) {
        Addr addr = w * kWordBytes;
        Word expect = 0;
        for (unsigned i = 0; i < kWordBytes; ++i)
            expect |= static_cast<Word>(golden.data[addr + i])
                      << (8 * i);
        if (arch->inspectWord(addr) != expect)
            return false;
    }
    return true;
}

RunResult
Simulator::makeResult(bool completed, bool validated) const
{
    RunResult r;
    r.program = program.name;
    r.arch = arch->name();
    r.policy = policy.name();
    r.trace = trace.name();
    r.completed = completed;
    r.validated = validated;
    r.activeCycles = activeCycles;
    r.totalCycles = totalCycles;
    r.instructions = cpu.instret();

    for (size_t i = 0; i < kNumECats; ++i)
        r.energy[i] = account.total(static_cast<ECat>(i));
    r.totalEnergyNj = account.grandTotal();

    const ArchStats &s = arch->stats();
    r.backups = static_cast<uint64_t>(s.backups.value());
    r.backupsByReason = s.backupsByReason;
    r.violations = static_cast<uint64_t>(s.violations.value());
    r.renames = static_cast<uint64_t>(s.renames.value());
    r.reclaims = static_cast<uint64_t>(s.reclaims.value());
    r.restores = static_cast<uint64_t>(s.restores.value());
    r.powerFailures = static_cast<uint64_t>(s.powerFailures.value());

    r.nvmReads = nvm.totalReads();
    r.nvmWrites = nvm.totalWrites();
    r.maxWear = nvm.maxWear();
    r.cacheHits = arch->dataCache().hits();
    r.cacheMisses = arch->dataCache().misses();

    r.tornBackups = static_cast<uint64_t>(s.tornBackups.value());
    const FaultStats &fs = injector.stats();
    r.injectedCrashes = fs.injectedCrashes;
    r.eccCorrected = fs.eccCorrected;
    r.eccUncorrectable = fs.eccUncorrectable;
    return r;
}

} // namespace nvmr

/**
 * @file
 * Human-readable reporting of run results: a full per-run report
 * (energy breakdown, backup reasons, structure stats) and compact
 * one-line summaries for sweep output. Used by the CLI driver, the
 * examples and the experiment harnesses.
 */

#ifndef NVMR_SIM_REPORT_HH
#define NVMR_SIM_REPORT_HH

#include <string>

#include "sim/simulator.hh"

namespace nvmr
{

/** Render a full multi-line report of one run. */
std::string formatRunReport(const RunResult &result);

/** One-line summary: program/arch/policy, energy, backups, status. */
std::string formatRunLine(const RunResult &result);

/** Render the energy breakdown as percentage shares. */
std::string formatEnergyBreakdown(const RunResult &result);

} // namespace nvmr

#endif // NVMR_SIM_REPORT_HH

/**
 * @file
 * Random program generation for differential testing: bounded-loop
 * programs mixing loads, stores, read-modify-writes, loop-varying
 * addresses, byte traffic and arithmetic over a seeded data array.
 * Used by the intermittent-correctness property suite and the
 * nvmr_fuzz tool.
 */

#ifndef NVMR_SIM_RANDPROG_HH
#define NVMR_SIM_RANDPROG_HH

#include <cstdint>
#include <string>

namespace nvmr
{

/** Tuning knobs for generated programs. */
struct RandProgParams
{
    /** Words in the data array (addresses wrap inside it). */
    uint32_t arrayWords = 256;

    /** Outer-loop iteration range. */
    uint32_t minIterations = 20;
    uint32_t maxIterations = 60;

    /** Random operations per loop body. */
    uint32_t minBodyOps = 15;
    uint32_t maxBodyOps = 40;

    /** Trip-count cap for generated inner loops; 0 disables the
     *  inner-loop operation entirely. */
    uint32_t maxInnerIterations = 6;

    /**
     * Hard bound on *taken backward branches* across the whole run.
     * Every loop the generator emits counts down an immutable trip
     * count, so total taken backward branches is computable at
     * generation time; the outer iteration count is clamped so the
     * product stays within this bound. Termination is therefore
     * guaranteed by construction, with the bound a config knob
     * rather than a hard-coded constant.
     */
    uint64_t maxBackwardBranches = 1u << 16;
};

/**
 * Generate a deterministic random iisa program. The same seed always
 * yields the same source (and the same `.rand` data contents).
 *
 * Generated programs always terminate: the only backward branches
 * are counted-down outer/inner loops whose counters no other
 * instruction writes, and the aggregate taken-branch count is
 * clamped to params.maxBackwardBranches.
 */
std::string makeRandomProgram(uint64_t seed,
                              const RandProgParams &params = {});

} // namespace nvmr

#endif // NVMR_SIM_RANDPROG_HH

/**
 * @file
 * Random program generation for differential testing: bounded-loop
 * programs mixing loads, stores, read-modify-writes, loop-varying
 * addresses, byte traffic and arithmetic over a seeded data array.
 * Used by the intermittent-correctness property suite and the
 * nvmr_fuzz tool.
 */

#ifndef NVMR_SIM_RANDPROG_HH
#define NVMR_SIM_RANDPROG_HH

#include <cstdint>
#include <string>

namespace nvmr
{

/** Tuning knobs for generated programs. */
struct RandProgParams
{
    /** Words in the data array (addresses wrap inside it). */
    uint32_t arrayWords = 256;

    /** Outer-loop iteration range. */
    uint32_t minIterations = 20;
    uint32_t maxIterations = 60;

    /** Random operations per loop body. */
    uint32_t minBodyOps = 15;
    uint32_t maxBodyOps = 40;
};

/**
 * Generate a deterministic random iisa program. The same seed always
 * yields the same source (and the same `.rand` data contents).
 */
std::string makeRandomProgram(uint64_t seed,
                              const RandProgParams &params = {});

} // namespace nvmr

#endif // NVMR_SIM_RANDPROG_HH

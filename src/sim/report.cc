#include "sim/report.hh"

#include <cstdio>
#include <sstream>

namespace nvmr
{

namespace
{

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

std::string
formatEnergyBreakdown(const RunResult &r)
{
    std::ostringstream os;
    double total = r.totalEnergyNj > 0 ? r.totalEnergyNj : 1.0;
    for (size_t i = 0; i < kNumECats; ++i) {
        ECat cat = static_cast<ECat>(i);
        if (r.energyOf(cat) <= 0)
            continue;
        os << "    " << ecatName(cat) << ": "
           << fmt("%.1f", r.energyOf(cat) / 1000.0) << " uJ ("
           << fmt("%.1f", r.energyOf(cat) / total * 100.0) << "%)\n";
    }
    return os.str();
}

std::string
formatRunReport(const RunResult &r)
{
    std::ostringstream os;
    os << "run: " << r.program << " on " << r.arch << " / "
       << r.policy << " / " << r.trace << "\n";
    os << "  status: "
       << (r.completed ? "completed" : "DID NOT COMPLETE");
    if (r.completed) {
        if (!r.validationChecked)
            os << ", validation skipped";
        else
            os << (r.validated ? ", validated against continuous run"
                               : ", VALIDATION FAILED");
    }
    os << "\n";
    os << "  instructions: " << r.instructions
       << " (incl. re-execution), active cycles: " << r.activeCycles
       << ", wall cycles: " << r.totalCycles << "\n";
    os << "  power failures: " << r.powerFailures
       << ", restores: " << r.restores << "\n";
    os << "  violations: " << r.violations
       << ", renames: " << r.renames << ", reclaims: " << r.reclaims
       << "\n";
    os << "  backups: " << r.backups << "\n";
    for (size_t i = 0; i < kNumBackupReasons; ++i) {
        if (r.backupsByReason[i] == 0)
            continue;
        os << "    " << backupReasonName(static_cast<BackupReason>(i))
           << ": " << r.backupsByReason[i] << "\n";
    }
    os << "  NVM: " << r.nvmReads << " reads, " << r.nvmWrites
       << " writes, max wear " << r.maxWear << "\n";
    // Fault-injection counters only appear when the fault layer was
    // active, so fault-free reports are byte-identical to before.
    if (r.injectedCrashes || r.tornBackups || r.eccCorrected ||
        r.eccUncorrectable)
        os << "  faults: " << r.injectedCrashes
           << " injected crashes, " << r.tornBackups
           << " torn backups, ECC " << r.eccCorrected
           << " corrected / " << r.eccUncorrectable
           << " uncorrectable\n";
    os << "  cache: " << r.cacheHits << " hits, " << r.cacheMisses
       << " misses\n";
    os << "  energy: " << fmt("%.1f", r.totalEnergyNj / 1000.0)
       << " uJ total\n";
    os << formatEnergyBreakdown(r);
    return os.str();
}

std::string
formatRunLine(const RunResult &r)
{
    std::ostringstream os;
    os << r.program << "/" << r.arch << "/" << r.policy << ": "
       << fmt("%.1f", r.totalEnergyNj / 1000.0) << " uJ, "
       << r.backups << " backups, " << r.powerFailures
       << " failures"
       << (r.completed ? "" : " [INCOMPLETE]")
       << (r.completed && r.validationChecked && !r.validated
               ? " [INVALID]"
               : "");
    return os.str();
}

} // namespace nvmr

/**
 * @file
 * Experiment harness: run a workload across a trace set, aggregate
 * the results (the paper averages across 10 voltage traces), compute
 * percent-energy-saved comparisons, and train the Spendthrift model
 * from JIT-oracle runs.
 */

#ifndef NVMR_SIM_EXPERIMENT_HH
#define NVMR_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "power/policy.hh"
#include "power/spendthrift.hh"
#include "power/trace.hh"
#include "sim/simulator.hh"

namespace nvmr
{

/** Trace-averaged results of one (program, arch, policy) cell. */
struct Aggregate
{
    int runs = 0;
    bool allCompleted = true;
    bool allValidated = true;

    NanoJoules totalEnergyNj = 0; ///< mean across traces
    std::array<NanoJoules, kNumECats> energy{};

    double backups = 0;
    double violations = 0;
    double renames = 0;
    double reclaims = 0;
    double restores = 0;
    double powerFailures = 0;
    double instructions = 0;
    double nvmWrites = 0;
    double maxWear = 0;

    NanoJoules energyOf(ECat cat) const
    {
        return energy[static_cast<size_t>(cat)];
    }
};

/** Run one cell across every trace in the set. */
std::vector<RunResult> runOnTraces(
    const Program &prog, ArchKind arch, const SystemConfig &cfg,
    const PolicySpec &policy, const std::vector<HarvestTrace> &traces,
    RunOptions opts = {});

/** Average a set of runs. */
Aggregate aggregate(const std::vector<RunResult> &runs);

/** Convenience: runOnTraces + aggregate. */
Aggregate runAveraged(const Program &prog, ArchKind arch,
                      const SystemConfig &cfg, const PolicySpec &policy,
                      const std::vector<HarvestTrace> &traces,
                      RunOptions opts = {});

/** Percent energy saved by `subject` relative to `baseline`. */
double percentSaved(const Aggregate &baseline,
                    const Aggregate &subject);

/**
 * Duplicate positive samples until they are ~1/4 of the set (JIT
 * fires are rare, and an unbalanced set trains an always-no
 * predictor). Exposed for the unit test of the 1/4 invariant.
 */
void balanceSamples(std::vector<SpendthriftSample> &samples);

/**
 * Collect JIT-oracle Spendthrift samples of one (program, trace)
 * cell -- the unit nvmr_train journals through the campaign layer.
 * `max_cycles` of 0 keeps the default safety cap; with a budget,
 * `completed` (when non-null) reports whether the workload finished
 * within it.
 */
std::vector<SpendthriftSample> collectSpendthriftCell(
    const Program &prog, ArchKind arch, const SystemConfig &cfg,
    const HarvestTrace &trace, uint64_t max_cycles = 0,
    bool *completed = nullptr);

/**
 * Train a Spendthrift model for one architecture (the paper trains
 * one per architecture): run the named workloads under the JIT oracle
 * on the 7 training traces, collect (harvest, voltage, fire) samples,
 * balance, train, and report held-out accuracy on the 3 test traces.
 *
 * @param test_accuracy Optional out-param for held-out accuracy.
 */
SpendthriftModel trainSpendthriftModel(
    ArchKind arch, const SystemConfig &cfg,
    const std::vector<std::string> &workload_names,
    double *test_accuracy = nullptr);

} // namespace nvmr

#endif // NVMR_SIM_EXPERIMENT_HH

#include "sim/randprog.hh"

#include <sstream>

#include "common/log.hh"
#include "common/xorshift.hh"

namespace nvmr
{

std::string
makeRandomProgram(uint64_t seed, const RandProgParams &params)
{
    fatal_if(params.arrayWords == 0, "empty random-program array");
    fatal_if((params.arrayWords & (params.arrayWords - 1)) != 0,
             "arrayWords must be a power of two (used as an address "
             "mask)");
    fatal_if(params.maxBackwardBranches == 0,
             "maxBackwardBranches must be positive");
    XorShift rng(seed);

    const int64_t max_word = params.arrayWords - 1;
    const int64_t max_byte = params.arrayWords * 4 - 1;

    uint64_t iters = static_cast<uint64_t>(
        rng.range(params.minIterations, params.maxIterations));
    if (iters == 0)
        iters = 1;

    // Generate the loop body first: inner loops contribute a known
    // trip count each, so once the body exists the total number of
    // taken backward branches per outer iteration is exact and the
    // outer count can be clamped to honour maxBackwardBranches.
    std::ostringstream body;
    uint64_t inner_trips = 0; // sum of inner-loop trip counts
    int inner_labels = 0;
    const int max_op = params.maxInnerIterations > 0 ? 8 : 7;

    int body_ops = static_cast<int>(
        rng.range(params.minBodyOps, params.maxBodyOps));
    for (int i = 0; i < body_ops; ++i) {
        int off = static_cast<int>(rng.range(0, max_word)) * 4;
        switch (rng.range(0, max_op)) {
          case 0:
            body << "        ld   r3, " << off << "(r1)\n";
            break;
          case 1:
            body << "        st   r3, " << off << "(r1)\n";
            break;
          case 2:
            body << "        st   r4, " << off << "(r1)\n";
            break;
          case 3: // read-modify-write
            body << "        ld   r5, " << off << "(r1)\n";
            body << "        addi r5, r5, " << rng.range(-9, 9)
                 << "\n";
            body << "        st   r5, " << off << "(r1)\n";
            break;
          case 4: // loop-varying address: arr[(i*4 + k) & mask]
            body << "        slli r6, r2, 2\n";
            body << "        addi r6, r6, " << rng.range(0, max_word)
                 << "\n";
            body << "        andi r6, r6, " << max_word << "\n";
            body << "        slli r6, r6, 2\n";
            body << "        add  r6, r6, r1\n";
            if (rng.range(0, 1))
                body << "        ld   r4, 0(r6)\n";
            else
                body << "        st   r4, 0(r6)\n";
            break;
          case 5: // byte traffic
            body << "        ldb  r5, " << rng.range(0, max_byte)
                 << "(r1)\n";
            body << "        stb  r5, " << rng.range(0, max_byte)
                 << "(r1)\n";
            break;
          case 6:
            body << "        add  r4, r4, r3\n";
            break;
          case 7:
            body << "        xor  r3, r3, r4\n";
            break;
          default: { // bounded inner loop (RMW sweep)
            int64_t k = rng.range(1, params.maxInnerIterations);
            body << "        li   r7, " << k << "\n";
            body << "inner" << inner_labels << ":\n";
            body << "        ld   r5, " << off << "(r1)\n";
            body << "        addi r5, r5, 1\n";
            body << "        st   r5, " << off << "(r1)\n";
            body << "        addi r7, r7, -1\n";
            body << "        bne  r7, r0, inner" << inner_labels
                 << "\n";
            ++inner_labels;
            inner_trips += static_cast<uint64_t>(k);
            break;
          }
        }
    }

    // Taken backward branches <= iters * (outer bne + inner trips).
    uint64_t per_outer = 1 + inner_trips;
    uint64_t outer_cap = params.maxBackwardBranches / per_outer;
    if (outer_cap == 0)
        outer_cap = 1;
    if (iters > outer_cap)
        iters = outer_cap;

    std::ostringstream os;
    os << "        .data\n";
    os << "arr:    .rand " << params.arrayWords << " "
       << (seed * 7 + 1) << " 0 65535\n";
    os << "        .text\n";
    os << "main:\n";
    os << "        li   r1, arr\n";
    os << "        li   r2, " << iters << "   # outer iterations\n";
    os << "        li   r3, 0\n";
    os << "        li   r4, 1\n";
    os << "outer:\n";
    os << body.str();
    os << "        addi r2, r2, -1\n";
    os << "        bne  r2, r0, outer\n";
    os << "        halt\n";
    return os.str();
}

} // namespace nvmr

#include "sim/randprog.hh"

#include <sstream>

#include "common/log.hh"
#include "common/xorshift.hh"

namespace nvmr
{

std::string
makeRandomProgram(uint64_t seed, const RandProgParams &params)
{
    fatal_if(params.arrayWords == 0, "empty random-program array");
    fatal_if((params.arrayWords & (params.arrayWords - 1)) != 0,
             "arrayWords must be a power of two (used as an address "
             "mask)");
    XorShift rng(seed);
    std::ostringstream os;

    const int64_t max_word = params.arrayWords - 1;
    const int64_t max_byte = params.arrayWords * 4 - 1;

    os << "        .data\n";
    os << "arr:    .rand " << params.arrayWords << " "
       << (seed * 7 + 1) << " 0 65535\n";
    os << "        .text\n";
    os << "main:\n";
    os << "        li   r1, arr\n";
    os << "        li   r2, "
       << rng.range(params.minIterations, params.maxIterations)
       << "   # outer iterations\n";
    os << "        li   r3, 0\n";
    os << "        li   r4, 1\n";
    os << "outer:\n";

    int body = static_cast<int>(
        rng.range(params.minBodyOps, params.maxBodyOps));
    for (int i = 0; i < body; ++i) {
        int off = static_cast<int>(rng.range(0, max_word)) * 4;
        switch (rng.range(0, 7)) {
          case 0:
            os << "        ld   r3, " << off << "(r1)\n";
            break;
          case 1:
            os << "        st   r3, " << off << "(r1)\n";
            break;
          case 2:
            os << "        st   r4, " << off << "(r1)\n";
            break;
          case 3: // read-modify-write
            os << "        ld   r5, " << off << "(r1)\n";
            os << "        addi r5, r5, " << rng.range(-9, 9) << "\n";
            os << "        st   r5, " << off << "(r1)\n";
            break;
          case 4: // loop-varying address: arr[(i*4 + k) & mask]
            os << "        slli r6, r2, 2\n";
            os << "        addi r6, r6, " << rng.range(0, max_word)
               << "\n";
            os << "        andi r6, r6, " << max_word << "\n";
            os << "        slli r6, r6, 2\n";
            os << "        add  r6, r6, r1\n";
            if (rng.range(0, 1))
                os << "        ld   r4, 0(r6)\n";
            else
                os << "        st   r4, 0(r6)\n";
            break;
          case 5: // byte traffic
            os << "        ldb  r5, " << rng.range(0, max_byte)
               << "(r1)\n";
            os << "        stb  r5, " << rng.range(0, max_byte)
               << "(r1)\n";
            break;
          case 6:
            os << "        add  r4, r4, r3\n";
            break;
          default:
            os << "        xor  r3, r3, r4\n";
            break;
        }
    }
    os << "        addi r2, r2, -1\n";
    os << "        bne  r2, r0, outer\n";
    os << "        halt\n";
    return os.str();
}

} // namespace nvmr

/**
 * @file
 * Full system configuration. Defaults reproduce Table 2 of the paper
 * (plus the HOOP configuration of Table 4 and capacitor parameters).
 */

#ifndef NVMR_SIM_CONFIG_HH
#define NVMR_SIM_CONFIG_HH

#include <cstdint>

#include "mem/cache.hh"
#include "power/energy.hh"

namespace nvmr
{

/** Which intermittent architecture to simulate. */
enum class ArchKind
{
    Ideal, ///< violations counted but never forced to back up (Table 3)
    Clank, ///< our-version Clank: backup on every idempotency violation
    ClankOriginal, ///< buffer-based cacheless Clank [16] (footnote 6)
    Task,  ///< task-boundary checkpointing (Section 2.2, Figure 2c)
    Nvmr,  ///< the paper's contribution: NVM renaming
    Hoop,  ///< simplified log-based HOOP (Section 6.2)
};

const char *archKindName(ArchKind kind);

/**
 * Deliberately seeded renaming bugs (mutation hooks). The checker
 * acceptance tests flip one on and prove the src/check oracle and
 * invariant layer catches, shrinks and replays it; production
 * configurations leave it at None.
 */
enum class InjectedBug
{
    None,
    /** Backup flush forgets to return retired mappings to the free
     *  list: a conservation (leak) violation. */
    FreeListLeak,
    /** Renames alias every fresh location onto the first one popped:
     *  a map-table injectivity violation plus data corruption. */
    RenameAlias,
};

/** System configuration (Table 2 defaults). */
struct SystemConfig
{
    // Data cache: 256 B, 8-way, 16 B blocks, LRU.
    CacheConfig cache{};

    // Global bloom filter: 8 one-bit entries.
    unsigned gbfBits = 8;
    unsigned gbfHashes = 1;

    // Map table cache: 512 entries, 8-way, LRU.
    uint32_t mtCacheEntries = 512;
    uint32_t mtCacheWays = 8;

    // Map table: 4096 entries, LRU (reclaim victim selection).
    uint32_t mapTableEntries = 4096;

    /** Free-list mappings; 0 selects the worst-case sizing of
     *  Section 5.1: map table + map-table cache + 1. */
    uint32_t freeListEntries = 0;

    /** Enable map-table reclamation (Section 4.8). */
    bool reclaimEnabled = false;

    /** Entries reclaimed per map-table-full backup; 0 selects
     *  mapTableEntries / 8. */
    uint32_t reclaimBatch = 0;

    /** Model the atomicity (double-buffering) cost of in-place
     *  backups (footnote 3 of the paper). Disabling it is an
     *  ablation that shows how much of NvMR's win comes from
     *  escaping the atomicity constraint (bench/ablation_atomicity).
     */
    bool modelBackupAtomicity = true;

    /** Treat any power failure inside an atomic section -- a genuine
     *  brown-out or an injected crash -- as fatal (the
     *  pre-fault-model behavior, for A/B comparison of cost
     *  estimates). Off by default: partial persists are modeled and
     *  the recovery protocol falls back to the last complete
     *  backup. */
    bool strictAtomic = false;

    /** Mutation hook for the checker acceptance tests (see the
     *  InjectedBug enum); None in every real configuration. */
    InjectedBug injectedBug = InjectedBug::None;

    // Flash: 2 MB.
    uint32_t nvmBytes = 2u << 20;

    // Supercapacitor: 100 mF, 2.4 V max.
    double capacitorFarads = 0.1;
    double vMax = 2.4;
    double vOn = 2.2;
    double vOff = 1.8;

    /** Documented power-law capacitance compression (DESIGN.md
     *  substitution 4): effective C = capScale * nominal^capExp. */
    double capScale = 8e-4;
    double capExponent = 0.607;

    // Simplified HOOP (Table 4): OOP buffer 128, OOP region 2048,
    // infinite zero-cost mapping table.
    uint32_t oopBufferEntries = 128;
    uint32_t oopRegionEntries = 2048;

    // Original Clank's read-first / write-first address buffers
    // (word-granular); 32+32 words matches the on-chip storage of
    // our-version Clank's 256 B cache.
    uint32_t rfBufferEntries = 32;
    uint32_t wfBufferEntries = 32;

    TechParams tech{};

    /**
     * A platform co-sized for a uF-range capacitor. Atomic backups
     * (and HOOP's restore-time GC) must fit one capacitor charge or
     * the device livelocks re-executing the same interval, so every
     * state-holding structure shrinks with the energy store: a 64 B
     * cache, small renaming/logging structures and storage-matched
     * original-Clank buffers. Table 2's defaults assume the 100 mF
     * capacitor.
     */
    static SystemConfig
    smallPlatform()
    {
        SystemConfig cfg;
        cfg.capacitorFarads = 500e-6;
        cfg.cache.sizeBytes = 64;
        cfg.cache.ways = 4;
        cfg.mtCacheEntries = 16;
        cfg.mtCacheWays = 4;
        cfg.mapTableEntries = 64;
        cfg.oopBufferEntries = 8;
        cfg.oopRegionEntries = 96;
        cfg.rfBufferEntries = 8;
        cfg.wfBufferEntries = 8;
        return cfg;
    }

    /** Effective free-list size after defaulting. */
    uint32_t
    effectiveFreeListEntries() const
    {
        return freeListEntries ? freeListEntries
                               : mapTableEntries + mtCacheEntries + 1;
    }

    /** Effective reclaim batch after defaulting. */
    uint32_t
    effectiveReclaimBatch() const
    {
        uint32_t batch = reclaimBatch ? reclaimBatch
                                      : mapTableEntries / 8;
        return batch ? batch : 1;
    }
};

} // namespace nvmr

#endif // NVMR_SIM_CONFIG_HH

#include "sim/experiment.hh"

#include "common/log.hh"
#include "common/xorshift.hh"
#include "par/par.hh"
#include "workloads/workloads.hh"

namespace nvmr
{

std::vector<RunResult>
runOnTraces(const Program &prog, ArchKind arch, const SystemConfig &cfg,
            const PolicySpec &policy,
            const std::vector<HarvestTrace> &traces, RunOptions opts)
{
    // Each trace is an independent cell: its own policy instance, its
    // own Simulator, results gathered in trace order (determinism
    // contract, docs/performance.md).
    return par::parallelMap<RunResult>(
        traces.size(), [&](size_t i) {
            auto pol = makePolicy(policy);
            Simulator sim(prog, arch, cfg, *pol, traces[i], opts);
            return sim.run();
        });
}

Aggregate
aggregate(const std::vector<RunResult> &runs)
{
    Aggregate agg;
    if (runs.empty())
        return agg;
    for (const RunResult &r : runs) {
        ++agg.runs;
        agg.allCompleted = agg.allCompleted && r.completed;
        agg.allValidated = agg.allValidated && r.validated;
        agg.totalEnergyNj += r.totalEnergyNj;
        for (size_t i = 0; i < kNumECats; ++i)
            agg.energy[i] += r.energy[i];
        agg.backups += static_cast<double>(r.backups);
        agg.violations += static_cast<double>(r.violations);
        agg.renames += static_cast<double>(r.renames);
        agg.reclaims += static_cast<double>(r.reclaims);
        agg.restores += static_cast<double>(r.restores);
        agg.powerFailures += static_cast<double>(r.powerFailures);
        agg.instructions += static_cast<double>(r.instructions);
        agg.nvmWrites += static_cast<double>(r.nvmWrites);
        agg.maxWear += static_cast<double>(r.maxWear);
    }
    double n = agg.runs;
    agg.totalEnergyNj /= n;
    for (auto &e : agg.energy)
        e /= n;
    agg.backups /= n;
    agg.violations /= n;
    agg.renames /= n;
    agg.reclaims /= n;
    agg.restores /= n;
    agg.powerFailures /= n;
    agg.instructions /= n;
    agg.nvmWrites /= n;
    agg.maxWear /= n;
    return agg;
}

Aggregate
runAveraged(const Program &prog, ArchKind arch, const SystemConfig &cfg,
            const PolicySpec &policy,
            const std::vector<HarvestTrace> &traces, RunOptions opts)
{
    return aggregate(
        runOnTraces(prog, arch, cfg, policy, traces, opts));
}

double
percentSaved(const Aggregate &baseline, const Aggregate &subject)
{
    if (baseline.totalEnergyNj <= 0)
        return 0.0;
    return (1.0 - subject.totalEnergyNj / baseline.totalEnergyNj) *
           100.0;
}

// ----------------------------------------------------------------------
// Spendthrift training
// ----------------------------------------------------------------------

namespace
{

/** JIT oracle that records labelled (harvest, voltage) samples. */
class RecordingJitPolicy : public JitPolicy
{
  public:
    RecordingJitPolicy(std::vector<SpendthriftSample> &samples,
                       Cycles poll_period = 64)
        : out(samples), pollPeriod(poll_period)
    {}

    bool
    shouldBackup(const PolicyContext &ctx) override
    {
        bool fire = JitPolicy::shouldBackup(ctx);
        if (ctx.activeCycles >= lastPoll + pollPeriod) {
            lastPoll = ctx.activeCycles;
            out.push_back({static_cast<float>(ctx.harvestMw),
                           static_cast<float>(ctx.cap.voltage()),
                           fire ? 1.0f : 0.0f});
        }
        return fire;
    }

    void reset() override { lastPoll = 0; }

  private:
    std::vector<SpendthriftSample> &out;
    Cycles pollPeriod;
    Cycles lastPoll = 0;
};

std::vector<SpendthriftSample>
collectSamples(ArchKind arch, const SystemConfig &cfg,
               const std::vector<std::string> &workload_names,
               const std::vector<HarvestTrace> &traces)
{
    // Assemble serially (cheap, and keeps the parallel region free of
    // shared mutable state), then fan the workload x trace grid out
    // and concatenate per-run sample vectors in canonical
    // (workload-major, trace-minor) order -- byte-identical to the
    // old serial append loop.
    std::vector<Program> progs;
    progs.reserve(workload_names.size());
    for (const std::string &name : workload_names)
        progs.push_back(assembleWorkload(name));

    size_t cells = progs.size() * traces.size();
    auto per_run = par::parallelMap<std::vector<SpendthriftSample>>(
        cells, [&](size_t i) {
            return collectSpendthriftCell(progs[i / traces.size()],
                                          arch, cfg,
                                          traces[i % traces.size()]);
        });

    std::vector<SpendthriftSample> samples;
    for (const auto &v : per_run)
        samples.insert(samples.end(), v.begin(), v.end());
    return samples;
}

} // namespace

std::vector<SpendthriftSample>
collectSpendthriftCell(const Program &prog, ArchKind arch,
                       const SystemConfig &cfg,
                       const HarvestTrace &trace, uint64_t max_cycles,
                       bool *completed)
{
    std::vector<SpendthriftSample> out;
    RecordingJitPolicy policy(out);
    RunOptions opts;
    opts.validate = false;
    if (max_cycles)
        opts.maxCycles = max_cycles;
    Simulator sim(prog, arch, cfg, policy, trace, opts);
    RunResult r = sim.run();
    if (completed)
        *completed = r.completed;
    return out;
}

void
balanceSamples(std::vector<SpendthriftSample> &samples)
{
    size_t positives = 0;
    for (const auto &s : samples)
        positives += s.label > 0.5f;
    if (positives == 0 || positives * 4 >= samples.size())
        return;
    std::vector<SpendthriftSample> pos;
    for (const auto &s : samples)
        if (s.label > 0.5f)
            pos.push_back(s);
    // Appending k duplicates must satisfy 4 * (positives + k) >=
    // samples.size() + k, so k = ceil((size - 4*positives) / 3) --
    // computed once instead of re-scanning a growing vector.
    size_t k = (samples.size() - 4 * positives + 2) / 3;
    samples.reserve(samples.size() + k);
    for (size_t i = 0; i < k; ++i)
        samples.push_back(pos[i % pos.size()]);
}

SpendthriftModel
trainSpendthriftModel(ArchKind arch, const SystemConfig &cfg,
                      const std::vector<std::string> &workload_names,
                      double *test_accuracy)
{
    auto train_samples = collectSamples(arch, cfg, workload_names,
                                        HarvestTrace::trainingSet());
    fatal_if(train_samples.empty(), "no spendthrift training samples");
    balanceSamples(train_samples);

    SpendthriftModel model;
    model.train(train_samples);

    if (test_accuracy) {
        auto test_samples = collectSamples(
            arch, cfg, workload_names, HarvestTrace::testSet());
        *test_accuracy = model.accuracy(test_samples);
    }
    return model;
}

} // namespace nvmr

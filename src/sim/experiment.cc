#include "sim/experiment.hh"

#include "common/log.hh"
#include "common/xorshift.hh"
#include "workloads/workloads.hh"

namespace nvmr
{

std::vector<RunResult>
runOnTraces(const Program &prog, ArchKind arch, const SystemConfig &cfg,
            const PolicySpec &policy,
            const std::vector<HarvestTrace> &traces, RunOptions opts)
{
    std::vector<RunResult> results;
    results.reserve(traces.size());
    for (const HarvestTrace &trace : traces) {
        auto pol = makePolicy(policy);
        Simulator sim(prog, arch, cfg, *pol, trace, opts);
        results.push_back(sim.run());
    }
    return results;
}

Aggregate
aggregate(const std::vector<RunResult> &runs)
{
    Aggregate agg;
    if (runs.empty())
        return agg;
    for (const RunResult &r : runs) {
        ++agg.runs;
        agg.allCompleted = agg.allCompleted && r.completed;
        agg.allValidated = agg.allValidated && r.validated;
        agg.totalEnergyNj += r.totalEnergyNj;
        for (size_t i = 0; i < kNumECats; ++i)
            agg.energy[i] += r.energy[i];
        agg.backups += static_cast<double>(r.backups);
        agg.violations += static_cast<double>(r.violations);
        agg.renames += static_cast<double>(r.renames);
        agg.reclaims += static_cast<double>(r.reclaims);
        agg.restores += static_cast<double>(r.restores);
        agg.powerFailures += static_cast<double>(r.powerFailures);
        agg.instructions += static_cast<double>(r.instructions);
        agg.nvmWrites += static_cast<double>(r.nvmWrites);
        agg.maxWear += static_cast<double>(r.maxWear);
    }
    double n = agg.runs;
    agg.totalEnergyNj /= n;
    for (auto &e : agg.energy)
        e /= n;
    agg.backups /= n;
    agg.violations /= n;
    agg.renames /= n;
    agg.reclaims /= n;
    agg.restores /= n;
    agg.powerFailures /= n;
    agg.instructions /= n;
    agg.nvmWrites /= n;
    agg.maxWear /= n;
    return agg;
}

Aggregate
runAveraged(const Program &prog, ArchKind arch, const SystemConfig &cfg,
            const PolicySpec &policy,
            const std::vector<HarvestTrace> &traces, RunOptions opts)
{
    return aggregate(
        runOnTraces(prog, arch, cfg, policy, traces, opts));
}

double
percentSaved(const Aggregate &baseline, const Aggregate &subject)
{
    if (baseline.totalEnergyNj <= 0)
        return 0.0;
    return (1.0 - subject.totalEnergyNj / baseline.totalEnergyNj) *
           100.0;
}

// ----------------------------------------------------------------------
// Spendthrift training
// ----------------------------------------------------------------------

namespace
{

/** JIT oracle that records labelled (harvest, voltage) samples. */
class RecordingJitPolicy : public JitPolicy
{
  public:
    RecordingJitPolicy(std::vector<SpendthriftSample> &samples,
                       Cycles poll_period = 64)
        : out(samples), pollPeriod(poll_period)
    {}

    bool
    shouldBackup(const PolicyContext &ctx) override
    {
        bool fire = JitPolicy::shouldBackup(ctx);
        if (ctx.activeCycles >= lastPoll + pollPeriod) {
            lastPoll = ctx.activeCycles;
            out.push_back({static_cast<float>(ctx.harvestMw),
                           static_cast<float>(ctx.cap.voltage()),
                           fire ? 1.0f : 0.0f});
        }
        return fire;
    }

    void reset() override { lastPoll = 0; }

  private:
    std::vector<SpendthriftSample> &out;
    Cycles pollPeriod;
    Cycles lastPoll = 0;
};

std::vector<SpendthriftSample>
collectSamples(ArchKind arch, const SystemConfig &cfg,
               const std::vector<std::string> &workload_names,
               const std::vector<HarvestTrace> &traces)
{
    std::vector<SpendthriftSample> samples;
    for (const std::string &name : workload_names) {
        Program prog = assembleWorkload(name);
        for (const HarvestTrace &trace : traces) {
            RecordingJitPolicy policy(samples);
            RunOptions opts;
            opts.validate = false;
            Simulator sim(prog, arch, cfg, policy, trace, opts);
            sim.run();
        }
    }
    return samples;
}

/** Duplicate positive samples until they are ~1/4 of the set (JIT
 *  fires are rare, and an unbalanced set trains an always-no
 *  predictor). */
void
balance(std::vector<SpendthriftSample> &samples)
{
    size_t positives = 0;
    for (const auto &s : samples)
        positives += s.label > 0.5f;
    if (positives == 0)
        return;
    std::vector<SpendthriftSample> pos;
    for (const auto &s : samples)
        if (s.label > 0.5f)
            pos.push_back(s);
    while (positives * 4 < samples.size()) {
        for (const auto &s : pos) {
            samples.push_back(s);
            ++positives;
            if (positives * 4 >= samples.size())
                break;
        }
    }
}

} // namespace

SpendthriftModel
trainSpendthriftModel(ArchKind arch, const SystemConfig &cfg,
                      const std::vector<std::string> &workload_names,
                      double *test_accuracy)
{
    auto train_samples = collectSamples(arch, cfg, workload_names,
                                        HarvestTrace::trainingSet());
    fatal_if(train_samples.empty(), "no spendthrift training samples");
    balance(train_samples);

    SpendthriftModel model;
    model.train(train_samples);

    if (test_accuracy) {
        auto test_samples = collectSamples(
            arch, cfg, workload_names, HarvestTrace::testSet());
        *test_accuracy = model.accuracy(test_samples);
    }
    return model;
}

} // namespace nvmr

/**
 * @file
 * The intermittent-execution simulator: couples the CPU, an
 * intermittent architecture, the supercapacitor + harvest trace, and
 * a backup policy; runs the program across power failures with
 * restore and re-execution; accounts energy by category; and
 * validates the final NVM state against a continuously-powered run.
 */

#ifndef NVMR_SIM_SIMULATOR_HH
#define NVMR_SIM_SIMULATOR_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch.hh"
#include "cpu/cpu.hh"
#include "obs/trace.hh"
#include "power/capacitor.hh"
#include "power/energy.hh"
#include "power/policy.hh"
#include "power/trace.hh"
#include "sim/config.hh"

namespace nvmr
{

/** Everything a run produces. */
struct RunResult
{
    std::string program;
    std::string arch;
    std::string policy;
    std::string trace;

    bool completed = false;  ///< program halted within maxCycles
    bool validated = false;  ///< final NVM state matched golden run
    bool validationChecked = false; ///< golden comparison was run

    uint64_t activeCycles = 0;  ///< cycles spent powered on
    uint64_t totalCycles = 0;   ///< including off/recharge time
    uint64_t instructions = 0;  ///< executed, including re-execution

    std::array<NanoJoules, kNumECats> energy{};
    NanoJoules totalEnergyNj = 0;

    uint64_t backups = 0;
    std::array<uint64_t, kNumBackupReasons> backupsByReason{};
    uint64_t violations = 0;
    uint64_t renames = 0;
    uint64_t reclaims = 0;
    uint64_t restores = 0;
    uint64_t powerFailures = 0;

    uint64_t nvmReads = 0;
    uint64_t nvmWrites = 0;
    uint64_t maxWear = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;

    uint64_t tornBackups = 0;      ///< backups cut mid-persist
    uint64_t injectedCrashes = 0;  ///< fault-injector power cuts
    uint64_t eccCorrected = 0;     ///< single-bit NVM errors fixed
    uint64_t eccUncorrectable = 0; ///< corrupt NVM reads handed up

    NanoJoules energyOf(ECat cat) const
    {
        return energy[static_cast<size_t>(cat)];
    }
};

/**
 * Observer of intermittent-execution events. Attach one through
 * Simulator::attachObserver to trace a run (the CLI driver's
 * --trace, tests, custom tooling). Callbacks fire synchronously.
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** A backup persisted. */
    virtual void
    onBackup(BackupReason reason, Cycles active_cycles)
    {
        (void)reason;
        (void)active_cycles;
    }

    /** The supply browned out. */
    virtual void onPowerFailure(Cycles active_cycles)
    {
        (void)active_cycles;
    }

    /** State was restored after a brown-out. */
    virtual void onRestore(Cycles active_cycles)
    {
        (void)active_cycles;
    }

    /** A JIT-style policy put the core to sleep. */
    virtual void onHibernate(Cycles active_cycles)
    {
        (void)active_cycles;
    }

    /** The supply recovered and execution resumed without loss. */
    virtual void onWake(Cycles active_cycles)
    {
        (void)active_cycles;
    }
};

/** Per-run knobs that are not part of the system configuration. */
struct RunOptions
{
    uint64_t maxCycles = 400000000ull; ///< safety cap (active+off)
    bool validate = true;              ///< compare against golden run

    /** Capacitor voltage at boot; 0 selects the turn-on voltage
     *  (devices wake as soon as the harvester charges past vOn, so
     *  they rarely start with a full capacitor). */
    double initialVoltage = 0;

    /** Crash and bit-error injection (off by default; when off the
     *  run is bit-identical to a fault-free build). */
    FaultConfig faults;
};

/** Result of a continuously-powered (golden) execution. */
struct GoldenResult
{
    std::vector<uint8_t> data; ///< final data-segment bytes
    uint64_t instructions = 0;
    bool halted = false;
};

/**
 * Run a program to completion on a continuously-powered core with a
 * flat memory (no cache, no energy accounting). Used as the
 * correctness oracle and by workload golden-model tests.
 */
GoldenResult runContinuous(const Program &prog,
                           uint64_t max_instructions = 200000000ull);

/** Build an architecture instance. */
std::unique_ptr<IntermittentArch> makeArch(ArchKind kind,
                                           const SystemConfig &cfg,
                                           Nvm &nvm, EnergySink &sink);

/**
 * One intermittent simulation. The simulator is single-use: build,
 * run(), read the result.
 */
class Simulator : public EnergySink, public BackupHost
{
  public:
    Simulator(const Program &prog, ArchKind arch_kind,
              const SystemConfig &cfg, BackupPolicy &policy,
              const HarvestTrace &trace, RunOptions opts = {});

    /** Execute the program intermittently and collect the result. */
    RunResult run();

    // ------------------------------------------------------------------
    // EnergySink (components charge through here)
    // ------------------------------------------------------------------
    void consume(NanoJoules nj) override;
    void consumeOverhead(NanoJoules nj) override;
    void addCycles(Cycles n) override;

    // ------------------------------------------------------------------
    // BackupHost (architectures trigger backups through here)
    // ------------------------------------------------------------------
    void requestBackup(BackupReason reason) override;

    /** The architecture under simulation (tests introspect it). */
    IntermittentArch &archRef() { return *arch; }
    const Capacitor &capacitorRef() const { return cap; }

    /** The simulated core (the differential oracle diffs its final
     *  register file against the reference interpreter's). */
    const Cpu &cpuRef() const { return cpu; }

    /** Attach an event observer (optional; call before run()). */
    void attachObserver(SimObserver *obs) { observer = obs; }

    /**
     * Attach a trace sink (optional; call before run()). The sink's
     * clocks are bound to this simulator's cycle counters and the
     * sink is forwarded to the architecture, the CPU and the fault
     * injector. Tracing never charges energy or cycles, so an
     * attached sink cannot change simulation results.
     */
    void attachTrace(TraceSink *sink_);

    /** The run's fault injector (crashtest reads the backup-window
     *  census and fault counters out of it). */
    const FaultInjector &faultInjector() const { return injector; }

    /**
     * Compare the architecture's final application image against a
     * golden continuous run (through the deterministic fault view).
     * Public so crash-point explorers can validate recovery even
     * when the crashy run itself skipped validation.
     */
    bool validateAgainstGolden(const GoldenResult &golden) const;

  private:
    const Program &program;
    const SystemConfig &cfg;
    BackupPolicy &policy;
    const HarvestTrace &trace;
    RunOptions opts;

    Capacitor cap;
    Nvm nvm;
    std::unique_ptr<IntermittentArch> arch;
    Cpu cpu;
    EnergyAccount account;
    FaultInjector injector;

    EMode mode = EMode::Execute;
    bool inAtomic = false;
    bool chargesMtLeak = false;
    SimObserver *observer = nullptr;
    TraceSink *tracer = nullptr;

    /** Orchestration-level histograms, registered into the
     *  architecture's StatGroup alongside its counters. */
    Histogram backupIntervalHist{
        "backup_interval_cycles",
        "active cycles between committed backups"};
    Histogram onPeriodHist{
        "on_period_cycles",
        "active cycles per powered-on period"};
    Histogram nvmWearHist{
        "nvm_wear_per_word",
        "accounted writes per worn NVM word (end of run)"};

    uint64_t activeCycles = 0;
    uint64_t totalCycles = 0;
    uint64_t lastBackupActive = 0;
    uint64_t resumeActive = 0;

    /** Harvest-trace sample under the current cycle, cached so the
     *  per-instruction path avoids the trace's div/mod lookup. The
     *  cache holds until totalCycles reaches harvestSampleEnd (the
     *  next 1 kHz sample boundary); hibernation and recharge waits
     *  advance past it, which simply forces a refresh. */
    double harvestMwCached = 0;
    uint64_t harvestSampleEnd = 0;

    void refreshHarvestCache();
    double harvestMwNow();

    void applyEnergy(NanoJoules nj, bool overhead);
    void checkBrownout();
    ECat categoryFor(bool overhead) const;

    void maybePolicyBackup();
    void hibernate();
    void handlePowerFailure();
    void rebootFromReset();
    void waitForRecharge(NanoJoules need_nj);

    RunResult makeResult(bool completed, bool validated) const;
};

} // namespace nvmr

#endif // NVMR_SIM_SIMULATOR_HH

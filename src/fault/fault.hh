/**
 * @file
 * Crash-consistency fault injection: deterministic power cuts at
 * arbitrary cycle or NVM-persist boundaries (torn multi-word writes
 * leave a prefix), plus a wear-coupled NVM bit-error model with a
 * SECDED ECC layer and bounded read-retry.
 *
 * The injector is deliberately zero-cost when disabled: every hook is
 * behind an `enabled()` branch and the simulator's accounting paths
 * are bit-identical to the no-fault build (see docs/fault-model.md).
 */

#ifndef NVMR_FAULT_FAULT_HH
#define NVMR_FAULT_FAULT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "common/xorshift.hh"
#include "obs/trace.hh"

namespace nvmr
{

/**
 * Thrown when the capacitor browns out during execution -- or when
 * the fault injector cuts power at an armed crash point. The
 * simulator's main loop catches it and runs the power-failure /
 * recharge / restore sequence.
 */
struct PowerFailure
{
};

/** Knobs for the fault injector. All off by default. */
struct FaultConfig
{
    /** Master switch; when false every hook is a no-op and the
     *  simulation is bit-identical to a build without the fault
     *  layer. */
    bool enabled = false;

    /**
     * Cut power immediately *before* the Nth accounted NVM persist
     * (1-based; 0 disables). Persist boundaries are counted across
     * every charged NVM word write: data writebacks, journal copies,
     * map-table and free-list updates, and register-snapshot words.
     * Crashing at boundary N means persists 1..N-1 completed and the
     * Nth never happened -- a torn multi-word persist leaves exactly
     * a prefix.
     */
    uint64_t crashAtPersist = 0;

    /** Cut power once totalCycles reaches this value (0 disables). */
    uint64_t crashAtCycle = 0;

    /**
     * Multi-crash schedules (the adversarial power-schedule
     * generator in src/check). Each entry arms one crash at an
     * absolute cumulative persist boundary / totalCycles value, in
     * addition to the single-shot fields above; entries fire in
     * ascending order, each at most once. Zeros are ignored.
     */
    std::vector<uint64_t> crashPersists;
    std::vector<uint64_t> crashCycles;

    /** Probability of a transient bit flip per accounted word read. */
    double transientBitErrorRate = 0.0;

    /** Of transient errors, fraction that flip two bits (SECDED's
     *  detectable-but-uncorrectable case). */
    double doubleBitFraction = 0.05;

    /**
     * Wear-coupled stuck-at faults: each accounted write to a word
     * whose wear exceeds stuckWearThreshold sticks a random bit with
     * probability stuckBitRatePerWrite * (wear - threshold).
     */
    double stuckBitRatePerWrite = 0.0;
    uint64_t stuckWearThreshold = 0;

    /** SECDED ECC per word: single-bit errors corrected, double-bit
     *  errors detected and retried. When false, raw corrupt data is
     *  returned to the architecture. */
    bool eccEnabled = true;

    /** Bounded re-reads after a detected (uncorrectable) error.
     *  Transient flips re-sample on retry; stuck bits persist. */
    uint32_t maxReadRetries = 2;

    /** PRNG seed for bit-error sampling. */
    uint64_t seed = 1;
};

/** Counters the injector maintains (surfaced through ArchStats). */
struct FaultStats
{
    uint64_t persistPoints = 0;     ///< accounted NVM persist boundaries
    uint64_t injectedCrashes = 0;   ///< PowerFailures thrown by us
    uint64_t transientFlips = 0;    ///< transient bit errors sampled
    uint64_t stuckBitsCreated = 0;  ///< wear-out cells gone bad
    uint64_t eccCorrected = 0;      ///< single-bit errors corrected
    uint64_t eccRetries = 0;        ///< re-reads after detected errors
    uint64_t eccUncorrectable = 0;  ///< corrupt words handed upward
};

/**
 * Deterministic, seedable fault injector. One instance per Simulator;
 * the Nvm model and the architectures hold a pointer to it.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultConfig &config)
        : cfg(config), rng(config.seed)
    {
        initSchedules();
    }

    bool enabled() const { return cfg.enabled; }

    /** Attach an event sink (crash / ECC / stuck-bit events). */
    void attachTrace(TraceSink *sink_) { tracer = sink_; }

    /** True if any bit-error mechanism can fire (lets the Nvm read
     *  path skip fault work entirely for pure crash-point runs). */
    bool
    bitErrorsPossible() const
    {
        return cfg.transientBitErrorRate > 0.0 ||
               cfg.stuckBitRatePerWrite > 0.0 || !stuck.empty();
    }

    const FaultConfig &config() const { return cfg; }
    const FaultStats &stats() const { return st; }

    // ------------------------------------------------------------------
    // Crash points
    // ------------------------------------------------------------------

    /**
     * Called immediately before every accounted NVM persist. Throws
     * PowerFailure when the armed persist boundary is reached: the
     * write about to happen is lost, everything before it landed.
     */
    void persistPoint();

    /** Called as wall-clock cycles advance; throws once the armed
     *  cycle count is reached. Inlined fast-exit: this runs once per
     *  simulated instruction, so a fault-free run (empty schedule)
     *  must pay only one predictable branch. */
    void
    cyclePoint(uint64_t total_cycles)
    {
        if (cycleIdx >= cycleSched.size() ||
            total_cycles < cycleSched[cycleIdx])
            return;
        fireCyclePoint(total_cycles);
    }

    /** Total persist boundaries seen so far. */
    uint64_t persistCount() const { return st.persistPoints; }

    // ------------------------------------------------------------------
    // Backup-window census (for the crash-point explorer)
    // ------------------------------------------------------------------

    /** Persist-boundary span of one backup, [first, last], 1-based.
     *  Covers performBackup through postBackup (reclamation). */
    struct BackupWindow
    {
        uint64_t firstPersist = 0;
        uint64_t lastPersist = 0;
        /** Persist count at commitBackup(): the boundary whose write
         *  was this backup's commit record. 0 when the backup never
         *  committed (cut short by a crash). */
        uint64_t commitPersist = 0;
    };

    /** The simulator brackets each requestBackup with these; tolerant
     *  of windows cut short by a crash. */
    void noteBackupStart();
    void noteBackupEnd();

    /** Called by IntermittentArch::commitBackup the moment a staged
     *  backup becomes the recovery image; stamps the window's commit
     *  persist so schedule generators can target the boundary. */
    void noteBackupCommit();

    const std::vector<BackupWindow> &backupWindows() const
    {
        return windows;
    }

    // ------------------------------------------------------------------
    // Bit errors
    // ------------------------------------------------------------------

    /** Wear-coupled stuck-bit genesis; called after every accounted
     *  NVM word write. */
    void onWordWritten(Addr addr, uint64_t wear);

    struct ReadOutcome
    {
        Word value = 0;       ///< what the architecture receives
        uint32_t retries = 0; ///< extra charged re-reads performed
    };

    /** Run the stored word through the error + ECC pipeline for one
     *  accounted read (samples transients, applies stuck bits,
     *  corrects / retries / gives up per SECDED semantics). */
    ReadOutcome applyReadFaults(Addr addr, Word stored);

    /**
     * Deterministic fault view of a stored word for validation paths:
     * stuck bits applied, ECC correction modeled, no transient
     * sampling, no RNG perturbation, no energy.
     */
    Word inspectStored(Addr addr, Word stored) const;

    /** Force a stuck-at fault (tests and the fuzzer). */
    void forceStuckBit(Addr addr, uint32_t bit, bool stuck_high);

  private:
    FaultConfig cfg;
    FaultStats st;
    XorShift rng;
    TraceSink *tracer = nullptr;

    /** Per-word stuck cells: mask of stuck bit positions and the
     *  values they are stuck at. */
    struct StuckCell
    {
        Word mask = 0;
        Word values = 0;
    };
    std::unordered_map<Addr, StuckCell> stuck;

    bool windowOpen = false;
    BackupWindow current;
    std::vector<BackupWindow> windows;

    /** Merged, sorted crash schedules (scalar knobs included) and
     *  the next-to-fire cursors. */
    std::vector<uint64_t> persistSched;
    std::vector<uint64_t> cycleSched;
    size_t persistIdx = 0;
    size_t cycleIdx = 0;

    void initSchedules();
    [[noreturn]] void fireCyclePoint(uint64_t total_cycles);
    void closeWindow();
    Word stuckErrorMask(Addr addr, Word stored) const;
    Word sampleTransientMask();
};

} // namespace nvmr

#endif // NVMR_FAULT_FAULT_HH

#include "fault/fault.hh"

#include <algorithm>

#include "common/log.hh"

namespace nvmr
{

namespace
{

uint32_t
popcount32(Word w)
{
    uint32_t n = 0;
    while (w) {
        w &= w - 1;
        ++n;
    }
    return n;
}

} // namespace

// ----------------------------------------------------------------------
// Crash points
// ----------------------------------------------------------------------

void
FaultInjector::initSchedules()
{
    // A disabled injector never fires, whatever the schedule fields
    // hold; keeping the schedules empty lets cyclePoint's inline
    // fast path skip the enabled() check.
    if (!cfg.enabled)
        return;
    persistSched = cfg.crashPersists;
    if (cfg.crashAtPersist != 0)
        persistSched.push_back(cfg.crashAtPersist);
    cycleSched = cfg.crashCycles;
    if (cfg.crashAtCycle != 0)
        cycleSched.push_back(cfg.crashAtCycle);
    auto canon = [](std::vector<uint64_t> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        while (!v.empty() && v.front() == 0)
            v.erase(v.begin());
    };
    canon(persistSched);
    canon(cycleSched);
}

void
FaultInjector::persistPoint()
{
    if (!cfg.enabled)
        return;
    ++st.persistPoints;
    if (windowOpen) {
        if (current.firstPersist == 0)
            current.firstPersist = st.persistPoints;
        current.lastPersist = st.persistPoints;
    }
    while (persistIdx < persistSched.size() &&
           persistSched[persistIdx] < st.persistPoints)
        ++persistIdx;
    if (persistIdx < persistSched.size() &&
        persistSched[persistIdx] == st.persistPoints) {
        ++persistIdx;
        ++st.injectedCrashes;
        closeWindow();
        if (tracer)
            tracer->record(EventKind::FaultCrash, st.persistPoints, 0);
        throw PowerFailure{};
    }
}

void
FaultInjector::fireCyclePoint(uint64_t total_cycles)
{
    // Fire once per armed point; skip any that this jump passed over.
    while (cycleIdx < cycleSched.size() &&
           cycleSched[cycleIdx] <= total_cycles)
        ++cycleIdx;
    ++st.injectedCrashes;
    closeWindow();
    if (tracer)
        tracer->record(EventKind::FaultCrash, st.persistPoints,
                       total_cycles);
    throw PowerFailure{};
}

// ----------------------------------------------------------------------
// Backup-window census
// ----------------------------------------------------------------------

void
FaultInjector::noteBackupStart()
{
    if (!cfg.enabled)
        return;
    closeWindow(); // tolerate a window left open by a crash
    windowOpen = true;
    current = BackupWindow{};
}

void
FaultInjector::noteBackupEnd()
{
    if (!cfg.enabled)
        return;
    closeWindow();
}

void
FaultInjector::noteBackupCommit()
{
    if (!cfg.enabled || !windowOpen)
        return;
    current.commitPersist = st.persistPoints;
}

void
FaultInjector::closeWindow()
{
    if (!windowOpen)
        return;
    windowOpen = false;
    if (current.firstPersist != 0)
        windows.push_back(current);
}

// ----------------------------------------------------------------------
// Bit errors
// ----------------------------------------------------------------------

void
FaultInjector::onWordWritten(Addr addr, uint64_t wear)
{
    if (!cfg.enabled || cfg.stuckBitRatePerWrite <= 0.0)
        return;
    if (wear <= cfg.stuckWearThreshold)
        return;
    double p = cfg.stuckBitRatePerWrite *
               static_cast<double>(wear - cfg.stuckWearThreshold);
    if (rng.uniform() >= p)
        return;
    uint32_t bit = static_cast<uint32_t>(rng.range(0, 31));
    StuckCell &cell = stuck[addr];
    if (cell.mask & (1u << bit))
        return; // already stuck
    cell.mask |= 1u << bit;
    if (rng.uniform() < 0.5)
        cell.values |= 1u << bit;
    ++st.stuckBitsCreated;
    if (tracer)
        tracer->record(EventKind::StuckBit, addr, bit);
}

void
FaultInjector::forceStuckBit(Addr addr, uint32_t bit, bool stuck_high)
{
    panic_if(bit >= 32, "stuck bit index out of range: ", bit);
    StuckCell &cell = stuck[addr];
    cell.mask |= 1u << bit;
    if (stuck_high)
        cell.values |= 1u << bit;
    else
        cell.values &= ~(1u << bit);
}

Word
FaultInjector::stuckErrorMask(Addr addr, Word stored) const
{
    auto it = stuck.find(addr);
    if (it == stuck.end())
        return 0;
    return (stored ^ it->second.values) & it->second.mask;
}

Word
FaultInjector::sampleTransientMask()
{
    if (cfg.transientBitErrorRate <= 0.0)
        return 0;
    if (rng.uniform() >= cfg.transientBitErrorRate)
        return 0;
    Word mask = 1u << rng.range(0, 31);
    ++st.transientFlips;
    if (rng.uniform() < cfg.doubleBitFraction) {
        Word second;
        do {
            second = 1u << rng.range(0, 31);
        } while (second == mask);
        mask |= second;
        ++st.transientFlips;
    }
    return mask;
}

FaultInjector::ReadOutcome
FaultInjector::applyReadFaults(Addr addr, Word stored)
{
    // Error bits relative to the stored (intended) value. Stuck cells
    // contribute on every attempt; transients re-sample per attempt.
    Word persistent = stuckErrorMask(addr, stored);
    ReadOutcome out;
    for (;;) {
        Word err = persistent | sampleTransientMask();
        uint32_t nerr = popcount32(err);
        if (!cfg.eccEnabled) {
            out.value = stored ^ err;
            return out;
        }
        if (nerr == 0) {
            out.value = stored;
            return out;
        }
        if (nerr == 1) {
            // SECDED corrects a single bit error transparently.
            ++st.eccCorrected;
            if (tracer)
                tracer->record(EventKind::EccCorrected, addr);
            out.value = stored;
            return out;
        }
        // Detected (or aliased) multi-bit error: bounded retry.
        if (out.retries >= cfg.maxReadRetries) {
            ++st.eccUncorrectable;
            if (tracer)
                tracer->record(EventKind::EccUncorrectable, addr);
            out.value = stored ^ err;
            return out;
        }
        ++out.retries;
        ++st.eccRetries;
    }
}

Word
FaultInjector::inspectStored(Addr addr, Word stored) const
{
    Word err = stuckErrorMask(addr, stored);
    if (err == 0)
        return stored;
    if (cfg.eccEnabled && popcount32(err) <= 1)
        return stored; // correctable: reads return the intended value
    return stored ^ err;
}

} // namespace nvmr

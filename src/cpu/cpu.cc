#include "cpu/cpu.hh"

#include "common/log.hh"

namespace nvmr
{

Cpu::Cpu(const Program &prog, DataPort &data_port)
    : program(prog), port(data_port)
{
    reset();
}

void
Cpu::reset()
{
    regs.fill(0);
    _pc = program.entry;
    _halted = false;
    _instret = 0;
    if (tracer)
        tracer->record(EventKind::CpuReset);
}

CpuSnapshot
Cpu::snapshot() const
{
    CpuSnapshot snap;
    snap.regs = regs;
    snap.pc = _pc;
    return snap;
}

void
Cpu::restore(const CpuSnapshot &snap)
{
    regs = snap.regs;
    _pc = snap.pc;
    _halted = false;
}

void
Cpu::writeReg(unsigned idx, Word value)
{
    // Decoded register fields and setReg callers share this bounds
    // check; the assembler/decoder guarantee the range, so it is a
    // debug-build invariant rather than a per-instruction branch.
    debug_assert(idx < kNumRegs, "bad register index ", idx);
    if (idx != kRegZero)
        regs[idx] = value;
}

void
Cpu::setReg(unsigned idx, Word value)
{
    writeReg(idx, value);
}

StepResult
Cpu::step()
{
    debug_assert(!_halted, "step() after HALT");
    // Fuzzed programs can JR out of the text section, so the PC
    // bounds check stays on in release builds.
    panic_if(_pc >= program.text.size(),
             "PC out of range: ", _pc, " in ", program.name);

    const Instruction &inst = program.text[_pc];
    StepResult res;
    res.cycles = 1;

    uint32_t next_pc = _pc + 1;
    const Word a = regs[inst.rs1];
    const Word b = regs[inst.rs2];
    const SWord sa = static_cast<SWord>(a);
    const SWord sb = static_cast<SWord>(b);
    const Word imm = static_cast<Word>(inst.imm);
    const SWord simm = inst.imm;

    auto branch_to = [&](bool taken) {
        if (taken) {
            next_pc = static_cast<uint32_t>(inst.imm);
            res.cycles += 2; // 3-stage pipeline refill
        }
    };

    switch (inst.op) {
      case Op::ADD: writeReg(inst.rd, a + b); break;
      case Op::SUB: writeReg(inst.rd, a - b); break;
      case Op::MUL:
        writeReg(inst.rd, a * b);
        res.cycles += 1; // iterative multiplier on M0+-class cores
        break;
      case Op::DIV:
        // RISC-V-style semantics: x/0 == -1, INT_MIN/-1 == INT_MIN.
        if (sb == 0)
            writeReg(inst.rd, static_cast<Word>(-1));
        else if (sa == INT32_MIN && sb == -1)
            writeReg(inst.rd, static_cast<Word>(INT32_MIN));
        else
            writeReg(inst.rd, static_cast<Word>(sa / sb));
        res.cycles += 7; // software-assisted divide
        break;
      case Op::REM:
        if (sb == 0)
            writeReg(inst.rd, a);
        else if (sa == INT32_MIN && sb == -1)
            writeReg(inst.rd, 0);
        else
            writeReg(inst.rd, static_cast<Word>(sa % sb));
        res.cycles += 7;
        break;
      case Op::AND: writeReg(inst.rd, a & b); break;
      case Op::OR: writeReg(inst.rd, a | b); break;
      case Op::XOR: writeReg(inst.rd, a ^ b); break;
      case Op::SLL: writeReg(inst.rd, a << (b & 31)); break;
      case Op::SRL: writeReg(inst.rd, a >> (b & 31)); break;
      case Op::SRA:
        writeReg(inst.rd, static_cast<Word>(sa >> (b & 31)));
        break;
      case Op::SLT: writeReg(inst.rd, sa < sb ? 1 : 0); break;
      case Op::SLTU: writeReg(inst.rd, a < b ? 1 : 0); break;

      case Op::ADDI: writeReg(inst.rd, a + imm); break;
      case Op::ANDI: writeReg(inst.rd, a & imm); break;
      case Op::ORI: writeReg(inst.rd, a | imm); break;
      case Op::XORI: writeReg(inst.rd, a ^ imm); break;
      case Op::SLLI: writeReg(inst.rd, a << (imm & 31)); break;
      case Op::SRLI: writeReg(inst.rd, a >> (imm & 31)); break;
      case Op::SRAI:
        writeReg(inst.rd, static_cast<Word>(sa >> (imm & 31)));
        break;
      case Op::SLTI: writeReg(inst.rd, sa < simm ? 1 : 0); break;
      case Op::MULI:
        writeReg(inst.rd, a * imm);
        res.cycles += 1;
        break;

      case Op::LUI: writeReg(inst.rd, imm); break;

      case Op::LD:
        writeReg(inst.rd, port.loadWord(a + imm));
        res.cycles += 1;
        break;
      case Op::LDB:
        writeReg(inst.rd, port.loadByte(a + imm));
        res.cycles += 1;
        break;
      case Op::ST:
        port.storeWord(a + imm, b);
        res.cycles += 1;
        break;
      case Op::STB:
        port.storeByte(a + imm, static_cast<uint8_t>(b));
        res.cycles += 1;
        break;

      case Op::BEQ: branch_to(a == b); break;
      case Op::BNE: branch_to(a != b); break;
      case Op::BLT: branch_to(sa < sb); break;
      case Op::BGE: branch_to(sa >= sb); break;
      case Op::BLTU: branch_to(a < b); break;
      case Op::BGEU: branch_to(a >= b); break;

      case Op::JMP:
        next_pc = static_cast<uint32_t>(inst.imm);
        res.cycles += 2;
        break;
      case Op::JAL:
        writeReg(inst.rd, _pc + 1);
        next_pc = static_cast<uint32_t>(inst.imm);
        res.cycles += 2;
        break;
      case Op::JR:
        next_pc = a + static_cast<uint32_t>(inst.imm);
        res.cycles += 2;
        break;

      case Op::HALT:
        _halted = true;
        res.halted = true;
        next_pc = _pc;
        if (tracer)
            tracer->record(EventKind::CpuHalt, _instret + 1);
        break;

      case Op::TASK:
        port.taskBoundary();
        break;

      default:
        panic("bad opcode at pc=", _pc);
    }

    _pc = next_pc;
    ++_instret;
    return res;
}

} // namespace nvmr

/**
 * @file
 * In-order 3-stage (fetch/decode/execute) CPU model executing the iisa
 * instruction set, in the style of an ARM Cortex M0+ at 8 MHz.
 *
 * The model is an interpreter with a simple timing overlay: every
 * instruction costs one base cycle, taken control flow adds a 2-cycle
 * pipeline refill, and memory instructions additionally incur whatever
 * latency the attached DataPort charges. The register file (and PC) is
 * volatile state that intermittent architectures snapshot on backup and
 * lose on power failure.
 */

#ifndef NVMR_CPU_CPU_HH
#define NVMR_CPU_CPU_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/program.hh"
#include "mem/port.hh"
#include "obs/trace.hh"

namespace nvmr
{

/** Volatile processor state captured by a backup. */
struct CpuSnapshot
{
    std::array<Word, kNumRegs> regs{};
    uint32_t pc = 0;

    /** Words of NVM a backup needs to persist this snapshot. */
    static constexpr unsigned persistWords = kNumRegs + 1;
};

/** Result of executing one instruction. */
struct StepResult
{
    /** Pipeline cycles consumed (excludes memory-system latency). */
    Cycles cycles = 0;

    /** The program executed a HALT. */
    bool halted = false;
};

/**
 * The simulated core. One instance is created per simulation run and
 * wired to the intermittent architecture's DataPort.
 */
class Cpu
{
  public:
    Cpu(const Program &prog, DataPort &data_port);

    /** Cold-boot reset: clear registers, jump to the entry point. */
    void reset();

    /** Execute a single instruction. Must not be called after HALT. */
    StepResult step();

    /** True once HALT has executed. */
    bool halted() const { return _halted; }

    /** Capture volatile state for a backup. */
    CpuSnapshot snapshot() const;

    /** Restore volatile state (after a power loss). */
    void restore(const CpuSnapshot &snap);

    /** Current PC (instruction index), for diagnostics. */
    uint32_t pc() const { return _pc; }

    /** Read a register, for tests. */
    Word reg(unsigned idx) const { return regs[idx]; }

    /** Write a register, for tests. */
    void setReg(unsigned idx, Word value);

    /** Retired instruction count since reset(). */
    uint64_t instret() const { return _instret; }

    /** Attach an event sink (halt / reset events; null = off). */
    void attachTrace(TraceSink *sink_) { tracer = sink_; }

  private:
    const Program &program;
    DataPort &port;
    TraceSink *tracer = nullptr;

    std::array<Word, kNumRegs> regs{};
    uint32_t _pc = 0;
    bool _halted = false;
    uint64_t _instret = 0;

    void writeReg(unsigned idx, Word value);
};

} // namespace nvmr

#endif // NVMR_CPU_CPU_HH

/**
 * @file
 * The golden oracle of the differential checker (the correctness
 * backstop of the whole simulator): a power-failure-free, cache-free
 * ISA interpreter over flat memory. Its final memory and register
 * state is the reference every intermittent run is diffed against --
 * through the map table for NvMR -- after the run finishes. Any
 * word-level difference is a correctness bug in the architecture
 * under test (or in the oracle, which is small enough to audit).
 */

#ifndef NVMR_CHECK_ORACLE_HH
#define NVMR_CHECK_ORACLE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace nvmr
{

class IntermittentArch;
class Cpu;

/** Reference final state of one program. */
struct OracleResult
{
    std::vector<uint8_t> data;         ///< flat memory image
    std::array<Word, kNumRegs> regs{}; ///< final register file
    uint32_t pc = 0;                   ///< final program counter
    uint64_t instructions = 0;
    bool halted = false;
};

/**
 * Execute the program to completion on the reference interpreter.
 * Deterministic, no caches, no power failures; `max_instructions`
 * bounds runaway programs (halted stays false when it trips).
 */
OracleResult runOracle(const Program &prog,
                       uint64_t max_instructions = 200000000ull);

/** One diverging word. */
struct WordDiff
{
    Addr addr = 0;
    Word expect = 0; ///< oracle value
    Word actual = 0; ///< architecture's recovered value
};

/** Oracle-vs-architecture final-state diff. */
struct StateDiff
{
    /** First `max_report` diverging words (inspected through the
     *  architecture's mapping, so NvMR renames are followed). */
    std::vector<WordDiff> words;
    uint64_t totalWordDiffs = 0;

    /** Indices of diverging registers (only when the run completed
     *  and a CPU was supplied). */
    std::vector<unsigned> regMismatches;
    bool pcMismatch = false;
    bool regsChecked = false;

    bool clean() const
    {
        return totalWordDiffs == 0 && regMismatches.empty() &&
               !pcMismatch;
    }
};

/**
 * Diff the architecture's post-run NVM image (through its mapping)
 * and, optionally, the CPU's register file against the oracle state.
 * Compares every word of the program's data segment.
 */
StateDiff diffFinalState(const IntermittentArch &arch,
                         const Program &prog,
                         const OracleResult &oracle,
                         const Cpu *cpu = nullptr,
                         size_t max_report = 8);

} // namespace nvmr

#endif // NVMR_CHECK_ORACLE_HH

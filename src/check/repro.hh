/**
 * @file
 * Self-contained reproduction cases for the differential checker. A
 * CheckCase bundles everything one checked run needs -- architecture,
 * policy, platform sizing, harvest trace, fault schedule, and the
 * program source itself -- and round-trips through a small text
 * format (`# nvmr-repro-v1`) so a failure found by a fuzzing or
 * adversarial-schedule campaign can be shrunk, saved as a `.repro`
 * file and replayed anywhere with `nvmr_diff --replay`.
 */

#ifndef NVMR_CHECK_REPRO_HH
#define NVMR_CHECK_REPRO_HH

#include <iosfwd>
#include <string>

#include "fault/fault.hh"
#include "power/policy.hh"
#include "power/trace.hh"
#include "sim/config.hh"

namespace nvmr
{

/** One fully described checked run. */
struct CheckCase
{
    std::string name = "case";

    ArchKind arch = ArchKind::Nvmr;
    PolicyKind policy = PolicyKind::Jit;
    double farads = 0.1;
    bool byteLbf = false;

    /** Deliberately seeded bug (mutation hook) to prove the checker
     *  catches it; None in every production case. */
    InjectedBug injectedBug = InjectedBug::None;

    TraceKind traceKind = TraceKind::Rf;
    uint64_t traceSeed = 40000;
    double traceMeanMw = 7.0;

    uint64_t maxCycles = 400000000ull;

    /** Crash / bit-error schedule (enabled flag included). */
    FaultConfig faults;

    /** iisa source, embedded verbatim. */
    std::string programText;

    /** Generator seed the program came from (0 once shrunk). */
    uint64_t programSeed = 0;
};

/** Serialize to the `# nvmr-repro-v1` text format. */
std::string formatRepro(const CheckCase &c);

/**
 * Parse a `.repro` back. Returns false (and fills `error`) on
 * malformed input; unknown keys are rejected so typos fail loudly.
 */
bool parseRepro(std::istream &is, CheckCase &out, std::string &error);

/** File conveniences (false on I/O or parse failure). */
bool saveRepro(const std::string &path, const CheckCase &c);
bool loadRepro(const std::string &path, CheckCase &out,
               std::string &error);

/** Name <-> enum helpers (false on unknown name). */
bool archKindFromName(const std::string &name, ArchKind &out);
bool policyKindFromName(const std::string &name, PolicyKind &out);
bool traceKindFromName(const std::string &name, TraceKind &out);
const char *traceKindName(TraceKind kind);

} // namespace nvmr

#endif // NVMR_CHECK_REPRO_HH

/**
 * @file
 * Adversarial power-schedule generation. Starting from a fault-free
 * census of where a case's backups persist and commit, emits crash
 * schedules aimed at the protocol's most fragile instants:
 *
 *   - one crash immediately before / at / after every backup's
 *     commit-record persist (the atomicity boundary);
 *   - one crash one cycle before / at / after every commit's wall
 *     time (catches cycle-driven state like watchdog resets);
 *   - brownout storms: many crashes per run, spread over the whole
 *     execution, stressing repeated restore/redo paths;
 *   - window-coverage random schedules: random persist boundaries
 *     drawn window-by-window so every backup gets shots even when
 *     the budget is far smaller than the persist count.
 *
 * The ideal baseline assumes power never fails unexpectedly, so for
 * it the generator varies harvest traces (different hibernate/wake
 * patterns under JIT) instead of injecting crashes.
 */

#ifndef NVMR_CHECK_SCHEDULE_HH
#define NVMR_CHECK_SCHEDULE_HH

#include <vector>

#include "check/repro.hh"
#include "check/runner.hh"

namespace nvmr
{

/** Generation knobs. */
struct ScheduleGenParams
{
    uint32_t budget = 1000;      ///< schedules to emit (at most)
    uint64_t seed = 1;           ///< rng seed for the random portion
    uint32_t stormCases = 24;    ///< brownout-storm schedules
    uint32_t maxStormCrashes = 12; ///< crashes per storm
};

/**
 * Generate up to `budget` single-run crash schedules for `base`. The
 * census must come from runCensus(base) (same program and config).
 * Systematic commit-adjacent schedules come first, then storms, then
 * window-coverage random ones up to the budget.
 */
std::vector<CheckCase> makeAdversarialSchedules(
    const CheckCase &base, const CensusResult &census,
    const ScheduleGenParams &params = {});

} // namespace nvmr

#endif // NVMR_CHECK_SCHEDULE_HH

#include "check/runner.hh"

#include <sstream>

#include "isa/assembler.hh"

namespace nvmr
{

namespace
{

SystemConfig
buildConfig(const CheckCase &c)
{
    // Small capacitors need the co-sized platform (atomic backups
    // must fit one charge); mirror the fuzzer's configuration so a
    // repro transfers between the tools unchanged.
    SystemConfig cfg = c.farads < 1e-3 ? SystemConfig::smallPlatform()
                                       : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    if (c.byteLbf)
        cfg.cache.lbfGranularityBytes = 1;
    cfg.injectedBug = c.injectedBug;
    return cfg;
}

PolicySpec
buildPolicySpec(const CheckCase &c)
{
    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;
    return spec;
}

/** Census helper: BackupCommit timestamps without ring-buffer
 *  pressure from the high-rate checker-feed events. */
class CommitCycleSink : public TraceSink
{
  public:
    std::vector<uint64_t> cycles;

    void
    consume(const TraceEvent &ev) override
    {
        if (ev.kind == EventKind::BackupCommit)
            cycles.push_back(ev.cycle);
    }
};

} // namespace

std::string
CheckOutcome::describe() const
{
    if (clean())
        return "clean";
    if (!run.completed)
        return "did not complete (stuck or starved)";
    if (totalViolations > 0)
        return "invariant violation: " + violations.front().checker +
               " (" + std::to_string(totalViolations) + " total)";
    std::ostringstream os;
    os << "diverged from oracle: " << diff.totalWordDiffs
       << " word(s)";
    if (!diff.regMismatches.empty())
        os << ", " << diff.regMismatches.size() << " register(s)";
    if (diff.pcMismatch)
        os << ", pc";
    return os.str();
}

std::string
CheckOutcome::detail() const
{
    std::ostringstream os;
    for (const auto &w : diff.words)
        os << "  word 0x" << std::hex << w.addr << ": oracle 0x"
           << w.expect << ", recovered 0x" << w.actual << std::dec
           << "\n";
    if (diff.totalWordDiffs > diff.words.size())
        os << "  ... and "
           << (diff.totalWordDiffs - diff.words.size())
           << " further diverging words\n";
    for (unsigned r : diff.regMismatches)
        os << "  register r" << r << " diverged\n";
    if (diff.pcMismatch)
        os << "  final pc diverged\n";
    for (const auto &v : violations)
        os << "  [" << v.checker << "] cycle " << v.cycle << " ("
           << v.event << "): " << v.detail << "\n";
    if (totalViolations > violations.size())
        os << "  ... and " << (totalViolations - violations.size())
           << " further violations\n";
    return os.str();
}

CheckOutcome
runChecked(const CheckCase &c, const OracleResult *oracle)
{
    Program prog = assemble(c.name, c.programText);
    SystemConfig cfg = buildConfig(c);
    PolicySpec spec = buildPolicySpec(c);
    auto policy = makePolicy(spec);
    HarvestTrace trace(c.traceKind, c.traceSeed, c.traceMeanMw);
    RunOptions opts;
    opts.maxCycles = c.maxCycles;
    opts.faults = c.faults;
    // The oracle diff below subsumes (and extends) the built-in
    // golden comparison; skipping it avoids a redundant continuous
    // run per schedule.
    opts.validate = false;

    Simulator sim(prog, c.arch, cfg, *policy, trace, opts);
    InvariantSink inv(sim.archRef(), cfg);
    sim.attachTrace(&inv);

    CheckOutcome out;
    out.run = sim.run();
    inv.finalize();
    out.violations = inv.violations();
    out.totalViolations = inv.totalViolations();

    // A mid-execution image legitimately differs from the oracle's
    // final state; the diff only means something for completed runs.
    if (out.run.completed) {
        OracleResult local;
        if (!oracle) {
            local = runOracle(prog);
            oracle = &local;
        }
        out.diff = diffFinalState(sim.archRef(), prog, *oracle,
                                  &sim.cpuRef());
    }
    return out;
}

CensusResult
runCensus(const CheckCase &c)
{
    CheckCase census = c;
    census.faults = FaultConfig{};
    census.faults.enabled = true; // count persists, inject nothing

    Program prog = assemble(census.name, census.programText);
    SystemConfig cfg = buildConfig(census);
    PolicySpec spec = buildPolicySpec(census);
    auto policy = makePolicy(spec);
    HarvestTrace trace(census.traceKind, census.traceSeed,
                       census.traceMeanMw);
    RunOptions opts;
    opts.maxCycles = census.maxCycles;
    opts.faults = census.faults;
    opts.validate = false;

    Simulator sim(prog, census.arch, cfg, *policy, trace, opts);
    CommitCycleSink commits;
    sim.attachTrace(&commits);
    RunResult r = sim.run();

    CensusResult out;
    out.completed = r.completed;
    out.totalCycles = r.totalCycles;
    out.persistPoints = sim.faultInjector().stats().persistPoints;
    out.windows = sim.faultInjector().backupWindows();
    out.commitCycles = std::move(commits.cycles);
    return out;
}

} // namespace nvmr

#include "check/invariants.hh"

#include <algorithm>
#include <sstream>
#include <string>

#include "arch/arch.hh"
#include "core/freelist.hh"
#include "core/maptable.hh"
#include "core/mtcache.hh"
#include "core/nvmr_arch.hh"

namespace nvmr
{

namespace
{

constexpr size_t kMaxRetained = 64;

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

std::vector<std::string>
deepCheckNvmr(const MapTable &mt, const FreeList &fl,
              const MapTableCache &mtc, Addr reserved_base,
              uint32_t block_bytes, uint32_t reserved_count,
              bool require_mtc_clean,
              const std::unordered_set<Addr> *in_flight)
{
    std::vector<std::string> out;

    // Map-table injectivity: two tags may never share a mapping (the
    // recovery data of one would overwrite the other's).
    std::unordered_map<Addr, Addr> by_mapping;
    std::unordered_set<Addr> tags;
    mt.forEach([&](Addr tag, Addr mapping) {
        tags.insert(tag);
        auto [it, fresh] = by_mapping.emplace(mapping, tag);
        if (!fresh)
            out.push_back("map table aliases " + hex(mapping) +
                          " for tags " + hex(it->second) + " and " +
                          hex(tag));
    });

    // Free-list double-free / free-while-mapped.
    std::unordered_set<Addr> free;
    for (Addr slot : fl.liveSlots()) {
        if (!free.insert(slot).second)
            out.push_back("free list holds " + hex(slot) + " twice");
        if (by_mapping.count(slot))
            out.push_back("free slot " + hex(slot) +
                          " is also a live mapping (of tag " +
                          hex(by_mapping[slot]) + ")");
    }

    // Conservation: every reserved block is free, mapped, or popped
    // for a rename that has not committed yet.
    for (uint32_t i = 0; i < reserved_count; ++i) {
        Addr block = reserved_base +
                     static_cast<Addr>(i) * block_bytes;
        if (free.count(block) || by_mapping.count(block))
            continue;
        if (in_flight && in_flight->count(block))
            continue;
        out.push_back("reserved block " + hex(block) +
                      " leaked: neither free nor mapped");
    }

    // Application-address closure: an app home on the free list (or
    // serving as another tag's mapping) holds no recovery data, so
    // its own data must live under a map-table entry elsewhere.
    auto needs_entry = [&](Addr block, const char *role) {
        if (block >= reserved_base)
            return;
        auto m = mt.peek(block);
        if (!m || *m == block)
            out.push_back("app block " + hex(block) + " is " + role +
                          " but its own data has no rename entry");
    };
    for (Addr slot : free)
        needs_entry(slot, "free");
    for (const auto &[mapping, tag] : by_mapping)
        if (mapping != tag)
            needs_entry(mapping, "another tag's mapping");

    if (require_mtc_clean) {
        mtc.forEach([&](const MtcEntry &e) {
            if (e.valid && e.dirty)
                out.push_back("map-table cache dirty at commit: tag " +
                              hex(e.tag));
        });
    }
    return out;
}

InvariantSink::InvariantSink(const IntermittentArch &arch_,
                             const SystemConfig &config)
    : arch(arch_),
      nvmr(dynamic_cast<const NvmrArch *>(&arch_)),
      cfg(config),
      blockBytes(config.cache.blockBytes),
      warEnabled(std::string(arch_.name()) != "ideal")
{
}

void
InvariantSink::flag(const TraceEvent &ev, const char *checker,
                    std::string detail)
{
    ++total;
    if (viols.size() >= kMaxRetained)
        return;
    viols.push_back({checker, std::move(detail), ev.cycle,
                     eventKindName(ev.kind)});
}

void
InvariantSink::clearInterval()
{
    readFirst.clear();
    writeFirst.clear();
    volatileRenames.clear();
}

void
InvariantSink::rebuildCommitted()
{
    committedPhys.clear();
    homeFree.clear();
    if (!nvmr)
        return;
    nvmr->mapTableRef().forEach([&](Addr tag, Addr mapping) {
        if (mapping == tag)
            return;
        committedPhys[mapping] = tag;
        homeFree.insert(tag);
    });
}

void
InvariantSink::deepChecks(const TraceEvent &ev, bool at_commit,
                          const std::unordered_set<Addr> *in_flight)
{
    if (!nvmr)
        return;
    auto lines = deepCheckNvmr(
        nvmr->mapTableRef(), nvmr->freeListRef(), nvmr->mtCacheRef(),
        nvmr->reservedBase(), blockBytes,
        cfg.effectiveFreeListEntries(), at_commit, in_flight);
    for (auto &line : lines) {
        const char *checker = "map_injectivity";
        if (line.find("cache dirty") != std::string::npos)
            checker = "mtc_commit_clean";
        else if (line.find("free") != std::string::npos ||
                 line.find("leak") != std::string::npos)
            checker = "freelist_conservation";
        flag(ev, checker, std::move(line));
    }
}

void
InvariantSink::onRename(const TraceEvent &ev)
{
    Addr tag = ev.a0;
    Addr fresh = ev.a1;
    auto it = volatileRenames.find(fresh);
    if (it != volatileRenames.end() && it->second != tag) {
        flag(ev, "rename_aliasing",
             "location " + hex(fresh) + " renamed for tag " +
                 hex(tag) + " while already holding tag " +
                 hex(it->second));
    }
    auto committed = committedPhys.find(fresh);
    if (committed != committedPhys.end() && committed->second != tag) {
        flag(ev, "rename_aliasing",
             "location " + hex(fresh) +
                 " handed out while still the committed mapping of "
                 "tag " +
                 hex(committed->second));
    }
    volatileRenames[fresh] = tag;
}

void
InvariantSink::onMemAccess(const TraceEvent &ev)
{
    if (epoch != Epoch::Execute || !warEnabled)
        return;
    bool is_store = (ev.a1 >> 8) != 0;
    uint32_t nbytes = static_cast<uint32_t>(ev.a1 & 0xff);
    for (uint32_t i = 0; i < nbytes; ++i) {
        Addr b = ev.a0 + i;
        if (readFirst.count(b) || writeFirst.count(b))
            continue;
        (is_store ? writeFirst : readFirst).insert(b);
    }
}

void
InvariantSink::onNvmWrite(const TraceEvent &ev)
{
    // Backup and restore machinery may rewrite committed state under
    // their own (checked elsewhere) protocols; execution may not.
    if (epoch != Epoch::Execute || !warEnabled || ev.a1 == 0)
        return;
    Addr addr = ev.a0;
    Addr block = addr & ~static_cast<Addr>(blockBytes - 1);

    // Writes to a freshly popped (uncommitted) rename target never
    // touch the recovery image.
    if (volatileRenames.count(block))
        return;

    // Translate physical back to the virtual address the CPU used.
    Addr virt_base = addr;
    if (nvmr) {
        auto it = committedPhys.find(block);
        if (it != committedPhys.end()) {
            virt_base = it->second + (addr - block);
        } else if (block >= nvmr->reservedBase()) {
            // Unmapped reserved block: scratch, not recovery data.
            return;
        } else if (homeFree.count(block)) {
            // Home whose committed data lives elsewhere: in-place
            // writes cannot damage recovery state.
            return;
        }
    }

    uint64_t mask = ev.a1;
    for (unsigned i = 0; i < kWordBytes; ++i) {
        if (!(mask & (1ull << i)))
            continue;
        Addr vb = virt_base + i;
        if (readFirst.count(vb)) {
            flag(ev, "war_freedom",
                 "committed NVM byte " + hex(addr + i) +
                     " (virtual " + hex(vb) +
                     ") overwritten after the CPU read it this "
                     "interval");
        }
    }
}

void
InvariantSink::consume(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::BackupBegin:
        epoch = Epoch::Backup;
        break;
      case EventKind::BackupCommit:
        if (ev.a1 != lastCommitted + 1) {
            flag(ev, "backup_monotonicity",
                 "commit sequence " + std::to_string(ev.a1) +
                     " after committed " +
                     std::to_string(lastCommitted));
        }
        deepChecks(ev, /*at_commit=*/true);
        lastCommitted = ev.a1;
        rebuildCommitted();
        clearInterval();
        epoch = Epoch::Execute;
        break;
      case EventKind::BackupRollback:
        if (ev.a1 != lastCommitted + 1) {
            flag(ev, "backup_monotonicity",
                 "rollback dropped sequence " +
                     std::to_string(ev.a1) + " but committed is " +
                     std::to_string(lastCommitted));
        }
        break;
      case EventKind::PowerFail:
        epoch = Epoch::Recover;
        // Volatile state dies with the supply.
        gbfShadow.clear();
        clearInterval();
        break;
      case EventKind::Restore:
        // The commit event of the restored sequence can be lost to a
        // crash between the durable commit and the event record, so
        // one step forward is legal; going backward never is.
        if (ev.a1 != lastCommitted && ev.a1 != lastCommitted + 1) {
            flag(ev, "backup_monotonicity",
                 "restored sequence " + std::to_string(ev.a1) +
                     " but committed is " +
                     std::to_string(lastCommitted));
        }
        lastCommitted = ev.a1;
        deepChecks(ev, /*at_commit=*/true);
        rebuildCommitted();
        clearInterval();
        epoch = Epoch::Execute;
        break;
      case EventKind::DominanceReset:
        gbfShadow.clear();
        break;
      case EventKind::GbfInsert:
        gbfShadow.insert(ev.a0);
        break;
      case EventKind::GbfQuery:
        if (ev.a1 == 0 && gbfShadow.count(ev.a0)) {
            flag(ev, "gbf_soundness",
                 "GBF denied block " + hex(ev.a0) +
                     " inserted earlier this section (false "
                     "negative)");
        }
        break;
      case EventKind::Rename:
        onRename(ev);
        break;
      case EventKind::MemAccess:
        onMemAccess(ev);
        break;
      case EventKind::NvmWrite:
        onNvmWrite(ev);
        break;
      default:
        break;
    }
}

void
InvariantSink::finalize()
{
    if (!nvmr)
        return;
    std::unordered_set<Addr> in_flight;
    for (const auto &[fresh, tag] : volatileRenames)
        in_flight.insert(fresh);
    TraceEvent ev{0, 0, EventKind::CpuHalt, 0, 0};
    deepChecks(ev, /*at_commit=*/false, &in_flight);
}

std::string
InvariantSink::report() const
{
    std::ostringstream os;
    for (const auto &v : viols)
        os << "[" << v.checker << "] cycle " << v.cycle << " ("
           << v.event << "): " << v.detail << "\n";
    if (total > viols.size())
        os << "... and " << (total - viols.size())
           << " further violations\n";
    return os.str();
}

} // namespace nvmr

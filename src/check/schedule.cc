#include "check/schedule.hh"

#include <algorithm>
#include <string>

#include "common/xorshift.hh"

namespace nvmr
{

namespace
{

CheckCase
crashCase(const CheckCase &base, const char *tag, size_t idx)
{
    CheckCase c = base;
    c.name = base.name + "-" + tag + std::to_string(idx);
    c.faults = FaultConfig{};
    c.faults.enabled = true;
    return c;
}

} // namespace

std::vector<CheckCase>
makeAdversarialSchedules(const CheckCase &base,
                         const CensusResult &census,
                         const ScheduleGenParams &params)
{
    std::vector<CheckCase> out;
    if (params.budget == 0)
        return out;

    // The ideal baseline is only correct under the perfect-JIT
    // assumption; injected crashes would "find" that by design.
    // Stress it with different harvest traces instead.
    if (base.arch == ArchKind::Ideal) {
        for (uint32_t i = 0; i < params.budget; ++i) {
            CheckCase c = base;
            c.name = base.name + "-trace" + std::to_string(i);
            c.faults = FaultConfig{};
            c.traceSeed = base.traceSeed + 1 + i;
            c.traceKind = i % 3 == 0   ? TraceKind::Rf
                          : i % 3 == 1 ? TraceKind::Solar
                                       : TraceKind::Wind;
            out.push_back(std::move(c));
        }
        return out;
    }

    auto room = [&] { return out.size() < params.budget; };

    // Commit-adjacent persist boundaries: the commit record's persist
    // is the recovery image's atomicity hinge.
    size_t idx = 0;
    for (const auto &w : census.windows) {
        if (w.commitPersist == 0)
            continue;
        for (int64_t d = -1; d <= 1 && room(); ++d) {
            int64_t p = static_cast<int64_t>(w.commitPersist) + d;
            if (p < 1)
                continue;
            CheckCase c = crashCase(base, "cp", idx++);
            c.faults.crashPersists.push_back(
                static_cast<uint64_t>(p));
            out.push_back(std::move(c));
        }
    }

    // Commit-adjacent wall cycles.
    idx = 0;
    for (uint64_t t : census.commitCycles) {
        for (int64_t d = -1; d <= 1 && room(); ++d) {
            int64_t at = static_cast<int64_t>(t) + d;
            if (at < 1)
                continue;
            CheckCase c = crashCase(base, "cc", idx++);
            c.faults.crashCycles.push_back(
                static_cast<uint64_t>(at));
            out.push_back(std::move(c));
        }
    }

    XorShift rng(params.seed * 2654435761ull + 1);

    // Brownout storms: repeated crashes across the whole run.
    for (uint32_t s = 0; s < params.stormCases && room(); ++s) {
        CheckCase c = crashCase(base, "storm", s);
        uint32_t n =
            1 + static_cast<uint32_t>(
                    rng.next() % std::max(1u, params.maxStormCrashes));
        for (uint32_t i = 0; i < n; ++i) {
            if (census.persistPoints > 0 && rng.next() % 2 == 0) {
                c.faults.crashPersists.push_back(
                    1 + rng.next() % census.persistPoints);
            } else if (census.totalCycles > 1) {
                c.faults.crashCycles.push_back(
                    1 + rng.next() % census.totalCycles);
            }
        }
        out.push_back(std::move(c));
    }

    // Window-coverage random: cycle through backup windows so every
    // backup keeps receiving shots however small the budget.
    size_t wi = 0;
    idx = 0;
    while (room()) {
        CheckCase c = crashCase(base, "rnd", idx++);
        if (!census.windows.empty()) {
            const auto &w = census.windows[wi++ % census.windows.size()];
            uint64_t lo = w.firstPersist > 2 ? w.firstPersist - 2 : 1;
            uint64_t hi = w.lastPersist + 2;
            c.faults.crashPersists.push_back(lo +
                                             rng.next() % (hi - lo + 1));
        } else if (census.persistPoints > 0) {
            c.faults.crashPersists.push_back(
                1 + rng.next() % census.persistPoints);
        } else if (census.totalCycles > 1) {
            c.faults.crashCycles.push_back(1 +
                                           rng.next() %
                                               census.totalCycles);
        } else {
            break;
        }
        // A second, uniformly random crash on half the schedules:
        // crash-during-recovery and crash-after-crash interleavings.
        if (rng.next() % 2 == 0 && census.totalCycles > 1)
            c.faults.crashCycles.push_back(1 +
                                           rng.next() %
                                               census.totalCycles);
        out.push_back(std::move(c));
    }

    return out;
}

} // namespace nvmr

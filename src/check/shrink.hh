/**
 * @file
 * Delta-debugging minimizer for failing CheckCases. Given a case the
 * checked runner flags (oracle divergence, invariant violation or a
 * stuck run), shrinks -- while preserving failure --
 *
 *   1. the crash schedule, via ddmin over the union of persist- and
 *      cycle-crash points;
 *   2. the outer iteration count of the generated program;
 *   3. the program body, via ddmin over provably safe-to-remove
 *      lines (loads, stores and data-register arithmetic; never
 *      labels, branches, loop counters or address-forming code, so
 *      every candidate still assembles and terminates).
 *
 * The result is a minimal self-contained case, ready to save as a
 * `.repro` and replay with `nvmr_diff --replay`.
 */

#ifndef NVMR_CHECK_SHRINK_HH
#define NVMR_CHECK_SHRINK_HH

#include <cstdint>

#include "check/repro.hh"

namespace nvmr
{

/** Minimization outcome. */
struct ShrinkResult
{
    CheckCase minimized;
    uint32_t runsUsed = 0;       ///< checked runs spent
    bool verifiedFailing = false; ///< the input case failed at all
};

/**
 * Shrink a failing case. Every candidate is re-run through the full
 * checked harness, so the minimized case provably still fails; if
 * the input is actually clean, returns it untouched with
 * verifiedFailing = false.
 *
 * @param max_runs Budget of checked runs across all phases.
 */
ShrinkResult shrinkCase(const CheckCase &failing,
                        uint32_t max_runs = 300);

} // namespace nvmr

#endif // NVMR_CHECK_SHRINK_HH

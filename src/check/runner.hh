/**
 * @file
 * The checked-run harness: executes one CheckCase with the lockstep
 * InvariantSink attached and diffs the final state against the golden
 * oracle. Also provides the fault-free census run that schedule
 * generation and the crash explorers build on.
 */

#ifndef NVMR_CHECK_RUNNER_HH
#define NVMR_CHECK_RUNNER_HH

#include <string>
#include <vector>

#include "check/invariants.hh"
#include "check/oracle.hh"
#include "check/repro.hh"
#include "fault/fault.hh"
#include "sim/simulator.hh"

namespace nvmr
{

/** Everything one checked run produced. */
struct CheckOutcome
{
    RunResult run;
    StateDiff diff;                           ///< oracle comparison
    std::vector<InvariantViolation> violations;
    uint64_t totalViolations = 0;

    bool
    clean() const
    {
        return run.completed && diff.clean() && totalViolations == 0;
    }

    /** One-line failure classification ("clean" when clean). */
    std::string describe() const;

    /** Multi-line detail: diverging words + invariant report. */
    std::string detail() const;
};

/**
 * Run the case intermittently with invariant checking, then diff the
 * recovered final state against the oracle. Pass a precomputed
 * oracle result to amortize it across many schedules of the same
 * program (it must match the case's programText).
 */
CheckOutcome runChecked(const CheckCase &c,
                        const OracleResult *oracle = nullptr);

/** What a fault-free census run of a case observed. */
struct CensusResult
{
    bool completed = false;
    uint64_t totalCycles = 0;
    uint64_t persistPoints = 0;
    std::vector<FaultInjector::BackupWindow> windows;
    std::vector<uint64_t> commitCycles; ///< BackupCommit event times
};

/**
 * Run the case once with the injector armed but no crash scheduled,
 * collecting the backup-window persist census and the wall-cycle
 * timestamps of every committed backup. This is the map the
 * adversarial schedule generator aims its crashes with.
 */
CensusResult runCensus(const CheckCase &c);

} // namespace nvmr

#endif // NVMR_CHECK_RUNNER_HH

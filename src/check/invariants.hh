/**
 * @file
 * Lockstep invariant checking over the observability event stream.
 * An InvariantSink subscribes to the same TraceSink feed as the
 * exporters and replays a shadow model of the architecture's
 * correctness contract, flagging the exact cycle and event at which
 * an invariant first breaks:
 *
 *   - backup-sequence monotonicity across commits, rollbacks and
 *     restores (no committed progress may ever be lost);
 *   - GBF soundness: the global bloom filter may false-positive but
 *     never false-negative on an inserted block;
 *   - rename injectivity, checked eagerly on every Rename event and
 *     deeply (map table + free list + map-table cache) at every
 *     commit and restore;
 *   - free-list conservation: no renamed location is ever leaked or
 *     handed out twice;
 *   - WAR-freedom of committed NVM writes: during execution no NVM
 *     byte belonging to the recovery image may change after the CPU
 *     read its virtual address in the current backup interval.
 *
 * Sinks never charge energy or cycles, so checking is guaranteed not
 * to perturb the simulation (bench_oracle_overhead asserts stat
 * bit-identity).
 */

#ifndef NVMR_CHECK_INVARIANTS_HH
#define NVMR_CHECK_INVARIANTS_HH

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "obs/trace.hh"
#include "sim/config.hh"

namespace nvmr
{

class IntermittentArch;
class NvmrArch;
class MapTable;
class FreeList;
class MapTableCache;

/** One invariant violation, pinned to its triggering event. */
struct InvariantViolation
{
    std::string checker; ///< e.g. "war_freedom", "map_injectivity"
    std::string detail;  ///< human-readable specifics
    uint64_t cycle = 0;  ///< wall cycle of the triggering event
    const char *event = ""; ///< wire name of the triggering event kind
};

/**
 * Deep structural scan of the NvMR renaming state: map-table
 * injectivity, free-list conservation (no leak, no double-free, no
 * free/mapped overlap), application-address chain closure, and
 * (optionally) map-table-cache cleanliness. Valid whenever the
 * structures are in a committed state -- at backup commit, at
 * restore, or in unit tests driving the structures directly.
 *
 * @param in_flight Locations popped for not-yet-committed renames
 *        (excused from the leak check); null when fully committed.
 * @return one human-readable line per violated invariant.
 */
std::vector<std::string> deepCheckNvmr(
    const MapTable &mt, const FreeList &fl, const MapTableCache &mtc,
    Addr reserved_base, uint32_t block_bytes, uint32_t reserved_count,
    bool require_mtc_clean,
    const std::unordered_set<Addr> *in_flight = nullptr);

/** The lockstep checker; attach alongside any other sinks via
 *  TeeSink. Call finalize() once after the run completes. */
class InvariantSink : public TraceSink
{
  public:
    /** @param arch The architecture under test (used for deep scans
     *         and to disable WAR checking for the ideal baseline,
     *         whose in-place writebacks violate WAR by design). */
    InvariantSink(const IntermittentArch &arch,
                  const SystemConfig &cfg);

    void consume(const TraceEvent &ev) override;

    /** End-of-run deep scan (injectivity + conservation with
     *  in-flight renames excused). */
    void finalize();

    /** First violations, in event order (capped; see total). */
    const std::vector<InvariantViolation> &violations() const
    {
        return viols;
    }

    uint64_t totalViolations() const { return total; }
    bool clean() const { return total == 0; }

    /** One formatted line per retained violation. */
    std::string report() const;

  private:
    /** Which phase of the power lifecycle the stream is in. */
    enum class Epoch
    {
        Execute,
        Backup,
        Recover
    };

    const IntermittentArch &arch;
    const NvmrArch *nvmr; ///< non-null when checking NvMR
    const SystemConfig &cfg;
    uint32_t blockBytes;
    bool warEnabled;

    Epoch epoch = Epoch::Execute;
    uint64_t lastCommitted = 0;

    /** Blocks inserted into the GBF since the last dominance reset. */
    std::unordered_set<Addr> gbfShadow;

    /** Byte-granular first-access shadow for the current backup
     *  interval (virtual addresses; sticky first touch). */
    std::unordered_set<Addr> readFirst;
    std::unordered_set<Addr> writeFirst;

    /** Uncommitted renames: fresh block -> tag. */
    std::unordered_map<Addr, Addr> volatileRenames;

    /** Committed mappings: physical block -> tag (identity entries
     *  skipped), rebuilt from the map table at commit / restore. */
    std::unordered_map<Addr, Addr> committedPhys;

    /** Tags whose committed mapping is elsewhere: their home block
     *  holds no recovery data, so in-place writes there are safe. */
    std::unordered_set<Addr> homeFree;

    std::vector<InvariantViolation> viols;
    uint64_t total = 0;

    void flag(const TraceEvent &ev, const char *checker,
              std::string detail);
    void onMemAccess(const TraceEvent &ev);
    void onNvmWrite(const TraceEvent &ev);
    void onRename(const TraceEvent &ev);
    void deepChecks(const TraceEvent &ev, bool at_commit,
                    const std::unordered_set<Addr> *in_flight =
                        nullptr);
    void rebuildCommitted();
    void clearInterval();
};

} // namespace nvmr

#endif // NVMR_CHECK_INVARIANTS_HH

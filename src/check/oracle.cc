#include "check/oracle.hh"

#include <algorithm>

#include "arch/arch.hh"
#include "common/log.hh"
#include "cpu/cpu.hh"
#include "mem/port.hh"

namespace nvmr
{

namespace
{

/** Flat, energy-free memory for the reference interpretation. */
class OraclePort : public DataPort
{
  public:
    explicit OraclePort(uint32_t size_bytes) : mem(size_bytes, 0) {}

    void
    loadImage(const std::vector<uint8_t> &image)
    {
        panic_if(image.size() > mem.size(), "oracle image too large");
        std::copy(image.begin(), image.end(), mem.begin());
    }

    Word
    loadWord(Addr addr) override
    {
        check(addr, kWordBytes);
        Word w = 0;
        for (unsigned i = 0; i < kWordBytes; ++i)
            w |= static_cast<Word>(mem[addr + i]) << (8 * i);
        return w;
    }

    void
    storeWord(Addr addr, Word value) override
    {
        check(addr, kWordBytes);
        for (unsigned i = 0; i < kWordBytes; ++i)
            mem[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    }

    uint8_t
    loadByte(Addr addr) override
    {
        check(addr, 1);
        return mem[addr];
    }

    void
    storeByte(Addr addr, uint8_t value) override
    {
        check(addr, 1);
        mem[addr] = value;
    }

    std::vector<uint8_t> takeBytes() { return std::move(mem); }

  private:
    std::vector<uint8_t> mem;

    void
    check(Addr addr, uint32_t n) const
    {
        panic_if(addr + n > mem.size(),
                 "oracle access out of range: ", addr);
    }
};

} // namespace

OracleResult
runOracle(const Program &prog, uint64_t max_instructions)
{
    // Same memory sizing rule as the intermittent runs: generous
    // scratch above the static data, so the two sides execute over
    // identical address spaces.
    uint32_t size = std::max<uint32_t>(prog.dataSize() + 4096, 65536);
    OraclePort port(size);
    port.loadImage(prog.data);
    Cpu cpu(prog, port);

    OracleResult result;
    while (!cpu.halted() && result.instructions < max_instructions) {
        cpu.step();
        ++result.instructions;
    }
    result.halted = cpu.halted();
    for (unsigned i = 0; i < kNumRegs; ++i)
        result.regs[i] = cpu.reg(i);
    result.pc = cpu.pc();
    result.data = port.takeBytes();
    return result;
}

StateDiff
diffFinalState(const IntermittentArch &arch, const Program &prog,
               const OracleResult &oracle, const Cpu *cpu,
               size_t max_report)
{
    StateDiff diff;
    uint32_t words = prog.dataSize() / kWordBytes;
    for (uint32_t i = 0; i < words; ++i) {
        Addr addr = i * kWordBytes;
        Word expect = 0;
        for (unsigned b = 0; b < kWordBytes; ++b)
            expect |= static_cast<Word>(oracle.data[addr + b])
                      << (8 * b);
        Word actual = arch.inspectWord(addr);
        if (actual == expect)
            continue;
        ++diff.totalWordDiffs;
        if (diff.words.size() < max_report)
            diff.words.push_back({addr, expect, actual});
    }
    if (cpu && oracle.halted) {
        diff.regsChecked = true;
        for (unsigned i = 0; i < kNumRegs; ++i)
            if (cpu->reg(i) != oracle.regs[i])
                diff.regMismatches.push_back(i);
        diff.pcMismatch = cpu->pc() != oracle.pc;
    }
    return diff;
}

} // namespace nvmr

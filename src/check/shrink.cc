#include "check/shrink.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.hh"
#include "isa/assembler.hh"

namespace nvmr
{

namespace
{

/** Shared run budget + per-program oracle cache for one shrink. */
struct ShrinkSession
{
    uint32_t runs = 0;
    uint32_t maxRuns;
    std::map<std::string, OracleResult> oracles;

    explicit ShrinkSession(uint32_t max_runs) : maxRuns(max_runs) {}

    bool exhausted() const { return runs >= maxRuns; }

    /** True if the case still fails the checked harness. */
    bool
    fails(const CheckCase &c)
    {
        ++runs;
        auto it = oracles.find(c.programText);
        if (it == oracles.end()) {
            it = oracles
                     .emplace(c.programText,
                              runOracle(
                                  assemble(c.name, c.programText)))
                     .first;
        }
        return !runChecked(c, &it->second).clean();
    }
};

/**
 * ddmin over the index set [0, n): find a small subset of kept items
 * for which `fails_with(kept)` still holds. Assumes it holds for the
 * full set. Returns kept indices in ascending order.
 */
std::vector<size_t>
ddmin(size_t n,
      const std::function<bool(const std::vector<size_t> &)> &fails_with,
      ShrinkSession &session)
{
    std::vector<size_t> current(n);
    for (size_t i = 0; i < n; ++i)
        current[i] = i;
    if (n == 0)
        return current;

    size_t granularity = 2;
    while (!current.empty() && !session.exhausted()) {
        if (granularity > current.size())
            granularity = current.size();
        size_t chunk = (current.size() + granularity - 1) / granularity;
        bool reduced = false;
        for (size_t start = 0;
             start < current.size() && !session.exhausted();
             start += chunk) {
            std::vector<size_t> complement;
            complement.reserve(current.size());
            for (size_t i = 0; i < current.size(); ++i)
                if (i < start || i >= start + chunk)
                    complement.push_back(current[i]);
            if (fails_with(complement)) {
                current = std::move(complement);
                granularity = std::max<size_t>(2, granularity - 1);
                reduced = true;
                break;
            }
        }
        if (reduced)
            continue;
        if (granularity >= current.size())
            break;
        granularity = std::min(granularity * 2, current.size());
    }
    return current;
}

/** One crash point: persist boundary or wall cycle. */
struct CrashPoint
{
    bool isCycle = false;
    uint64_t value = 0;
};

std::vector<CrashPoint>
collectPoints(const FaultConfig &fc)
{
    std::vector<CrashPoint> points;
    for (uint64_t p : fc.crashPersists)
        if (p)
            points.push_back({false, p});
    if (fc.crashAtPersist)
        points.push_back({false, fc.crashAtPersist});
    for (uint64_t t : fc.crashCycles)
        if (t)
            points.push_back({true, t});
    if (fc.crashAtCycle)
        points.push_back({true, fc.crashAtCycle});
    return points;
}

CheckCase
withPoints(const CheckCase &base, const std::vector<CrashPoint> &pts)
{
    CheckCase c = base;
    c.faults.crashAtPersist = 0;
    c.faults.crashAtCycle = 0;
    c.faults.crashPersists.clear();
    c.faults.crashCycles.clear();
    for (const CrashPoint &p : pts)
        (p.isCycle ? c.faults.crashCycles : c.faults.crashPersists)
            .push_back(p.value);
    return c;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const auto &l : lines) {
        out += l;
        out += "\n";
    }
    return out;
}

/** First whitespace-separated token of a line. */
std::string
token(const std::string &line, size_t which)
{
    std::istringstream is(line);
    std::string t;
    for (size_t i = 0; i <= which; ++i)
        if (!(is >> t))
            return "";
    return t;
}

/**
 * Safe to delete without breaking assembly or termination: loads,
 * stores, and arithmetic whose destination is a pure data register
 * (r3/r4/r5). Labels, branches, `li`, loop counters (r2/r7) and
 * address-forming code (r1/r6) all stay.
 */
bool
removableLine(const std::string &line)
{
    if (line.empty() || !std::isspace(static_cast<unsigned char>(line[0])))
        return false; // label or empty
    std::string op = token(line, 0);
    if (op.empty() || op[0] == '.')
        return false;
    if (op == "ld" || op == "st" || op == "ldb" || op == "stb")
        return true;
    if (op == "add" || op == "addi" || op == "xor") {
        std::string dst = token(line, 1);
        if (!dst.empty() && dst.back() == ',')
            dst.pop_back();
        return dst == "r3" || dst == "r4" || dst == "r5";
    }
    return false;
}

/** Parse the generator's `li r2, N   # outer iterations` marker. */
bool
parseOuterIterations(const std::string &line, uint64_t &n)
{
    if (line.find("# outer iterations") == std::string::npos)
        return false;
    if (token(line, 0) != "li" || token(line, 1) != "r2,")
        return false;
    n = std::strtoull(token(line, 2).c_str(), nullptr, 10);
    return n > 0;
}

} // namespace

ShrinkResult
shrinkCase(const CheckCase &failing, uint32_t max_runs)
{
    ShrinkSession session(max_runs);
    ShrinkResult result;
    result.minimized = failing;

    if (!session.fails(failing)) {
        result.runsUsed = session.runs;
        return result;
    }
    result.verifiedFailing = true;
    CheckCase best = failing;

    // Phase 1: ddmin the crash schedule.
    std::vector<CrashPoint> points = collectPoints(best.faults);
    if (!points.empty() && !session.exhausted()) {
        auto kept = ddmin(
            points.size(),
            [&](const std::vector<size_t> &idx) {
                std::vector<CrashPoint> sub;
                for (size_t i : idx)
                    sub.push_back(points[i]);
                return session.fails(withPoints(best, sub));
            },
            session);
        std::vector<CrashPoint> sub;
        for (size_t i : kept)
            sub.push_back(points[i]);
        best = withPoints(best, sub);
    }

    // Phase 2: shrink the outer iteration count (smallest power of
    // two that still fails).
    {
        std::vector<std::string> lines = splitLines(best.programText);
        for (size_t li = 0; li < lines.size(); ++li) {
            uint64_t orig = 0;
            if (!parseOuterIterations(lines[li], orig))
                continue;
            for (uint64_t n = 1; n < orig && !session.exhausted();
                 n *= 2) {
                std::vector<std::string> cand = lines;
                cand[li] = "        li   r2, " + std::to_string(n) +
                           "   # outer iterations";
                CheckCase c = best;
                c.programText = joinLines(cand);
                if (session.fails(c)) {
                    best = c;
                    break;
                }
            }
            break;
        }
    }

    // Phase 3: ddmin the program body over safe-to-remove lines.
    {
        std::vector<std::string> lines = splitLines(best.programText);
        std::vector<size_t> removable;
        for (size_t i = 0; i < lines.size(); ++i)
            if (removableLine(lines[i]))
                removable.push_back(i);
        if (!removable.empty() && !session.exhausted()) {
            auto build = [&](const std::vector<size_t> &keep_idx) {
                std::vector<bool> keep(lines.size(), true);
                for (size_t r : removable)
                    keep[r] = false;
                for (size_t k : keep_idx)
                    keep[removable[k]] = true;
                std::vector<std::string> cand;
                for (size_t i = 0; i < lines.size(); ++i)
                    if (keep[i])
                        cand.push_back(lines[i]);
                CheckCase c = best;
                c.programText = joinLines(cand);
                return c;
            };
            auto kept = ddmin(
                removable.size(),
                [&](const std::vector<size_t> &idx) {
                    return session.fails(build(idx));
                },
                session);
            best = build(kept);
        }
    }

    best.name = failing.name + "-min";
    best.programSeed = 0; // text no longer matches any seed
    result.minimized = best;
    result.runsUsed = session.runs;
    return result;
}

} // namespace nvmr

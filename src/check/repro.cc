#include "check/repro.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nvmr
{

namespace
{

constexpr const char *kMagic = "# nvmr-repro-v1";

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
injectedBugName(InjectedBug bug)
{
    switch (bug) {
      case InjectedBug::None: return "none";
      case InjectedBug::FreeListLeak: return "freelist_leak";
      case InjectedBug::RenameAlias: return "rename_alias";
      default: return "<bad>";
    }
}

bool
injectedBugFromName(const std::string &name, InjectedBug &out)
{
    if (name == "none")
        out = InjectedBug::None;
    else if (name == "freelist_leak")
        out = InjectedBug::FreeListLeak;
    else if (name == "rename_alias")
        out = InjectedBug::RenameAlias;
    else
        return false;
    return true;
}

} // namespace

bool
archKindFromName(const std::string &name, ArchKind &out)
{
    for (ArchKind k :
         {ArchKind::Ideal, ArchKind::Clank, ArchKind::ClankOriginal,
          ArchKind::Task, ArchKind::Nvmr, ArchKind::Hoop}) {
        if (name == archKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
policyKindFromName(const std::string &name, PolicyKind &out)
{
    for (PolicyKind k : {PolicyKind::Jit, PolicyKind::Watchdog,
                         PolicyKind::Spendthrift, PolicyKind::None}) {
        if (name == policyKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Rf: return "rf";
      case TraceKind::Solar: return "solar";
      case TraceKind::Wind: return "wind";
      default: return "<bad>";
    }
}

bool
traceKindFromName(const std::string &name, TraceKind &out)
{
    for (TraceKind k :
         {TraceKind::Rf, TraceKind::Solar, TraceKind::Wind}) {
        if (name == traceKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
formatRepro(const CheckCase &c)
{
    std::ostringstream os;
    os << kMagic << "\n";
    os << "name " << c.name << "\n";
    os << "arch " << archKindName(c.arch) << "\n";
    os << "policy " << policyKindName(c.policy) << "\n";
    os << "farads " << fmtDouble(c.farads) << "\n";
    os << "byte_lbf " << (c.byteLbf ? 1 : 0) << "\n";
    if (c.injectedBug != InjectedBug::None)
        os << "injected_bug " << injectedBugName(c.injectedBug)
           << "\n";
    os << "trace_kind " << traceKindName(c.traceKind) << "\n";
    os << "trace_seed " << c.traceSeed << "\n";
    os << "trace_mean_mw " << fmtDouble(c.traceMeanMw) << "\n";
    os << "max_cycles " << c.maxCycles << "\n";
    os << "program_seed " << c.programSeed << "\n";
    os << "faults_enabled " << (c.faults.enabled ? 1 : 0) << "\n";
    if (c.faults.crashAtPersist)
        os << "crash_at_persist " << c.faults.crashAtPersist << "\n";
    if (c.faults.crashAtCycle)
        os << "crash_at_cycle " << c.faults.crashAtCycle << "\n";
    if (!c.faults.crashPersists.empty()) {
        os << "crash_persists";
        for (uint64_t p : c.faults.crashPersists)
            os << " " << p;
        os << "\n";
    }
    if (!c.faults.crashCycles.empty()) {
        os << "crash_cycles";
        for (uint64_t p : c.faults.crashCycles)
            os << " " << p;
        os << "\n";
    }
    if (c.faults.transientBitErrorRate != 0.0)
        os << "bit_error_rate "
           << fmtDouble(c.faults.transientBitErrorRate) << "\n";
    if (c.faults.doubleBitFraction != 0.05)
        os << "double_bit_fraction "
           << fmtDouble(c.faults.doubleBitFraction) << "\n";
    if (c.faults.maxReadRetries != 2)
        os << "max_read_retries " << c.faults.maxReadRetries << "\n";
    if (c.faults.seed != 1)
        os << "fault_seed " << c.faults.seed << "\n";

    // Count program lines exactly; a trailing unterminated line still
    // counts.
    size_t nlines = 0;
    for (size_t i = 0; i < c.programText.size(); ++i)
        if (c.programText[i] == '\n')
            ++nlines;
    if (!c.programText.empty() && c.programText.back() != '\n')
        ++nlines;
    os << "program " << nlines << "\n";
    os << c.programText;
    if (!c.programText.empty() && c.programText.back() != '\n')
        os << "\n";
    return os.str();
}

bool
parseRepro(std::istream &is, CheckCase &out, std::string &error)
{
    out = CheckCase{};
    std::string line;
    if (!std::getline(is, line) || line != kMagic) {
        error = "missing '# nvmr-repro-v1' header";
        return false;
    }
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        auto bad = [&](const std::string &why) {
            error = "line '" + line + "': " + why;
            return false;
        };
        if (key == "name") {
            ls >> out.name;
        } else if (key == "arch") {
            std::string v;
            ls >> v;
            if (!archKindFromName(v, out.arch))
                return bad("unknown arch");
        } else if (key == "policy") {
            std::string v;
            ls >> v;
            if (!policyKindFromName(v, out.policy))
                return bad("unknown policy");
        } else if (key == "farads") {
            ls >> out.farads;
        } else if (key == "byte_lbf") {
            int v = 0;
            ls >> v;
            out.byteLbf = v != 0;
        } else if (key == "injected_bug") {
            std::string v;
            ls >> v;
            if (!injectedBugFromName(v, out.injectedBug))
                return bad("unknown injected bug");
        } else if (key == "trace_kind") {
            std::string v;
            ls >> v;
            if (!traceKindFromName(v, out.traceKind))
                return bad("unknown trace kind");
        } else if (key == "trace_seed") {
            ls >> out.traceSeed;
        } else if (key == "trace_mean_mw") {
            ls >> out.traceMeanMw;
        } else if (key == "max_cycles") {
            ls >> out.maxCycles;
        } else if (key == "program_seed") {
            ls >> out.programSeed;
        } else if (key == "faults_enabled") {
            int v = 0;
            ls >> v;
            out.faults.enabled = v != 0;
        } else if (key == "crash_at_persist") {
            ls >> out.faults.crashAtPersist;
        } else if (key == "crash_at_cycle") {
            ls >> out.faults.crashAtCycle;
        } else if (key == "crash_persists") {
            uint64_t v;
            while (ls >> v)
                out.faults.crashPersists.push_back(v);
            ls.clear();
        } else if (key == "crash_cycles") {
            uint64_t v;
            while (ls >> v)
                out.faults.crashCycles.push_back(v);
            ls.clear();
        } else if (key == "bit_error_rate") {
            ls >> out.faults.transientBitErrorRate;
        } else if (key == "double_bit_fraction") {
            ls >> out.faults.doubleBitFraction;
        } else if (key == "max_read_retries") {
            ls >> out.faults.maxReadRetries;
        } else if (key == "fault_seed") {
            ls >> out.faults.seed;
        } else if (key == "program") {
            size_t nlines = 0;
            ls >> nlines;
            std::ostringstream prog;
            for (size_t i = 0; i < nlines; ++i) {
                if (!std::getline(is, line)) {
                    error = "program truncated";
                    return false;
                }
                prog << line << "\n";
            }
            out.programText = prog.str();
            return true;
        } else {
            return bad("unknown key '" + key + "'");
        }
        if (ls.fail()) {
            return bad("bad value");
        }
    }
    error = "missing program section";
    return false;
}

bool
saveRepro(const std::string &path, const CheckCase &c)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << formatRepro(c);
    return static_cast<bool>(os);
}

bool
loadRepro(const std::string &path, CheckCase &out, std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open " + path;
        return false;
    }
    return parseRepro(is, out, error);
}

} // namespace nvmr

#include "campaign/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/log.hh"

namespace nvmr::campaign
{

namespace
{

/** Frame header: u32 payload_len | u8 type | u64 key. */
constexpr size_t kFrameHeaderBytes = 4 + 1 + 8;
constexpr size_t kFrameTrailerBytes = 4; // crc32
constexpr size_t kMagicBytes = 8;

/** Cap a single record at 256 MiB: larger lengths in a frame header
 *  are certainly corruption, not data. */
constexpr uint32_t kMaxPayloadBytes = 256u << 20;

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = v << 8 | p[i];
    return v;
}

const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t n, uint32_t seed)
{
    const uint32_t *table = crcTable();
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint64_t
fnv1a(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
fnv1a(const std::string &s)
{
    return fnv1a(s.data(), s.size());
}

uint64_t
cellKey(const std::string &stage, uint64_t index)
{
    std::string id = stage;
    id += ':';
    id += std::to_string(index);
    return fnv1a(id);
}

std::string
headerPayload(uint64_t config_hash, const std::string &tool)
{
    std::string out;
    putU64(out, config_hash);
    out += tool;
    return out;
}

bool
parseHeaderPayload(const std::string &payload, uint64_t &config_hash,
                   std::string &tool)
{
    if (payload.size() < 8)
        return false;
    config_hash =
        getU64(reinterpret_cast<const uint8_t *>(payload.data()));
    tool = payload.substr(8);
    return true;
}

// ----------------------------------------------------------------------
// Loading
// ----------------------------------------------------------------------

JournalContents
loadJournal(const std::string &path)
{
    JournalContents out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        out.error = "cannot open " + path + ": " +
                    std::strerror(errno);
        return out;
    }
    std::string bytes;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.append(buf, got);
    bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        out.error = "read error on " + path;
        return out;
    }

    if (bytes.size() < kMagicBytes ||
        std::memcmp(bytes.data(), kJournalMagic, kMagicBytes) != 0) {
        out.error = path + " is not a " +
                    std::string(kJournalSchema) + " journal";
        return out;
    }

    const uint8_t *data =
        reinterpret_cast<const uint8_t *>(bytes.data());
    size_t off = kMagicBytes;
    bool sawHeader = false;
    while (off < bytes.size()) {
        // An incomplete frame (torn final write) ends the journal.
        if (bytes.size() - off <
            kFrameHeaderBytes + kFrameTrailerBytes) {
            out.truncatedTail = true;
            break;
        }
        uint32_t len = getU32(data + off);
        uint8_t type = data[off + 4];
        uint64_t key = getU64(data + off + 5);
        if (len > kMaxPayloadBytes ||
            bytes.size() - off - kFrameHeaderBytes -
                    kFrameTrailerBytes < len) {
            out.truncatedTail = true;
            break;
        }
        const uint8_t *payload = data + off + kFrameHeaderBytes;
        uint32_t stored = getU32(payload + len);
        // CRC covers type + key + payload (offset 4 .. end of payload).
        uint32_t computed =
            crc32(data + off + 4, 1 + 8 + len);
        if (stored != computed) {
            // A corrupt record ends the trustworthy prefix: the
            // record and everything after it are rejected.
            out.truncatedTail = true;
            break;
        }
        std::string body(reinterpret_cast<const char *>(payload), len);
        if (!sawHeader) {
            if (type != static_cast<uint8_t>(RecordType::Header) ||
                !parseHeaderPayload(body, out.configHash, out.tool)) {
                out.error = path + ": first record is not an intact "
                                   "campaign header";
                return out;
            }
            sawHeader = true;
        } else if (type == static_cast<uint8_t>(RecordType::Cell)) {
            out.cells[key] = std::move(body);
        } else if (type ==
                   static_cast<uint8_t>(RecordType::Quarantine)) {
            out.quarantined[key] = std::move(body);
        }
        // Unknown record types are skipped (forward compatibility).
        off += kFrameHeaderBytes + len + kFrameTrailerBytes;
        out.validBytes = off;
    }
    if (!sawHeader) {
        out.error = path + ": no intact campaign header record";
        return out;
    }
    out.validBytes = out.validBytes ? out.validBytes
                                    : kMagicBytes;
    return out;
}

// ----------------------------------------------------------------------
// Writing
// ----------------------------------------------------------------------

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
JournalWriter::degrade(const std::string &why)
{
    if (degradedFlag)
        return;
    degradedFlag = true;
    errorText = why;
    // Warn once; the campaign keeps computing without checkpoints
    // and the tool exits nonzero at the end (docs/operations.md).
    warn("campaign journal degraded: ", why,
         " -- continuing without checkpointing");
    close();
}

bool
JournalWriter::writeAll(const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (w == 0)
            return false;
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
JournalWriter::openFresh(const std::string &path,
                         uint64_t config_hash,
                         const std::string &tool)
{
    std::lock_guard<std::mutex> g(mutex);
    pathName = path;
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        degrade("cannot create " + path + ": " +
                std::strerror(errno));
        return false;
    }
    if (!writeAll(kJournalMagic, kMagicBytes)) {
        degrade("short write on " + path + ": " +
                std::strerror(errno));
        return false;
    }
    return appendLocked(RecordType::Header, 0,
                        headerPayload(config_hash, tool));
}

bool
JournalWriter::openResume(const std::string &path,
                          uint64_t valid_bytes)
{
    std::lock_guard<std::mutex> g(mutex);
    pathName = path;
    fd = ::open(path.c_str(), O_WRONLY, 0644);
    if (fd < 0) {
        degrade("cannot open " + path + ": " + std::strerror(errno));
        return false;
    }
    // Roll back any torn tail so new records start on a frame
    // boundary.
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
        ::lseek(fd, 0, SEEK_END) < 0) {
        degrade("cannot truncate " + path + ": " +
                std::strerror(errno));
        return false;
    }
    return true;
}

bool
JournalWriter::append(RecordType type, uint64_t key,
                      const std::string &payload)
{
    std::lock_guard<std::mutex> g(mutex);
    return appendLocked(type, key, payload);
}

bool
JournalWriter::appendLocked(RecordType type, uint64_t key,
                            const std::string &payload)
{
    if (fd < 0 || degradedFlag)
        return false;

    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size() +
                  kFrameTrailerBytes);
    putU32(frame, static_cast<uint32_t>(payload.size()));
    frame.push_back(static_cast<char>(type));
    putU64(frame, key);
    frame += payload;
    uint32_t crc = crc32(frame.data() + 4, frame.size() - 4);
    putU32(frame, crc);

    off_t before = ::lseek(fd, 0, SEEK_CUR);
    if (!writeAll(frame.data(), frame.size())) {
        // Disk full / short write: try to roll back to the previous
        // intact record so the on-disk prefix stays valid, then
        // degrade (the loader would cope with the torn tail anyway).
        std::string why = std::string("short write: ") +
                          std::strerror(errno);
        if (before >= 0)
            (void)::ftruncate(fd, before);
        degrade(why);
        return false;
    }
    if (::fsync(fd) != 0) {
        degrade(std::string("fsync failed: ") +
                std::strerror(errno));
        return false;
    }
    return true;
}

} // namespace nvmr::campaign

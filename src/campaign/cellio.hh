/**
 * @file
 * Journal payload codecs for the campaign tools: bit-exact binary
 * round-trips of the structures each tool's cells produce
 * (RunResult vectors for sweeps, Spendthrift samples for training,
 * the census/point outcomes of the crash explorer and differ). A
 * resumed campaign decodes these payloads instead of re-running the
 * cell, and because doubles round-trip exactly, the merged output is
 * byte-identical to an uninterrupted run.
 */

#ifndef NVMR_CAMPAIGN_CELLIO_HH
#define NVMR_CAMPAIGN_CELLIO_HH

#include <string>
#include <vector>

#include "check/runner.hh"
#include "power/spendthrift.hh"
#include "sim/simulator.hh"

namespace nvmr::campaign
{

/** One RunResult, every field. */
std::string encodeRunResult(const RunResult &r);
bool decodeRunResult(const std::string &bytes, RunResult &r);

/** A cell's RunResult vector (e.g. one sweep cell across traces). */
std::string encodeRunResults(const std::vector<RunResult> &runs);
bool decodeRunResults(const std::string &bytes,
                      std::vector<RunResult> &runs);

/** Spendthrift training samples of one (workload, trace) cell. */
std::string encodeSamples(const std::vector<SpendthriftSample> &s);
bool decodeSamples(const std::string &bytes,
                   std::vector<SpendthriftSample> &s);

/** A census cell (the fault-free mapping pass of nvmr_diff /
 *  nvmr_crashtest). */
std::string encodeCensus(const CensusResult &c);
bool decodeCensus(const std::string &bytes, CensusResult &c);

} // namespace nvmr::campaign

#endif // NVMR_CAMPAIGN_CELLIO_HH

/**
 * @file
 * Append-only campaign journal ("nvmr-campaign-journal-v1"): the
 * durable record that makes long campaigns crash-safe. Every
 * completed cell is appended as one CRC-framed record and fsync'd, so
 * a SIGKILL, power loss, or torn final write costs at most the cells
 * that were in flight. `--resume` loads the journal, drops any
 * torn/corrupt tail, refuses to continue if the recorded config hash
 * does not match the requested campaign, and replays every completed
 * cell without re-running it (docs/operations.md).
 *
 * File layout:
 *
 *     8 bytes   magic "nvmrjrn1"
 *     records   u32 payload_len | u8 type | u64 cell_key |
 *               payload bytes | u32 crc32(type..payload)
 *
 * All integers are little-endian. The first record must be a Header
 * record whose payload is the campaign config hash (u64) followed by
 * the tool name. A reader stops at the first record whose frame is
 * incomplete or whose CRC does not match; everything before it is
 * trusted, everything at and after it is rejected.
 */

#ifndef NVMR_CAMPAIGN_JOURNAL_HH
#define NVMR_CAMPAIGN_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace nvmr::campaign
{

/** Journal schema identifier (also the file magic, 8 bytes). */
constexpr const char *kJournalMagic = "nvmrjrn1";
constexpr const char *kJournalSchema = "nvmr-campaign-journal-v1";

/** Record types. */
enum class RecordType : uint8_t
{
    Header = 0,     ///< config hash + tool name; first record
    Cell = 1,       ///< a completed cell's result payload
    Quarantine = 2, ///< a poison cell's attempts + reason
};

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), the framing checksum. */
uint32_t crc32(const void *data, size_t n, uint32_t seed = 0);

/** FNV-1a 64-bit, used for config hashes and cell keys. */
uint64_t fnv1a(const void *data, size_t n);
uint64_t fnv1a(const std::string &s);

/** Stable 64-bit identity of cell `index` within `stage`. */
uint64_t cellKey(const std::string &stage, uint64_t index);

/** Render / parse the Header record payload. */
std::string headerPayload(uint64_t config_hash,
                          const std::string &tool);
bool parseHeaderPayload(const std::string &payload,
                        uint64_t &config_hash, std::string &tool);

/** Everything a journal load recovered. */
struct JournalContents
{
    /** Non-empty when the file is unusable (missing, bad magic, no
     *  intact header record): nothing below is meaningful. */
    std::string error;

    /** True when a torn or CRC-corrupt tail was dropped; the journal
     *  is still usable up to validBytes. */
    bool truncatedTail = false;

    /** Byte offset of the end of the last intact record; a resuming
     *  writer truncates the file here before appending. */
    uint64_t validBytes = 0;

    uint64_t configHash = 0;
    std::string tool;

    /** cell key -> result payload, for completed cells. */
    std::unordered_map<uint64_t, std::string> cells;

    /** cell key -> quarantine payload (attempts + reason). */
    std::unordered_map<uint64_t, std::string> quarantined;
};

/** Load and validate a journal; never throws or exits. */
JournalContents loadJournal(const std::string &path);

/**
 * The appending side. Thread-safe: workers append records as cells
 * finish. Every record is fsync'd before append() returns, so a
 * record that was reported durable survives SIGKILL.
 *
 * The writer degrades instead of dying: the first failed open, short
 * write, or fsync (disk full, read-only fs, ...) warns once, rolls
 * the file back to the last intact record if possible, and turns
 * every later append into a no-op. The campaign keeps computing; the
 * tool exits nonzero (kExitDegraded) at the end.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Create/truncate `path` and write magic + Header record. */
    bool openFresh(const std::string &path, uint64_t config_hash,
                   const std::string &tool);

    /** Open an existing journal for resumption: truncate to
     *  `valid_bytes` (from loadJournal) and position at the end. */
    bool openResume(const std::string &path, uint64_t valid_bytes);

    /** Append one record durably; false once degraded. */
    bool append(RecordType type, uint64_t key,
                const std::string &payload);

    bool isOpen() const { return fd >= 0; }
    bool degraded() const { return degradedFlag; }
    const std::string &error() const { return errorText; }

    void close();

  private:
    bool appendLocked(RecordType type, uint64_t key,
                      const std::string &payload);
    bool writeAll(const void *data, size_t n);
    void degrade(const std::string &why);

    int fd = -1;
    bool degradedFlag = false;
    std::string errorText;
    std::string pathName;
    std::mutex mutex;
};

} // namespace nvmr::campaign

#endif // NVMR_CAMPAIGN_JOURNAL_HH

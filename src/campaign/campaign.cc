#include "campaign/campaign.hh"

#include <memory>

#include "campaign/blob.hh"
#include "campaign/sig.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"
#include "obs/json.hh"

namespace nvmr::campaign
{

std::string
quarantinePayload(unsigned attempts, const std::string &reason)
{
    BlobWriter w;
    w.u32(attempts);
    w.str(reason);
    return w.take();
}

bool
parseQuarantinePayload(const std::string &payload, unsigned &attempts,
                       std::string &reason)
{
    BlobReader r(payload);
    attempts = r.u32();
    reason = r.str();
    return r.ok();
}

Campaign::Campaign(std::string tool_, const std::string &config_spec,
                   Options opts_)
    : tool(std::move(tool_)), configHash(fnv1a(config_spec)),
      opts(std::move(opts_))
{
    if (opts.journalPath.empty()) {
        fatal_if(opts.resume, "--resume needs a journal path");
        return;
    }
    if (!opts.resume) {
        writer.openFresh(opts.journalPath, configHash, tool);
        return;
    }

    JournalContents contents = loadJournal(opts.journalPath);
    // Refusals are usage errors: resuming from a journal we cannot
    // trust would silently merge results from a different campaign.
    fatal_if(!contents.error.empty(), "cannot resume: ",
             contents.error);
    fatal_if(contents.tool != tool, "cannot resume: journal was "
             "written by ", contents.tool, ", not ", tool);
    fatal_if(contents.configHash != configHash,
             "cannot resume: journal config hash ",
             contents.configHash, " does not match this campaign (",
             configHash, "); the resumed command line must request "
             "the identical campaign");
    if (contents.truncatedTail)
        warn("resume: dropped a torn/corrupt journal tail; the "
             "affected cell(s) will be re-run");
    inform("resume: ", contents.cells.size(), " completed and ",
           contents.quarantined.size(),
           " quarantined cell(s) loaded from ", opts.journalPath);
    resumedCellMap = std::move(contents.cells);
    resumedQuarantineMap = std::move(contents.quarantined);
    writer.openResume(opts.journalPath, contents.validBytes);
}

bool
Campaign::cellDone(const std::string &stage, uint64_t index) const
{
    uint64_t key = cellKey(stage, index);
    return resumedCellMap.count(key) != 0 ||
           resumedQuarantineMap.count(key) != 0;
}

std::vector<CellResult>
Campaign::runStage(const std::string &stage, uint64_t n,
                   const CellBody &body, par::Progress *progress)
{
    std::vector<CellResult> out(n);

    // Serve journaled cells first and collect the fresh work-list.
    std::vector<uint64_t> fresh;
    fresh.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t key = cellKey(stage, i);
        auto cell = resumedCellMap.find(key);
        if (cell != resumedCellMap.end()) {
            out[i].status = CellStatus::Done;
            out[i].fromJournal = true;
            out[i].payload = cell->second;
            ++resumedCount;
            continue;
        }
        auto quar = resumedQuarantineMap.find(key);
        if (quar != resumedQuarantineMap.end()) {
            out[i].status = CellStatus::Quarantined;
            out[i].fromJournal = true;
            unsigned attempts = 0;
            std::string reason;
            if (!parseQuarantinePayload(quar->second, attempts,
                                        reason))
                reason = "quarantined (unreadable record)";
            out[i].attempts = attempts;
            out[i].payload = reason;
            ++resumedCount;
            continue;
        }
        fresh.push_back(i);
    }

    std::unique_ptr<par::Progress> ownProgress;
    if (!progress && !fresh.empty()) {
        ownProgress = std::make_unique<par::Progress>(
            tool + ":" + stage, fresh.size());
        progress = ownProgress.get();
    }

    unsigned max_attempts = 1 + opts.watchdogRetries;
    par::parallelFor(
        fresh.size(),
        [&](size_t f) {
            uint64_t i = fresh[f];
            CellResult &res = out[i];
            // Interrupt: leave the cell Skipped so the journal stays
            // honest and a resume re-runs it.
            if (interruptRequested())
                return;
            for (unsigned attempt = 0;; ++attempt) {
                CellContext ctx;
                ctx.index = i;
                ctx.attempt = attempt;
                if (opts.watchdogCycles)
                    ctx.budgetCycles = opts.watchdogCycles
                                       << attempt;
                res.attempts = attempt + 1;
                try {
                    std::optional<std::string> payload = body(ctx);
                    if (payload) {
                        res.status = CellStatus::Done;
                        res.payload = std::move(*payload);
                        writer.append(RecordType::Cell,
                                      cellKey(stage, i),
                                      res.payload);
                    } else {
                        res.status = CellStatus::Failed;
                    }
                    return;
                } catch (const CellTimeout &t) {
                    if (attempt + 1 < max_attempts &&
                        !interruptRequested())
                        continue;
                    res.status = CellStatus::Quarantined;
                    res.payload = t.reason;
                    writer.append(
                        RecordType::Quarantine, cellKey(stage, i),
                        quarantinePayload(res.attempts, t.reason));
                    return;
                }
            }
        },
        0, progress);
    if (ownProgress)
        ownProgress->finish();

    // Quarantine bookkeeping in canonical index order, whether the
    // cells were quarantined this run or replayed from the journal.
    for (uint64_t i = 0; i < n; ++i) {
        if (out[i].status != CellStatus::Quarantined)
            continue;
        QuarantineEntry q;
        q.stage = stage;
        q.index = i;
        q.attempts = out[i].attempts;
        q.reason = out[i].payload;
        quarantineList.push_back(std::move(q));
    }
    return out;
}

bool
Campaign::interrupted() const
{
    return interruptRequested();
}

bool
Campaign::journalDegraded() const
{
    return writer.degraded();
}

const std::string &
Campaign::journalError() const
{
    return writer.error();
}

std::string
Campaign::quarantineJson(
    const std::function<std::string(const QuarantineEntry &)>
        &describe) const
{
    JsonWriter w;
    w.beginArray();
    for (const QuarantineEntry &q : quarantineList) {
        w.beginObject();
        w.kv("stage", q.stage);
        w.kv("index", q.index);
        if (describe)
            w.kv("cell", describe(q));
        w.kv("attempts", static_cast<uint64_t>(q.attempts));
        w.kv("reason", q.reason);
        w.endObject();
    }
    w.endArray();
    return w.str();
}

int
Campaign::exitCode(int result_code) const
{
    if (interrupted())
        return interruptExitCode();
    if (result_code != kExitOk)
        return result_code;
    if (!quarantineList.empty() || journalDegraded())
        return kExitDegraded;
    return kExitOk;
}

} // namespace nvmr::campaign

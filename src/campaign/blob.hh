/**
 * @file
 * Tiny length-prefixed binary codec for journal payloads. Cell
 * results are serialized with BlobWriter when they are journaled and
 * decoded with BlobReader on resume; because doubles round-trip
 * bit-exactly, a resumed campaign's merged output is byte-identical
 * to an uninterrupted run (the crash-resume ctest enforces this).
 *
 * All integers little-endian; strings and vectors are u32
 * length-prefixed. BlobReader never throws: any overrun clears ok()
 * and every later read returns zero values, so a caller checks ok()
 * once at the end.
 */

#ifndef NVMR_CAMPAIGN_BLOB_HH
#define NVMR_CAMPAIGN_BLOB_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace nvmr::campaign
{

class BlobWriter
{
  public:
    void u8(uint8_t v) { out.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        out += s;
    }

    std::string take() { return std::move(out); }
    const std::string &data() const { return out; }

  private:
    std::string out;
};

class BlobReader
{
  public:
    explicit BlobReader(const std::string &bytes) : buf(bytes) {}

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<uint8_t>(buf[pos++]);
    }

    bool b() { return u8() != 0; }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = v << 8 | static_cast<uint8_t>(buf[pos + i]);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = v << 8 | static_cast<uint8_t>(buf[pos + i]);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    float
    f32()
    {
        uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    /** All reads so far were in bounds and the buffer is drained iff
     *  the caller read everything it wrote. */
    bool ok() const { return !overrun; }
    bool atEnd() const { return pos == buf.size(); }

  private:
    bool
    need(size_t n)
    {
        if (overrun || buf.size() - pos < n) {
            overrun = true;
            return false;
        }
        return true;
    }

    const std::string &buf;
    size_t pos = 0;
    bool overrun = false;
};

} // namespace nvmr::campaign

#endif // NVMR_CAMPAIGN_BLOB_HH

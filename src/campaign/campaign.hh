/**
 * @file
 * Crash-safe campaign execution layer. Every long-running campaign
 * tool (nvmr_sweep, nvmr_fuzz, nvmr_diff, nvmr_crashtest,
 * nvmr_train) routes its work-list through a Campaign: cells fan out
 * across the src/par engine exactly as before, but each completed
 * cell's result payload is appended to an fsync'd CRC-framed journal
 * (campaign/journal.hh), so a SIGKILL'd or interrupted campaign can
 * `--resume` and skip straight to the unfinished cells. Because
 * payloads round-trip bit-exactly and gathering stays in canonical
 * index order, a resumed campaign's merged output is byte-identical
 * to an uninterrupted run at any `--jobs N`.
 *
 * Per-cell robustness policy: an optional deterministic watchdog
 * (simulated-cycle budget, so it is reproducible across hosts and
 * worker counts, unlike a wall-clock timeout) with bounded
 * budget-doubling retries. A cell that exhausts its retries is
 * quarantined -- recorded in the journal and reported in the manifest
 * -- instead of aborting or hanging the whole campaign.
 *
 * See docs/operations.md for the operator-facing semantics.
 */

#ifndef NVMR_CAMPAIGN_CAMPAIGN_HH
#define NVMR_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/journal.hh"
#include "par/par.hh"

namespace nvmr::campaign
{

/** Campaign-wide robustness knobs (tools parse them from the shared
 *  --journal/--resume/--watchdog-* flags; tools/cli.hh). */
struct Options
{
    /** Journal file; empty disables checkpointing. */
    std::string journalPath;

    /** Resume from journalPath instead of truncating it. The journal
     *  must exist, carry an intact header, and match the campaign's
     *  config hash; anything else is refused with fatal(). */
    bool resume = false;

    /** Per-cell simulated-cycle budget; 0 disables the watchdog. */
    uint64_t watchdogCycles = 0;

    /** Budget-doubling retries after the first timeout; the cell is
     *  quarantined after 1 + watchdogRetries attempts. */
    unsigned watchdogRetries = 2;
};

/** Thrown by a cell body when the watchdog budget expired before the
 *  cell finished. The campaign retries with twice the budget, then
 *  quarantines. */
struct CellTimeout
{
    std::string reason;
};

/** What the body of one cell attempt sees. */
struct CellContext
{
    uint64_t index = 0;      ///< cell index within the stage
    unsigned attempt = 0;    ///< 0-based attempt number
    uint64_t budgetCycles = 0; ///< 0 = no watchdog; doubles per retry
};

enum class CellStatus : uint8_t
{
    Done,        ///< body returned a payload (fresh or from journal)
    Failed,      ///< body returned nullopt (tool-level failure;
                 ///  never journaled, so a resume re-runs it)
    Quarantined, ///< watchdog retries exhausted
    Skipped,     ///< interrupt arrived before the cell ran
};

struct CellResult
{
    CellStatus status = CellStatus::Skipped;
    bool fromJournal = false; ///< served without re-running
    unsigned attempts = 0;    ///< body invocations this run
    std::string payload;      ///< Done: result bytes;
                              ///  Quarantined: reason text
};

struct QuarantineEntry
{
    std::string stage;
    uint64_t index = 0;
    unsigned attempts = 0;
    std::string reason;
};

/**
 * One campaign run. Construct with the tool name and a canonical
 * config-spec string covering every parameter that shapes the
 * work-list or the per-cell results (not --jobs, not output paths);
 * its hash gates `--resume`. Then call runStage() once per
 * work-list, in a deterministic order with deterministic stage names.
 */
class Campaign
{
  public:
    /** Body: compute one cell, return its journal payload. Return
     *  nullopt for a tool-level failure that must not be journaled
     *  (the tool reports it and exits; a resume re-runs the cell and
     *  reproduces the failure). Throw CellTimeout to engage the
     *  watchdog retry/quarantine path. Any other exception aborts the
     *  stage (rethrown after the pool drains, lowest index first). */
    using CellBody =
        std::function<std::optional<std::string>(const CellContext &)>;

    Campaign(std::string tool, const std::string &config_spec,
             Options opts);

    /**
     * Run `n` cells under `stage` (a name that must be stable across
     * runs -- it keys the journal records). Journaled cells are
     * served without running the body; the rest fan out across the
     * parallel engine. Results come back in index order.
     */
    std::vector<CellResult> runStage(const std::string &stage,
                                     uint64_t n, const CellBody &body,
                                     par::Progress *progress = nullptr);

    /** True when a resume journal already holds this cell (tools use
     *  it to skip per-stage setup work such as program assembly or
     *  oracle precomputation). */
    bool cellDone(const std::string &stage, uint64_t index) const;

    /** Cells served from the journal so far. */
    uint64_t resumedCells() const { return resumedCount; }

    /** An interrupt arrived; remaining cells were/will be skipped. */
    bool interrupted() const;

    /** Journal hit disk-full / short-write and was disabled. */
    bool journalDegraded() const;
    const std::string &journalError() const;

    /** Quarantined cells, in stage-then-index order. */
    const std::vector<QuarantineEntry> &quarantined() const
    {
        return quarantineList;
    }

    /** JSON array for the manifest's "quarantine" extra. `describe`
     *  optionally renders a human-readable cell label. */
    std::string quarantineJson(
        const std::function<std::string(const QuarantineEntry &)>
            &describe = nullptr) const;

    /**
     * The exit code this campaign deserves. `result_code` is the
     * tool-level verdict (kExitOk, or kExitMismatch on divergence).
     * An interrupt overrides it; quarantine or a degraded journal
     * upgrade a clean result to kExitDegraded.
     */
    int exitCode(int result_code) const;

  private:
    std::string tool;
    uint64_t configHash;
    Options opts;

    JournalWriter writer;
    std::unordered_map<uint64_t, std::string> resumedCellMap;
    std::unordered_map<uint64_t, std::string> resumedQuarantineMap;
    uint64_t resumedCount = 0;

    std::vector<QuarantineEntry> quarantineList;
};

/** Serialize / parse a Quarantine journal record payload. */
std::string quarantinePayload(unsigned attempts,
                              const std::string &reason);
bool parseQuarantinePayload(const std::string &payload,
                            unsigned &attempts, std::string &reason);

} // namespace nvmr::campaign

#endif // NVMR_CAMPAIGN_CAMPAIGN_HH

/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for campaign tools. The
 * handler only records the signal; the campaign layer polls the flag
 * before dispatching each cell, skips the rest of the work-list, and
 * the tool flushes its partial manifest (the journal is already
 * durable per cell) before exiting with 128 + signal. A second
 * SIGINT/SIGTERM force-exits immediately for unresponsive runs.
 */

#ifndef NVMR_CAMPAIGN_SIG_HH
#define NVMR_CAMPAIGN_SIG_HH

namespace nvmr::campaign
{

/** Install the SIGINT/SIGTERM interrupt handlers (idempotent). */
void installSignalHandlers();

/** True once SIGINT or SIGTERM has been received. */
bool interruptRequested();

/** The pending signal number, or 0 when none. */
int pendingSignal();

/** Conventional exit code for the pending signal (128 + signo);
 *  kExitOk when no signal is pending. */
int interruptExitCode();

/** Test hook: fake (signo > 0) or clear (signo == 0) an interrupt. */
void setInterruptForTest(int signo);

} // namespace nvmr::campaign

#endif // NVMR_CAMPAIGN_SIG_HH

#include "campaign/cellio.hh"

#include "campaign/blob.hh"

namespace nvmr::campaign
{

namespace
{

void
putRun(BlobWriter &w, const RunResult &r)
{
    w.str(r.program);
    w.str(r.arch);
    w.str(r.policy);
    w.str(r.trace);
    w.b(r.completed);
    w.b(r.validated);
    w.b(r.validationChecked);
    w.u64(r.activeCycles);
    w.u64(r.totalCycles);
    w.u64(r.instructions);
    w.u32(static_cast<uint32_t>(r.energy.size()));
    for (NanoJoules e : r.energy)
        w.f64(e);
    w.f64(r.totalEnergyNj);
    w.u64(r.backups);
    w.u32(static_cast<uint32_t>(r.backupsByReason.size()));
    for (uint64_t b : r.backupsByReason)
        w.u64(b);
    w.u64(r.violations);
    w.u64(r.renames);
    w.u64(r.reclaims);
    w.u64(r.restores);
    w.u64(r.powerFailures);
    w.u64(r.nvmReads);
    w.u64(r.nvmWrites);
    w.u64(r.maxWear);
    w.u64(r.cacheHits);
    w.u64(r.cacheMisses);
    w.u64(r.tornBackups);
    w.u64(r.injectedCrashes);
    w.u64(r.eccCorrected);
    w.u64(r.eccUncorrectable);
}

bool
getRun(BlobReader &r, RunResult &out)
{
    out.program = r.str();
    out.arch = r.str();
    out.policy = r.str();
    out.trace = r.str();
    out.completed = r.b();
    out.validated = r.b();
    out.validationChecked = r.b();
    out.activeCycles = r.u64();
    out.totalCycles = r.u64();
    out.instructions = r.u64();
    uint32_t ne = r.u32();
    if (ne != out.energy.size())
        return false;
    for (auto &e : out.energy)
        e = r.f64();
    out.totalEnergyNj = r.f64();
    out.backups = r.u64();
    uint32_t nb = r.u32();
    if (nb != out.backupsByReason.size())
        return false;
    for (auto &b : out.backupsByReason)
        b = r.u64();
    out.violations = r.u64();
    out.renames = r.u64();
    out.reclaims = r.u64();
    out.restores = r.u64();
    out.powerFailures = r.u64();
    out.nvmReads = r.u64();
    out.nvmWrites = r.u64();
    out.maxWear = r.u64();
    out.cacheHits = r.u64();
    out.cacheMisses = r.u64();
    out.tornBackups = r.u64();
    out.injectedCrashes = r.u64();
    out.eccCorrected = r.u64();
    out.eccUncorrectable = r.u64();
    return r.ok();
}

} // namespace

std::string
encodeRunResult(const RunResult &r)
{
    BlobWriter w;
    putRun(w, r);
    return w.take();
}

bool
decodeRunResult(const std::string &bytes, RunResult &r)
{
    BlobReader br(bytes);
    return getRun(br, r) && br.atEnd();
}

std::string
encodeRunResults(const std::vector<RunResult> &runs)
{
    BlobWriter w;
    w.u32(static_cast<uint32_t>(runs.size()));
    for (const RunResult &r : runs)
        putRun(w, r);
    return w.take();
}

bool
decodeRunResults(const std::string &bytes,
                 std::vector<RunResult> &runs)
{
    BlobReader r(bytes);
    uint32_t n = r.u32();
    // Element counts larger than the payload itself are corruption;
    // refuse before resize() turns them into an allocation.
    if (n > bytes.size())
        return false;
    runs.clear();
    runs.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        if (!getRun(r, runs[i]))
            return false;
    return r.ok() && r.atEnd();
}

std::string
encodeSamples(const std::vector<SpendthriftSample> &s)
{
    BlobWriter w;
    w.u32(static_cast<uint32_t>(s.size()));
    for (const SpendthriftSample &x : s) {
        w.f32(x.harvestMw);
        w.f32(x.capVolts);
        w.f32(x.label);
    }
    return w.take();
}

bool
decodeSamples(const std::string &bytes,
              std::vector<SpendthriftSample> &s)
{
    BlobReader r(bytes);
    uint32_t n = r.u32();
    if (n > bytes.size())
        return false;
    s.clear();
    s.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        s[i].harvestMw = r.f32();
        s[i].capVolts = r.f32();
        s[i].label = r.f32();
    }
    return r.ok() && r.atEnd();
}

std::string
encodeCensus(const CensusResult &c)
{
    BlobWriter w;
    w.b(c.completed);
    w.u64(c.totalCycles);
    w.u64(c.persistPoints);
    w.u32(static_cast<uint32_t>(c.windows.size()));
    for (const FaultInjector::BackupWindow &win : c.windows) {
        w.u64(win.firstPersist);
        w.u64(win.lastPersist);
        w.u64(win.commitPersist);
    }
    w.u32(static_cast<uint32_t>(c.commitCycles.size()));
    for (uint64_t cc : c.commitCycles)
        w.u64(cc);
    return w.take();
}

bool
decodeCensus(const std::string &bytes, CensusResult &c)
{
    BlobReader r(bytes);
    c.completed = r.b();
    c.totalCycles = r.u64();
    c.persistPoints = r.u64();
    uint32_t nw = r.u32();
    if (nw > bytes.size())
        return false;
    c.windows.clear();
    c.windows.resize(nw);
    for (uint32_t i = 0; i < nw; ++i) {
        c.windows[i].firstPersist = r.u64();
        c.windows[i].lastPersist = r.u64();
        c.windows[i].commitPersist = r.u64();
    }
    uint32_t nc = r.u32();
    if (nc > bytes.size())
        return false;
    c.commitCycles.clear();
    c.commitCycles.resize(nc);
    for (uint32_t i = 0; i < nc; ++i)
        c.commitCycles[i] = r.u64();
    return r.ok() && r.atEnd();
}

} // namespace nvmr::campaign

#include "campaign/sig.hh"

#include <csignal>
#include <cstdlib>

#include "common/exitcodes.hh"

namespace nvmr::campaign
{

namespace
{

volatile std::sig_atomic_t gSignal = 0;

extern "C" void
campaignSignalHandler(int signo)
{
    // Second interrupt: the user really means it. _Exit is
    // async-signal-safe; the journal holds every completed cell.
    if (gSignal != 0)
        std::_Exit(nvmr::kExitSignalBase + signo);
    gSignal = signo;
}

} // namespace

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = campaignSignalHandler;
    sigemptyset(&sa.sa_mask);
    // SA_RESTART keeps in-flight journal/manifest writes whole.
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return gSignal != 0;
}

int
pendingSignal()
{
    return static_cast<int>(gSignal);
}

int
interruptExitCode()
{
    int s = pendingSignal();
    return s ? kExitSignalBase + s : kExitOk;
}

void
setInterruptForTest(int signo)
{
    gSignal = signo;
}

} // namespace nvmr::campaign

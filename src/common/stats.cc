#include "common/stats.hh"

#include "common/log.hh"

namespace nvmr
{

void
StatGroup::add(Scalar *stat)
{
    panic_if(!stat, "null stat registered");
    auto [it, inserted] = byName.emplace(stat->name(), stat);
    panic_if(!inserted, "duplicate stat name: ", stat->name());
    order.push_back(stat);
}

const Scalar *
StatGroup::find(const std::string &stat_name) const
{
    auto it = byName.find(stat_name);
    return it == byName.end() ? nullptr : it->second;
}

double
StatGroup::get(const std::string &stat_name) const
{
    const Scalar *s = find(stat_name);
    return s ? s->value() : 0.0;
}

void
StatGroup::resetAll()
{
    for (Scalar *s : order)
        s->reset();
}

} // namespace nvmr

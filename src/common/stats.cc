#include "common/stats.hh"

#include "common/log.hh"

namespace nvmr
{

void
StatGroup::add(StatBase *stat)
{
    panic_if(!stat, "null stat registered");
    auto [it, inserted] = byName.emplace(stat->name(), stat);
    panic_if(!inserted, "duplicate stat name: ", stat->name());
    order.push_back(stat);
}

bool
StatGroup::has(const std::string &stat_name) const
{
    return byName.find(stat_name) != byName.end();
}

const StatBase *
StatGroup::findStat(const std::string &stat_name) const
{
    auto it = byName.find(stat_name);
    return it == byName.end() ? nullptr : it->second;
}

const Scalar *
StatGroup::find(const std::string &stat_name) const
{
    const StatBase *s = findStat(stat_name);
    if (!s || s->kind() != StatKind::Scalar)
        return nullptr;
    return static_cast<const Scalar *>(s);
}

const Histogram *
StatGroup::findHistogram(const std::string &stat_name) const
{
    const StatBase *s = findStat(stat_name);
    if (!s || s->kind() != StatKind::Histogram)
        return nullptr;
    return static_cast<const Histogram *>(s);
}

const Distribution *
StatGroup::findDistribution(const std::string &stat_name) const
{
    const StatBase *s = findStat(stat_name);
    if (!s || s->kind() != StatKind::Distribution)
        return nullptr;
    return static_cast<const Distribution *>(s);
}

double
StatGroup::value(const std::string &stat_name) const
{
    const Scalar *s = find(stat_name);
    panic_if(!s, "no scalar stat named '", stat_name,
             "' is registered");
    return s->value();
}

double
StatGroup::get(const std::string &stat_name) const
{
    const Scalar *s = find(stat_name);
    return s ? s->value() : 0.0;
}

void
StatGroup::resetAll()
{
    for (StatBase *s : order)
        s->reset();
}

} // namespace nvmr

/**
 * @file
 * Lightweight named statistics. Every architectural component
 * registers its stats into a StatGroup; experiment harnesses and the
 * run-manifest writer read them out by name. Three stat shapes are
 * supported: Scalar (a counter), Histogram (log2-bucketed samples,
 * for long-tailed quantities like backup intervals) and Distribution
 * (moment tracking: mean / stddev / min / max).
 */

#ifndef NVMR_COMMON_STATS_HH
#define NVMR_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace nvmr
{

/** Discriminator for the registered stat shapes. */
enum class StatKind
{
    Scalar,
    Histogram,
    Distribution,
};

/** Common base: a name, a description and a kind. */
class StatBase
{
  public:
    StatBase() = default;
    StatBase(std::string stat_name, std::string stat_desc)
        : _name(std::move(stat_name)), _desc(std::move(stat_desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    virtual StatKind kind() const = 0;
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A single named counter with a description. */
class Scalar : public StatBase
{
  public:
    Scalar() = default;
    Scalar(std::string stat_name, std::string stat_desc)
        : StatBase(std::move(stat_name), std::move(stat_desc))
    {}

    StatKind kind() const override { return StatKind::Scalar; }

    double value() const { return _value; }

    void reset() override { _value = 0.0; }
    void set(double v) { _value = v; }

    Scalar &
    operator+=(double v)
    {
        _value += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        _value += 1.0;
        return *this;
    }

  private:
    double _value = 0.0;
};

/**
 * Log2-bucketed histogram of non-negative samples. Bucket 0 holds
 * values in [0, 1); bucket i (i >= 1) holds [2^(i-1), 2^i). The
 * power-of-two bucketing needs no a-priori range and resolves
 * quantities that span decades (cycle intervals, wear counts).
 */
class Histogram : public StatBase
{
  public:
    /** Bucket 0 = [0,1) plus one bucket per doubling up to 2^64. */
    static constexpr unsigned kMaxBuckets = 65;

    Histogram() = default;
    Histogram(std::string stat_name, std::string stat_desc)
        : StatBase(std::move(stat_name), std::move(stat_desc))
    {}

    StatKind kind() const override { return StatKind::Histogram; }

    void
    sample(double v, uint64_t n = 1)
    {
        if (n == 0)
            return;
        if (v < 0)
            v = 0; // histogram domain is non-negative
        unsigned b = bucketOf(v);
        counts[b] += n;
        _count += n;
        _sum += v * static_cast<double>(n);
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }

    void
    reset() override
    {
        for (uint64_t &c : counts)
            c = 0;
        _count = 0;
        _sum = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }

    /** Samples recorded in bucket b. */
    uint64_t bucketCount(unsigned b) const { return counts[b]; }

    /** Inclusive lower edge of bucket b. */
    static double
    bucketLow(unsigned b)
    {
        return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    }

    /** Exclusive upper edge of bucket b. */
    static double
    bucketHigh(unsigned b)
    {
        return std::ldexp(1.0, static_cast<int>(b));
    }

    /** Index of the highest non-empty bucket + 1 (0 when empty). */
    unsigned
    numBuckets() const
    {
        for (unsigned b = kMaxBuckets; b > 0; --b)
            if (counts[b - 1])
                return b;
        return 0;
    }

    /**
     * Bucket-resolution quantile: the exclusive upper edge of the
     * bucket where the cumulative count first reaches p * count.
     * p in [0, 1]; returns 0 when empty.
     */
    double
    percentile(double p) const
    {
        if (_count == 0)
            return 0.0;
        double target = p * static_cast<double>(_count);
        uint64_t seen = 0;
        for (unsigned b = 0; b < kMaxBuckets; ++b) {
            seen += counts[b];
            if (static_cast<double>(seen) >= target && counts[b])
                return bucketHigh(b);
            if (static_cast<double>(seen) >= target && seen == _count)
                return bucketHigh(b);
        }
        return bucketHigh(kMaxBuckets - 1);
    }

    /** The bucket a value falls into. */
    static unsigned
    bucketOf(double v)
    {
        if (v < 1.0)
            return 0;
        // floor(log2(v)) + 1, robust at exact powers of two.
        int exp = 0;
        double frac = std::frexp(v, &exp); // v = frac * 2^exp
        (void)frac;                        // frac in [0.5, 1)
        unsigned b = static_cast<unsigned>(exp);
        return b < kMaxBuckets ? b : kMaxBuckets - 1;
    }

  private:
    uint64_t counts[kMaxBuckets] = {};
    uint64_t _count = 0;
    double _sum = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Moment-tracking distribution: mean, stddev, min, max. */
class Distribution : public StatBase
{
  public:
    Distribution() = default;
    Distribution(std::string stat_name, std::string stat_desc)
        : StatBase(std::move(stat_name), std::move(stat_desc))
    {}

    StatKind kind() const override { return StatKind::Distribution; }

    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        _sumSq += v * v;
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }

    void
    reset() override
    {
        _count = 0;
        _sum = 0;
        _sumSq = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }

    double
    stddev() const
    {
        if (_count < 2)
            return 0.0;
        double n = static_cast<double>(_count);
        double var = (_sumSq - _sum * _sum / n) / (n - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

  private:
    uint64_t _count = 0;
    double _sum = 0;
    double _sumSq = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A flat registry of stats. Components own their stats and register
 * pointers here; the group never owns the memory (components outlive
 * it within a Simulator run).
 */
class StatGroup
{
  public:
    /** Register a stat; names must be unique within the group. */
    void add(StatBase *stat);

    /** True if a stat of any kind with this name is registered. */
    bool has(const std::string &stat_name) const;

    /** Look up a stat of any kind; nullptr if absent. */
    const StatBase *findStat(const std::string &stat_name) const;

    /** Look up a scalar by name; returns nullptr if absent or not a
     *  scalar. */
    const Scalar *find(const std::string &stat_name) const;

    /** Look up a histogram by name; nullptr if absent / wrong kind. */
    const Histogram *findHistogram(const std::string &stat_name) const;

    /** Look up a distribution; nullptr if absent / wrong kind. */
    const Distribution *
    findDistribution(const std::string &stat_name) const;

    /**
     * Scalar value lookup that panics when the stat does not exist.
     * Harnesses and tests that depend on a counter's existence use
     * this so a renamed stat fails loudly instead of reading as 0.
     */
    double value(const std::string &stat_name) const;

    /** Lenient scalar value lookup: 0 for missing stats. Only for
     *  callers that genuinely treat absence as zero; prefer value(). */
    double get(const std::string &stat_name) const;

    /** Reset every registered stat. */
    void resetAll();

    /** All registered stats, in registration order. */
    const std::vector<StatBase *> &all() const { return order; }

  private:
    std::map<std::string, StatBase *> byName;
    std::vector<StatBase *> order;
};

} // namespace nvmr

#endif // NVMR_COMMON_STATS_HH

/**
 * @file
 * Lightweight named statistic counters. Every architectural component
 * registers Scalar stats into a StatGroup; experiment harnesses read
 * them out by name when printing tables.
 */

#ifndef NVMR_COMMON_STATS_HH
#define NVMR_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nvmr
{

/** A single named counter with a description. */
class Scalar
{
  public:
    Scalar() = default;
    Scalar(std::string stat_name, std::string stat_desc)
        : _name(std::move(stat_name)), _desc(std::move(stat_desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    double value() const { return _value; }

    void reset() { _value = 0.0; }
    void set(double v) { _value = v; }

    Scalar &
    operator+=(double v)
    {
        _value += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        _value += 1.0;
        return *this;
    }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/**
 * A flat registry of scalar stats. Components own their Scalars and
 * register pointers here; the group never owns the memory (components
 * outlive it within a Simulator run).
 */
class StatGroup
{
  public:
    /** Register a stat; names must be unique within the group. */
    void add(Scalar *stat);

    /** Look up by name; returns nullptr if absent. */
    const Scalar *find(const std::string &stat_name) const;

    /** Value lookup that returns 0 for missing stats. */
    double get(const std::string &stat_name) const;

    /** Reset every registered stat to zero. */
    void resetAll();

    /** All registered stats, in registration order. */
    const std::vector<Scalar *> &all() const { return order; }

  private:
    std::map<std::string, Scalar *> byName;
    std::vector<Scalar *> order;
};

} // namespace nvmr

#endif // NVMR_COMMON_STATS_HH

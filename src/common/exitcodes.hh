/**
 * @file
 * Standardized process exit codes for every campaign tool
 * (docs/operations.md). The codes separate "the system under test is
 * wrong" from "the harness could not do its job" from "the user asked
 * for something malformed", so fleet drivers and CI can triage a
 * failed campaign without parsing its output.
 */

#ifndef NVMR_COMMON_EXITCODES_HH
#define NVMR_COMMON_EXITCODES_HH

namespace nvmr
{

/** Campaign finished and every check passed. */
constexpr int kExitOk = 0;

/** A verification failure in the simulated system: oracle mismatch,
 *  final-state divergence, invariant violation, or a stuck run. */
constexpr int kExitMismatch = 1;

/** User error: bad flags, malformed input files, or a `--resume`
 *  journal whose config hash does not match the requested campaign.
 *  fatal() exits with this code. */
constexpr int kExitUsage = 2;

/** The campaign itself degraded but kept going: cells were
 *  quarantined after watchdog timeouts, the journal hit disk-full /
 *  short writes, or stdout could not be flushed. Results that were
 *  produced are valid; coverage is incomplete. */
constexpr int kExitDegraded = 3;

/** Interrupt exit codes follow the shell convention 128 + signal
 *  (130 = SIGINT, 143 = SIGTERM). The journal and a partial manifest
 *  are flushed before exiting. */
constexpr int kExitSignalBase = 128;

} // namespace nvmr

#endif // NVMR_COMMON_EXITCODES_HH

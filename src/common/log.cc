#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

#include "common/exitcodes.hh"

namespace nvmr
{

namespace
{
bool quietFlag = false;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(kExitUsage);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace nvmr

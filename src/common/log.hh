/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef NVMR_COMMON_LOG_HH
#define NVMR_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace nvmr
{

/** Abort with a message; call for conditions that indicate a simulator
 *  bug (never the user's fault). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(kExitUsage) with a message; call for user errors (bad
 *  configuration, malformed assembly, etc.). */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print a status message to stderr (suppressed when quiet). */
void informImpl(const std::string &msg);

/** Globally silence inform() output (benches use this). */
void setQuiet(bool quiet);
bool isQuiet();

namespace detail
{

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace nvmr

#define panic(...) \
    ::nvmr::panicImpl(__FILE__, __LINE__, \
                      ::nvmr::detail::formatAll(__VA_ARGS__))

#define fatal(...) \
    ::nvmr::fatalImpl(::nvmr::detail::formatAll(__VA_ARGS__))

#define warn(...) \
    ::nvmr::warnImpl(::nvmr::detail::formatAll(__VA_ARGS__))

#define inform(...) \
    ::nvmr::informImpl(::nvmr::detail::formatAll(__VA_ARGS__))

#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/**
 * Debug-build assertion for hot-path invariants: full panic()
 * diagnostics in Debug builds, compiled out (like assert) when
 * NDEBUG is set, so per-access checks cost nothing in the
 * RelWithDebInfo/Release builds the benchmarks run. Use panic_if for
 * anything reachable from untrusted input (fuzzed programs, CLI).
 */
#ifdef NDEBUG
#define NVMR_DEBUG_ASSERTS 0
#define debug_assert(cond, ...) \
    do { \
    } while (0)
#else
#define NVMR_DEBUG_ASSERTS 1
#define debug_assert(cond, ...) \
    do { \
        if (!(cond)) \
            panic("assertion failed: " #cond ": ", __VA_ARGS__); \
    } while (0)
#endif

#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // NVMR_COMMON_LOG_HH

/**
 * @file
 * ASCII table printer used by the benchmark harnesses to render
 * paper-style result tables (one row per benchmark, one column per
 * configuration).
 */

#ifndef NVMR_COMMON_TABLE_HH
#define NVMR_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace nvmr
{

/** Accumulates rows of strings and prints them column-aligned. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header_cells);

    /** Append a row; it may have fewer cells than the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render the full table (header, separator, rows). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace nvmr

#endif // NVMR_COMMON_TABLE_HH

/**
 * @file
 * ASCII horizontal bar charts for the figure-reproduction harnesses:
 * a dependency-free way to *see* the shapes the paper's figures show
 * (grouped bars per benchmark, negative values supported).
 */

#ifndef NVMR_COMMON_BARCHART_HH
#define NVMR_COMMON_BARCHART_HH

#include <string>
#include <vector>

namespace nvmr
{

/** Renders labelled horizontal bars scaled to a character budget. */
class BarChart
{
  public:
    /**
     * @param value_suffix Unit appended to each value (e.g. "%").
     * @param width Character budget for the longest bar.
     */
    explicit BarChart(std::string value_suffix = "",
                      unsigned width = 48);

    /** Append one bar. */
    void add(const std::string &label, double value);

    /** Render all bars; negative values extend left of the axis. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const;

  private:
    std::string suffix;
    unsigned width;
    struct Bar
    {
        std::string label;
        double value;
    };
    std::vector<Bar> bars;
};

} // namespace nvmr

#endif // NVMR_COMMON_BARCHART_HH

/**
 * @file
 * Fundamental fixed-width types shared across the NvMR simulator.
 */

#ifndef NVMR_COMMON_TYPES_HH
#define NVMR_COMMON_TYPES_HH

#include <cstdint>

namespace nvmr
{

/** Byte address into the simulated non-volatile memory. */
using Addr = uint32_t;

/** Machine word (the simulated CPU is a 32-bit Thumb-class core). */
using Word = uint32_t;

/** Signed view of a machine word, for arithmetic instructions. */
using SWord = int32_t;

/** Simulated clock cycle count (8 MHz core). */
using Cycles = uint64_t;

/** Energy in nanojoules; all accounting uses double precision. */
using NanoJoules = double;

/** Simulated wall-clock time in microseconds. */
using MicroSecs = double;

/** A sentinel for "no address". */
constexpr Addr kNoAddr = 0xffffffffu;

/** Bytes per machine word. */
constexpr unsigned kWordBytes = 4;

} // namespace nvmr

#endif // NVMR_COMMON_TYPES_HH

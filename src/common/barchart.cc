#include "common/barchart.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace nvmr
{

BarChart::BarChart(std::string value_suffix, unsigned chart_width)
    : suffix(std::move(value_suffix)), width(chart_width)
{
}

void
BarChart::add(const std::string &label, double value)
{
    bars.push_back({label, value});
}

std::string
BarChart::render() const
{
    if (bars.empty())
        return "";

    size_t label_width = 0;
    double max_abs = 0;
    double min_val = 0;
    for (const Bar &b : bars) {
        label_width = std::max(label_width, b.label.size());
        max_abs = std::max(max_abs, std::fabs(b.value));
        min_val = std::min(min_val, b.value);
    }
    if (max_abs == 0)
        max_abs = 1;

    // Reserve left space for negative bars, proportionally.
    unsigned neg_width =
        min_val < 0 ? static_cast<unsigned>(std::ceil(
                          -min_val / max_abs *
                          static_cast<double>(width))) : 0;

    std::ostringstream os;
    for (const Bar &b : bars) {
        unsigned len = static_cast<unsigned>(std::lround(
            std::fabs(b.value) / max_abs * static_cast<double>(width)));
        os << "  " << b.label
           << std::string(label_width - b.label.size(), ' ') << " ";
        if (b.value < 0) {
            os << std::string(neg_width - len, ' ')
               << std::string(len, '#') << "|";
        } else {
            os << std::string(neg_width, ' ') << "|"
               << std::string(len, '#');
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %.1f%s", b.value,
                      suffix.c_str());
        os << buf << "\n";
    }
    return os.str();
}

void
BarChart::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace nvmr

#include "common/table.hh"

#include <cstdio>
#include <sstream>

namespace nvmr
{

TablePrinter::TablePrinter(std::vector<std::string> header_cells)
    : header(std::move(header_cells))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(header.size(), 0);
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "| " : " | ");
            os << cell;
            os << std::string(widths[c] - cell.size(), ' ');
        }
        os << " |\n";
    };

    emit_row(header);
    for (size_t c = 0; c < widths.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-");
        os << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace nvmr

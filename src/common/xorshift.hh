/**
 * @file
 * Deterministic xorshift PRNG used by workload data sections, synthetic
 * harvester traces and the property-test program generator. The same
 * generator is shared between assembled workloads (via the assembler's
 * .rand directive) and their C++ golden models so both sides see
 * identical inputs.
 */

#ifndef NVMR_COMMON_XORSHIFT_HH
#define NVMR_COMMON_XORSHIFT_HH

#include <cstdint>

namespace nvmr
{

/**
 * 64-bit xorshift* generator. Deterministic across platforms; never use
 * std::rand or std::mt19937 in the simulator so results are reproducible
 * bit-for-bit.
 */
class XorShift
{
  public:
    explicit XorShift(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform 32-bit value. */
    uint32_t next32() { return static_cast<uint32_t>(next() >> 32); }

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        if (hi <= lo)
            return lo;
        uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        return lo + static_cast<int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state;
};

} // namespace nvmr

#endif // NVMR_COMMON_XORSHIFT_HH

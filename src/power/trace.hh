/**
 * @file
 * Synthetic ambient-energy harvesting traces. Stand-in for the
 * measured voltage traces of BatterylessSim [28] (DESIGN.md,
 * substitution 3): harvested power sampled at 1 kHz, with RF-bursty,
 * solar-like and wind-like generators. Traces wrap around when a
 * simulation outlives them.
 */

#ifndef NVMR_POWER_TRACE_HH
#define NVMR_POWER_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace nvmr
{

/** Ambient source archetypes. */
enum class TraceKind
{
    Rf,    ///< long quiet intervals with strong bursts
    Solar, ///< slowly varying level with cloud dips
    Wind,  ///< bounded random walk
};

/** A harvested-power trace, in milliwatts, sampled at 1 kHz. */
class HarvestTrace
{
  public:
    /**
     * Generate a trace.
     * @param kind Source archetype.
     * @param seed Deterministic generator seed.
     * @param mean_mw Approximate long-run mean power.
     * @param samples Number of 1 ms samples (default 30 s).
     */
    HarvestTrace(TraceKind kind, uint64_t seed, double mean_mw,
                 size_t samples = 30000);

    /** Harvested power at a simulated cycle (8 MHz clock; wraps). */
    double powerMwAtCycle(Cycles cycle) const;

    /** Energy harvested over a cycle interval [from, from+n). */
    NanoJoules harvestedNj(Cycles from, Cycles n) const;

    /** Descriptive name, e.g. "rf/42". */
    const std::string &name() const { return _name; }

    /** Long-run mean of the generated samples. */
    double meanMw() const { return _meanMw; }

    /** Cycles per 1 kHz sample at the 8 MHz core clock. */
    static constexpr Cycles cyclesPerSample = 8000;

    /** 1 mW over one 8 MHz cycle (125 ns) is 0.125 nJ. */
    static constexpr double njPerMwCycle = 0.125;

    /**
     * The standard evaluation trace set: `n` traces cycling through
     * the three archetypes with distinct seeds (the paper averages
     * across 10 traces).
     */
    static std::vector<HarvestTrace> standardSet(int n = 10);

    /** The 7-trace training / 3-trace test split used by Spendthrift. */
    static std::vector<HarvestTrace> trainingSet();
    static std::vector<HarvestTrace> testSet();

    /**
     * Build a trace from explicit 1 kHz samples (one power value in
     * mW per millisecond). This is the hook for replaying *measured*
     * traces, like the BatterylessSim captures the paper uses.
     */
    static HarvestTrace fromSamples(std::string name,
                                    std::vector<double> samples_mw);

    /**
     * Load a trace from a CSV file: one sample per line (a bare
     * number, mW), `#` comments and blank lines ignored.
     * fatal()s on unreadable files or malformed lines.
     */
    static HarvestTrace fromCsvFile(const std::string &path);

    /** Write the trace's samples as CSV (one mW value per line). */
    void toCsvFile(const std::string &path) const;

    /** Raw access to the 1 kHz samples. */
    const std::vector<double> &samples() const { return samplesMw; }

  private:
    HarvestTrace() = default;

    std::vector<double> samplesMw;
    std::string _name;
    double _meanMw = 0;

    void computeMean();
};

} // namespace nvmr

#endif // NVMR_POWER_TRACE_HH

#include "power/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/log.hh"
#include "common/xorshift.hh"

namespace nvmr
{

HarvestTrace::HarvestTrace(TraceKind kind, uint64_t seed, double mean_mw,
                           size_t samples)
{
    fatal_if(samples == 0, "empty harvest trace");
    samplesMw.resize(samples);
    XorShift rng(seed);

    switch (kind) {
      case TraceKind::Rf: {
        // Quiet floor with exponential-ish bursts: burst arrival every
        // 50..400 ms, burst length 5..80 ms, amplitude 4..8x mean.
        _name = "rf/" + std::to_string(seed);
        double floor_mw = mean_mw * 0.15;
        size_t i = 0;
        while (i < samples) {
            size_t quiet = static_cast<size_t>(rng.range(50, 400));
            for (size_t q = 0; q < quiet && i < samples; ++q, ++i)
                samplesMw[i] = floor_mw * (0.8 + 0.4 * rng.uniform());
            size_t burst = static_cast<size_t>(rng.range(5, 80));
            double amp = mean_mw * (4.0 + 4.0 * rng.uniform());
            for (size_t b = 0; b < burst && i < samples; ++b, ++i)
                samplesMw[i] = amp * (0.85 + 0.3 * rng.uniform());
        }
        break;
      }
      case TraceKind::Solar: {
        // Slow sinusoidal irradiance with random cloud attenuation.
        _name = "solar/" + std::to_string(seed);
        double phase = rng.uniform() * 6.28318;
        double cloud = 1.0;
        for (size_t i = 0; i < samples; ++i) {
            if (i % 250 == 0) { // re-roll clouds every 250 ms
                double r = rng.uniform();
                cloud = r < 0.25 ? 0.25 + 0.5 * rng.uniform() : 1.0;
            }
            double s = 1.0 + 0.5 * std::sin(phase + i * 0.0009);
            samplesMw[i] = std::max(0.0, mean_mw * s * cloud);
        }
        break;
      }
      case TraceKind::Wind: {
        // Bounded random walk between 0 and 3x mean.
        _name = "wind/" + std::to_string(seed);
        double level = mean_mw;
        for (size_t i = 0; i < samples; ++i) {
            level += (rng.uniform() - 0.5) * mean_mw * 0.2;
            level = std::clamp(level, 0.0, mean_mw * 3.0);
            samplesMw[i] = level;
        }
        break;
      }
    }

    // Overlay hard outages: ambient sources disappear entirely for
    // stretches (an RF reader moves away, a cloud bank, calm air).
    // These are what actually kill the device and force restores.
    XorShift outage_rng(seed ^ 0xdeadfeedu);
    size_t t = static_cast<size_t>(outage_rng.range(50, 700));
    while (t < samples) {
        size_t len = static_cast<size_t>(outage_rng.range(200, 800));
        for (size_t i = t; i < t + len && i < samples; ++i)
            samplesMw[i] = 0.0;
        t += len + static_cast<size_t>(outage_rng.range(300, 1500));
    }

    computeMean();
}

void
HarvestTrace::computeMean()
{
    double sum = 0;
    for (double s : samplesMw)
        sum += s;
    _meanMw = samplesMw.empty()
                  ? 0.0
                  : sum / static_cast<double>(samplesMw.size());
}

HarvestTrace
HarvestTrace::fromSamples(std::string name,
                          std::vector<double> samples_mw)
{
    fatal_if(samples_mw.empty(), "empty harvest trace '", name, "'");
    for (double s : samples_mw)
        fatal_if(s < 0, "negative power sample in trace '", name,
                 "'");
    HarvestTrace t;
    t._name = std::move(name);
    t.samplesMw = std::move(samples_mw);
    t.computeMean();
    return t;
}

HarvestTrace
HarvestTrace::fromCsvFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file '", path, "'");
    std::vector<double> samples;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos || line[b] == '#')
            continue;
        char *end = nullptr;
        double v = std::strtod(line.c_str() + b, &end);
        fatal_if(end == line.c_str() + b, path, ":", line_no,
                 ": not a number: '", line, "'");
        fatal_if(v < 0, path, ":", line_no, ": negative power");
        samples.push_back(v);
    }
    return fromSamples(path, std::move(samples));
}

void
HarvestTrace::toCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write trace file '", path, "'");
    out << "# harvest trace '" << _name << "', 1 kHz samples, mW\n";
    out.precision(17); // round-trip exactly
    for (double s : samplesMw)
        out << s << "\n";
}

double
HarvestTrace::powerMwAtCycle(Cycles cycle) const
{
    size_t idx = static_cast<size_t>(cycle / cyclesPerSample) %
                 samplesMw.size();
    return samplesMw[idx];
}

NanoJoules
HarvestTrace::harvestedNj(Cycles from, Cycles n) const
{
    // Integrate sample-by-sample; intervals are usually tiny.
    NanoJoules total = 0;
    Cycles c = from;
    Cycles remaining = n;
    while (remaining > 0) {
        Cycles in_sample =
            cyclesPerSample - (c % cyclesPerSample);
        Cycles take = std::min(in_sample, remaining);
        total += powerMwAtCycle(c) * njPerMwCycle *
                 static_cast<double>(take);
        c += take;
        remaining -= take;
    }
    return total;
}

std::vector<HarvestTrace>
HarvestTrace::standardSet(int n)
{
    std::vector<HarvestTrace> traces;
    for (int i = 0; i < n; ++i) {
        TraceKind kind = static_cast<TraceKind>(i % 3);
        double mean = 6.0 + 2.0 * (i % 4); // 6..12 mW
        traces.emplace_back(kind, 1000 + i * 77, mean);
    }
    return traces;
}

std::vector<HarvestTrace>
HarvestTrace::trainingSet()
{
    std::vector<HarvestTrace> traces;
    for (int i = 0; i < 7; ++i) {
        TraceKind kind = static_cast<TraceKind>(i % 3);
        traces.emplace_back(kind, 5000 + i * 131, 6.0 + 2.0 * (i % 4));
    }
    return traces;
}

std::vector<HarvestTrace>
HarvestTrace::testSet()
{
    std::vector<HarvestTrace> traces;
    for (int i = 0; i < 3; ++i) {
        TraceKind kind = static_cast<TraceKind>(i % 3);
        traces.emplace_back(kind, 9000 + i * 53, 7.0 + 2.0 * i);
    }
    return traces;
}

} // namespace nvmr

#include "power/spendthrift.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/log.hh"
#include "common/xorshift.hh"

namespace nvmr
{

namespace
{

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

SpendthriftModel::SpendthriftModel()
{
    // Deterministic small random init so an untrained model is still
    // usable in tests.
    XorShift rng(0xdecaf);
    auto init = [&] {
        return static_cast<float>(rng.uniform() - 0.5) * 0.5f;
    };
    for (auto &row : w1)
        for (float &w : row)
            w = init();
    for (auto &row : w2)
        for (float &w : row)
            w = init();
    for (float &w : w3)
        w = init();
}

SpendthriftModel::Activations
SpendthriftModel::forward(float x0, float x1) const
{
    Activations act;
    for (int i = 0; i < kHidden; ++i)
        act.h1[i] = std::tanh(w1[i][0] * x0 + w1[i][1] * x1 + b1[i]);
    for (int i = 0; i < kHidden; ++i) {
        float sum = b2[i];
        for (int j = 0; j < kHidden; ++j)
            sum += w2[i][j] * act.h1[j];
        act.h2[i] = std::tanh(sum);
    }
    float out = b3;
    for (int i = 0; i < kHidden; ++i)
        out += w3[i] * act.h2[i];
    act.out = sigmoid(out);
    return act;
}

float
SpendthriftModel::infer(float harvest_mw, float cap_volts) const
{
    return forward(normHarvest(harvest_mw), normVolts(cap_volts)).out;
}

void
SpendthriftModel::train(const std::vector<SpendthriftSample> &samples,
                        int epochs, float lr, uint64_t seed)
{
    fatal_if(samples.empty(), "no spendthrift training samples");
    XorShift rng(seed);

    std::vector<size_t> order(samples.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Fisher-Yates shuffle.
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[static_cast<size_t>(
                          rng.range(0, static_cast<int64_t>(i) - 1))]);

        for (size_t idx : order) {
            const SpendthriftSample &s = samples[idx];
            float x0 = normHarvest(s.harvestMw);
            float x1 = normVolts(s.capVolts);
            Activations act = forward(x0, x1);

            // BCE gradient at the sigmoid output.
            float dout = act.out - s.label;

            // Output layer.
            std::array<float, kHidden> dh2;
            for (int i = 0; i < kHidden; ++i) {
                dh2[i] = dout * w3[i] * (1 - act.h2[i] * act.h2[i]);
                w3[i] -= lr * dout * act.h2[i];
            }
            b3 -= lr * dout;

            // Second hidden layer.
            std::array<float, kHidden> dh1{};
            for (int i = 0; i < kHidden; ++i) {
                for (int j = 0; j < kHidden; ++j) {
                    dh1[j] += dh2[i] * w2[i][j] *
                              (1 - act.h1[j] * act.h1[j]);
                    w2[i][j] -= lr * dh2[i] * act.h1[j];
                }
                b2[i] -= lr * dh2[i];
            }

            // First hidden layer.
            for (int j = 0; j < kHidden; ++j) {
                w1[j][0] -= lr * dh1[j] * x0;
                w1[j][1] -= lr * dh1[j] * x1;
                b1[j] -= lr * dh1[j];
            }
        }
    }
}

void
SpendthriftModel::saveToFile(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write model file '", path, "'");
    out << "spendthrift-mlp v1 " << kHidden << "\n";
    out.precision(9);
    for (const auto &row : w1)
        for (float w : row)
            out << w << " ";
    out << "\n";
    for (float b : b1)
        out << b << " ";
    out << "\n";
    for (const auto &row : w2)
        for (float w : row)
            out << w << " ";
    out << "\n";
    for (float b : b2)
        out << b << " ";
    out << "\n";
    for (float w : w3)
        out << w << " ";
    out << "\n" << b3 << "\n";
    fatal_if(!out, "write error on model file '", path, "'");
}

SpendthriftModel
SpendthriftModel::loadFromFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open model file '", path, "'");
    std::string magic, version;
    int hidden = 0;
    in >> magic >> version >> hidden;
    fatal_if(magic != "spendthrift-mlp" || version != "v1" ||
                 hidden != kHidden,
             "'", path, "' is not a v1 spendthrift model of width ",
             kHidden);
    SpendthriftModel m;
    for (auto &row : m.w1)
        for (float &w : row)
            in >> w;
    for (float &b : m.b1)
        in >> b;
    for (auto &row : m.w2)
        for (float &w : row)
            in >> w;
    for (float &b : m.b2)
        in >> b;
    for (float &w : m.w3)
        in >> w;
    in >> m.b3;
    fatal_if(!in, "truncated model file '", path, "'");
    return m;
}

double
SpendthriftModel::accuracy(
    const std::vector<SpendthriftSample> &samples) const
{
    if (samples.empty())
        return 0.0;
    size_t correct = 0;
    for (const SpendthriftSample &s : samples) {
        bool pred = predict(s.harvestMw, s.capVolts);
        correct += pred == (s.label > 0.5f);
    }
    return static_cast<double>(correct) /
           static_cast<double>(samples.size());
}

} // namespace nvmr

#include "power/policy.hh"

#include "common/log.hh"

namespace nvmr
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Jit: return "jit";
      case PolicyKind::Watchdog: return "watchdog";
      case PolicyKind::Spendthrift: return "spendthrift";
      case PolicyKind::None: return "none";
      default: return "<bad>";
    }
}

bool
JitPolicy::shouldBackup(const PolicyContext &ctx)
{
    return ctx.cap.usableNj() <= ctx.backupCostNj * margin + slackNj;
}

bool
WatchdogPolicy::shouldBackup(const PolicyContext &ctx)
{
    return ctx.cyclesSinceBackup >= period;
}

SpendthriftPolicy::SpendthriftPolicy(const SpendthriftModel &m,
                                     Cycles poll_period,
                                     Cycles resume_cooldown)
    : model(m), pollPeriod(poll_period), resumeCooldown(resume_cooldown)
{
}

bool
SpendthriftPolicy::shouldBackup(const PolicyContext &ctx)
{
    if (ctx.activeCycles < lastPoll + pollPeriod)
        return false;
    lastPoll = ctx.activeCycles;
    if (ctx.cyclesSinceResume < resumeCooldown)
        return false;
    return model.predict(static_cast<float>(ctx.harvestMw),
                         static_cast<float>(ctx.cap.voltage()));
}

std::unique_ptr<BackupPolicy>
makePolicy(const PolicySpec &spec)
{
    switch (spec.kind) {
      case PolicyKind::Jit:
        return std::make_unique<JitPolicy>(spec.jitMargin);
      case PolicyKind::Watchdog:
        return std::make_unique<WatchdogPolicy>(spec.watchdogPeriod);
      case PolicyKind::Spendthrift:
        fatal_if(!spec.model,
                 "spendthrift policy needs a trained model");
        return std::make_unique<SpendthriftPolicy>(*spec.model);
      case PolicyKind::None:
        return std::make_unique<NonePolicy>();
      default:
        panic("bad policy kind");
    }
}

} // namespace nvmr

/**
 * @file
 * Energy accounting for intermittent execution: technology constants,
 * the energy-category taxonomy of the EH model (forward progress,
 * backup, restore, dead) extended with NvMR's overhead categories, and
 * the pending/committed ledger that reclassifies re-executed work as
 * dead energy on power failures.
 */

#ifndef NVMR_POWER_ENERGY_HH
#define NVMR_POWER_ENERGY_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace nvmr
{

/**
 * Energy categories reported by the evaluation (Figure 11). Forward /
 * Backup / Restore / Dead follow the EH model [39]; the *Overhead
 * variants account for NvMR's map-table cache and map-table/free-list
 * NVM traffic; Reclaim accounts for map-table reclamation copies.
 */
enum class ECat : uint8_t
{
    Forward,
    ForwardOverhead,
    Backup,
    BackupOverhead,
    Restore,
    RestoreOverhead,
    Reclaim,
    Dead,
    NUM
};

/** Printable name of a category. */
const char *ecatName(ECat cat);

constexpr size_t kNumECats = static_cast<size_t>(ECat::NUM);

/**
 * Technology constants (all energies in nanojoules). The absolute
 * values are calibrated stand-ins for the paper's CACTI / McPAT /
 * STM32L011 numbers (DESIGN.md, substitution 4); what matters for the
 * reproduced results is the ordering Flash write >> Flash read >>
 * SRAM access, and capacitor energies sized so active periods span
 * 10^3..10^5 cycles.
 */
struct TechParams
{
    /** CPU core + instruction fetch energy per cycle. */
    NanoJoules cpuCycleNj = 1.0;

    /** Data cache SRAM access (per block-touch). */
    NanoJoules cacheAccessNj = 0.2;

    /** GBF/LBF lookup or update. */
    NanoJoules bloomNj = 0.03;

    /** Map-table cache SRAM access (NvMR overhead). */
    NanoJoules mtCacheAccessNj = 0.3;

    /** NVM (Flash) word read. Flash reads on MCUs run at core speed
     *  and cost little more than an SRAM access. */
    NanoJoules flashReadWordNj = 0.5;

    /** NVM (Flash) word write/program. Flash programming dominates
     *  everything else (real flash is 10^2..10^3 x a core cycle; the
     *  60x used here matches the capScale-reduced storage so that
     *  backup costs stay affordable on the smallest capacitor). */
    NanoJoules flashWriteWordNj = 60.0;

    /** Stall cycles per NVM word read. */
    Cycles flashReadCycles = 1;

    /** Stall cycles per NVM word write. */
    Cycles flashWriteCycles = 8;

    /** Static leakage of the added SRAM structures, per active cycle. */
    NanoJoules leakNjPerCycle = 0.05;

    /** Extra leakage charged per active cycle for the NvMR map-table
     *  cache (reported as overhead energy). */
    NanoJoules mtCacheLeakNjPerCycle = 0.01;

    /** Leakage while hibernating (after a JIT backup, pre-death):
     *  regulator + SRAM retention standby current. High enough that
     *  a multi-hundred-millisecond outage kills a hibernating
     *  device. */
    NanoJoules hibernateLeakNjPerCycle = 0.02;

    /** The default technology: Flash-backed NVM (Table 2). */
    static TechParams flash() { return TechParams{}; }

    /**
     * FRAM-backed NVM, per the paper's footnote 8: writes cost
     * orders of magnitude less than Flash (and symmetric with
     * reads), which is why FRAM platforms run from nF-range
     * capacitors. Used by bench/ablation_nvm_tech to show how the
     * NVM technology moves the Clank/NvMR balance.
     */
    static TechParams
    fram()
    {
        TechParams t;
        t.flashReadWordNj = 0.4;
        t.flashWriteWordNj = 1.2;
        t.flashReadCycles = 1;
        t.flashWriteCycles = 2;
        return t;
    }
};

/**
 * The ledger. Execution-time spending (forward progress, overheads,
 * reclaim) accumulates as *pending* until the next persisted backup
 * commits it; a power failure instead reclassifies all pending energy
 * as Dead (it pays for instructions that will re-execute). Backup and
 * restore energy commit immediately.
 */
class EnergyAccount
{
  public:
    /** Add execution-time energy (committed by the next backup). */
    void spendPending(ECat cat, NanoJoules nj);

    /** Add energy that is never re-executed (backup/restore/reclaim). */
    void spendCommitted(ECat cat, NanoJoules nj);

    /** A backup persisted: fold pending spending into its categories. */
    void commitPending();

    /** Power failed: everything pending becomes dead energy. */
    void pendingToDead();

    /** Committed total for one category. */
    NanoJoules total(ECat cat) const;

    /** Sum of all committed categories. */
    NanoJoules grandTotal() const;

    /** Outstanding pending energy (for diagnostics). */
    NanoJoules pendingTotal() const;

    void reset();

  private:
    std::array<NanoJoules, kNumECats> committed{};
    std::array<NanoJoules, kNumECats> pending{};
};

/**
 * Spending modes: the simulator sets the active mode around backup /
 * restore / reclaim operations so that shared components (cache, NVM)
 * charge the right category without knowing why they were invoked.
 */
enum class EMode : uint8_t
{
    Execute,
    Backup,
    Restore,
    Reclaim
};

/**
 * The sink every component charges energy into. The Simulator
 * implements it by draining the capacitor and feeding the
 * EnergyAccount; golden (continuous) runs use a NullEnergySink.
 */
class EnergySink
{
  public:
    virtual ~EnergySink() = default;

    /** Charge energy in the current mode's base category. */
    virtual void consume(NanoJoules nj) = 0;

    /** Charge energy in the current mode's overhead category
     *  (used by the NvMR renaming structures). */
    virtual void consumeOverhead(NanoJoules nj) = 0;

    /**
     * Advance simulated time (memory stall cycles). The simulator's
     * sink charges per-cycle core energy and integrates harvesting.
     */
    virtual void addCycles(Cycles n) = 0;
};

/** Sink that ignores all spending (continuous/golden execution). */
class NullEnergySink : public EnergySink
{
  public:
    void consume(NanoJoules) override {}
    void consumeOverhead(NanoJoules) override {}
    void addCycles(Cycles) override {}
};

} // namespace nvmr

#endif // NVMR_POWER_ENERGY_HH

/**
 * @file
 * The Spendthrift backup predictor: a small fixed-topology MLP
 * (2 -> 8 -> 8 -> 1, tanh hidden units, sigmoid output) trained with
 * plain SGD on labels produced by the JIT oracle. This is the repo's
 * stand-in for the paper's PyTorch model (DESIGN.md substitution 5):
 * same inputs (environment power, capacitor voltage), same training
 * recipe (oracle-labelled samples from 7 training traces, tested on
 * 3 held-out traces).
 */

#ifndef NVMR_POWER_SPENDTHRIFT_HH
#define NVMR_POWER_SPENDTHRIFT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace nvmr
{

/** One labelled observation from a JIT-oracle run. */
struct SpendthriftSample
{
    float harvestMw = 0;
    float capVolts = 0;
    float label = 0; ///< 1 if the oracle would back up now
};

/** The 2-8-8-1 MLP. */
class SpendthriftModel
{
  public:
    static constexpr int kHidden = 8;

    SpendthriftModel();

    /** P(back up now | harvest power, capacitor voltage). */
    float infer(float harvest_mw, float cap_volts) const;

    /** Decision threshold at 0.5. */
    bool
    predict(float harvest_mw, float cap_volts) const
    {
        return infer(harvest_mw, cap_volts) > 0.5f;
    }

    /**
     * Train with SGD + BCE loss.
     * @param samples Labelled observations (shuffled internally).
     * @param epochs Passes over the data.
     * @param lr Learning rate.
     * @param seed Weight-init / shuffle seed.
     */
    void train(const std::vector<SpendthriftSample> &samples,
               int epochs = 30, float lr = 0.05f,
               uint64_t seed = 1234);

    /** Classification accuracy on a sample set. */
    double accuracy(const std::vector<SpendthriftSample> &samples)
        const;

    /**
     * Persist the weights to a text file (versioned header +
     * full-precision floats). fatal()s on I/O errors.
     */
    void saveToFile(const std::string &path) const;

    /** Load weights saved by saveToFile. fatal()s on bad files. */
    static SpendthriftModel loadFromFile(const std::string &path);

  private:
    // Layer parameters.
    std::array<std::array<float, 2>, kHidden> w1{};
    std::array<float, kHidden> b1{};
    std::array<std::array<float, kHidden>, kHidden> w2{};
    std::array<float, kHidden> b2{};
    std::array<float, kHidden> w3{};
    float b3 = 0;

    struct Activations
    {
        std::array<float, kHidden> h1;
        std::array<float, kHidden> h2;
        float out;
    };

    Activations forward(float x0, float x1) const;

    static float normHarvest(float mw) { return mw / 30.0f; }
    static float normVolts(float v) { return (v - 1.8f) / 0.6f; }
};

} // namespace nvmr

#endif // NVMR_POWER_SPENDTHRIFT_HH

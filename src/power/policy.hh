/**
 * @file
 * Backup policies (Section 5.2). NvMR's point is that the policy is
 * decoupled from program correctness, so policies are pluggable:
 *  - JIT: oracle threshold; fires when the remaining usable energy
 *    just covers the current backup cost, then hibernates.
 *  - Watchdog: a backup every 8000 cycles (the most conservative).
 *  - Spendthrift: a small neural network over (environment power,
 *    capacitor voltage) trained on JIT-oracle labels.
 */

#ifndef NVMR_POWER_POLICY_HH
#define NVMR_POWER_POLICY_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "power/capacitor.hh"
#include "power/spendthrift.hh"

namespace nvmr
{

/** Everything a policy may look at when deciding to back up. */
struct PolicyContext
{
    const Capacitor &cap;
    Cycles activeCycles;        ///< active cycles since run start
    Cycles cyclesSinceBackup;   ///< active cycles since last backup
    Cycles cyclesSinceResume;   ///< active cycles since last resume
    NanoJoules backupCostNj;    ///< architecture's current backup cost
    double harvestMw;           ///< instantaneous harvested power
};

/** Abstract backup policy. */
class BackupPolicy
{
  public:
    virtual ~BackupPolicy() = default;

    virtual const char *name() const = 0;

    /** Consulted after every instruction. */
    virtual bool shouldBackup(const PolicyContext &ctx) = 0;

    /** JIT-style policies hibernate after their backup fires. */
    virtual bool hibernateAfterBackup() const { return false; }

    /** Reset internal state at the start of a run. */
    virtual void reset() {}
};

/**
 * Just-in-time oracle: fires when usable energy drops to the cost of
 * backing up the current dirty state (times a safety margin), i.e.
 * exactly before the supply would be unable to save the state.
 */
class JitPolicy : public BackupPolicy
{
  public:
    explicit JitPolicy(double margin = 1.5, NanoJoules slack_nj = 50.0)
        : margin(margin), slackNj(slack_nj)
    {}

    const char *name() const override { return "jit"; }
    bool shouldBackup(const PolicyContext &ctx) override;
    bool hibernateAfterBackup() const override { return true; }

  private:
    double margin;
    NanoJoules slackNj;
};

/** Fixed-period watchdog timer (8000 cycles in [16]). */
class WatchdogPolicy : public BackupPolicy
{
  public:
    explicit WatchdogPolicy(Cycles period = 8000) : period(period) {}

    const char *name() const override { return "watchdog"; }
    bool shouldBackup(const PolicyContext &ctx) override;

  private:
    Cycles period;
};

/**
 * Spendthrift [24]: a lightweight neural network predicts imminent
 * power loss from (environment power, capacitor voltage), polled
 * every pollPeriod cycles. Representative of commercially deployed
 * JIT schemes.
 */
class SpendthriftPolicy : public BackupPolicy
{
  public:
    SpendthriftPolicy(const SpendthriftModel &model,
                      Cycles poll_period = 64,
                      Cycles resume_cooldown = 512);

    const char *name() const override { return "spendthrift"; }
    bool shouldBackup(const PolicyContext &ctx) override;
    bool hibernateAfterBackup() const override { return true; }
    void reset() override { lastPoll = 0; }

  private:
    const SpendthriftModel &model;
    Cycles pollPeriod;
    Cycles resumeCooldown;
    Cycles lastPoll = 0;
};

/**
 * Never fires: for software schemes whose only checkpoints come from
 * the program itself (task boundaries), and for measuring an
 * architecture's structural backups in isolation.
 */
class NonePolicy : public BackupPolicy
{
  public:
    const char *name() const override { return "none"; }
    bool shouldBackup(const PolicyContext &) override { return false; }
};

/** Which policy an experiment uses. */
enum class PolicyKind
{
    Jit,
    Watchdog,
    Spendthrift,
    None,
};

const char *policyKindName(PolicyKind kind);

/** Policy factory parameters. */
struct PolicySpec
{
    PolicyKind kind = PolicyKind::Jit;
    Cycles watchdogPeriod = 8000;
    double jitMargin = 1.5;
    /** Required for Spendthrift. */
    const SpendthriftModel *model = nullptr;
};

/** Build a policy instance from a spec. */
std::unique_ptr<BackupPolicy> makePolicy(const PolicySpec &spec);

} // namespace nvmr

#endif // NVMR_POWER_POLICY_HH

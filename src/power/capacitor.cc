#include "power/capacitor.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace nvmr
{

Capacitor::Capacitor(double nominal_farads, double v_max, double v_on,
                     double v_off, double cap_scale,
                     double cap_exponent)
    : farads(cap_scale * std::pow(nominal_farads, cap_exponent)),
      vMax(v_max), vOn(v_on), vOff(v_off)
{
    fatal_if(nominal_farads <= 0, "capacitance must be positive");
    fatal_if(!(v_off < v_on && v_on <= v_max),
             "capacitor thresholds must satisfy vOff < vOn <= vMax");
    eMax = toNj(vMax);
    eOn = toNj(vOn);
    eOff = toNj(vOff);
    eDead = toNj(vOff + 1e-12);
    e = eMax;
}

NanoJoules
Capacitor::toNj(double volts) const
{
    return 0.5 * farads * volts * volts * 1e9;
}

double
Capacitor::toVolts(NanoJoules nj) const
{
    return std::sqrt(std::max(0.0, 2.0 * nj / (farads * 1e9)));
}

void
Capacitor::setVoltage(double new_v)
{
    e = toNj(std::clamp(new_v, 0.0, vMax));
}

} // namespace nvmr

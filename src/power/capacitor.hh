/**
 * @file
 * Supercapacitor energy-storage model: E = 1/2 C V^2, with the
 * operating thresholds used by intermittent systems (turn-on voltage,
 * brown-out voltage, maximum harvest voltage).
 */

#ifndef NVMR_POWER_CAPACITOR_HH
#define NVMR_POWER_CAPACITOR_HH

#include "common/log.hh"
#include "common/types.hh"

namespace nvmr
{

/**
 * The storage capacitor. All energies are in nanojoules. The device
 * runs while V > vOff; after a brown-out it stays off until the
 * harvester recharges the capacitor past vOn.
 *
 * A documented scale factor is applied to the nominal capacitance so
 * that active periods land in the 10^3..10^5 cycle range our
 * benchmarks need (DESIGN.md substitution 4); the paper's relative
 * capacitor-size ordering (500uF < 7.5mF < 100mF) is preserved.
 *
 * Stored energy is the primary state: drain/harvest/threshold checks
 * -- several per simulated instruction -- are adds and compares
 * against precomputed threshold energies, and the sqrt only runs when
 * someone actually asks for volts. (E = 1/2 C V^2 is monotonic, so
 * every voltage-threshold comparison is an energy comparison.)
 */
class Capacitor
{
  public:
    /**
     * @param nominal_farads Label capacitance (e.g. 0.1 for "100 mF").
     * @param v_max Maximum harvest voltage (2.4 V in Table 2).
     * @param v_on Turn-on threshold after a brown-out.
     * @param v_off Brown-out voltage.
     * @param cap_scale Coefficient of the power-law compression.
     * @param cap_exponent Exponent of the power-law compression.
     *
     * The effective capacitance is cap_scale * nominal^cap_exponent:
     * a documented compression of the paper's capacitor range so
     * that, with our shortened benchmarks, the smallest capacitor
     * still affords a worst-case backup while the largest still
     * experiences several power cycles per run (DESIGN.md,
     * substitution 4). Defaults map {500 uF, 7.5 mF, 100 mF} to
     * roughly {8 uF, 41 uF, 198 uF}.
     */
    Capacitor(double nominal_farads, double v_max = 2.4,
              double v_on = 2.2, double v_off = 1.8,
              double cap_scale = 8e-4, double cap_exponent = 0.607);

    /** Current capacitor voltage (derived from the stored energy). */
    double voltage() const { return toVolts(e); }

    /** Set the voltage directly (initial conditions, tests). */
    void setVoltage(double new_v);

    /** Stored energy above 0 V. */
    NanoJoules energyNj() const { return e; }

    /** Energy available before the brown-out voltage is reached. */
    NanoJoules usableNj() const { return e > eOff ? e - eOff : 0.0; }

    /** Energy that a full recharge could still add. */
    NanoJoules headroomNj() const
    {
        return e < eMax ? eMax - e : 0.0;
    }

    /** True when the supply has browned out. */
    bool dead() const { return e <= eDead; }

    /** True when a browned-out device may turn back on. */
    bool canTurnOn() const { return e >= eOn; }

    /** Remove energy (computation, backups). Clamps at 0 V. */
    void
    drainNj(NanoJoules nj)
    {
        panic_if(nj < 0, "negative drain");
        e = e > nj ? e - nj : 0.0;
    }

    /** Add harvested energy. Clamps at vMax. */
    void
    harvestNj(NanoJoules nj)
    {
        panic_if(nj < 0, "negative harvest");
        e += nj;
        if (e > eMax)
            e = eMax;
    }

    double vMaxVolts() const { return vMax; }
    double vOnVolts() const { return vOn; }
    double vOffVolts() const { return vOff; }

    /** Effective (scaled) capacitance in farads. */
    double effectiveFarads() const { return farads; }

  private:
    double farads;
    double vMax;
    double vOn;
    double vOff;

    /** Stored energy (primary state) and precomputed thresholds:
     *  eDead = toNj(vOff + eps) preserves the seed's voltage-epsilon
     *  dead() semantics under the monotonic E(V) map. */
    NanoJoules e = 0;
    NanoJoules eMax = 0;
    NanoJoules eOn = 0;
    NanoJoules eOff = 0;
    NanoJoules eDead = 0;

    NanoJoules toNj(double volts) const;
    double toVolts(NanoJoules nj) const;
};

} // namespace nvmr

#endif // NVMR_POWER_CAPACITOR_HH

/**
 * @file
 * Supercapacitor energy-storage model: E = 1/2 C V^2, with the
 * operating thresholds used by intermittent systems (turn-on voltage,
 * brown-out voltage, maximum harvest voltage).
 */

#ifndef NVMR_POWER_CAPACITOR_HH
#define NVMR_POWER_CAPACITOR_HH

#include "common/types.hh"

namespace nvmr
{

/**
 * The storage capacitor. All energies are in nanojoules. The device
 * runs while V > vOff; after a brown-out it stays off until the
 * harvester recharges the capacitor past vOn.
 *
 * A documented scale factor is applied to the nominal capacitance so
 * that active periods land in the 10^3..10^5 cycle range our
 * benchmarks need (DESIGN.md substitution 4); the paper's relative
 * capacitor-size ordering (500uF < 7.5mF < 100mF) is preserved.
 */
class Capacitor
{
  public:
    /**
     * @param nominal_farads Label capacitance (e.g. 0.1 for "100 mF").
     * @param v_max Maximum harvest voltage (2.4 V in Table 2).
     * @param v_on Turn-on threshold after a brown-out.
     * @param v_off Brown-out voltage.
     * @param cap_scale Coefficient of the power-law compression.
     * @param cap_exponent Exponent of the power-law compression.
     *
     * The effective capacitance is cap_scale * nominal^cap_exponent:
     * a documented compression of the paper's capacitor range so
     * that, with our shortened benchmarks, the smallest capacitor
     * still affords a worst-case backup while the largest still
     * experiences several power cycles per run (DESIGN.md,
     * substitution 4). Defaults map {500 uF, 7.5 mF, 100 mF} to
     * roughly {8 uF, 41 uF, 198 uF}.
     */
    Capacitor(double nominal_farads, double v_max = 2.4,
              double v_on = 2.2, double v_off = 1.8,
              double cap_scale = 8e-4, double cap_exponent = 0.607);

    /** Current capacitor voltage. */
    double voltage() const { return v; }

    /** Set the voltage directly (initial conditions, tests). */
    void setVoltage(double new_v);

    /** Stored energy above 0 V. */
    NanoJoules energyNj() const { return toNj(v); }

    /** Energy available before the brown-out voltage is reached. */
    NanoJoules usableNj() const;

    /** Energy that a full recharge could still add. */
    NanoJoules headroomNj() const;

    /** True when the supply has browned out. */
    bool dead() const { return v <= vOff + 1e-12; }

    /** True when a browned-out device may turn back on. */
    bool canTurnOn() const { return v >= vOn; }

    /** Remove energy (computation, backups). Clamps at 0 V. */
    void drainNj(NanoJoules nj);

    /** Add harvested energy. Clamps at vMax. */
    void harvestNj(NanoJoules nj);

    double vMaxVolts() const { return vMax; }
    double vOnVolts() const { return vOn; }
    double vOffVolts() const { return vOff; }

    /** Effective (scaled) capacitance in farads. */
    double effectiveFarads() const { return farads; }

  private:
    double farads;
    double vMax;
    double vOn;
    double vOff;
    double v;

    NanoJoules toNj(double volts) const;
    double toVolts(NanoJoules nj) const;
};

} // namespace nvmr

#endif // NVMR_POWER_CAPACITOR_HH

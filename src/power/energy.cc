#include "power/energy.hh"

#include "common/log.hh"

namespace nvmr
{

const char *
ecatName(ECat cat)
{
    switch (cat) {
      case ECat::Forward: return "forward";
      case ECat::ForwardOverhead: return "forward_overhead";
      case ECat::Backup: return "backup";
      case ECat::BackupOverhead: return "backup_overhead";
      case ECat::Restore: return "restore";
      case ECat::RestoreOverhead: return "restore_overhead";
      case ECat::Reclaim: return "reclaim";
      case ECat::Dead: return "dead";
      default: return "<bad>";
    }
}

void
EnergyAccount::spendPending(ECat cat, NanoJoules nj)
{
    panic_if(nj < 0, "negative energy");
    pending[static_cast<size_t>(cat)] += nj;
}

void
EnergyAccount::spendCommitted(ECat cat, NanoJoules nj)
{
    panic_if(nj < 0, "negative energy");
    committed[static_cast<size_t>(cat)] += nj;
}

void
EnergyAccount::commitPending()
{
    for (size_t i = 0; i < kNumECats; ++i) {
        committed[i] += pending[i];
        pending[i] = 0;
    }
}

void
EnergyAccount::pendingToDead()
{
    NanoJoules sum = 0;
    for (size_t i = 0; i < kNumECats; ++i) {
        sum += pending[i];
        pending[i] = 0;
    }
    committed[static_cast<size_t>(ECat::Dead)] += sum;
}

NanoJoules
EnergyAccount::total(ECat cat) const
{
    return committed[static_cast<size_t>(cat)];
}

NanoJoules
EnergyAccount::grandTotal() const
{
    NanoJoules sum = 0;
    for (size_t i = 0; i < kNumECats; ++i)
        sum += committed[i];
    return sum;
}

NanoJoules
EnergyAccount::pendingTotal() const
{
    NanoJoules sum = 0;
    for (size_t i = 0; i < kNumECats; ++i)
        sum += pending[i];
    return sum;
}

void
EnergyAccount::reset()
{
    committed.fill(0);
    pending.fill(0);
}

} // namespace nvmr

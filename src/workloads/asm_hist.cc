/**
 * @file
 * hist workload: histogram equalization of a 4096-pixel image
 * (PERFECT suite port). Builds a 256-bin histogram, prefix-sums it
 * into a CDF, and remaps every pixel.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmHistSource()
{
    return R"(
# Histogram equalization.
#   img  : 4096 pixels in [0, 255] (one per word)
#   hist : 256 bins, cdf: 256 entries, out: 4096 pixels
        .data
img:    .rand 4096 202 0 255
hist:   .space 1024
cdf:    .space 1024
out:    .space 16384

        .text
main:
# ---- clear histogram ----
        li   r1, hist
        li   r2, 0
        li   r3, 256
clr:
        st   r0, 0(r1)
        addi r1, r1, 4
        addi r2, r2, 1
        blt  r2, r3, clr

# ---- accumulate histogram (read-modify-write on bins) ----
        li   r1, img
        li   r2, 0
        li   r3, 4096
        li   r6, hist
acc:
        task
        ld   r4, 0(r1)
        slli r5, r4, 2
        add  r5, r5, r6
        ld   r7, 0(r5)
        addi r7, r7, 1
        st   r7, 0(r5)
        addi r1, r1, 4
        addi r2, r2, 1
        blt  r2, r3, acc

# ---- prefix sum into cdf ----
        li   r1, hist
        li   r2, cdf
        li   r3, 0              # running sum
        li   r4, 0
        li   r5, 256
pfx:
        ld   r6, 0(r1)
        add  r3, r3, r6
        st   r3, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r4, r4, 1
        blt  r4, r5, pfx

# ---- remap: out[i] = cdf[img[i]] * 255 / 4096 ----
        li   r1, img
        li   r2, out
        li   r4, 0
        li   r5, 4096
        li   r7, cdf
        li   r9, 4096
map:
        task
        ld   r6, 0(r1)
        slli r6, r6, 2
        add  r6, r6, r7
        ld   r8, 0(r6)
        muli r8, r8, 255
        div  r8, r8, r9
        st   r8, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r4, r4, 1
        blt  r4, r5, map
        halt
)";
}

} // namespace nvmr

/**
 * @file
 * stringsearch workload: count occurrences of 6 patterns in a
 * 4096-symbol text (MiBench stringsearch analogue). Symbols are
 * small integers, one per word; matches also log their positions.
 * Dominated by forward-progress reads, as the paper observes.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmStringsearchSource()
{
    return R"(
# Naive multi-pattern search.
#   text     : 4096 symbols in [0, 12] (high match likelihood on
#              short prefixes, exercising the inner loop)
#   pats     : 6 patterns of 4 symbols each
#   counts   : match count per pattern
#   poslog   : last 256 match positions (ring)
        .data
text:   .rand 4096 606 0 12
pats:   .rand 24 607 0 12
counts: .space 24
poslog: .space 1024

        .text
main:
        li   r1, 0              # p = pattern index
        li   r12, 0             # poslog cursor
ploop:
        task
        muli r2, r1, 16         # pattern base (4 words)
        li   r3, pats
        add  r2, r2, r3
        li   r4, 0              # matches for this pattern
        li   r5, 0              # t = text position
tloop:
        li   r6, 0              # k
kloop:
        add  r7, r5, r6         # text[t + k]
        slli r7, r7, 2
        li   r8, text
        add  r7, r7, r8
        ld   r9, 0(r7)
        slli r10, r6, 2         # pat[k]
        add  r10, r10, r2
        ld   r11, 0(r10)
        bne  r9, r11, miss
        addi r6, r6, 1
        li   r8, 4
        blt  r6, r8, kloop
# full match
        addi r4, r4, 1
        andi r13, r12, 255      # poslog[cursor & 255] = t
        slli r13, r13, 2
        li   r8, poslog
        add  r13, r13, r8
        st   r5, 0(r13)
        addi r12, r12, 1
miss:
        addi r5, r5, 1
        li   r8, 4093           # last start = 4096 - 4 + 1
        blt  r5, r8, tloop
# store count
        slli r7, r1, 2
        li   r8, counts
        add  r7, r7, r8
        st   r4, 0(r7)
        addi r1, r1, 1
        li   r8, 6
        blt  r1, r8, ploop
        halt
)";
}

} // namespace nvmr

#include "workloads/workloads.hh"

#include "common/log.hh"
#include "isa/assembler.hh"
#include "workloads/golden.hh"
#include "workloads/sources.hh"

namespace nvmr
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> workloads = {
        {"adpcm_encode", asmAdpcmSource(), &checkAdpcm},
        {"basicmath", asmBasicmathSource(), &checkBasicmath},
        {"blowfish", asmBlowfishSource(), &checkBlowfish},
        {"dijkstra", asmDijkstraSource(), &checkDijkstra},
        {"picojpeg", asmPicojpegSource(), &checkPicojpeg},
        {"qsort", asmQsortSource(), &checkQsort},
        {"stringsearch", asmStringsearchSource(), &checkStringsearch},
        {"2dconv", asm2dconvSource(), &check2dconv},
        {"dwt", asmDwtSource(), &checkDwt},
        {"hist", asmHistSource(), &checkHist},
    };
    return workloads;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '", name, "'");
}

Program
assembleWorkload(const std::string &name)
{
    // "spin" never terminates. It is deliberately absent from
    // allWorkloads() -- it has no golden check and would hang any tool
    // that runs every workload -- and exists so watchdog/quarantine
    // tests can request a guaranteed-hung cell by name.
    if (name == "spin")
        return assemble("spin", "spin:\n    jmp spin\n    halt\n");
    const WorkloadInfo &info = findWorkload(name);
    return assemble(info.name, info.source);
}

} // namespace nvmr

/**
 * @file
 * dijkstra workload: single-source shortest paths on a dense 96-node
 * graph (adjacency matrix, O(V^2) selection), as in the MiBench
 * network suite. The dist[] relaxation is the classic read-compare-
 * write pattern that triggers idempotency violations.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmDijkstraSource()
{
    return R"(
# Dijkstra, V = 96, dense adjacency matrix of weights in [1, 9].
#   adj     : 96*96 words, row-major
#   dist    : 96 words
#   visited : 96 words
        .data
adj:    .rand 9216 505 1 9
dist:   .space 384
visited: .space 384

        .text
main:
# ---- init: dist[i] = INF, visited[i] = 0; dist[0] = 0 ----
        li   r1, dist
        li   r2, visited
        li   r3, 0
        li   r4, 96
        li   r5, 0x3fffffff
init:
        st   r5, 0(r1)
        st   r0, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, 1
        blt  r3, r4, init
        li   r1, dist
        st   r0, 0(r1)

        li   r12, 0             # iteration count
iter:
        task
# ---- select unvisited u with minimal dist ----
        li   r5, 0x7fffffff     # best
        li   r6, -1             # u
        li   r3, 0
sel:
        slli r7, r3, 2
        li   r8, visited
        add  r8, r8, r7
        ld   r9, 0(r8)
        bne  r9, r0, selnext
        li   r8, dist
        add  r8, r8, r7
        ld   r9, 0(r8)
        bge  r9, r5, selnext
        mv   r5, r9
        mv   r6, r3
selnext:
        addi r3, r3, 1
        li   r4, 96
        blt  r3, r4, sel
        li   r4, -1
        beq  r6, r4, done       # nothing reachable left

# ---- visit u ----
        slli r7, r6, 2
        li   r8, visited
        add  r8, r8, r7
        li   r9, 1
        st   r9, 0(r8)
        li   r8, dist
        add  r8, r8, r7
        ld   r10, 0(r8)         # dist[u]

# ---- relax all edges (u, v) ----
        muli r11, r6, 96        # row base index
        li   r3, 0
relax:
        slli r7, r3, 2
        li   r8, visited
        add  r8, r8, r7
        ld   r9, 0(r8)
        bne  r9, r0, rnext
        add  r8, r11, r3        # adj[u*96 + v]
        slli r8, r8, 2
        li   r9, adj
        add  r8, r8, r9
        ld   r8, 0(r8)
        add  r8, r8, r10        # nd = dist[u] + w
        li   r9, dist
        add  r9, r9, r7
        ld   r13, 0(r9)
        bge  r8, r13, rnext
        st   r8, 0(r9)
rnext:
        addi r3, r3, 1
        li   r4, 96
        blt  r3, r4, relax

        addi r12, r12, 1
        li   r4, 96
        blt  r12, r4, iter
done:
        halt
)";
}

} // namespace nvmr

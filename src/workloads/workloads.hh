/**
 * @file
 * The ten evaluation workloads (Section 5.3): seven MiBench-style
 * kernels (adpcm_encode, basicmath, blowfish, dijkstra, picojpeg,
 * qsort, stringsearch) and three PERFECT-suite kernels (2dconv, dwt,
 * hist), all re-written in iisa assembly with deterministic synthetic
 * inputs (DESIGN.md substitution 2). Every workload ships a C++
 * golden check that recomputes the kernel's expected output from the
 * same seeded inputs and compares it against an execution's final
 * data segment.
 */

#ifndef NVMR_WORKLOADS_WORKLOADS_HH
#define NVMR_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/simulator.hh"

namespace nvmr
{

/** One registered workload. */
struct WorkloadInfo
{
    std::string name;
    const char *source;

    /**
     * Algorithmic golden check: recompute the kernel in C++ from the
     * seeded inputs and compare. Returns an empty string on success,
     * else a description of the first mismatch.
     */
    std::string (*check)(const Program &prog,
                         const GoldenResult &golden);
};

/** All ten workloads, in the paper's reporting order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Look up one workload; fatal() if unknown. */
const WorkloadInfo &findWorkload(const std::string &name);

/** Assemble a workload's program image. */
Program assembleWorkload(const std::string &name);

} // namespace nvmr

#endif // NVMR_WORKLOADS_WORKLOADS_HH

/**
 * @file
 * Helpers shared by the per-workload golden checks: reading the final
 * data segment of a continuous run and regenerating the seeded .rand
 * inputs exactly as the assembler produced them.
 */

#ifndef NVMR_WORKLOADS_GOLDEN_HH
#define NVMR_WORKLOADS_GOLDEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/simulator.hh"

namespace nvmr
{

/** Read a little-endian word from a golden run's data image. */
Word goldenWord(const GoldenResult &golden, Addr addr);

/** Read n consecutive words. */
std::vector<Word> goldenWords(const GoldenResult &golden, Addr addr,
                              size_t n);

/** Regenerate the words a `.rand n seed lo hi` directive produced. */
std::vector<Word> randWords(size_t n, uint64_t seed, int64_t lo,
                            int64_t hi);

/** Format a mismatch message for check functions. */
std::string mismatchAt(const std::string &what, size_t index,
                       Word expect, Word got);

// Per-workload checks (defined in golden.cc).
std::string checkQsort(const Program &prog, const GoldenResult &g);
std::string checkHist(const Program &prog, const GoldenResult &g);
std::string check2dconv(const Program &prog, const GoldenResult &g);
std::string checkDwt(const Program &prog, const GoldenResult &g);
std::string checkDijkstra(const Program &prog, const GoldenResult &g);
std::string checkStringsearch(const Program &prog,
                              const GoldenResult &g);
std::string checkAdpcm(const Program &prog, const GoldenResult &g);
std::string checkBasicmath(const Program &prog, const GoldenResult &g);
std::string checkBlowfish(const Program &prog, const GoldenResult &g);
std::string checkPicojpeg(const Program &prog, const GoldenResult &g);

} // namespace nvmr

#endif // NVMR_WORKLOADS_GOLDEN_HH

/**
 * @file
 * Assembly source accessors, one per workload translation unit.
 */

#ifndef NVMR_WORKLOADS_SOURCES_HH
#define NVMR_WORKLOADS_SOURCES_HH

namespace nvmr
{

const char *asmAdpcmSource();
const char *asmBasicmathSource();
const char *asmBlowfishSource();
const char *asmDijkstraSource();
const char *asmPicojpegSource();
const char *asmQsortSource();
const char *asmStringsearchSource();
const char *asm2dconvSource();
const char *asmDwtSource();
const char *asmHistSource();

} // namespace nvmr

#endif // NVMR_WORKLOADS_SOURCES_HH

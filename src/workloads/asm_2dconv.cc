/**
 * @file
 * 2dconv workload: 3x3 convolution over a 64x32 image (PERFECT suite
 * port), normalized by a 4-bit shift. Borders are left zero.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asm2dconvSource()
{
    return R"(
# 3x3 convolution, 64-wide x 32-tall image, output shifted >> 4.
        .data
kern:   .word 1 2 1 2 4 2 1 2 1
img:    .rand 2048 303 0 255
out:    .space 8192

        .text
main:
        li   r1, 1              # y = 1
yloop:
        li   r2, 1              # x = 1
xloop:
        task
        li   r3, 0              # acc
        li   r4, 0              # ky
kyloop:
        li   r5, 0              # kx
kxloop:
        addi r6, r1, -1         # (y + ky - 1) * 64
        add  r6, r6, r4
        slli r6, r6, 6
        addi r7, r2, -1         # + (x + kx - 1)
        add  r7, r7, r5
        add  r6, r6, r7
        slli r6, r6, 2
        li   r8, img
        add  r6, r6, r8
        ld   r9, 0(r6)          # pixel
        muli r10, r4, 3         # kern[ky*3 + kx]
        add  r10, r10, r5
        slli r10, r10, 2
        li   r8, kern
        add  r10, r10, r8
        ld   r11, 0(r10)
        mul  r9, r9, r11
        add  r3, r3, r9
        addi r5, r5, 1
        li   r8, 3
        blt  r5, r8, kxloop
        addi r4, r4, 1
        li   r8, 3
        blt  r4, r8, kyloop

        srai r3, r3, 4          # normalize
        slli r6, r1, 6          # out[y*64 + x]
        add  r6, r6, r2
        slli r6, r6, 2
        li   r8, out
        add  r6, r6, r8
        st   r3, 0(r6)

        addi r2, r2, 1
        li   r8, 63
        blt  r2, r8, xloop
        addi r1, r1, 1
        li   r8, 31
        blt  r1, r8, yloop
        halt
)";
}

} // namespace nvmr

/**
 * @file
 * basicmath workload: integer square roots (Newton iteration) and
 * GCDs (Euclid) over random operand arrays, with results folded into
 * a small accumulator array (MiBench basicmath analogue). The hot
 * accumulators make this the most violation-dense workload, as in
 * Table 3 of the paper.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmBasicmathSource()
{
    return R"(
# Integer math sweeps.
#   aarr, barr : 2048 random operands each
#   acc        : 128 hot accumulators (read-modify-write)
#   sq         : 1024-entry result ring
        .data
aarr:   .rand 2048 808 1 100000
barr:   .rand 2048 809 1 100000
acc:    .space 512
sq:     .space 4096

        .text
main:
        li   r1, 0              # i
loop:
        task
        slli r4, r1, 2          # r10 = aarr[i]
        li   r5, aarr
        add  r4, r4, r5
        ld   r10, 0(r4)
        call isqrt              # r12 = isqrt(r10)
        mv   r6, r12            # s

        slli r4, r1, 2          # r10 = aarr[i], r11 = barr[i]
        li   r5, aarr
        add  r4, r4, r5
        ld   r10, 0(r4)
        slli r4, r1, 2
        li   r5, barr
        add  r4, r4, r5
        ld   r11, 0(r4)
        call gcd                # r12 = gcd(r10, r11)
        add  r6, r6, r12        # v = s + g

        andi r4, r1, 127        # acc[i & 127] += v
        slli r4, r4, 2
        li   r5, acc
        add  r4, r4, r5
        ld   r7, 0(r4)
        add  r7, r7, r6
        st   r7, 0(r4)

        andi r4, r1, 1023       # sq[i & 1023] = v
        slli r4, r4, 2
        li   r5, sq
        add  r4, r4, r5
        st   r6, 0(r4)

        addi r1, r1, 1
        li   r5, 2048
        blt  r1, r5, loop
        halt

# ---- r12 = floor(sqrt(r10)), Newton iteration ----
isqrt:
        li   r13, 2
        blt  r10, r13, isqrt_small
        mv   r12, r10           # x = n
        div  r13, r10, r12      # y = (x + n/x) / 2
        add  r13, r13, r12
        srai r13, r13, 1
isqrt_loop:
        bge  r13, r12, isqrt_done
        mv   r12, r13
        div  r13, r10, r12
        add  r13, r13, r12
        srai r13, r13, 1
        jmp  isqrt_loop
isqrt_done:
        ret
isqrt_small:
        mv   r12, r10
        ret

# ---- r12 = gcd(r10, r11), Euclid ----
gcd:
gcd_loop:
        beq  r11, r0, gcd_done
        rem  r13, r10, r11
        mv   r10, r11
        mv   r11, r13
        jmp  gcd_loop
gcd_done:
        mv   r12, r10
        ret
)";
}

} // namespace nvmr

#include "workloads/golden.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/xorshift.hh"

namespace nvmr
{

Word
goldenWord(const GoldenResult &golden, Addr addr)
{
    panic_if(addr + kWordBytes > golden.data.size(),
             "golden word read out of range: ", addr);
    Word w = 0;
    for (unsigned i = 0; i < kWordBytes; ++i)
        w |= static_cast<Word>(golden.data[addr + i]) << (8 * i);
    return w;
}

std::vector<Word>
goldenWords(const GoldenResult &golden, Addr addr, size_t n)
{
    std::vector<Word> words(n);
    for (size_t i = 0; i < n; ++i)
        words[i] = goldenWord(golden,
                              addr + static_cast<Addr>(i) * kWordBytes);
    return words;
}

std::vector<Word>
randWords(size_t n, uint64_t seed, int64_t lo, int64_t hi)
{
    XorShift rng(seed);
    std::vector<Word> words(n);
    for (size_t i = 0; i < n; ++i)
        words[i] = static_cast<Word>(rng.range(lo, hi));
    return words;
}

std::string
mismatchAt(const std::string &what, size_t index, Word expect,
           Word got)
{
    std::ostringstream os;
    os << what << "[" << index << "]: expected " << expect << ", got "
       << got;
    return os.str();
}

namespace
{

/** Compare a golden array against an expectation vector. */
std::string
compareArray(const Program &prog, const GoldenResult &g,
             const std::string &label, const std::vector<Word> &expect)
{
    Addr base = prog.labelOf(label);
    for (size_t i = 0; i < expect.size(); ++i) {
        Word got = goldenWord(g, base +
                                     static_cast<Addr>(i) * kWordBytes);
        if (got != expect[i])
            return mismatchAt(label, i, expect[i], got);
    }
    return "";
}

} // namespace

// ----------------------------------------------------------------------
// qsort
// ----------------------------------------------------------------------

std::string
checkQsort(const Program &prog, const GoldenResult &g)
{
    std::vector<Word> arr = randWords(3072, 101, 0, 1000000);
    std::sort(arr.begin(), arr.end());
    return compareArray(prog, g, "arr", arr);
}

// ----------------------------------------------------------------------
// hist
// ----------------------------------------------------------------------

std::string
checkHist(const Program &prog, const GoldenResult &g)
{
    std::vector<Word> img = randWords(4096, 202, 0, 255);
    std::vector<Word> hist(256, 0), cdf(256, 0), out(4096, 0);
    for (Word px : img)
        ++hist[px];
    Word run = 0;
    for (size_t i = 0; i < 256; ++i) {
        run += hist[i];
        cdf[i] = run;
    }
    for (size_t i = 0; i < img.size(); ++i)
        out[i] = cdf[img[i]] * 255 / 4096;

    std::string err = compareArray(prog, g, "hist", hist);
    if (err.empty())
        err = compareArray(prog, g, "cdf", cdf);
    if (err.empty())
        err = compareArray(prog, g, "out", out);
    return err;
}

// ----------------------------------------------------------------------
// 2dconv
// ----------------------------------------------------------------------

std::string
check2dconv(const Program &prog, const GoldenResult &g)
{
    constexpr int kW = 64, kH = 32;
    const int kern[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
    std::vector<Word> img = randWords(kW * kH, 303, 0, 255);
    std::vector<Word> out(kW * kH, 0);
    for (int y = 1; y < kH - 1; ++y) {
        for (int x = 1; x < kW - 1; ++x) {
            int32_t acc = 0;
            for (int ky = 0; ky < 3; ++ky)
                for (int kx = 0; kx < 3; ++kx)
                    acc += static_cast<int32_t>(
                               img[(y + ky - 1) * kW + (x + kx - 1)]) *
                           kern[ky * 3 + kx];
            out[y * kW + x] = static_cast<Word>(acc >> 4);
        }
    }
    return compareArray(prog, g, "out", out);
}

// ----------------------------------------------------------------------
// dwt
// ----------------------------------------------------------------------

std::string
checkDwt(const Program &prog, const GoldenResult &g)
{
    constexpr int kN = 64;
    std::vector<Word> raw = randWords(kN * kN, 404, 0, 1023);
    std::vector<int32_t> img(raw.begin(), raw.end());
    std::vector<int32_t> tmp(kN, 0);

    for (int s = kN; s >= 32; s /= 2) {
        int half = s / 2;
        // Horizontal pass.
        for (int y = 0; y < s; ++y) {
            for (int i = 0; i < half; ++i) {
                int32_t a = img[y * kN + 2 * i];
                int32_t b = img[y * kN + 2 * i + 1];
                tmp[i] = (a + b) >> 1;
                tmp[half + i] = a - b;
            }
            for (int i = 0; i < s; ++i)
                img[y * kN + i] = tmp[i];
        }
        // Vertical pass.
        for (int x = 0; x < s; ++x) {
            for (int i = 0; i < half; ++i) {
                int32_t a = img[(2 * i) * kN + x];
                int32_t b = img[(2 * i + 1) * kN + x];
                tmp[i] = (a + b) >> 1;
                tmp[half + i] = a - b;
            }
            for (int i = 0; i < s; ++i)
                img[i * kN + x] = tmp[i];
        }
    }

    std::vector<Word> expect(img.begin(), img.end());
    return compareArray(prog, g, "img", expect);
}

// ----------------------------------------------------------------------
// dijkstra
// ----------------------------------------------------------------------

std::string
checkDijkstra(const Program &prog, const GoldenResult &g)
{
    constexpr int kV = 96;
    constexpr int32_t kInf = 0x3fffffff;
    std::vector<Word> adj = randWords(kV * kV, 505, 1, 9);
    std::vector<int32_t> dist(kV, kInf);
    std::vector<Word> visited(kV, 0);
    dist[0] = 0;

    for (int iter = 0; iter < kV; ++iter) {
        int32_t best = 0x7fffffff;
        int u = -1;
        for (int i = 0; i < kV; ++i) {
            if (!visited[i] && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u < 0)
            break;
        visited[u] = 1;
        for (int v = 0; v < kV; ++v) {
            if (visited[v])
                continue;
            int32_t nd = dist[u] + static_cast<int32_t>(adj[u * kV + v]);
            if (nd < dist[v])
                dist[v] = nd;
        }
    }

    std::vector<Word> expect(dist.begin(), dist.end());
    std::string err = compareArray(prog, g, "dist", expect);
    if (err.empty())
        err = compareArray(prog, g, "visited", visited);
    return err;
}

// ----------------------------------------------------------------------
// stringsearch
// ----------------------------------------------------------------------

std::string
checkStringsearch(const Program &prog, const GoldenResult &g)
{
    std::vector<Word> text = randWords(4096, 606, 0, 12);
    std::vector<Word> pats = randWords(24, 607, 0, 12);
    std::vector<Word> counts(6, 0);
    std::vector<Word> poslog(256, 0);
    uint32_t cursor = 0;

    for (int p = 0; p < 6; ++p) {
        Word matches = 0;
        for (int t = 0; t < 4093; ++t) {
            bool match = true;
            for (int k = 0; k < 4; ++k) {
                if (text[t + k] != pats[p * 4 + k]) {
                    match = false;
                    break;
                }
            }
            if (match) {
                ++matches;
                poslog[cursor & 255] = static_cast<Word>(t);
                ++cursor;
            }
        }
        counts[p] = matches;
    }

    std::string err = compareArray(prog, g, "counts", counts);
    if (err.empty())
        err = compareArray(prog, g, "poslog", poslog);
    return err;
}

// ----------------------------------------------------------------------
// adpcm_encode
// ----------------------------------------------------------------------

std::string
checkAdpcm(const Program &prog, const GoldenResult &g)
{
    static const int32_t step_tab[89] = {
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
        34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130,
        143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408,
        449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282,
        1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327,
        3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630,
        9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350,
        22385, 24623, 27086, 29794, 32767};
    static const int32_t idx_tab[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                        -1, -1, -1, -1, 2, 4, 6, 8};

    std::vector<Word> raw = randWords(6144, 707, -8000, 8000);
    std::vector<Word> out(raw.size(), 0);
    int32_t valpred = 0;
    int32_t index = 0;

    for (size_t i = 0; i < raw.size(); ++i) {
        int32_t sample = static_cast<int32_t>(raw[i]);
        int32_t step = step_tab[index];
        int32_t diff = sample - valpred;
        int32_t sign = 0;
        if (diff < 0) {
            sign = 8;
            diff = -diff;
        }
        int32_t delta = 0;
        int32_t vpdiff = step >> 3;
        if (diff >= step) {
            delta |= 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 1;
            vpdiff += step;
        }
        valpred = sign ? valpred - vpdiff : valpred + vpdiff;
        valpred = std::clamp(valpred, -32768, 32767);
        delta |= sign;
        out[i] = static_cast<Word>(delta);
        index = std::clamp(index + idx_tab[delta], 0, 88);
    }
    return compareArray(prog, g, "out", out);
}

// ----------------------------------------------------------------------
// basicmath
// ----------------------------------------------------------------------

namespace
{

int32_t
goldenIsqrt(int32_t n)
{
    if (n < 2)
        return n;
    int32_t x = n;
    int32_t y = (x + n / x) >> 1;
    while (y < x) {
        x = y;
        y = (x + n / x) >> 1;
    }
    return x;
}

int32_t
goldenGcd(int32_t a, int32_t b)
{
    while (b != 0) {
        int32_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

std::string
checkBasicmath(const Program &prog, const GoldenResult &g)
{
    std::vector<Word> a = randWords(2048, 808, 1, 100000);
    std::vector<Word> b = randWords(2048, 809, 1, 100000);
    std::vector<Word> acc(128, 0);
    std::vector<Word> sq(1024, 0);

    for (size_t i = 0; i < a.size(); ++i) {
        int32_t s = goldenIsqrt(static_cast<int32_t>(a[i]));
        int32_t gc = goldenGcd(static_cast<int32_t>(a[i]),
                               static_cast<int32_t>(b[i]));
        Word v = static_cast<Word>(s + gc);
        acc[i & 127] += v;
        sq[i & 1023] = v;
    }

    std::string err = compareArray(prog, g, "acc", acc);
    if (err.empty())
        err = compareArray(prog, g, "sq", sq);
    return err;
}

// ----------------------------------------------------------------------
// blowfish
// ----------------------------------------------------------------------

namespace
{

struct BlowfishState
{
    std::vector<Word> p;
    std::vector<Word> s0;
    std::vector<Word> s1;

    Word
    f(Word x) const
    {
        return (s0[(x >> 16) & 255] + s1[(x >> 8) & 255]) ^
               s0[x & 255];
    }

    void
    encrypt(Word &l, Word &r) const
    {
        for (int i = 0; i < 16; ++i) {
            l ^= p[i];
            r ^= f(l);
            std::swap(l, r);
        }
        std::swap(l, r);
        r ^= p[16];
        l ^= p[17];
    }
};

} // namespace

std::string
checkBlowfish(const Program &prog, const GoldenResult &g)
{
    BlowfishState bf;
    bf.p = randWords(18, 909, 0, 4294967295ll);
    bf.s0 = randWords(256, 910, 0, 4294967295ll);
    bf.s1 = randWords(256, 911, 0, 4294967295ll);
    std::vector<Word> data = randWords(768, 912, 0, 4294967295ll);
    const Word key[4] = {0x12345678u, 0x9abcdef0u, 0x0fedcba9u,
                         0x87654321u};

    for (int i = 0; i < 18; ++i)
        bf.p[i] ^= key[i % 4];

    Word l = 0, r = 0;
    for (int i = 0; i < 9; ++i) {
        bf.encrypt(l, r);
        bf.p[2 * i] = l;
        bf.p[2 * i + 1] = r;
    }
    for (int i = 0; i < 128; ++i) {
        bf.encrypt(l, r);
        bf.s0[2 * i] = l;
        bf.s0[2 * i + 1] = r;
    }
    for (int i = 0; i < 128; ++i) {
        bf.encrypt(l, r);
        bf.s1[2 * i] = l;
        bf.s1[2 * i + 1] = r;
    }

    Word pl = 0x13579bdfu, pr = 0x2468ace0u;
    for (size_t i = 0; i < data.size() / 2; ++i) {
        Word cl = data[2 * i] ^ pl;
        Word cr = data[2 * i + 1] ^ pr;
        bf.encrypt(cl, cr);
        data[2 * i] = cl;
        data[2 * i + 1] = cr;
        pl = cl;
        pr = cr;
    }

    std::string err = compareArray(prog, g, "p", bf.p);
    if (err.empty())
        err = compareArray(prog, g, "s0", bf.s0);
    if (err.empty())
        err = compareArray(prog, g, "s1", bf.s1);
    if (err.empty())
        err = compareArray(prog, g, "data", data);
    return err;
}

// ----------------------------------------------------------------------
// picojpeg
// ----------------------------------------------------------------------

std::string
checkPicojpeg(const Program &prog, const GoldenResult &g)
{
    static const int kZigzag[64] = {
        0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
        12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
        35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44,
        51, 58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55,
        62, 63};

    std::vector<Word> qtab = randWords(64, 111, 1, 32);
    std::vector<Word> cmat = randWords(64, 112, 0, 255);
    std::vector<Word> coef = randWords(1536, 113, -128, 127);
    std::vector<Word> out(1536, 0);

    int32_t blk[64], tmp[64];
    for (int b = 0; b < 24; ++b) {
        for (int k = 0; k < 64; ++k)
            blk[kZigzag[k]] = static_cast<int32_t>(coef[b * 64 + k]) *
                              static_cast<int32_t>(qtab[k]);
        for (int r = 0; r < 8; ++r) {
            for (int j = 0; j < 8; ++j) {
                int32_t s = 0;
                for (int k = 0; k < 8; ++k)
                    s += blk[r * 8 + k] *
                         static_cast<int32_t>(cmat[k * 8 + j]);
                tmp[r * 8 + j] = s >> 8;
            }
        }
        for (int i = 0; i < 8; ++i) {
            for (int j = 0; j < 8; ++j) {
                int32_t s = 0;
                for (int k = 0; k < 8; ++k)
                    s += static_cast<int32_t>(cmat[k * 8 + i]) *
                         tmp[k * 8 + j];
                s = (s >> 8) + 128;
                s = std::clamp(s, 0, 255);
                out[b * 64 + i * 8 + j] = static_cast<Word>(s);
            }
        }
    }
    return compareArray(prog, g, "out", out);
}

} // namespace nvmr

/**
 * @file
 * dwt workload: two-level 2D Haar discrete wavelet transform of a
 * 64x64 image, in place with a 64-word line buffer (PERFECT suite
 * port). The in-place update pattern generates the read-then-write
 * accesses that intermittent systems must handle.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmDwtSource()
{
    return R"(
# Two-level 2D Haar DWT, 64x64 words, in place.
#   img : the image (row-major, stride 64)
#   tmp : one 64-word line buffer
# Registers: r1=level size s, r2=y/x outer, r3=i inner, r13=s/2
        .data
img:    .rand 4096 404 0 1023
tmp:    .space 256

        .text
main:
        li   r1, 64             # s = 64 (level 1), then 32

level:
        srli r13, r1, 1         # s/2

# ---- horizontal pass: rows 0..s-1 ----
        li   r2, 0              # y
hrow:
        task
        li   r3, 0              # i = 0..s/2-1
hpair:
        slli r4, r2, 6          # row base = y*64
        slli r5, r3, 1          # 2i
        add  r6, r4, r5
        slli r6, r6, 2
        li   r7, img
        add  r6, r6, r7
        ld   r8, 0(r6)          # a = img[y][2i]
        ld   r9, 4(r6)          # b = img[y][2i+1]
        add  r10, r8, r9        # low = (a+b)>>1
        srai r10, r10, 1
        sub  r11, r8, r9        # high = a-b
        slli r12, r3, 2         # tmp[i] = low
        li   r7, tmp
        add  r12, r12, r7
        st   r10, 0(r12)
        add  r5, r3, r13        # tmp[i + s/2] = high
        slli r5, r5, 2
        add  r5, r5, r7
        st   r11, 0(r5)
        addi r3, r3, 1
        blt  r3, r13, hpair
# copy tmp back into the row
        li   r3, 0
hcopy:
        slli r5, r3, 2
        li   r7, tmp
        add  r5, r5, r7
        ld   r8, 0(r5)
        slli r6, r2, 6
        add  r6, r6, r3
        slli r6, r6, 2
        li   r7, img
        add  r6, r6, r7
        st   r8, 0(r6)
        addi r3, r3, 1
        blt  r3, r1, hcopy
        addi r2, r2, 1
        blt  r2, r1, hrow

# ---- vertical pass: columns 0..s-1 ----
        li   r2, 0              # x
vcol:
        task
        li   r3, 0              # i
vpair:
        slli r4, r3, 1          # 2i
        slli r4, r4, 6          # row offset (2i)*64
        add  r4, r4, r2
        slli r4, r4, 2
        li   r7, img
        add  r4, r4, r7
        ld   r8, 0(r4)          # a = img[2i][x]
        ld   r9, 256(r4)        # b = img[2i+1][x] (stride 64 words)
        add  r10, r8, r9
        srai r10, r10, 1
        sub  r11, r8, r9
        slli r12, r3, 2
        li   r7, tmp
        add  r12, r12, r7
        st   r10, 0(r12)
        add  r5, r3, r13
        slli r5, r5, 2
        add  r5, r5, r7
        st   r11, 0(r5)
        addi r3, r3, 1
        blt  r3, r13, vpair
# copy tmp back into the column
        li   r3, 0
vcopy:
        slli r5, r3, 2
        li   r7, tmp
        add  r5, r5, r7
        ld   r8, 0(r5)
        slli r6, r3, 6
        add  r6, r6, r2
        slli r6, r6, 2
        li   r7, img
        add  r6, r6, r7
        st   r8, 0(r6)
        addi r3, r3, 1
        blt  r3, r1, vcopy
        addi r2, r2, 1
        blt  r2, r1, vcol

# ---- next level: s = s/2, stop after s = 32 ----
        srli r1, r1, 1
        li   r7, 32
        bge  r1, r7, level
        halt
)";
}

} // namespace nvmr

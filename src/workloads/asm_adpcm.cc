/**
 * @file
 * adpcm_encode workload: IMA ADPCM encoder over 6144 PCM samples
 * (MiBench adpcm rawcaudio analogue). Sequential reads, sequential
 * code writes and two scalar state variables: the lowest-violation
 * workload in the paper, reproduced here.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmAdpcmSource()
{
    return R"(
# IMA ADPCM encoder.
#   in   : 6144 signed PCM samples in [-8000, 8000]
#   out  : one 4-bit code per sample (stored one per word)
        .data
steptab:
        .word 7 8 9 10 11 12 13 14 16 17
        .word 19 21 23 25 28 31 34 37 41 45
        .word 50 55 60 66 73 80 88 97 107 118
        .word 130 143 157 173 190 209 230 253 279 307
        .word 337 371 408 449 494 544 598 658 724 796
        .word 876 963 1060 1166 1282 1411 1552 1707 1878 2066
        .word 2272 2499 2749 3024 3327 3660 4026 4428 4871 5358
        .word 5894 6484 7132 7845 8630 9493 10442 11487 12635 13899
        .word 15289 16818 18500 20350 22385 24623 27086 29794 32767
idxtab: .word -1 -1 -1 -1 2 4 6 8 -1 -1 -1 -1 2 4 6 8
in:     .rand 6144 707 -8000 8000
out:    .space 24576

        .text
main:
        li   r1, 0              # i
        li   r2, 0              # valpred
        li   r3, 0              # index
sample:
        task
        slli r4, r1, 2          # sample = in[i]
        li   r5, in
        add  r4, r4, r5
        ld   r4, 0(r4)
        slli r5, r3, 2          # step = steptab[index]
        li   r6, steptab
        add  r5, r5, r6
        ld   r5, 0(r5)
        sub  r6, r4, r2         # diff = sample - valpred
        li   r7, 0              # sign
        bge  r6, r0, pos
        li   r7, 8
        neg  r6, r6
pos:
        li   r8, 0              # delta
        srai r9, r5, 3          # vpdiff = step >> 3
        blt  r6, r5, b1
        ori  r8, r8, 4
        sub  r6, r6, r5
        add  r9, r9, r5
b1:
        srai r5, r5, 1
        blt  r6, r5, b2
        ori  r8, r8, 2
        sub  r6, r6, r5
        add  r9, r9, r5
b2:
        srai r5, r5, 1
        blt  r6, r5, b3
        ori  r8, r8, 1
        add  r9, r9, r5
b3:
        beq  r7, r0, addv       # apply vpdiff with sign
        sub  r2, r2, r9
        jmp  clamp
addv:
        add  r2, r2, r9
clamp:
        li   r10, 32767
        ble  r2, r10, cl1
        mv   r2, r10
cl1:
        li   r10, -32768
        bge  r2, r10, cl2
        mv   r2, r10
cl2:
        or   r8, r8, r7         # delta |= sign
        slli r10, r1, 2         # out[i] = delta
        li   r11, out
        add  r10, r10, r11
        st   r8, 0(r10)
        slli r10, r8, 2         # index += idxtab[delta]
        li   r11, idxtab
        add  r10, r10, r11
        ld   r10, 0(r10)
        add  r3, r3, r10
        bge  r3, r0, ic1        # clamp index to [0, 88]
        li   r3, 0
ic1:
        li   r10, 88
        ble  r3, r10, ic2
        mv   r3, r10
ic2:
        addi r1, r1, 1
        li   r10, 6144
        blt  r1, r10, sample
        halt
)";
}

} // namespace nvmr

/**
 * @file
 * blowfish workload: a reduced Feistel cipher with two 256-word
 * S-boxes and an 18-word P-array (MiBench blowfish analogue; see
 * DESIGN.md substitution 2). The key schedule repeatedly encrypts a
 * running block and writes it back into the P-array and S-boxes —
 * the same read-then-overwrite table traffic as real Blowfish — then
 * CBC-encrypts a 768-word buffer in place.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmBlowfishSource()
{
    return R"(
# Reduced Blowfish: 16 Feistel rounds,
#   F(x) = ((s0[(x>>16)&255] + s1[(x>>8)&255]) ^ s0[x&255]).
        .data
p:      .rand 18 909 0 4294967295
s0:     .rand 256 910 0 4294967295
s1:     .rand 256 911 0 4294967295
key:    .word 0x12345678 0x9abcdef0 0x0fedcba9 0x87654321
data:   .rand 768 912 0 4294967295

        .text
main:
# ---- key mix: p[i] ^= key[i % 4] ----
        li   r1, 0
keymix:
        andi r4, r1, 3
        slli r4, r4, 2
        li   r5, key
        add  r4, r4, r5
        ld   r4, 0(r4)
        slli r5, r1, 2
        li   r6, p
        add  r5, r5, r6
        ld   r7, 0(r5)
        xor  r7, r7, r4
        st   r7, 0(r5)
        addi r1, r1, 1
        li   r6, 18
        blt  r1, r6, keymix

# ---- key schedule: refill p, s0, s1 with running encryptions ----
        li   r2, 0              # L
        li   r3, 0              # R
        li   r1, 0
sched_p:
        task
        call enc
        slli r4, r1, 3
        li   r5, p
        add  r4, r4, r5
        st   r2, 0(r4)
        st   r3, 4(r4)
        addi r1, r1, 1
        li   r6, 9
        blt  r1, r6, sched_p
        li   r1, 0
sched_s0:
        task
        call enc
        slli r4, r1, 3
        li   r5, s0
        add  r4, r4, r5
        st   r2, 0(r4)
        st   r3, 4(r4)
        addi r1, r1, 1
        li   r6, 128
        blt  r1, r6, sched_s0
        li   r1, 0
sched_s1:
        task
        call enc
        slli r4, r1, 3
        li   r5, s1
        add  r4, r4, r5
        st   r2, 0(r4)
        st   r3, 4(r4)
        addi r1, r1, 1
        li   r6, 128
        blt  r1, r6, sched_s1

# ---- CBC-encrypt the data buffer in place ----
        li   r8, 0x13579bdf     # IV
        li   r9, 0x2468ace0
        li   r1, 0
cbc:
        task
        slli r4, r1, 3
        li   r5, data
        add  r10, r4, r5
        ld   r2, 0(r10)
        ld   r3, 4(r10)
        xor  r2, r2, r8
        xor  r3, r3, r9
        call enc
        st   r2, 0(r10)
        st   r3, 4(r10)
        mv   r8, r2
        mv   r9, r3
        addi r1, r1, 1
        li   r6, 384
        blt  r1, r6, cbc
        halt

# ---- encrypt (r2, r3) in place; clobbers r4-r7 ----
enc:
        li   r4, 0
enc_round:
        slli r5, r4, 2          # L ^= p[i]
        li   r6, p
        add  r5, r5, r6
        ld   r5, 0(r5)
        xor  r2, r2, r5
        srli r5, r2, 16         # F(L)
        andi r5, r5, 255
        slli r5, r5, 2
        li   r6, s0
        add  r5, r5, r6
        ld   r5, 0(r5)
        srli r7, r2, 8
        andi r7, r7, 255
        slli r7, r7, 2
        li   r6, s1
        add  r7, r7, r6
        ld   r7, 0(r7)
        add  r5, r5, r7
        andi r7, r2, 255
        slli r7, r7, 2
        li   r6, s0
        add  r7, r7, r6
        ld   r7, 0(r7)
        xor  r5, r5, r7
        xor  r3, r3, r5         # R ^= F(L)
        mv   r7, r2             # swap L, R
        mv   r2, r3
        mv   r3, r7
        addi r4, r4, 1
        li   r6, 16
        blt  r4, r6, enc_round
        mv   r7, r2             # undo final swap
        mv   r2, r3
        mv   r3, r7
        li   r6, p              # output whitening
        ld   r5, 64(r6)
        xor  r3, r3, r5
        ld   r5, 68(r6)
        xor  r2, r2, r5
        ret
)";
}

} // namespace nvmr

/**
 * @file
 * qsort workload: iterative Lomuto quicksort over 3072 random words,
 * using an explicit frame stack in the data segment. Mirrors the
 * MiBench qsort kernel's read-modify-write-heavy access pattern.
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmQsortSource()
{
    return R"(
# Iterative quicksort, Lomuto partition.
#   arr   : 3072 random words in [0, 1000000]
#   stack : up to 512 (lo, hi) frames
        .data
arr:    .rand 3072 101 0 1000000
stack:  .space 4096

        .text
main:
        li   r1, arr
        li   r4, stack          # frame stack pointer (empty)
        li   r2, 0              # lo = 0
        li   r3, 3071           # hi = N-1
        st   r2, 0(r4)
        st   r3, 4(r4)
        addi r4, r4, 8

loop:
        task
        li   r5, stack
        beq  r4, r5, done       # stack empty -> sorted
        addi r4, r4, -8
        ld   r2, 0(r4)          # lo
        ld   r3, 4(r4)          # hi
        bge  r2, r3, loop       # empty/singleton range

# ---- Lomuto partition with pivot = arr[hi] ----
        slli r6, r3, 2
        add  r6, r6, r1
        ld   r7, 0(r6)          # pivot value
        addi r8, r2, -1         # i = lo - 1
        mv   r9, r2             # j = lo
ploop:
        bge  r9, r3, pdone
        slli r10, r9, 2
        add  r10, r10, r1
        ld   r11, 0(r10)        # arr[j]
        bgt  r11, r7, pnext
        addi r8, r8, 1          # ++i, swap arr[i] <-> arr[j]
        slli r12, r8, 2
        add  r12, r12, r1
        ld   r13, 0(r12)
        st   r11, 0(r12)
        st   r13, 0(r10)
pnext:
        addi r9, r9, 1
        jmp  ploop
pdone:
        addi r8, r8, 1          # p = i + 1, swap arr[p] <-> arr[hi]
        slli r12, r8, 2
        add  r12, r12, r1
        ld   r13, 0(r12)
        ld   r11, 0(r6)
        st   r11, 0(r12)
        st   r13, 0(r6)

# ---- push (lo, p-1) and (p+1, hi) ----
        addi r10, r8, -1
        st   r2, 0(r4)
        st   r10, 4(r4)
        addi r4, r4, 8
        addi r10, r8, 1
        st   r10, 0(r4)
        st   r3, 4(r4)
        addi r4, r4, 8
        jmp  loop

done:
        halt
)";
}

} // namespace nvmr

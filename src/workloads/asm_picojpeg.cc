/**
 * @file
 * picojpeg workload: the decode core of a baseline JPEG decoder —
 * dequantization, zig-zag reordering and a separable fixed-point
 * 8x8 block transform with level shift and clamping — over 24
 * coefficient blocks (MiBench picojpeg analogue; see DESIGN.md
 * substitution 2).
 */

#include "workloads/sources.hh"

namespace nvmr
{

const char *
asmPicojpegSource()
{
    return R"(
# JPEG decode core: per block, blk[zz[k]] = coef[k] * q[k], then two
# fixed-point 8x8 matrix passes (rows then columns), level shift and
# clamp to [0, 255].
        .data
zigzag: .word 0 1 8 16 9 2 3 10 17 24
        .word 32 25 18 11 4 5 12 19 26 33
        .word 40 48 41 34 27 20 13 6 7 14
        .word 21 28 35 42 49 56 57 50 43 36
        .word 29 22 15 23 30 37 44 51 58 59
        .word 52 45 38 31 39 46 53 60 61 54
        .word 47 55 62 63
qtab:   .rand 64 111 1 32
cmat:   .rand 64 112 0 255
coef:   .rand 1536 113 -128 127
out:    .space 6144
blk:    .space 256
tmp:    .space 256

        .text
main:
        li   r1, 0              # block index
block:
        task
# ---- dequantize + zig-zag: blk[zz[k]] = coef[b*64+k] * qtab[k] ----
        li   r2, 0
dq:
        muli r4, r1, 256
        slli r5, r2, 2
        add  r4, r4, r5
        li   r6, coef
        add  r4, r4, r6
        ld   r7, 0(r4)
        li   r6, qtab
        add  r5, r5, r6
        ld   r8, 0(r5)
        mul  r7, r7, r8
        slli r5, r2, 2
        li   r6, zigzag
        add  r5, r5, r6
        ld   r9, 0(r5)
        slli r9, r9, 2
        li   r6, blk
        add  r9, r9, r6
        st   r7, 0(r9)
        addi r2, r2, 1
        li   r6, 64
        blt  r2, r6, dq

# ---- row pass: tmp[r][j] = (sum_k blk[r][k] * cmat[k][j]) >> 8 ----
        li   r2, 0              # r
rowr:
        li   r3, 0              # j
rowj:
        li   r7, 0              # s
        li   r4, 0              # k
rowk:
        slli r5, r2, 3
        add  r5, r5, r4
        slli r5, r5, 2
        li   r6, blk
        add  r5, r5, r6
        ld   r8, 0(r5)
        slli r5, r4, 3
        add  r5, r5, r3
        slli r5, r5, 2
        li   r6, cmat
        add  r5, r5, r6
        ld   r9, 0(r5)
        mul  r8, r8, r9
        add  r7, r7, r8
        addi r4, r4, 1
        li   r6, 8
        blt  r4, r6, rowk
        srai r7, r7, 8
        slli r5, r2, 3
        add  r5, r5, r3
        slli r5, r5, 2
        li   r6, tmp
        add  r5, r5, r6
        st   r7, 0(r5)
        addi r3, r3, 1
        li   r6, 8
        blt  r3, r6, rowj
        addi r2, r2, 1
        li   r6, 8
        blt  r2, r6, rowr

# ---- column pass + level shift + clamp ----
        li   r2, 0              # i
coli:
        li   r3, 0              # j
colj:
        li   r7, 0
        li   r4, 0              # k
colk:
        slli r5, r4, 3
        add  r5, r5, r2
        slli r5, r5, 2
        li   r6, cmat
        add  r5, r5, r6
        ld   r8, 0(r5)          # cmat[k][i]
        slli r5, r4, 3
        add  r5, r5, r3
        slli r5, r5, 2
        li   r6, tmp
        add  r5, r5, r6
        ld   r9, 0(r5)          # tmp[k][j]
        mul  r8, r8, r9
        add  r7, r7, r8
        addi r4, r4, 1
        li   r6, 8
        blt  r4, r6, colk
        srai r7, r7, 8
        addi r7, r7, 128        # level shift
        bge  r7, r0, cp1
        li   r7, 0
cp1:
        li   r6, 255
        ble  r7, r6, cp2
        mv   r7, r6
cp2:
        muli r5, r1, 256        # out[b*64 + i*8 + j]
        slli r6, r2, 3
        add  r6, r6, r3
        slli r6, r6, 2
        add  r5, r5, r6
        li   r6, out
        add  r5, r5, r6
        st   r7, 0(r5)
        addi r3, r3, 1
        li   r6, 8
        blt  r3, r6, colj
        addi r2, r2, 1
        li   r6, 8
        blt  r2, r6, coli

        addi r1, r1, 1
        li   r6, 24
        blt  r1, r6, block
        halt
)";
}

} // namespace nvmr

# Empty compiler generated dependencies file for ablation_atomicity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_atomicity.dir/ablation_atomicity.cc.o"
  "CMakeFiles/ablation_atomicity.dir/ablation_atomicity.cc.o.d"
  "ablation_atomicity"
  "ablation_atomicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

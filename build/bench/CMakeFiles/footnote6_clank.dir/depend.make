# Empty dependencies file for footnote6_clank.
# This may be replaced when dependencies are built.

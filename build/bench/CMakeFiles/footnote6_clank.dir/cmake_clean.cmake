file(REMOVE_RECURSE
  "CMakeFiles/footnote6_clank.dir/footnote6_clank.cc.o"
  "CMakeFiles/footnote6_clank.dir/footnote6_clank.cc.o.d"
  "footnote6_clank"
  "footnote6_clank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/footnote6_clank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

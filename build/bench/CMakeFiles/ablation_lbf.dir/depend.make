# Empty dependencies file for ablation_lbf.
# This may be replaced when dependencies are built.

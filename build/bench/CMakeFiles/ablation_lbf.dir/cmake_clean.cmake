file(REMOVE_RECURSE
  "CMakeFiles/ablation_lbf.dir/ablation_lbf.cc.o"
  "CMakeFiles/ablation_lbf.dir/ablation_lbf.cc.o.d"
  "ablation_lbf"
  "ablation_lbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

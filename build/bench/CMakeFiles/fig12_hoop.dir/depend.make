# Empty dependencies file for fig12_hoop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_hoop.dir/fig12_hoop.cc.o"
  "CMakeFiles/fig12_hoop.dir/fig12_hoop.cc.o.d"
  "fig12_hoop"
  "fig12_hoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

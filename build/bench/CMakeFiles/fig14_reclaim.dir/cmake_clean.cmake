file(REMOVE_RECURSE
  "CMakeFiles/fig14_reclaim.dir/fig14_reclaim.cc.o"
  "CMakeFiles/fig14_reclaim.dir/fig14_reclaim.cc.o.d"
  "fig14_reclaim"
  "fig14_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_reclaim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_gbf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_gbf.dir/ablation_gbf.cc.o"
  "CMakeFiles/ablation_gbf.dir/ablation_gbf.cc.o.d"
  "ablation_gbf"
  "ablation_gbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

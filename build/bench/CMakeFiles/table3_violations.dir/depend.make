# Empty dependencies file for table3_violations.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig2_taxonomy.
# This may be replaced when dependencies are built.

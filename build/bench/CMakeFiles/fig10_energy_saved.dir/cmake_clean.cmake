file(REMOVE_RECURSE
  "CMakeFiles/fig10_energy_saved.dir/fig10_energy_saved.cc.o"
  "CMakeFiles/fig10_energy_saved.dir/fig10_energy_saved.cc.o.d"
  "fig10_energy_saved"
  "fig10_energy_saved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_energy_saved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

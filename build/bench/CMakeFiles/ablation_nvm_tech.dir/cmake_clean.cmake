file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvm_tech.dir/ablation_nvm_tech.cc.o"
  "CMakeFiles/ablation_nvm_tech.dir/ablation_nvm_tech.cc.o.d"
  "ablation_nvm_tech"
  "ablation_nvm_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvm_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

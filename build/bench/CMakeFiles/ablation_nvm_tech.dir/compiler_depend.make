# Empty compiler generated dependencies file for ablation_nvm_tech.
# This may be replaced when dependencies are built.

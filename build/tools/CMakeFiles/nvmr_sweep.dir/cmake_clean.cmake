file(REMOVE_RECURSE
  "CMakeFiles/nvmr_sweep.dir/nvmr_sweep.cc.o"
  "CMakeFiles/nvmr_sweep.dir/nvmr_sweep.cc.o.d"
  "nvmr_sweep"
  "nvmr_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

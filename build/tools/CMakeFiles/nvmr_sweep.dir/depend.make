# Empty dependencies file for nvmr_sweep.
# This may be replaced when dependencies are built.

# Empty dependencies file for nvmr_sim.
# This may be replaced when dependencies are built.

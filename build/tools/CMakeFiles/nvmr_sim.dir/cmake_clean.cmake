file(REMOVE_RECURSE
  "CMakeFiles/nvmr_sim.dir/nvmr_sim.cc.o"
  "CMakeFiles/nvmr_sim.dir/nvmr_sim.cc.o.d"
  "nvmr_sim"
  "nvmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

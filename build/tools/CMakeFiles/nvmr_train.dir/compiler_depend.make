# Empty compiler generated dependencies file for nvmr_train.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nvmr_train.dir/nvmr_train.cc.o"
  "CMakeFiles/nvmr_train.dir/nvmr_train.cc.o.d"
  "nvmr_train"
  "nvmr_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmr_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/nvmr_fuzz.dir/nvmr_fuzz.cc.o"
  "CMakeFiles/nvmr_fuzz.dir/nvmr_fuzz.cc.o.d"
  "nvmr_fuzz"
  "nvmr_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmr_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for nvmr_fuzz.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_isa_programs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_isa_programs.dir/test_isa_programs.cc.o"
  "CMakeFiles/test_isa_programs.dir/test_isa_programs.cc.o.d"
  "test_isa_programs"
  "test_isa_programs.pdb"
  "test_isa_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

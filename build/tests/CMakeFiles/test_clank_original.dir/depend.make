# Empty dependencies file for test_clank_original.
# This may be replaced when dependencies are built.

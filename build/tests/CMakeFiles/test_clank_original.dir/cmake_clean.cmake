file(REMOVE_RECURSE
  "CMakeFiles/test_clank_original.dir/test_clank_original.cc.o"
  "CMakeFiles/test_clank_original.dir/test_clank_original.cc.o.d"
  "test_clank_original"
  "test_clank_original.pdb"
  "test_clank_original[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clank_original.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

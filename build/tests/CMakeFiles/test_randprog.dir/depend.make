# Empty dependencies file for test_randprog.
# This may be replaced when dependencies are built.

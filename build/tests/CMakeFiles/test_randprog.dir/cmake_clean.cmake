file(REMOVE_RECURSE
  "CMakeFiles/test_randprog.dir/test_randprog.cc.o"
  "CMakeFiles/test_randprog.dir/test_randprog.cc.o.d"
  "test_randprog"
  "test_randprog.pdb"
  "test_randprog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

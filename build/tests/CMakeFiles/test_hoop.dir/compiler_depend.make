# Empty compiler generated dependencies file for test_hoop.
# This may be replaced when dependencies are built.

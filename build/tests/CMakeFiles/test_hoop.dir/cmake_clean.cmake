file(REMOVE_RECURSE
  "CMakeFiles/test_hoop.dir/test_hoop.cc.o"
  "CMakeFiles/test_hoop.dir/test_hoop.cc.o.d"
  "test_hoop"
  "test_hoop.pdb"
  "test_hoop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

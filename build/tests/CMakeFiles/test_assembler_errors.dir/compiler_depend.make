# Empty compiler generated dependencies file for test_assembler_errors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_assembler_errors.dir/test_assembler_errors.cc.o"
  "CMakeFiles/test_assembler_errors.dir/test_assembler_errors.cc.o.d"
  "test_assembler_errors"
  "test_assembler_errors.pdb"
  "test_assembler_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_invariant.dir/test_recovery_invariant.cc.o"
  "CMakeFiles/test_recovery_invariant.dir/test_recovery_invariant.cc.o.d"
  "test_recovery_invariant"
  "test_recovery_invariant.pdb"
  "test_recovery_invariant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_recovery_invariant.
# This may be replaced when dependencies are built.

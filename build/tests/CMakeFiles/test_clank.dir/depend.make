# Empty dependencies file for test_clank.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_clank.dir/test_clank.cc.o"
  "CMakeFiles/test_clank.dir/test_clank.cc.o.d"
  "test_clank"
  "test_clank.pdb"
  "test_clank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_freelist.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_freelist.dir/test_freelist.cc.o"
  "CMakeFiles/test_freelist.dir/test_freelist.cc.o.d"
  "test_freelist"
  "test_freelist.pdb"
  "test_freelist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

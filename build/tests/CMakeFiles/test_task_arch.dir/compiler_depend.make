# Empty compiler generated dependencies file for test_task_arch.
# This may be replaced when dependencies are built.

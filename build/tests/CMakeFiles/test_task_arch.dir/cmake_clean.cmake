file(REMOVE_RECURSE
  "CMakeFiles/test_task_arch.dir/test_task_arch.cc.o"
  "CMakeFiles/test_task_arch.dir/test_task_arch.cc.o.d"
  "test_task_arch"
  "test_task_arch.pdb"
  "test_task_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

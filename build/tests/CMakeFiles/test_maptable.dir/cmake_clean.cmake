file(REMOVE_RECURSE
  "CMakeFiles/test_maptable.dir/test_maptable.cc.o"
  "CMakeFiles/test_maptable.dir/test_maptable.cc.o.d"
  "test_maptable"
  "test_maptable.pdb"
  "test_maptable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maptable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_maptable.
# This may be replaced when dependencies are built.

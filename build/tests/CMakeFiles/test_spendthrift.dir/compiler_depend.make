# Empty compiler generated dependencies file for test_spendthrift.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_spendthrift.dir/test_spendthrift.cc.o"
  "CMakeFiles/test_spendthrift.dir/test_spendthrift.cc.o.d"
  "test_spendthrift"
  "test_spendthrift.pdb"
  "test_spendthrift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spendthrift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_arch_common.dir/test_arch_common.cc.o"
  "CMakeFiles/test_arch_common.dir/test_arch_common.cc.o.d"
  "test_arch_common"
  "test_arch_common.pdb"
  "test_arch_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_arch_common.
# This may be replaced when dependencies are built.

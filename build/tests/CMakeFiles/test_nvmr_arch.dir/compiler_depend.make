# Empty compiler generated dependencies file for test_nvmr_arch.
# This may be replaced when dependencies are built.

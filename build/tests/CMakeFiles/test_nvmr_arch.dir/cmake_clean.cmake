file(REMOVE_RECURSE
  "CMakeFiles/test_nvmr_arch.dir/test_nvmr_arch.cc.o"
  "CMakeFiles/test_nvmr_arch.dir/test_nvmr_arch.cc.o.d"
  "test_nvmr_arch"
  "test_nvmr_arch.pdb"
  "test_nvmr_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvmr_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_barchart.dir/test_barchart.cc.o"
  "CMakeFiles/test_barchart.dir/test_barchart.cc.o.d"
  "test_barchart"
  "test_barchart.pdb"
  "test_barchart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barchart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

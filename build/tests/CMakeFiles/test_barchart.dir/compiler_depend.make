# Empty compiler generated dependencies file for test_barchart.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mtcache.dir/test_mtcache.cc.o"
  "CMakeFiles/test_mtcache.dir/test_mtcache.cc.o.d"
  "test_mtcache"
  "test_mtcache.pdb"
  "test_mtcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

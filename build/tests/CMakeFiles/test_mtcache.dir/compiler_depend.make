# Empty compiler generated dependencies file for test_mtcache.
# This may be replaced when dependencies are built.

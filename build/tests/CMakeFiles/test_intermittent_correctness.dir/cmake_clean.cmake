file(REMOVE_RECURSE
  "CMakeFiles/test_intermittent_correctness.dir/test_intermittent_correctness.cc.o"
  "CMakeFiles/test_intermittent_correctness.dir/test_intermittent_correctness.cc.o.d"
  "test_intermittent_correctness"
  "test_intermittent_correctness.pdb"
  "test_intermittent_correctness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intermittent_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

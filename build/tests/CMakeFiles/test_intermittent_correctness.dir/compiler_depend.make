# Empty compiler generated dependencies file for test_intermittent_correctness.
# This may be replaced when dependencies are built.

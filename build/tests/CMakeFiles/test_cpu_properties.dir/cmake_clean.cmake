file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_properties.dir/test_cpu_properties.cc.o"
  "CMakeFiles/test_cpu_properties.dir/test_cpu_properties.cc.o.d"
  "test_cpu_properties"
  "test_cpu_properties.pdb"
  "test_cpu_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnvmr.a"
)

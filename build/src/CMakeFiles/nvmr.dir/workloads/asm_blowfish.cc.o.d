src/CMakeFiles/nvmr.dir/workloads/asm_blowfish.cc.o: \
 /root/repo/src/workloads/asm_blowfish.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

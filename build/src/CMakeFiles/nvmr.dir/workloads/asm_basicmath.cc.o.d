src/CMakeFiles/nvmr.dir/workloads/asm_basicmath.cc.o: \
 /root/repo/src/workloads/asm_basicmath.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

src/CMakeFiles/nvmr.dir/workloads/asm_hist.cc.o: \
 /root/repo/src/workloads/asm_hist.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

src/CMakeFiles/nvmr.dir/workloads/asm_adpcm.cc.o: \
 /root/repo/src/workloads/asm_adpcm.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

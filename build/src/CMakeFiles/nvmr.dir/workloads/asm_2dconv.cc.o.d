src/CMakeFiles/nvmr.dir/workloads/asm_2dconv.cc.o: \
 /root/repo/src/workloads/asm_2dconv.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

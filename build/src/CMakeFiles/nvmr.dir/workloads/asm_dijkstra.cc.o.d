src/CMakeFiles/nvmr.dir/workloads/asm_dijkstra.cc.o: \
 /root/repo/src/workloads/asm_dijkstra.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

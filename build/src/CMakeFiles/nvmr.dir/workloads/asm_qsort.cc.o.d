src/CMakeFiles/nvmr.dir/workloads/asm_qsort.cc.o: \
 /root/repo/src/workloads/asm_qsort.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

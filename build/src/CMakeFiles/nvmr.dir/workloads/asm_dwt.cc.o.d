src/CMakeFiles/nvmr.dir/workloads/asm_dwt.cc.o: \
 /root/repo/src/workloads/asm_dwt.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

src/CMakeFiles/nvmr.dir/workloads/asm_picojpeg.cc.o: \
 /root/repo/src/workloads/asm_picojpeg.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

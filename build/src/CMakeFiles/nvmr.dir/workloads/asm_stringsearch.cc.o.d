src/CMakeFiles/nvmr.dir/workloads/asm_stringsearch.cc.o: \
 /root/repo/src/workloads/asm_stringsearch.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh

# Empty compiler generated dependencies file for nvmr.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch.cc" "src/CMakeFiles/nvmr.dir/arch/arch.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/arch/arch.cc.o.d"
  "/root/repo/src/arch/clank.cc" "src/CMakeFiles/nvmr.dir/arch/clank.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/arch/clank.cc.o.d"
  "/root/repo/src/arch/clank_original.cc" "src/CMakeFiles/nvmr.dir/arch/clank_original.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/arch/clank_original.cc.o.d"
  "/root/repo/src/arch/hoop.cc" "src/CMakeFiles/nvmr.dir/arch/hoop.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/arch/hoop.cc.o.d"
  "/root/repo/src/arch/ideal.cc" "src/CMakeFiles/nvmr.dir/arch/ideal.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/arch/ideal.cc.o.d"
  "/root/repo/src/arch/task.cc" "src/CMakeFiles/nvmr.dir/arch/task.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/arch/task.cc.o.d"
  "/root/repo/src/common/barchart.cc" "src/CMakeFiles/nvmr.dir/common/barchart.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/common/barchart.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/nvmr.dir/common/log.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/nvmr.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/nvmr.dir/common/table.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/common/table.cc.o.d"
  "/root/repo/src/core/freelist.cc" "src/CMakeFiles/nvmr.dir/core/freelist.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/core/freelist.cc.o.d"
  "/root/repo/src/core/maptable.cc" "src/CMakeFiles/nvmr.dir/core/maptable.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/core/maptable.cc.o.d"
  "/root/repo/src/core/mtcache.cc" "src/CMakeFiles/nvmr.dir/core/mtcache.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/core/mtcache.cc.o.d"
  "/root/repo/src/core/nvmr_arch.cc" "src/CMakeFiles/nvmr.dir/core/nvmr_arch.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/core/nvmr_arch.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/CMakeFiles/nvmr.dir/cpu/cpu.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/cpu/cpu.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/nvmr.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/nvmr.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/nvmr.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/bloom.cc" "src/CMakeFiles/nvmr.dir/mem/bloom.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/mem/bloom.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/nvmr.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/nvm.cc" "src/CMakeFiles/nvmr.dir/mem/nvm.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/mem/nvm.cc.o.d"
  "/root/repo/src/power/capacitor.cc" "src/CMakeFiles/nvmr.dir/power/capacitor.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/power/capacitor.cc.o.d"
  "/root/repo/src/power/energy.cc" "src/CMakeFiles/nvmr.dir/power/energy.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/power/energy.cc.o.d"
  "/root/repo/src/power/policy.cc" "src/CMakeFiles/nvmr.dir/power/policy.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/power/policy.cc.o.d"
  "/root/repo/src/power/spendthrift.cc" "src/CMakeFiles/nvmr.dir/power/spendthrift.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/power/spendthrift.cc.o.d"
  "/root/repo/src/power/trace.cc" "src/CMakeFiles/nvmr.dir/power/trace.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/power/trace.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/nvmr.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/randprog.cc" "src/CMakeFiles/nvmr.dir/sim/randprog.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/sim/randprog.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/nvmr.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/nvmr.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/sim/simulator.cc.o.d"
  "/root/repo/src/workloads/asm_2dconv.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_2dconv.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_2dconv.cc.o.d"
  "/root/repo/src/workloads/asm_adpcm.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_adpcm.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_adpcm.cc.o.d"
  "/root/repo/src/workloads/asm_basicmath.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_basicmath.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_basicmath.cc.o.d"
  "/root/repo/src/workloads/asm_blowfish.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_blowfish.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_blowfish.cc.o.d"
  "/root/repo/src/workloads/asm_dijkstra.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_dijkstra.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_dijkstra.cc.o.d"
  "/root/repo/src/workloads/asm_dwt.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_dwt.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_dwt.cc.o.d"
  "/root/repo/src/workloads/asm_hist.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_hist.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_hist.cc.o.d"
  "/root/repo/src/workloads/asm_picojpeg.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_picojpeg.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_picojpeg.cc.o.d"
  "/root/repo/src/workloads/asm_qsort.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_qsort.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_qsort.cc.o.d"
  "/root/repo/src/workloads/asm_stringsearch.cc" "src/CMakeFiles/nvmr.dir/workloads/asm_stringsearch.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/asm_stringsearch.cc.o.d"
  "/root/repo/src/workloads/golden.cc" "src/CMakeFiles/nvmr.dir/workloads/golden.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/golden.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/CMakeFiles/nvmr.dir/workloads/workloads.cc.o" "gcc" "src/CMakeFiles/nvmr.dir/workloads/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Tests for the lockstep invariant layer (src/check): the structural
 * deep checker as a property test over >= 10k randomized renames, the
 * event-driven InvariantSink on synthetic streams, full checked runs
 * that must stay clean, the seeded mutation bugs that must be caught,
 * and bit-identity of simulation stats with the checker attached.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/runner.hh"
#include "common/xorshift.hh"
#include "core/freelist.hh"
#include "core/maptable.hh"
#include "core/mtcache.hh"
#include "isa/assembler.hh"
#include "mem/nvm.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

// ----------------------------------------------------------------------
// deepCheckNvmr property test: drive the real renaming structures
// through >= 10k renames with randomized commit and reclaim order and
// assert the deep checker stays silent at every consistent point.
// ----------------------------------------------------------------------

struct DeepCheckProperty : public ::testing::Test
{
    static constexpr Addr kReservedBase = 0x10000;
    static constexpr uint32_t kBlock = 16;
    static constexpr uint32_t kReservedCount = 32;
    static constexpr uint32_t kTags = 48;

    TechParams tech;
    NullEnergySink sink;
    MapTable mt{64, tech, sink};
    FreeList fl{kReservedCount, tech, sink};
    MapTableCache mtc{16, 4, tech, sink};

    /** Uncommitted renames: tag -> popped fresh location. */
    std::unordered_map<Addr, Addr> pending;

    void SetUp() override
    {
        fl.initFill(kReservedBase, kBlock, kReservedCount);
    }

    Addr tagAt(uint32_t i) const { return 0x1000 + i * kBlock; }

    std::unordered_set<Addr>
    inFlight() const
    {
        std::unordered_set<Addr> s;
        for (const auto &[tag, fresh] : pending)
            s.insert(fresh);
        return s;
    }

    std::vector<std::string>
    check(bool committed)
    {
        auto fly = inFlight();
        return deepCheckNvmr(mt, fl, mtc, kReservedBase, kBlock,
                             kReservedCount, /*require_mtc_clean=*/true,
                             committed ? nullptr : &fly);
    }

    /** Commit one pending rename: durable map entry + retire the old
     *  mapping to the free list (the NvMR backup-flush protocol). */
    void
    commit(Addr tag)
    {
        auto it = pending.find(tag);
        ASSERT_NE(it, pending.end());
        auto old = mt.peek(tag);
        mt.set(tag, it->second);
        if (old && *old != tag && *old >= kReservedBase)
            fl.push(*old);
        pending.erase(it);
    }
};

TEST_F(DeepCheckProperty, TenThousandRandomizedRenamesStayClean)
{
    XorShift rng(20260807);
    uint64_t renames = 0;
    uint64_t checks = 0;

    while (renames < 10000) {
        uint64_t roll = rng.next() % 100;
        if (roll < 55) {
            // Start a rename for a tag without one in flight.
            Addr tag = tagAt(rng.next() % kTags);
            if (!pending.count(tag) && !fl.empty() &&
                mt.hasRoomFor(tag)) {
                pending[tag] = fl.pop();
                ++renames;
            }
        } else if (roll < 80) {
            // Commit a random in-flight rename.
            if (!pending.empty()) {
                uint64_t pick = rng.next() % pending.size();
                auto it = pending.begin();
                std::advance(it, pick);
                commit(it->first);
            }
        } else {
            // Reclaim a random committed entry (randomized eviction
            // order: any mapped tag, not just the LRU victim).
            std::vector<Addr> mapped;
            mt.forEach([&](Addr tag, Addr) {
                if (!pending.count(tag))
                    mapped.push_back(tag);
            });
            if (!mapped.empty()) {
                Addr tag = mapped[rng.next() % mapped.size()];
                auto mapping = mt.peek(tag);
                ASSERT_TRUE(mapping.has_value());
                mt.erase(tag);
                if (*mapping != tag && *mapping >= kReservedBase)
                    fl.push(*mapping);
            }
        }

        // Mid-interval consistency: in-flight pops excused.
        if (renames % 64 == 0) {
            auto lines = check(/*committed=*/false);
            ASSERT_TRUE(lines.empty())
                << "after " << renames << " renames: " << lines[0];
            ++checks;
        }

        // Occasionally drain to a fully committed state and run the
        // strict (no-excuses) audit.
        if (rng.next() % 512 == 0) {
            while (!pending.empty())
                commit(pending.begin()->first);
            auto lines = check(/*committed=*/true);
            ASSERT_TRUE(lines.empty())
                << "committed state after " << renames
                << " renames: " << lines[0];
            ++checks;
        }
    }

    while (!pending.empty())
        commit(pending.begin()->first);
    auto lines = check(/*committed=*/true);
    EXPECT_TRUE(lines.empty());
    EXPECT_GE(renames, 10000u);
    EXPECT_GT(checks, 100u);
}

TEST_F(DeepCheckProperty, LeakedSlotIsReported)
{
    (void)fl.pop(); // popped and never committed nor returned
    auto lines = check(/*committed=*/true);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("leaked"), std::string::npos);

    // The same state is legal mid-interval when the pop is a known
    // in-flight rename.
    pending[tagAt(0)] = kReservedBase;
    EXPECT_TRUE(check(/*committed=*/false).empty());
}

TEST_F(DeepCheckProperty, AliasedMappingIsReported)
{
    Addr slot = fl.pop();
    mt.set(tagAt(0), slot);
    mt.set(tagAt(1), slot);
    auto lines = check(/*committed=*/true);
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find("aliases"), std::string::npos);
}

TEST_F(DeepCheckProperty, DoubleFreeIsReported)
{
    Addr slot = fl.pop();
    (void)fl.pop(); // keep the list under capacity for both pushes
    fl.push(slot);
    fl.push(slot);
    bool found = false;
    for (const auto &l : check(/*committed=*/true))
        found |= l.find("twice") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(DeepCheckProperty, FreeWhileMappedIsReported)
{
    Addr slot = fl.pop();
    mt.set(tagAt(0), slot);
    fl.push(slot); // retired to the free list while still mapped
    bool found = false;
    for (const auto &l : check(/*committed=*/true))
        found |= l.find("also a live mapping") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(DeepCheckProperty, AppBlockOnFreeListNeedsRenameEntry)
{
    (void)fl.pop();
    fl.push(0x100); // app home freed without a rename entry for it
    bool found = false;
    for (const auto &l : check(/*committed=*/true))
        found |= l.find("no rename entry") != std::string::npos;
    EXPECT_TRUE(found);

    // With the entry present the same shape is legal.
    Addr slot = fl.pop();
    ASSERT_EQ(slot, kReservedBase + kBlock); // 0x100 is FIFO-last
    mt.set(0x100, slot);
    for (const auto &l : check(/*committed=*/true))
        EXPECT_EQ(l.find("no rename entry"), std::string::npos) << l;
}

// ----------------------------------------------------------------------
// InvariantSink on synthetic event streams: each checker must fire on
// exactly the stream shape it guards against, and stay quiet on the
// legal variants.
// ----------------------------------------------------------------------

struct SyntheticSink : public ::testing::Test
{
    SystemConfig cfg = SystemConfig::smallPlatform();
    NullEnergySink es;
    Nvm nvm{cfg.nvmBytes, cfg.tech, es};
    std::unique_ptr<IntermittentArch> arch =
        makeArch(ArchKind::Clank, cfg, nvm, es);
    InvariantSink sink{*arch, cfg};

    void
    emit(EventKind kind, uint64_t a0 = 0, uint64_t a1 = 0,
         uint64_t cycle = 100)
    {
        sink.recordAt(cycle, cycle, kind, a0, a1);
    }

    bool
    flagged(const char *checker) const
    {
        for (const auto &v : sink.violations())
            if (v.checker == checker)
                return true;
        return false;
    }
};

TEST_F(SyntheticSink, GbfFalseNegativeFlagged)
{
    emit(EventKind::GbfInsert, 0x200);
    emit(EventKind::GbfQuery, 0x200, /*hit=*/1);
    EXPECT_TRUE(sink.clean());
    emit(EventKind::GbfQuery, 0x200, /*hit=*/0, 123);
    ASSERT_TRUE(flagged("gbf_soundness"));
    EXPECT_EQ(sink.violations().front().cycle, 123u);
    // A false positive on a never-inserted block is legal.
    emit(EventKind::GbfQuery, 0x999, /*hit=*/1);
    EXPECT_EQ(sink.totalViolations(), 1u);
}

TEST_F(SyntheticSink, GbfShadowClearedByResetAndPowerFail)
{
    emit(EventKind::GbfInsert, 0x200);
    emit(EventKind::DominanceReset);
    emit(EventKind::GbfQuery, 0x200, /*hit=*/0);
    EXPECT_TRUE(sink.clean());

    emit(EventKind::GbfInsert, 0x300);
    emit(EventKind::PowerFail);
    emit(EventKind::Restore, 0, /*seq=*/0);
    emit(EventKind::GbfQuery, 0x300, /*hit=*/0);
    EXPECT_TRUE(sink.clean());
}

TEST_F(SyntheticSink, CommitSequenceMustAdvanceByOne)
{
    emit(EventKind::BackupCommit, 0, 1);
    emit(EventKind::BackupCommit, 0, 2);
    EXPECT_TRUE(sink.clean());
    emit(EventKind::BackupCommit, 0, 4); // skipped 3
    EXPECT_TRUE(flagged("backup_monotonicity"));
}

TEST_F(SyntheticSink, RestoreMayRepeatButNeverGoBackward)
{
    emit(EventKind::BackupCommit, 0, 1);
    emit(EventKind::BackupCommit, 0, 2);
    emit(EventKind::PowerFail);
    emit(EventKind::Restore, 0, 2); // same sequence: legal
    // Commit event lost to the crash but the backup was durable:
    // restoring one past the last *observed* commit is legal too.
    emit(EventKind::PowerFail);
    emit(EventKind::Restore, 0, 3);
    EXPECT_TRUE(sink.clean());
    emit(EventKind::PowerFail);
    emit(EventKind::Restore, 0, 1); // committed progress lost
    EXPECT_TRUE(flagged("backup_monotonicity"));
}

TEST_F(SyntheticSink, RollbackOfNonCurrentSequenceFlagged)
{
    emit(EventKind::BackupCommit, 0, 1);
    emit(EventKind::BackupRollback, 0, 2); // dropping the next: legal
    EXPECT_TRUE(sink.clean());
    emit(EventKind::BackupRollback, 0, 5);
    EXPECT_TRUE(flagged("backup_monotonicity"));
}

TEST_F(SyntheticSink, WarReadThenCommittedWriteFlagged)
{
    // CPU reads 4 bytes at 0x400, then the recovery image under them
    // changes during execution: a WAR violation.
    emit(EventKind::MemAccess, 0x400, (0u << 8) | 4);
    emit(EventKind::NvmWrite, 0x400, 0xf, 200);
    ASSERT_TRUE(flagged("war_freedom"));
    EXPECT_EQ(sink.violations().front().cycle, 200u);
}

TEST_F(SyntheticSink, WriteDominatedBytesAreSafe)
{
    emit(EventKind::MemAccess, 0x400, (1u << 8) | 4); // store first
    emit(EventKind::NvmWrite, 0x400, 0xf);
    EXPECT_TRUE(sink.clean());
}

TEST_F(SyntheticSink, BackupEpochWritesAreExempt)
{
    emit(EventKind::MemAccess, 0x400, (0u << 8) | 4);
    emit(EventKind::BackupBegin);
    emit(EventKind::NvmWrite, 0x400, 0xf); // backup machinery
    EXPECT_TRUE(sink.clean());
    // Commit clears the interval: the old read no longer taints.
    emit(EventKind::BackupCommit, 0, 1);
    emit(EventKind::NvmWrite, 0x400, 0xf);
    EXPECT_TRUE(sink.clean());
}

TEST_F(SyntheticSink, RenameAliasingFlaggedEagerly)
{
    emit(EventKind::Rename, /*tag=*/0x100, /*fresh=*/0x8000);
    EXPECT_TRUE(sink.clean());
    emit(EventKind::Rename, /*tag=*/0x200, /*fresh=*/0x8000);
    EXPECT_TRUE(flagged("rename_aliasing"));
}

TEST_F(SyntheticSink, IdealArchitectureSkipsWarChecking)
{
    std::unique_ptr<IntermittentArch> ideal =
        makeArch(ArchKind::Ideal, cfg, nvm, es);
    InvariantSink is(*ideal, cfg);
    is.recordAt(1, 1, EventKind::MemAccess, 0x400, (0u << 8) | 4);
    is.recordAt(2, 2, EventKind::NvmWrite, 0x400, 0xf);
    EXPECT_TRUE(is.clean());
}

// ----------------------------------------------------------------------
// Full checked runs: clean architectures stay clean (with and without
// crash schedules); the seeded mutation bugs are caught and correctly
// classified.
// ----------------------------------------------------------------------

CheckCase
smallCase(ArchKind arch, PolicyKind policy, double farads,
          uint64_t seed)
{
    CheckCase c;
    c.name = std::string(archKindName(arch)) + "-t" +
             std::to_string(seed);
    c.arch = arch;
    c.policy = policy;
    c.farads = farads;
    c.traceSeed = 40000 + seed;
    c.programText = makeRandomProgram(seed);
    c.programSeed = seed;
    return c;
}

TEST(CheckedRun, CleanAcrossArchitectures)
{
    for (ArchKind arch : {ArchKind::Nvmr, ArchKind::Clank,
                          ArchKind::Hoop, ArchKind::Ideal}) {
        CheckCase c = smallCase(arch, PolicyKind::Jit, 0.1, 11);
        CheckOutcome out = runChecked(c);
        EXPECT_TRUE(out.clean())
            << archKindName(arch) << ": " << out.describe() << "\n"
            << out.detail();
    }
}

TEST(CheckedRun, CleanUnderCrashSchedule)
{
    CheckCase c =
        smallCase(ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, 12);
    c.faults.enabled = true;
    c.faults.seed = 12;
    c.faults.crashPersists = {40, 180, 600};
    c.faults.crashCycles = {25000};
    CheckOutcome out = runChecked(c);
    EXPECT_TRUE(out.clean()) << out.describe() << "\n" << out.detail();
    EXPECT_GT(out.run.injectedCrashes, 0u);
}

TEST(CheckedRun, SeededRenameAliasCaught)
{
    CheckCase c = smallCase(ArchKind::Nvmr, PolicyKind::Jit, 0.1, 1);
    c.injectedBug = InjectedBug::RenameAlias;
    CheckOutcome out = runChecked(c);
    ASSERT_FALSE(out.clean());
    ASSERT_GT(out.totalViolations, 0u);
    bool eager = false;
    for (const auto &v : out.violations)
        eager |= v.checker == "rename_aliasing" && v.cycle > 0;
    EXPECT_TRUE(eager) << out.detail();
}

TEST(CheckedRun, SeededFreeListLeakCaught)
{
    CheckCase c =
        smallCase(ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, 1);
    c.injectedBug = InjectedBug::FreeListLeak;
    CheckOutcome out = runChecked(c);
    ASSERT_FALSE(out.clean());
    ASSERT_GT(out.totalViolations, 0u);
    bool leak = false;
    for (const auto &v : out.violations)
        leak |= v.checker == "freelist_conservation" && v.cycle > 0;
    EXPECT_TRUE(leak) << out.detail();
}

// ----------------------------------------------------------------------
// Checking must not perturb the simulation: a checked run and an
// identically configured unchecked run produce bit-identical stats.
// ----------------------------------------------------------------------

TEST(CheckedRun, StatsBitIdenticalToUncheckedRun)
{
    CheckCase c =
        smallCase(ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, 2);
    c.faults.enabled = true;
    c.faults.seed = 2;
    c.faults.crashPersists = {90, 400};
    CheckOutcome out = runChecked(c);
    ASSERT_TRUE(out.run.completed);

    // Mirror runChecked's configuration exactly, minus the sink.
    Program prog = assemble(c.name, c.programText);
    SystemConfig cfg = SystemConfig::smallPlatform();
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    PolicySpec spec;
    spec.kind = c.policy;
    spec.watchdogPeriod = 300;
    auto policy = makePolicy(spec);
    HarvestTrace trace(c.traceKind, c.traceSeed, c.traceMeanMw);
    RunOptions opts;
    opts.maxCycles = c.maxCycles;
    opts.faults = c.faults;
    opts.validate = false;
    Simulator sim(prog, c.arch, cfg, *policy, trace, opts);
    RunResult bare = sim.run();

    EXPECT_EQ(out.run.completed, bare.completed);
    EXPECT_EQ(out.run.activeCycles, bare.activeCycles);
    EXPECT_EQ(out.run.totalCycles, bare.totalCycles);
    EXPECT_EQ(out.run.instructions, bare.instructions);
    EXPECT_EQ(out.run.totalEnergyNj, bare.totalEnergyNj);
    EXPECT_EQ(out.run.backups, bare.backups);
    EXPECT_EQ(out.run.violations, bare.violations);
    EXPECT_EQ(out.run.renames, bare.renames);
    EXPECT_EQ(out.run.reclaims, bare.reclaims);
    EXPECT_EQ(out.run.restores, bare.restores);
    EXPECT_EQ(out.run.powerFailures, bare.powerFailures);
    EXPECT_EQ(out.run.nvmReads, bare.nvmReads);
    EXPECT_EQ(out.run.nvmWrites, bare.nvmWrites);
    EXPECT_EQ(out.run.maxWear, bare.maxWear);
    EXPECT_EQ(out.run.cacheHits, bare.cacheHits);
    EXPECT_EQ(out.run.cacheMisses, bare.cacheMisses);
    EXPECT_EQ(out.run.injectedCrashes, bare.injectedCrashes);
    EXPECT_EQ(out.run.tornBackups, bare.tornBackups);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Unit tests for the backup policies: JIT threshold behaviour,
 * watchdog periods, Spendthrift polling/cooldown and the factory.
 */

#include <gtest/gtest.h>

#include "power/policy.hh"

namespace nvmr
{
namespace
{

PolicyContext
ctxWith(const Capacitor &cap, Cycles active, Cycles since_backup,
        Cycles since_resume, NanoJoules cost, double harvest)
{
    return PolicyContext{cap, active, since_backup, since_resume,
                         cost, harvest};
}

TEST(JitPolicy, FiresOnlyWhenEnergyIsScarce)
{
    Capacitor cap(0.1);
    JitPolicy jit(1.5, 50.0);
    // Full capacitor: plenty of usable energy.
    EXPECT_FALSE(
        jit.shouldBackup(ctxWith(cap, 0, 0, 0, 500.0, 5.0)));
    // Just above the brown-out voltage: usable energy ~ 0.
    cap.setVoltage(1.8001);
    EXPECT_TRUE(
        jit.shouldBackup(ctxWith(cap, 0, 0, 0, 500.0, 5.0)));
}

TEST(JitPolicy, ThresholdScalesWithBackupCost)
{
    Capacitor cap(0.1);
    JitPolicy jit(1.5, 0.0);
    // Find a voltage where a cheap backup does not fire but an
    // expensive one does.
    cap.setVoltage(1.85);
    NanoJoules usable = cap.usableNj();
    EXPECT_FALSE(jit.shouldBackup(
        ctxWith(cap, 0, 0, 0, usable / 3.0, 5.0)));
    EXPECT_TRUE(jit.shouldBackup(
        ctxWith(cap, 0, 0, 0, usable, 5.0)));
}

TEST(JitPolicy, HibernatesAfterBackup)
{
    JitPolicy jit;
    EXPECT_TRUE(jit.hibernateAfterBackup());
}

TEST(WatchdogPolicy, FiresEveryPeriod)
{
    Capacitor cap(0.1);
    WatchdogPolicy wd(8000);
    EXPECT_FALSE(
        wd.shouldBackup(ctxWith(cap, 7999, 7999, 0, 0, 0)));
    EXPECT_TRUE(
        wd.shouldBackup(ctxWith(cap, 8000, 8000, 0, 0, 0)));
    EXPECT_FALSE(
        wd.shouldBackup(ctxWith(cap, 9000, 100, 0, 0, 0)));
    EXPECT_FALSE(wd.hibernateAfterBackup());
}

TEST(SpendthriftPolicy, PollsAtItsPeriodOnly)
{
    // Train a model that always fires (label 1 everywhere).
    SpendthriftModel model;
    std::vector<SpendthriftSample> samples;
    for (float v = 1.8f; v < 2.4f; v += 0.05f)
        samples.push_back({5.0f, v, 1.0f});
    model.train(samples, 80);

    Capacitor cap(0.1);
    SpendthriftPolicy pol(model, 64, 0);
    EXPECT_TRUE(pol.shouldBackup(ctxWith(cap, 64, 64, 64, 0, 5)));
    // Within the same poll window: no evaluation.
    EXPECT_FALSE(pol.shouldBackup(ctxWith(cap, 100, 100, 100, 0, 5)));
    // Next window: fires again.
    EXPECT_TRUE(pol.shouldBackup(ctxWith(cap, 128, 128, 128, 0, 5)));
}

TEST(SpendthriftPolicy, ResumeCooldownSuppressesRefire)
{
    SpendthriftModel model;
    std::vector<SpendthriftSample> samples;
    for (float v = 1.8f; v < 2.4f; v += 0.05f)
        samples.push_back({5.0f, v, 1.0f});
    model.train(samples, 80);

    Capacitor cap(0.1);
    SpendthriftPolicy pol(model, 64, 512);
    // Just resumed (cyclesSinceResume < cooldown): suppressed.
    EXPECT_FALSE(pol.shouldBackup(ctxWith(cap, 64, 64, 64, 0, 5)));
    EXPECT_TRUE(pol.shouldBackup(ctxWith(cap, 640, 640, 640, 0, 5)));
}

TEST(SpendthriftPolicy, LearnsVoltageThreshold)
{
    // Labels: fire iff the capacitor is nearly empty.
    SpendthriftModel model;
    std::vector<SpendthriftSample> samples;
    for (int i = 0; i < 400; ++i) {
        float v = 1.8f + 0.6f * (i % 100) / 100.0f;
        samples.push_back({8.0f, v, v < 1.9f ? 1.0f : 0.0f});
    }
    model.train(samples, 60);

    Capacitor cap(0.1);
    SpendthriftPolicy pol(model, 64, 0);
    cap.setVoltage(1.85);
    EXPECT_TRUE(pol.shouldBackup(ctxWith(cap, 64, 64, 64, 0, 8)));
    pol.reset();
    cap.setVoltage(2.35);
    EXPECT_FALSE(pol.shouldBackup(ctxWith(cap, 64, 64, 64, 0, 8)));
}

TEST(PolicyFactory, BuildsEachKind)
{
    PolicySpec jit;
    jit.kind = PolicyKind::Jit;
    EXPECT_STREQ(makePolicy(jit)->name(), "jit");

    PolicySpec wd;
    wd.kind = PolicyKind::Watchdog;
    wd.watchdogPeriod = 1234;
    EXPECT_STREQ(makePolicy(wd)->name(), "watchdog");

    SpendthriftModel model;
    PolicySpec st;
    st.kind = PolicyKind::Spendthrift;
    st.model = &model;
    EXPECT_STREQ(makePolicy(st)->name(), "spendthrift");
}

TEST(PolicyNames, Stable)
{
    EXPECT_STREQ(policyKindName(PolicyKind::Jit), "jit");
    EXPECT_STREQ(policyKindName(PolicyKind::Watchdog), "watchdog");
    EXPECT_STREQ(policyKindName(PolicyKind::Spendthrift),
                 "spendthrift");
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests for the crash-safe campaign layer: watchdog budget-doubling
 * retries and quarantine, journaled-cell resume (including resumed
 * quarantine records), the rule that tool-level failures are never
 * journaled, config-hash / tool-name resume refusals, graceful
 * journal degradation, interrupt skipping, and the exit-code ladder.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/sig.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"

namespace nvmr::campaign
{
namespace
{

std::string
tempJournal(const std::string &name)
{
    std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    return path;
}

Options
journalOpts(const std::string &path, bool resume = false)
{
    Options o;
    o.journalPath = path;
    o.resume = resume;
    return o;
}

TEST(Campaign, WatchdogDoublesBudgetThenQuarantines)
{
    Options o;
    o.watchdogCycles = 100;
    o.watchdogRetries = 2;
    Campaign cam("t", "spec", o);

    std::mutex mu;
    std::vector<uint64_t> budgets;
    auto cells = cam.runStage(
        "s", 1,
        [&](const CellContext &ctx) -> std::optional<std::string> {
            std::lock_guard<std::mutex> lock(mu);
            budgets.push_back(ctx.budgetCycles);
            throw CellTimeout{"still spinning"};
        });

    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].status, CellStatus::Quarantined);
    EXPECT_EQ(cells[0].attempts, 3u);
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(budgets[0], 100u);
    EXPECT_EQ(budgets[1], 200u);
    EXPECT_EQ(budgets[2], 400u);

    ASSERT_EQ(cam.quarantined().size(), 1u);
    EXPECT_EQ(cam.quarantined()[0].stage, "s");
    EXPECT_EQ(cam.quarantined()[0].reason, "still spinning");

    // Quarantine degrades a clean exit but never masks a mismatch.
    EXPECT_EQ(cam.exitCode(kExitOk), kExitDegraded);
    EXPECT_EQ(cam.exitCode(kExitMismatch), kExitMismatch);
}

TEST(Campaign, WatchdogRetrySucceedsWithDoubledBudget)
{
    Options o;
    o.watchdogCycles = 1000;
    o.watchdogRetries = 2;
    Campaign cam("t", "spec", o);

    auto cells = cam.runStage(
        "s", 1,
        [&](const CellContext &ctx) -> std::optional<std::string> {
            if (ctx.attempt == 0)
                throw CellTimeout{"too slow"};
            EXPECT_EQ(ctx.budgetCycles, 2000u);
            return std::string("done");
        });

    EXPECT_EQ(cells[0].status, CellStatus::Done);
    EXPECT_EQ(cells[0].attempts, 2u);
    EXPECT_EQ(cells[0].payload, "done");
    EXPECT_TRUE(cam.quarantined().empty());
    EXPECT_EQ(cam.exitCode(kExitOk), kExitOk);
}

TEST(Campaign, ResumeServesJournaledCellsWithoutRerunning)
{
    std::string path = tempJournal("campaign_resume.jrn");
    std::atomic<int> invocations{0};
    auto body = [&](const CellContext &ctx)
        -> std::optional<std::string> {
        ++invocations;
        return "cell" + std::to_string(ctx.index);
    };

    {
        Campaign cam("t", "spec", journalOpts(path));
        auto cells = cam.runStage("s", 4, body);
        EXPECT_EQ(invocations.load(), 4);
        for (const auto &c : cells)
            EXPECT_EQ(c.status, CellStatus::Done);
    }

    invocations = 0;
    Campaign cam("t", "spec", journalOpts(path, true));
    auto cells = cam.runStage("s", 4, body);
    EXPECT_EQ(invocations.load(), 0);
    EXPECT_EQ(cam.resumedCells(), 4u);
    for (uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(cells[i].status, CellStatus::Done);
        EXPECT_TRUE(cells[i].fromJournal);
        EXPECT_EQ(cells[i].payload, "cell" + std::to_string(i));
        EXPECT_TRUE(cam.cellDone("s", i));
    }
    EXPECT_EQ(cam.exitCode(kExitOk), kExitOk);
}

TEST(Campaign, FailedCellsAreNotJournaledSoResumeRerunsThem)
{
    std::string path = tempJournal("campaign_failed.jrn");
    std::atomic<int> invocations{0};
    auto body = [&](const CellContext &ctx)
        -> std::optional<std::string> {
        ++invocations;
        if (ctx.index == 1)
            return std::nullopt; // tool-level failure (e.g. mismatch)
        return "ok";
    };

    {
        Campaign cam("t", "spec", journalOpts(path));
        auto cells = cam.runStage("s", 3, body);
        EXPECT_EQ(cells[1].status, CellStatus::Failed);
    }

    // Only the failing cell runs again: the failure must be
    // reproduced, not papered over by a checkpoint.
    invocations = 0;
    Campaign cam("t", "spec", journalOpts(path, true));
    auto cells = cam.runStage("s", 3, body);
    EXPECT_EQ(invocations.load(), 1);
    EXPECT_EQ(cells[0].status, CellStatus::Done);
    EXPECT_TRUE(cells[0].fromJournal);
    EXPECT_EQ(cells[1].status, CellStatus::Failed);
    EXPECT_FALSE(cells[1].fromJournal);
    EXPECT_FALSE(cam.cellDone("s", 1));
}

TEST(Campaign, ResumeServesQuarantineRecords)
{
    std::string path = tempJournal("campaign_requarantine.jrn");
    {
        Options o = journalOpts(path);
        o.watchdogCycles = 10;
        o.watchdogRetries = 1;
        Campaign cam("t", "spec", o);
        cam.runStage("s", 1,
                     [&](const CellContext &)
                         -> std::optional<std::string> {
                         throw CellTimeout{"poison"};
                     });
        ASSERT_EQ(cam.quarantined().size(), 1u);
    }

    // The resume must not re-run the poison cell -- that is the whole
    // point of quarantining it durably.
    Campaign cam("t", "spec", journalOpts(path, true));
    auto cells = cam.runStage(
        "s", 1,
        [&](const CellContext &) -> std::optional<std::string> {
            ADD_FAILURE() << "quarantined cell was re-run";
            return std::nullopt;
        });
    EXPECT_EQ(cells[0].status, CellStatus::Quarantined);
    EXPECT_TRUE(cells[0].fromJournal);
    EXPECT_EQ(cells[0].attempts, 2u);
    EXPECT_EQ(cells[0].payload, "poison");
    ASSERT_EQ(cam.quarantined().size(), 1u);
    EXPECT_EQ(cam.quarantined()[0].reason, "poison");
    EXPECT_EQ(cam.exitCode(kExitOk), kExitDegraded);
}

TEST(Campaign, QuarantineJsonListsCells)
{
    Options o;
    o.watchdogCycles = 10;
    o.watchdogRetries = 0;
    Campaign cam("t", "spec", o);
    cam.runStage("grid", 1,
                 [&](const CellContext &)
                     -> std::optional<std::string> {
                     throw CellTimeout{"hung"};
                 });
    std::string json = cam.quarantineJson(
        [](const QuarantineEntry &q) {
            return "cell-" + std::to_string(q.index);
        });
    EXPECT_EQ(json,
              "[{\"stage\":\"grid\",\"index\":0,"
              "\"cell\":\"cell-0\",\"attempts\":1,"
              "\"reason\":\"hung\"}]");
}

TEST(CampaignDeathTest, ResumeRefusesConfigHashMismatch)
{
    std::string path = tempJournal("campaign_confhash.jrn");
    {
        Campaign cam("t", "spec-a", journalOpts(path));
        cam.runStage("s", 1,
                     [](const CellContext &)
                         -> std::optional<std::string> {
                         return "x";
                     });
    }
    EXPECT_EXIT(Campaign("t", "spec-b", journalOpts(path, true)),
                testing::ExitedWithCode(kExitUsage),
                "config hash");
}

TEST(CampaignDeathTest, ResumeRefusesOtherToolsJournal)
{
    std::string path = tempJournal("campaign_tool.jrn");
    { Campaign cam("nvmr_sweep", "spec", journalOpts(path)); }
    EXPECT_EXIT(
        Campaign("nvmr_fuzz", "spec", journalOpts(path, true)),
        testing::ExitedWithCode(kExitUsage), "written by nvmr_sweep");
}

TEST(CampaignDeathTest, ResumeRefusesMissingJournal)
{
    std::string path = tempJournal("campaign_missing.jrn");
    EXPECT_EXIT(Campaign("t", "spec", journalOpts(path, true)),
                testing::ExitedWithCode(kExitUsage), "cannot resume");
}

TEST(Campaign, UnwritableJournalDegradesInsteadOfAborting)
{
    // A journal path in a directory that does not exist: the first
    // write fails, the campaign keeps computing, and the clean exit
    // is upgraded to kExitDegraded.
    Options o = journalOpts(testing::TempDir() +
                            "/no_such_dir_nvmr/campaign.jrn");
    Campaign cam("t", "spec", o);
    auto cells = cam.runStage(
        "s", 2,
        [](const CellContext &) -> std::optional<std::string> {
            return "computed anyway";
        });
    EXPECT_EQ(cells[0].status, CellStatus::Done);
    EXPECT_EQ(cells[1].status, CellStatus::Done);
    EXPECT_TRUE(cam.journalDegraded());
    EXPECT_FALSE(cam.journalError().empty());
    EXPECT_EQ(cam.exitCode(kExitOk), kExitDegraded);
    EXPECT_EQ(cam.exitCode(kExitMismatch), kExitMismatch);
}

TEST(Campaign, InterruptSkipsCellsAndSetsSignalExitCode)
{
    setInterruptForTest(SIGINT);
    Options o;
    Campaign cam("t", "spec", o);
    std::atomic<int> invocations{0};
    auto cells = cam.runStage(
        "s", 3,
        [&](const CellContext &) -> std::optional<std::string> {
            ++invocations;
            return "x";
        });
    EXPECT_TRUE(cam.interrupted());
    EXPECT_EQ(invocations.load(), 0);
    for (const auto &c : cells)
        EXPECT_EQ(c.status, CellStatus::Skipped);
    EXPECT_EQ(cam.exitCode(kExitOk), kExitSignalBase + SIGINT);
    setInterruptForTest(0);
    EXPECT_FALSE(cam.interrupted());
}

} // namespace
} // namespace nvmr::campaign

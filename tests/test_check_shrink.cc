/**
 * @file
 * Tests for the failing-case pipeline: `.repro` round-tripping, the
 * delta-debugging shrinker, and the end-to-end acceptance story --
 * a seeded bug is caught by the checked harness, shrunk to a minimal
 * case, saved, reloaded, and still fails on replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "check/runner.hh"
#include "check/shrink.hh"
#include "sim/randprog.hh"

namespace nvmr
{
namespace
{

CheckCase
fullyPopulatedCase()
{
    CheckCase c;
    c.name = "roundtrip";
    c.arch = ArchKind::Hoop;
    c.policy = PolicyKind::Watchdog;
    c.farads = 500e-6;
    c.byteLbf = true;
    c.injectedBug = InjectedBug::RenameAlias;
    c.traceKind = TraceKind::Wind;
    c.traceSeed = 123;
    c.traceMeanMw = 3.25;
    c.maxCycles = 12345678;
    c.faults.enabled = true;
    c.faults.seed = 9;
    c.faults.crashAtPersist = 77;
    c.faults.crashAtCycle = 88;
    c.faults.crashPersists = {5, 6, 9000};
    c.faults.crashCycles = {7};
    c.faults.transientBitErrorRate = 2e-5;
    c.faults.doubleBitFraction = 0.125;
    c.faults.maxReadRetries = 6;
    c.programText = "main:\n        li   r1, 0\n        halt\n";
    c.programSeed = 4;
    return c;
}

TEST(Repro, RoundTripPreservesEveryField)
{
    CheckCase c = fullyPopulatedCase();
    std::istringstream is(formatRepro(c));
    CheckCase back;
    std::string error;
    ASSERT_TRUE(parseRepro(is, back, error)) << error;

    EXPECT_EQ(back.name, c.name);
    EXPECT_EQ(back.arch, c.arch);
    EXPECT_EQ(back.policy, c.policy);
    EXPECT_EQ(back.farads, c.farads);
    EXPECT_EQ(back.byteLbf, c.byteLbf);
    EXPECT_EQ(back.injectedBug, c.injectedBug);
    EXPECT_EQ(back.traceKind, c.traceKind);
    EXPECT_EQ(back.traceSeed, c.traceSeed);
    EXPECT_EQ(back.traceMeanMw, c.traceMeanMw);
    EXPECT_EQ(back.maxCycles, c.maxCycles);
    EXPECT_EQ(back.faults.enabled, c.faults.enabled);
    EXPECT_EQ(back.faults.seed, c.faults.seed);
    EXPECT_EQ(back.faults.crashAtPersist, c.faults.crashAtPersist);
    EXPECT_EQ(back.faults.crashAtCycle, c.faults.crashAtCycle);
    EXPECT_EQ(back.faults.crashPersists, c.faults.crashPersists);
    EXPECT_EQ(back.faults.crashCycles, c.faults.crashCycles);
    EXPECT_EQ(back.faults.transientBitErrorRate,
              c.faults.transientBitErrorRate);
    EXPECT_EQ(back.faults.doubleBitFraction,
              c.faults.doubleBitFraction);
    EXPECT_EQ(back.faults.maxReadRetries, c.faults.maxReadRetries);
    EXPECT_EQ(back.programText, c.programText);
    EXPECT_EQ(back.programSeed, c.programSeed);
}

TEST(Repro, DefaultsAreOmittedButRestored)
{
    CheckCase c; // all defaults
    c.programText = "main:\n        halt\n";
    std::string text = formatRepro(c);
    EXPECT_EQ(text.find("injected_bug"), std::string::npos);
    EXPECT_EQ(text.find("crash_at_persist"), std::string::npos);
    EXPECT_EQ(text.find("double_bit_fraction"), std::string::npos);

    std::istringstream is(text);
    CheckCase back;
    std::string error;
    ASSERT_TRUE(parseRepro(is, back, error)) << error;
    EXPECT_EQ(back.injectedBug, InjectedBug::None);
    EXPECT_EQ(back.faults.doubleBitFraction, 0.05);
    EXPECT_EQ(back.faults.maxReadRetries, 2u);
}

TEST(Repro, UnknownKeyAndBadHeaderRejected)
{
    CheckCase out;
    std::string error;

    std::istringstream bad_key(
        "# nvmr-repro-v1\nbogus_key 1\nprogram 1\nmain: halt\n");
    EXPECT_FALSE(parseRepro(bad_key, out, error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);

    std::istringstream bad_header("# not-a-repro\n");
    EXPECT_FALSE(parseRepro(bad_header, out, error));

    std::istringstream truncated(
        "# nvmr-repro-v1\nname x\nprogram 5\nmain: halt\n");
    EXPECT_FALSE(parseRepro(truncated, out, error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(Shrink, CleanCaseIsReportedNotShrunk)
{
    CheckCase c;
    c.name = "clean";
    c.arch = ArchKind::Nvmr;
    c.policy = PolicyKind::Jit;
    c.farads = 0.1;
    c.traceSeed = 40011;
    c.programText = makeRandomProgram(11);
    c.programSeed = 11;
    ShrinkResult r = shrinkCase(c, /*max_runs=*/10);
    EXPECT_FALSE(r.verifiedFailing);
    EXPECT_GE(r.runsUsed, 1u);
}

/**
 * The acceptance-criteria story: seed a rename-aliasing bug, let the
 * checked harness catch it, shrink away a decoy crash schedule and
 * most of the program, save the minimal `.repro`, reload it, and
 * confirm the minimized case still fails.
 */
TEST(Shrink, SeededBugShrinksToMinimalReplayableRepro)
{
    CheckCase c;
    c.name = "alias";
    c.arch = ArchKind::Nvmr;
    c.policy = PolicyKind::Jit;
    c.farads = 0.1;
    c.injectedBug = InjectedBug::RenameAlias;
    c.traceSeed = 40001;
    c.programText = makeRandomProgram(1);
    c.programSeed = 1;
    // Decoy crash points the shrinker must discover are irrelevant:
    // the aliasing bug corrupts state with or without power failures.
    c.faults.enabled = true;
    c.faults.seed = 1;
    c.faults.crashPersists = {5000, 9000};
    c.faults.crashCycles = {400000};

    ASSERT_FALSE(runChecked(c).clean());

    ShrinkResult r = shrinkCase(c);
    ASSERT_TRUE(r.verifiedFailing);
    EXPECT_TRUE(r.minimized.faults.crashPersists.empty());
    EXPECT_TRUE(r.minimized.faults.crashCycles.empty());
    EXPECT_EQ(r.minimized.faults.crashAtPersist, 0u);
    EXPECT_EQ(r.minimized.faults.crashAtCycle, 0u);
    EXPECT_LT(r.minimized.programText.size(), c.programText.size());
    EXPECT_EQ(r.minimized.name, "alias-min");
    EXPECT_GT(r.runsUsed, 1u);

    const char *path = "test_check_shrink_tmp.repro";
    ASSERT_TRUE(saveRepro(path, r.minimized));
    CheckCase reloaded;
    std::string error;
    ASSERT_TRUE(loadRepro(path, reloaded, error)) << error;
    std::remove(path);

    CheckOutcome replay = runChecked(reloaded);
    ASSERT_FALSE(replay.clean());
    bool alias = false;
    for (const auto &v : replay.violations)
        alias |= v.checker == "rename_aliasing";
    EXPECT_TRUE(alias) << replay.detail();
}

} // namespace
} // namespace nvmr

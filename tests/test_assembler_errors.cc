/**
 * @file
 * Death tests for assembler and loader error handling: every
 * malformed input must die with a line-numbered, descriptive message
 * (fatal() exits with status 1), never silently mis-assemble.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_EXIT(assemble("t", "frobnicate r1, r2\n"),
                ::testing::ExitedWithCode(2), "unknown mnemonic");
}

TEST(AssemblerErrors, UnknownMnemonicReportsLineNumber)
{
    EXPECT_EXIT(assemble("t", "nop\nnop\nbad r1\n"),
                ::testing::ExitedWithCode(2), "t.asm:3");
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_EXIT(assemble("t", "jmp nowhere\n"),
                ::testing::ExitedWithCode(2),
                "undefined symbol 'nowhere'");
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_EXIT(assemble("t", "a:\nnop\na:\nhalt\n"),
                ::testing::ExitedWithCode(2), "duplicate label");
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_EXIT(assemble("t", "add r1, r2, r99\n"),
                ::testing::ExitedWithCode(2), "expected register");
}

TEST(AssemblerErrors, MissingOperand)
{
    EXPECT_EXIT(assemble("t", "add r1, r2\n"),
                ::testing::ExitedWithCode(2), "missing register");
}

TEST(AssemblerErrors, MissingMemOperand)
{
    EXPECT_EXIT(assemble("t", "ld r1, r2\n"),
                ::testing::ExitedWithCode(2),
                "expected imm\\(reg\\) operand");
}

TEST(AssemblerErrors, BadBaseRegister)
{
    EXPECT_EXIT(assemble("t", "ld r1, 0(bogus)\n"),
                ::testing::ExitedWithCode(2), "bad base register");
}

TEST(AssemblerErrors, UnterminatedParenthesis)
{
    EXPECT_EXIT(assemble("t", "ld r1, 0(r2\n"),
                ::testing::ExitedWithCode(2), "missing '\\)'");
}

TEST(AssemblerErrors, DirectiveOutsideData)
{
    EXPECT_EXIT(assemble("t", ".word 1\n"),
                ::testing::ExitedWithCode(2), "outside .data");
}

TEST(AssemblerErrors, InstructionInsideData)
{
    EXPECT_EXIT(assemble("t", ".data\nadd r1, r2, r3\n"),
                ::testing::ExitedWithCode(2),
                "instruction inside .data");
}

TEST(AssemblerErrors, UnknownDirective)
{
    EXPECT_EXIT(assemble("t", ".data\n.bogus 1\n"),
                ::testing::ExitedWithCode(2), "unknown directive");
}

TEST(AssemblerErrors, BadSpaceSize)
{
    EXPECT_EXIT(assemble("t", ".data\n.space -4\n"),
                ::testing::ExitedWithCode(2), "bad .space size");
}

TEST(AssemblerErrors, BadRandArity)
{
    EXPECT_EXIT(assemble("t", ".data\n.rand 4 1\n"),
                ::testing::ExitedWithCode(2), ".rand takes");
}

TEST(AssemblerErrors, AsciizNeedsString)
{
    EXPECT_EXIT(assemble("t", ".data\n.asciiz 42\n"),
                ::testing::ExitedWithCode(2),
                ".asciiz takes a string");
}

TEST(AssemblerErrors, UnterminatedString)
{
    EXPECT_EXIT(assemble("t", ".data\n.asciiz \"oops\n"),
                ::testing::ExitedWithCode(2), "unterminated string");
}

TEST(AssemblerErrors, EmptyProgram)
{
    EXPECT_EXIT(assemble("t", "# nothing here\n"),
                ::testing::ExitedWithCode(2),
                "program has no instructions");
}

TEST(AssemblerErrors, BadOffsetExpression)
{
    EXPECT_EXIT(assemble("t", ".data\nx: .word 1\n.text\n"
                              "li r1, x+y\nhalt\n"),
                ::testing::ExitedWithCode(2), "bad offset");
}

TEST(WorkloadErrors, UnknownWorkloadName)
{
    EXPECT_EXIT(findWorkload("not_a_benchmark"),
                ::testing::ExitedWithCode(2), "unknown workload");
}

} // namespace
} // namespace nvmr

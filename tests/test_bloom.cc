/**
 * @file
 * Unit tests for the global bloom filter: the no-false-negative
 * guarantee (which intermittent correctness depends on), reset
 * behaviour and occupancy.
 */

#include <gtest/gtest.h>

#include "common/xorshift.hh"
#include "mem/bloom.hh"

namespace nvmr
{
namespace
{

struct BloomTest : public ::testing::Test
{
    TechParams tech;
    NullEnergySink sink;
};

TEST_F(BloomTest, EmptyFilterContainsNothing)
{
    BloomFilter bf(8, 1, tech, sink);
    for (Addr a = 0; a < 64; a += 16)
        EXPECT_FALSE(bf.maybeContains(a));
    EXPECT_DOUBLE_EQ(bf.occupancy(), 0.0);
}

TEST_F(BloomTest, NeverFalseNegative)
{
    // The safety property: an inserted block address must always hit.
    BloomFilter bf(8, 1, tech, sink);
    XorShift rng(99);
    std::vector<Addr> inserted;
    for (int i = 0; i < 50; ++i) {
        Addr a = static_cast<Addr>(rng.range(0, 1 << 20)) & ~0xfu;
        bf.insert(a);
        inserted.push_back(a);
        for (Addr b : inserted)
            EXPECT_TRUE(bf.maybeContains(b));
    }
}

TEST_F(BloomTest, ResetClearsAllBits)
{
    BloomFilter bf(8, 1, tech, sink);
    bf.insert(0x10);
    bf.insert(0x20);
    EXPECT_GT(bf.occupancy(), 0.0);
    bf.reset();
    EXPECT_DOUBLE_EQ(bf.occupancy(), 0.0);
    // After reset the bits are clear; specific keys may or may not
    // collide, but at least directly-checked ones must miss.
    EXPECT_FALSE(bf.maybeContains(0x10));
    EXPECT_FALSE(bf.maybeContains(0x20));
}

TEST_F(BloomTest, TinyFilterSaturates)
{
    // Table 2's GBF is only 8 bits: with many inserts it should
    // approach full occupancy (everything looks read-dominated),
    // which is conservative but correct.
    BloomFilter bf(8, 1, tech, sink);
    for (Addr a = 0; a < 4096; a += 16)
        bf.insert(a);
    EXPECT_GT(bf.occupancy(), 0.9);
}

TEST_F(BloomTest, MultipleHashFunctions)
{
    BloomFilter bf(64, 3, tech, sink);
    bf.insert(0x40);
    EXPECT_TRUE(bf.maybeContains(0x40));
    // With 3 hashes in 64 bits, a fresh filter should reject most
    // other keys.
    int fp = 0;
    for (Addr a = 0x1000; a < 0x1000 + 100 * 16; a += 16)
        fp += bf.maybeContains(a);
    EXPECT_LT(fp, 20);
}

/** Property sweep: no false negatives across sizes and hash counts. */
class BloomProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BloomProperty, InsertedKeysAlwaysHit)
{
    auto [bits, hashes] = GetParam();
    TechParams tech;
    NullEnergySink sink;
    BloomFilter bf(bits, hashes, tech, sink);
    XorShift rng(bits * 1000 + hashes);
    std::vector<Addr> keys;
    for (int i = 0; i < 200; ++i) {
        Addr a = static_cast<Addr>(rng.range(0, 1 << 24)) & ~0xfu;
        bf.insert(a);
        keys.push_back(a);
    }
    for (Addr a : keys)
        EXPECT_TRUE(bf.maybeContains(a));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BloomProperty,
    ::testing::Combine(::testing::Values(8, 16, 64, 256),
                       ::testing::Values(1, 2, 4)));

} // namespace
} // namespace nvmr

/**
 * @file
 * The full workload x architecture matrix, run intermittently on a
 * failure-prone capacitor: all ten benchmarks must complete and
 * validate on Clank, NvMR and HOOP. This is the closest test to the
 * evaluation harnesses themselves.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

using MatrixCase = std::tuple<std::string, ArchKind>;

class WorkloadMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(WorkloadMatrix, CompletesAndValidatesIntermittently)
{
    auto [name, kind] = GetParam();
    Program prog = assembleWorkload(name);
    SystemConfig cfg;
    cfg.capacitorFarads = 7.5e-3; // failure-prone
    // Platform co-design: HOOP's redo log must stay small enough
    // that a restore-time GC fits one capacitor charge (Table 4's
    // 2048-entry region presumes the 100 mF default).
    cfg.oopRegionEntries = 384;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Rf, 4242, 7.0);
    Simulator sim(prog, kind, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed) << name << " on " << archKindName(kind);
    EXPECT_TRUE(r.validated) << name << " on " << archKindName(kind);
}

std::vector<MatrixCase>
matrixCases()
{
    std::vector<MatrixCase> cases;
    for (const WorkloadInfo &w : allWorkloads())
        for (ArchKind kind :
             {ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop})
            cases.emplace_back(w.name, kind);
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadMatrix, ::testing::ValuesIn(matrixCases()),
    [](const ::testing::TestParamInfo<MatrixCase> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_" +
               archKindName(std::get<1>(info.param));
    });

TEST(WorkloadMatrixExtras, NvmrNeverLosesBadlyToClank)
{
    // A guardrail on the headline result: across all workloads under
    // JIT, NvMR must never consume more than ~10% extra energy, and
    // must win on at least half.
    SystemConfig cfg;
    JitPolicy p1, p2;
    HarvestTrace trace(TraceKind::Solar, 9001, 8.0);
    int wins = 0, total = 0;
    for (const WorkloadInfo &w : allWorkloads()) {
        Program prog = assembleWorkload(w.name);
        JitPolicy pol_a, pol_b;
        Simulator clank(prog, ArchKind::Clank, cfg, pol_a, trace);
        Simulator nvmr(prog, ArchKind::Nvmr, cfg, pol_b, trace);
        RunResult rc = clank.run();
        RunResult rn = nvmr.run();
        ASSERT_TRUE(rc.completed && rc.validated) << w.name;
        ASSERT_TRUE(rn.completed && rn.validated) << w.name;
        EXPECT_LT(rn.totalEnergyNj, rc.totalEnergyNj * 1.10)
            << w.name;
        wins += rn.totalEnergyNj < rc.totalEnergyNj;
        ++total;
    }
    EXPECT_GE(wins * 2, total);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Behavioural tests for the original (buffer-based, cacheless) Clank:
 * write-through semantics, the read-first/write-first protocol,
 * buffer-full backups and intermittent correctness.
 */

#include <gtest/gtest.h>

#include "arch/clank_original.hh"
#include "arch_harness.hh"

namespace nvmr
{
namespace
{

ClankOriginalArch &
origOf(ArchHarness &h)
{
    return *static_cast<ClankOriginalArch *>(h.arch.get());
}

TEST(ClankOriginal, StoresWriteThroughImmediately)
{
    ArchHarness h(ArchKind::ClankOriginal);
    h.arch->storeWord(0x100, 42);
    EXPECT_EQ(h.nvm->peekWord(0x100), 42u);
    EXPECT_EQ(h.arch->loadWord(0x100), 42u);
}

TEST(ClankOriginal, WriteAfterReadForcesBackup)
{
    ArchHarness h(ArchKind::ClankOriginal);
    uint64_t base = h.backups();
    h.arch->loadWord(0x100);       // read-first
    h.arch->storeWord(0x100, 7);   // violation
    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.backups(), base + 1);
    EXPECT_EQ(h.nvm->peekWord(0x100), 7u);
}

TEST(ClankOriginal, WriteFirstNeedsNoBackup)
{
    ArchHarness h(ArchKind::ClankOriginal);
    uint64_t base = h.backups();
    h.arch->storeWord(0x100, 1);
    h.arch->loadWord(0x100);       // read after write: still safe
    h.arch->storeWord(0x100, 2);   // repeated store: still safe
    EXPECT_EQ(h.violations(), 0u);
    EXPECT_EQ(h.backups(), base);
}

TEST(ClankOriginal, RepeatedReadsNeedOneBufferEntry)
{
    ArchHarness h(ArchKind::ClankOriginal);
    for (int i = 0; i < 10; ++i)
        h.arch->loadWord(0x100);
    EXPECT_EQ(origOf(h).readFirstFill(), 1u);
}

TEST(ClankOriginal, ReadFirstBufferFullForcesBackup)
{
    SystemConfig cfg;
    cfg.rfBufferEntries = 4;
    ArchHarness h(ArchKind::ClankOriginal, cfg);
    uint64_t base = h.backups();
    for (Addr a = 0; a < 5; ++a)
        h.arch->loadWord(0x100 + a * 4);
    uint64_t full_backups = h.arch->stats().backupsByReason[
        static_cast<size_t>(BackupReason::BufferFull)];
    EXPECT_GE(full_backups, 1u);
    EXPECT_GT(h.backups(), base);
    // The post-backup section only holds the overflowing entry.
    EXPECT_EQ(origOf(h).readFirstFill(), 1u);
}

TEST(ClankOriginal, WriteFirstBufferFullForcesBackup)
{
    SystemConfig cfg;
    cfg.wfBufferEntries = 4;
    ArchHarness h(ArchKind::ClankOriginal, cfg);
    for (Addr a = 0; a < 5; ++a)
        h.arch->storeWord(0x200 + a * 4, a);
    uint64_t full_backups = h.arch->stats().backupsByReason[
        static_cast<size_t>(BackupReason::BufferFull)];
    EXPECT_GE(full_backups, 1u);
    for (Addr a = 0; a < 5; ++a)
        EXPECT_EQ(h.arch->loadWord(0x200 + a * 4), a);
}

TEST(ClankOriginal, BackupResetsBothBuffers)
{
    ArchHarness h(ArchKind::ClankOriginal);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x200, 1);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    EXPECT_EQ(origOf(h).readFirstFill(), 0u);
    EXPECT_EQ(origOf(h).writeFirstFill(), 0u);
    // New section: the store is now first, so no violation.
    uint64_t base = h.backups();
    h.arch->storeWord(0x100, 9);
    EXPECT_EQ(h.backups(), base);
}

TEST(ClankOriginal, ByteStoreToReadFirstWordViolates)
{
    ArchHarness h(ArchKind::ClankOriginal);
    h.arch->loadByte(0x101);       // word 0x100 read-first
    uint64_t base = h.backups();
    h.arch->storeByte(0x102, 0xee); // same word: violation
    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.backups(), base + 1);
    EXPECT_EQ(h.arch->loadByte(0x102), 0xeeu);
}

TEST(ClankOriginal, FreshByteStoreMarksWordReadFirst)
{
    // Regression companion to the fuzzing find: a partial write must
    // not mark the word write-first, or a later full store would
    // evade detection.
    ArchHarness h(ArchKind::ClankOriginal);
    h.arch->storeByte(0x101, 0x11); // fresh: idempotent by itself
    EXPECT_EQ(h.violations(), 0u);
    EXPECT_EQ(origOf(h).readFirstFill(), 1u);
    EXPECT_EQ(origOf(h).writeFirstFill(), 0u);
    uint64_t base = h.backups();
    h.arch->storeWord(0x100, 42);   // full store now violates
    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.backups(), base + 1);
}

TEST(ClankOriginal, RunsIntermittentlyAndValidates)
{
    Program prog = assemble("rmw", R"(
        .data
arr:    .rand 128 21 0 999
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 128
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 4
        blt  r1, r6, pass
        halt
)");
    for (double farads : {0.1, 500e-6}) {
        SystemConfig cfg;
        cfg.capacitorFarads = farads;
        JitPolicy policy;
        HarvestTrace trace(TraceKind::Rf, 808, 7.0);
        Simulator sim(prog, ArchKind::ClankOriginal, cfg, policy,
                      trace);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << farads;
        EXPECT_TRUE(r.validated) << farads;
        EXPECT_GT(r.violations, 0u);
    }
}

TEST(ClankOriginal, OurVersionUsesFewerNvmWrites)
{
    // Footnote 6 in miniature: the cache coalesces stores, the
    // write-through original pays NVM for each one.
    Program prog = assemble("st", R"(
        .data
arr:    .space 64
        .text
main:
        li   r1, 0
loop:
        andi r2, r1, 15
        slli r2, r2, 2
        li   r3, arr
        add  r2, r2, r3
        st   r1, 0(r2)
        addi r1, r1, 1
        li   r4, 512
        blt  r1, r4, loop
        halt
)");
    SystemConfig cfg;
    HarvestTrace trace(TraceKind::Solar, 5, 8.0);
    JitPolicy p1, p2;
    Simulator orig(prog, ArchKind::ClankOriginal, cfg, p1, trace);
    Simulator ours(prog, ArchKind::Clank, cfg, p2, trace);
    RunResult ro = orig.run();
    RunResult rc = ours.run();
    ASSERT_TRUE(ro.completed && ro.validated);
    ASSERT_TRUE(rc.completed && rc.validated);
    EXPECT_GT(ro.nvmWrites, rc.nvmWrites);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests for the run-report formatting and the simulator's event
 * observer: reports contain the right facts, and observer callbacks
 * agree with the final counters.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

const char *kProgram = R"(
        .data
arr:    .rand 256 9 0 500
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 256
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 5
        blt  r1, r6, pass
        halt
)";

/** Observer that counts every event. */
class CountingObserver : public SimObserver
{
  public:
    void
    onBackup(BackupReason reason, Cycles) override
    {
        ++backups;
        ++byReason[static_cast<size_t>(reason)];
    }
    void onPowerFailure(Cycles) override { ++failures; }
    void onRestore(Cycles) override { ++restores; }
    void onHibernate(Cycles) override { ++hibernates; }
    void onWake(Cycles) override { ++wakes; }

    uint64_t backups = 0;
    uint64_t failures = 0;
    uint64_t restores = 0;
    uint64_t hibernates = 0;
    uint64_t wakes = 0;
    std::array<uint64_t, kNumBackupReasons> byReason{};
};

RunResult
runWithObserver(CountingObserver &obs, double farads = 7.5e-3)
{
    Program prog = assemble("rpt", kProgram);
    SystemConfig cfg;
    cfg.capacitorFarads = farads;
    static JitPolicy policy;
    HarvestTrace trace(TraceKind::Rf, 31, 7.0);
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace);
    sim.attachObserver(&obs);
    return sim.run();
}

TEST(Observer, EventCountsMatchRunResult)
{
    CountingObserver obs;
    RunResult r = runWithObserver(obs);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(obs.backups, r.backups);
    EXPECT_EQ(obs.failures, r.powerFailures);
    EXPECT_EQ(obs.restores, r.restores);
    for (size_t i = 0; i < kNumBackupReasons; ++i)
        EXPECT_EQ(obs.byReason[i], r.backupsByReason[i]) << i;
}

TEST(Observer, HibernationsComeFromJitBackups)
{
    CountingObserver obs;
    RunResult r = runWithObserver(obs);
    ASSERT_TRUE(r.completed);
    // Every policy backup hibernates under JIT; each hibernation
    // either wakes or dies.
    uint64_t policy_backups =
        obs.byReason[static_cast<size_t>(BackupReason::Policy)];
    EXPECT_EQ(obs.hibernates, policy_backups);
    EXPECT_EQ(obs.hibernates, obs.wakes + obs.failures);
}

TEST(Report, FullReportMentionsKeyFacts)
{
    CountingObserver obs;
    RunResult r = runWithObserver(obs);
    std::string report = formatRunReport(r);
    EXPECT_NE(report.find("rpt"), std::string::npos);
    EXPECT_NE(report.find("clank"), std::string::npos);
    EXPECT_NE(report.find("jit"), std::string::npos);
    EXPECT_NE(report.find("completed"), std::string::npos);
    EXPECT_NE(report.find("validated"), std::string::npos);
    EXPECT_NE(report.find("violations: "), std::string::npos);
    EXPECT_NE(report.find("forward: "), std::string::npos);
}

TEST(Report, IncompleteRunIsFlagged)
{
    RunResult r;
    r.program = "x";
    r.completed = false;
    std::string report = formatRunReport(r);
    EXPECT_NE(report.find("DID NOT COMPLETE"), std::string::npos);
    std::string line = formatRunLine(r);
    EXPECT_NE(line.find("[INCOMPLETE]"), std::string::npos);
}

TEST(Report, InvalidRunIsFlagged)
{
    RunResult r;
    r.program = "x";
    r.completed = true;
    r.validated = false;
    r.validationChecked = true;
    EXPECT_NE(formatRunReport(r).find("VALIDATION FAILED"),
              std::string::npos);
    EXPECT_NE(formatRunLine(r).find("[INVALID]"), std::string::npos);
}

TEST(Report, BreakdownSharesSumToAboutHundred)
{
    CountingObserver obs;
    RunResult r = runWithObserver(obs);
    std::string bd = formatEnergyBreakdown(r);
    // Parse the percentages back out and sum them.
    double sum = 0;
    size_t pos = 0;
    while ((pos = bd.find('(', pos)) != std::string::npos) {
        sum += std::strtod(bd.c_str() + pos + 1, nullptr);
        ++pos;
    }
    EXPECT_NEAR(sum, 100.0, 1.0);
}

TEST(Report, SkippedValidationIsNotAFailure)
{
    RunResult r;
    r.program = "x";
    r.completed = true;
    r.validated = false;
    r.validationChecked = false;
    std::string report = formatRunReport(r);
    EXPECT_EQ(report.find("VALIDATION FAILED"), std::string::npos);
    EXPECT_NE(report.find("validation skipped"), std::string::npos);
    EXPECT_EQ(formatRunLine(r).find("[INVALID]"), std::string::npos);
}

TEST(Report, LineSummaryIsOneLine)
{
    CountingObserver obs;
    RunResult r = runWithObserver(obs);
    std::string line = formatRunLine(r);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("uJ"), std::string::npos);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Unit tests for the write-back data cache and its LBF word-state
 * protocol: geometry, LRU victim selection, fills, composite state.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace nvmr
{
namespace
{

struct CacheTest : public ::testing::Test
{
    TechParams tech;
    NullEnergySink sink;
    CacheConfig cfg; // Table 2 defaults: 256 B, 8-way, 16 B blocks
    DataCache cache{cfg, tech, sink};

    std::vector<Word>
    block(Word seed)
    {
        std::vector<Word> d(cfg.wordsPerBlock());
        for (size_t i = 0; i < d.size(); ++i)
            d[i] = seed + static_cast<Word>(i);
        return d;
    }
};

TEST_F(CacheTest, GeometryMatchesTable2)
{
    EXPECT_EQ(cfg.numBlocks(), 16u);
    EXPECT_EQ(cfg.numSets(), 2u);
    EXPECT_EQ(cfg.wordsPerBlock(), 4u);
}

TEST_F(CacheTest, MissThenHit)
{
    EXPECT_EQ(cache.lookup(0x100), nullptr);
    CacheLine &v = cache.victim(0x100);
    cache.fill(v, 0x100, block(7));
    CacheLine *hit = cache.lookup(0x100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->data[0], 7u);
    EXPECT_EQ(hit->data[3], 10u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(CacheTest, VictimPrefersInvalidWays)
{
    for (int i = 0; i < 4; ++i) {
        Addr a = 0x100 + 0x20u * i; // same set (stride 2 blocks)
        CacheLine &v = cache.victim(a);
        EXPECT_FALSE(v.valid);
        cache.fill(v, a, block(i));
    }
    EXPECT_EQ(cache.dirtyCount(), 0u);
}

TEST_F(CacheTest, LruEvictsLeastRecentlyUsed)
{
    // Fill all 8 ways of set 0 (block addresses with even block idx).
    for (int i = 0; i < 8; ++i) {
        Addr a = 0x20u * i;
        cache.fill(cache.victim(a), a, block(i));
    }
    // Touch all but block 0x40 (i = 2).
    for (int i = 0; i < 8; ++i) {
        if (i == 2)
            continue;
        ASSERT_NE(cache.lookup(0x20u * i), nullptr);
    }
    CacheLine &victim = cache.victim(0x200);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.blockAddr, 0x40u);
}

TEST_F(CacheTest, WordStateFirstAccessWinsAndIsSticky)
{
    CacheLine &line = cache.victim(0);
    cache.fill(line, 0, block(0));
    line.touchWord(0, false); // read first
    line.touchWord(0, true);  // later write must not flip it
    line.touchWord(1, true);  // write first
    line.touchWord(1, false);
    EXPECT_EQ(line.lbf[0], WordState::ReadDom);
    EXPECT_EQ(line.lbf[1], WordState::WriteDom);
    EXPECT_EQ(line.lbf[2], WordState::Unknown);
}

TEST_F(CacheTest, CompositeStateIsOrOfReadDominance)
{
    CacheLine &line = cache.victim(0);
    cache.fill(line, 0, block(0));
    EXPECT_FALSE(line.compositeReadDominated());
    line.touchWord(2, true);
    EXPECT_FALSE(line.compositeReadDominated());
    line.touchWord(3, false);
    EXPECT_TRUE(line.compositeReadDominated());
}

TEST_F(CacheTest, MarkAllReadDominated)
{
    CacheLine &line = cache.victim(0);
    cache.fill(line, 0, block(0));
    line.markAllReadDominated();
    EXPECT_TRUE(line.compositeReadDominated());
    for (WordState s : line.lbf)
        EXPECT_EQ(s, WordState::ReadDom);
}

TEST_F(CacheTest, ResetLbfClearsStates)
{
    CacheLine &line = cache.victim(0);
    cache.fill(line, 0, block(0));
    line.touchWord(0, false);
    cache.resetLbf();
    EXPECT_EQ(line.lbf[0], WordState::Unknown);
    EXPECT_FALSE(line.compositeReadDominated());
}

TEST_F(CacheTest, FillResetsDirtyAndLbf)
{
    CacheLine &line = cache.victim(0);
    cache.fill(line, 0, block(0));
    line.markDirty();
    line.dirtyWordMask = 0xf;
    line.touchWord(0, false);
    cache.fill(line, 0x20, block(1));
    EXPECT_FALSE(line.dirty);
    EXPECT_EQ(line.dirtyWordMask, 0u);
    EXPECT_EQ(line.lbf[0], WordState::Unknown);
    EXPECT_EQ(line.blockAddr, 0x20u);
}

TEST_F(CacheTest, InvalidateAllDropsEverything)
{
    cache.fill(cache.victim(0), 0, block(0));
    cache.fill(cache.victim(0x10), 0x10, block(1));
    cache.invalidateAll();
    EXPECT_EQ(cache.lookup(0), nullptr);
    EXPECT_EQ(cache.lookup(0x10), nullptr);
    EXPECT_EQ(cache.dirtyCount(), 0u);
}

TEST_F(CacheTest, DirtyCountTracksDirtyLines)
{
    CacheLine &a = cache.victim(0);
    cache.fill(a, 0, block(0));
    a.markDirty();
    CacheLine &b = cache.victim(0x10);
    cache.fill(b, 0x10, block(1));
    b.markDirty();
    EXPECT_EQ(cache.dirtyCount(), 2u);
}

TEST_F(CacheTest, WordIndexAndAlign)
{
    EXPECT_EQ(cache.blockAlign(0x1237), 0x1230u);
    EXPECT_EQ(cache.wordIndex(0x1234), 1u);
    EXPECT_EQ(cache.wordIndex(0x123c), 3u);
}

/** Geometry sweep: cache behaves for several configurations. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, FillAndLookupAllBlocks)
{
    auto [size, block_bytes, ways] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.blockBytes = block_bytes;
    cfg.ways = ways;
    TechParams tech;
    NullEnergySink sink;
    DataCache cache(cfg, tech, sink);

    std::vector<Word> data(cfg.wordsPerBlock(), 5);
    for (uint32_t i = 0; i < cfg.numBlocks(); ++i) {
        Addr a = i * cfg.blockBytes;
        cache.fill(cache.victim(a), a, data);
    }
    for (uint32_t i = 0; i < cfg.numBlocks(); ++i)
        EXPECT_NE(cache.lookup(i * cfg.blockBytes), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(256, 16, 8),
                      std::make_tuple(256, 16, 4),
                      std::make_tuple(512, 16, 8),
                      std::make_tuple(256, 32, 4),
                      std::make_tuple(1024, 16, 2),
                      std::make_tuple(128, 16, 8)));

} // namespace
} // namespace nvmr

/**
 * @file
 * End-to-end assembly programs on the continuous interpreter:
 * classic algorithms with known answers, exercising control flow,
 * the calling convention, the stack-pointer idiom, byte memory and
 * arithmetic corner cases together.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "workloads/golden.hh"

namespace nvmr
{
namespace
{

GoldenResult
runSrc(const std::string &src)
{
    Program prog = assemble("prog", src);
    GoldenResult g = runContinuous(prog);
    EXPECT_TRUE(g.halted);
    return g;
}

TEST(IsaPrograms, FactorialLoop)
{
    GoldenResult g = runSrc(R"(
        .data
out:    .word 0
        .text
main:
        li   r1, 1              # acc
        li   r2, 10             # n
loop:
        mul  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        li   r3, out
        st   r1, 0(r3)
        halt
)");
    EXPECT_EQ(goldenWord(g, 0), 3628800u);
}

TEST(IsaPrograms, FibonacciSequence)
{
    GoldenResult g = runSrc(R"(
        .data
fib:    .space 80
        .text
main:
        li   r1, fib
        li   r2, 0              # f(0)
        li   r3, 1              # f(1)
        st   r2, 0(r1)
        st   r3, 4(r1)
        li   r4, 2              # i
loop:
        add  r5, r2, r3
        slli r6, r4, 2
        add  r6, r6, r1
        st   r5, 0(r6)
        mv   r2, r3
        mv   r3, r5
        addi r4, r4, 1
        li   r6, 20
        blt  r4, r6, loop
        halt
)");
    EXPECT_EQ(goldenWord(g, 4 * 10), 55u);
    EXPECT_EQ(goldenWord(g, 4 * 19), 4181u);
}

TEST(IsaPrograms, StackDisciplineWithSp)
{
    // Push 8 values with the sp convention, pop them reversed.
    GoldenResult g = runSrc(R"(
        .data
out:    .space 32
stk:    .space 64
stktop: .word 0
        .text
main:
        li   sp, stktop
        li   r1, 0
push:
        addi sp, sp, -4
        muli r2, r1, 11
        st   r2, 0(sp)
        addi r1, r1, 1
        li   r3, 8
        blt  r1, r3, push
        li   r1, 0
        li   r4, out
pop:
        ld   r2, 0(sp)
        addi sp, sp, 4
        slli r5, r1, 2
        add  r5, r5, r4
        st   r2, 0(r5)
        addi r1, r1, 1
        li   r3, 8
        blt  r1, r3, pop
        halt
)");
    // Popped in reverse push order: 77, 66, ..., 0.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(goldenWord(g, 4 * i),
                  static_cast<Word>((7 - i) * 11));
}

TEST(IsaPrograms, LeafCallsWithReturnValues)
{
    GoldenResult g = runSrc(R"(
        .data
out:    .word 0 0
        .text
main:
        li   r10, 21
        call dbl
        li   r1, out
        st   r12, 0(r1)
        li   r10, -5
        call dbl
        st   r12, 4(r1)
        halt
dbl:
        add  r12, r10, r10
        ret
)");
    EXPECT_EQ(goldenWord(g, 0), 42u);
    EXPECT_EQ(static_cast<SWord>(goldenWord(g, 4)), -10);
}

TEST(IsaPrograms, ByteStringReverse)
{
    GoldenResult g = runSrc(R"(
        .data
str:    .asciiz "intermittent"
out:    .space 16
        .text
main:
        li   r1, str
        li   r2, 0              # strlen
len:
        add  r3, r1, r2
        ldb  r4, 0(r3)
        beq  r4, r0, copy
        addi r2, r2, 1
        jmp  len
copy:
        li   r5, out
        li   r6, 0              # i
rev:
        bge  r6, r2, done
        sub  r7, r2, r6
        addi r7, r7, -1
        add  r7, r7, r1
        ldb  r4, 0(r7)
        add  r8, r5, r6
        stb  r4, 0(r8)
        addi r6, r6, 1
        jmp  rev
done:
        halt
)");
    Addr out = 13; // strlen("intermittent") + NUL = 13
    const char *expect = "tnettimretni";
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(g.data[out + i], static_cast<uint8_t>(expect[i]))
            << i;
}

TEST(IsaPrograms, BubbleSortSmallArray)
{
    GoldenResult g = runSrc(R"(
        .data
arr:    .word 5 2 9 1 7 3 8 4 6 0
        .text
main:
        li   r1, arr
        li   r2, 0              # pass
opass:
        li   r3, 0              # i
inner:
        slli r4, r3, 2
        add  r4, r4, r1
        ld   r5, 0(r4)
        ld   r6, 4(r4)
        ble  r5, r6, next
        st   r6, 0(r4)
        st   r5, 4(r4)
next:
        addi r3, r3, 1
        li   r7, 9
        blt  r3, r7, inner
        addi r2, r2, 1
        li   r7, 9
        blt  r2, r7, opass
        halt
)");
    for (Word i = 0; i < 10; ++i)
        EXPECT_EQ(goldenWord(g, 4 * i), i);
}

TEST(IsaPrograms, CollatzStepsOf27)
{
    GoldenResult g = runSrc(R"(
        .data
out:    .word 0
        .text
main:
        li   r1, 27             # n
        li   r2, 0              # steps
loop:
        li   r3, 1
        beq  r1, r3, done
        andi r4, r1, 1
        beq  r4, r0, even
        muli r1, r1, 3
        addi r1, r1, 1
        jmp  step
even:
        srli r1, r1, 1
step:
        addi r2, r2, 1
        jmp  loop
done:
        li   r5, out
        st   r2, 0(r5)
        halt
)");
    EXPECT_EQ(goldenWord(g, 0), 111u); // well-known: 27 needs 111
}

TEST(IsaPrograms, SameProgramValidatesIntermittently)
{
    // The bubble sort also runs intermittently on every architecture
    // and still produces a sorted array.
    Program prog = assemble("bsort", R"(
        .data
arr:    .rand 64 77 0 999
        .text
main:
        li   r1, arr
        li   r2, 0
opass:
        li   r3, 0
inner:
        slli r4, r3, 2
        add  r4, r4, r1
        ld   r5, 0(r4)
        ld   r6, 4(r4)
        ble  r5, r6, next
        st   r6, 0(r4)
        st   r5, 4(r4)
next:
        addi r3, r3, 1
        li   r7, 63
        blt  r3, r7, inner
        addi r2, r2, 1
        li   r7, 63
        blt  r2, r7, opass
        halt
)");
    SystemConfig cfg;
    cfg.capacitorFarads = 7.5e-3;
    HarvestTrace trace(TraceKind::Wind, 3, 7.0);
    for (ArchKind kind :
         {ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop}) {
        JitPolicy policy;
        Simulator sim(prog, kind, cfg, policy, trace);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << archKindName(kind);
        EXPECT_TRUE(r.validated) << archKindName(kind);
        // Check sortedness through the architecture's own view.
        for (Addr a = 0; a + 8 <= 64 * 4; a += 4) {
            EXPECT_LE(sim.archRef().inspectWord(a),
                      sim.archRef().inspectWord(a + 4))
                << archKindName(kind) << " at " << a;
        }
    }
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Trace smoke test (the `trace-smoke` ctest target): run one short
 * workload on every architecture with tracing enabled, export the
 * Chrome/Perfetto trace, the binary trace and the run manifest, and
 * validate every emitted document with the strict JSON validator.
 * This is the end-to-end guarantee behind docs/observability.md: any
 * workload x architecture pair yields a loadable trace and a
 * schema-valid manifest.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

struct SmokeResult
{
    RunResult run;
    std::string manifestJson;
    std::string traceJson;
    uint64_t eventsRecorded = 0;
};

SmokeResult
smokeOne(ArchKind arch)
{
    Program prog = assembleWorkload("hist");
    SystemConfig cfg;
    // The ideal architecture assumes perfect JIT; everything else
    // gets a watchdog cadence so backups and events flow steadily.
    std::unique_ptr<BackupPolicy> policy;
    if (arch == ArchKind::Ideal)
        policy = std::make_unique<JitPolicy>();
    else
        policy = std::make_unique<WatchdogPolicy>(4000);
    HarvestTrace trace(TraceKind::Rf, 7, 8.0);

    Simulator sim(prog, arch, cfg, *policy, trace);
    TraceBuffer buffer;
    sim.attachTrace(&buffer);
    SmokeResult out;
    out.run = sim.run();

    ManifestWriter manifest("trace_smoke");
    manifest.setConfig(cfg);
    manifest.addRun(out.run);
    manifest.addStatGroup(std::string("hist/") + archKindName(arch),
                          sim.archRef().statGroup());
    out.manifestJson = manifest.json();
    out.traceJson = buffer.toChromeJson();
    out.eventsRecorded = buffer.totalRecorded();

    // Exercise the file paths too: manifest + binary trace land on
    // disk exactly as the tools write them.
    std::string base = testing::TempDir() + "/nvmr_smoke_" +
                       archKindName(arch);
    manifest.writeFile(base + ".json");
    {
        std::ofstream os(base + ".trace.bin", std::ios::binary);
        buffer.writeBinary(os);
    }
    std::ifstream is(base + ".trace.bin", std::ios::binary);
    auto back = TraceBuffer::readBinary(is);
    EXPECT_EQ(back.size(), buffer.size());
    std::remove((base + ".json").c_str());
    std::remove((base + ".trace.bin").c_str());
    return out;
}

class TraceSmoke : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(TraceSmoke, WorkloadProducesValidTraceAndManifest)
{
    SmokeResult r = smokeOne(GetParam());
    EXPECT_TRUE(r.run.completed);
    EXPECT_TRUE(r.run.validated);
    EXPECT_GT(r.eventsRecorded, 0u);

    std::string err;
    EXPECT_TRUE(jsonValidate(r.manifestJson, &err))
        << "manifest: " << err;
    EXPECT_TRUE(jsonValidate(r.traceJson, &err)) << "trace: " << err;

    // Schema markers downstream tooling keys on.
    EXPECT_NE(r.manifestJson.find("\"nvmr-run-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(r.manifestJson.find("\"backup_interval_cycles\""),
              std::string::npos);
    EXPECT_NE(r.traceJson.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(r.traceJson.find("\"backup_commit\""),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, TraceSmoke,
    ::testing::Values(ArchKind::Ideal, ArchKind::Clank,
                      ArchKind::ClankOriginal, ArchKind::Task,
                      ArchKind::Nvmr, ArchKind::Hoop),
    [](const ::testing::TestParamInfo<ArchKind> &info) {
        return std::string(archKindName(info.param));
    });

} // namespace
} // namespace nvmr

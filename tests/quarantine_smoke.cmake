# Watchdog/quarantine acceptance check (docs/operations.md): a sweep
# over the deliberately non-terminating `spin` workload plus a real
# one. The hung cell must be retried with a doubled budget and then
# quarantined -- reported in the manifest, exit kExitDegraded (3) --
# while the healthy cell's rows still appear in the CSV. Invoked by
# the `quarantine-smoke` ctest:
#
#   cmake -DSWEEP=... -DWORKDIR=... -P quarantine_smoke.cmake

foreach(var SWEEP WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=... (see tests/CMakeLists.txt)")
    endif()
endforeach()
file(MAKE_DIRECTORY "${WORKDIR}")

# 8M cycles quarantines spin on both attempts but lets hist finish
# (its slowest trace needs ~11.4M, covered by the doubled retry).
execute_process(
    COMMAND "${SWEEP}" --workloads spin,hist --archs nvmr
            --policies jit --traces 2
            --watchdog-cycles 8000000 --watchdog-retries 1
            --stats-json "${WORKDIR}/quarantine.json"
    OUTPUT_FILE "${WORKDIR}/quarantine.csv"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR
            "expected exit 3 (degraded: quarantine), got ${rc}")
endif()

file(READ "${WORKDIR}/quarantine.json" manifest)
if(NOT manifest MATCHES "\"cell\":\"spin/nvmr/jit\"")
    message(FATAL_ERROR "manifest does not quarantine spin/nvmr/jit")
endif()
if(NOT manifest MATCHES "\"attempts\":2")
    message(FATAL_ERROR
            "hung cell was not retried before quarantine")
endif()

file(READ "${WORKDIR}/quarantine.csv" csv)
if(NOT csv MATCHES "hist")
    message(FATAL_ERROR "healthy workload rows missing from CSV")
endif()
if(csv MATCHES "spin")
    message(FATAL_ERROR "quarantined workload leaked into the CSV")
endif()

message(STATUS "quarantine-smoke: hung cell retried, quarantined, "
               "reported; campaign completed with exit 3")

/**
 * @file
 * Unit tests for the energy ledger: pending/committed semantics,
 * dead-energy reclassification and category bookkeeping.
 */

#include <gtest/gtest.h>

#include "power/energy.hh"

namespace nvmr
{
namespace
{

TEST(EnergyAccount, CommittedSpendIsVisibleImmediately)
{
    EnergyAccount acc;
    acc.spendCommitted(ECat::Backup, 100);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Backup), 100);
    EXPECT_DOUBLE_EQ(acc.grandTotal(), 100);
}

TEST(EnergyAccount, PendingIsInvisibleUntilCommit)
{
    EnergyAccount acc;
    acc.spendPending(ECat::Forward, 50);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Forward), 0);
    EXPECT_DOUBLE_EQ(acc.pendingTotal(), 50);
    acc.commitPending();
    EXPECT_DOUBLE_EQ(acc.total(ECat::Forward), 50);
    EXPECT_DOUBLE_EQ(acc.pendingTotal(), 0);
}

TEST(EnergyAccount, PowerFailureTurnsPendingIntoDead)
{
    EnergyAccount acc;
    acc.spendPending(ECat::Forward, 30);
    acc.spendPending(ECat::ForwardOverhead, 10);
    acc.pendingToDead();
    EXPECT_DOUBLE_EQ(acc.total(ECat::Forward), 0);
    EXPECT_DOUBLE_EQ(acc.total(ECat::ForwardOverhead), 0);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Dead), 40);
}

TEST(EnergyAccount, CommitPreservesCategories)
{
    EnergyAccount acc;
    acc.spendPending(ECat::Forward, 30);
    acc.spendPending(ECat::ForwardOverhead, 10);
    acc.spendPending(ECat::Reclaim, 5);
    acc.commitPending();
    EXPECT_DOUBLE_EQ(acc.total(ECat::Forward), 30);
    EXPECT_DOUBLE_EQ(acc.total(ECat::ForwardOverhead), 10);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Reclaim), 5);
}

TEST(EnergyAccount, MixedLifecycle)
{
    // Two sections: the first commits, the second dies.
    EnergyAccount acc;
    acc.spendPending(ECat::Forward, 100);
    acc.spendCommitted(ECat::Backup, 20);
    acc.commitPending();
    acc.spendPending(ECat::Forward, 60);
    acc.pendingToDead();
    acc.spendCommitted(ECat::Restore, 5);

    EXPECT_DOUBLE_EQ(acc.total(ECat::Forward), 100);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Backup), 20);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Dead), 60);
    EXPECT_DOUBLE_EQ(acc.total(ECat::Restore), 5);
    EXPECT_DOUBLE_EQ(acc.grandTotal(), 185);
}

TEST(EnergyAccount, ResetClearsEverything)
{
    EnergyAccount acc;
    acc.spendPending(ECat::Forward, 10);
    acc.spendCommitted(ECat::Backup, 10);
    acc.reset();
    EXPECT_DOUBLE_EQ(acc.grandTotal(), 0);
    EXPECT_DOUBLE_EQ(acc.pendingTotal(), 0);
}

TEST(EnergyCategories, NamesAreStable)
{
    EXPECT_STREQ(ecatName(ECat::Forward), "forward");
    EXPECT_STREQ(ecatName(ECat::Dead), "dead");
    EXPECT_STREQ(ecatName(ECat::BackupOverhead), "backup_overhead");
    EXPECT_STREQ(ecatName(ECat::Reclaim), "reclaim");
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests for the experiment harness: trace-set averaging, percent
 * saved arithmetic and Spendthrift model training end to end.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/experiment.hh"

namespace nvmr
{
namespace
{

const char *kTinyProgram = R"(
        .data
arr:    .rand 128 5 0 100
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 128
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 4
        blt  r1, r6, pass
        halt
)";

TEST(Experiment, RunOnTracesProducesOneResultPerTrace)
{
    Program prog = assemble("tiny", kTinyProgram);
    SystemConfig cfg;
    PolicySpec spec;
    auto traces = HarvestTrace::standardSet(3);
    auto runs = runOnTraces(prog, ArchKind::Clank, cfg, spec, traces);
    ASSERT_EQ(runs.size(), 3u);
    for (const RunResult &r : runs) {
        EXPECT_TRUE(r.completed);
        EXPECT_TRUE(r.validated);
    }
}

TEST(Experiment, AggregateAverages)
{
    RunResult a, b;
    a.completed = b.completed = true;
    a.validated = b.validated = true;
    a.totalEnergyNj = 100;
    b.totalEnergyNj = 300;
    a.backups = 10;
    b.backups = 20;
    Aggregate agg = aggregate({a, b});
    EXPECT_EQ(agg.runs, 2);
    EXPECT_DOUBLE_EQ(agg.totalEnergyNj, 200);
    EXPECT_DOUBLE_EQ(agg.backups, 15);
    EXPECT_TRUE(agg.allCompleted);
}

TEST(Experiment, AggregateFlagsFailures)
{
    RunResult ok, bad;
    ok.completed = ok.validated = true;
    bad.completed = true;
    bad.validated = false;
    Aggregate agg = aggregate({ok, bad});
    EXPECT_TRUE(agg.allCompleted);
    EXPECT_FALSE(agg.allValidated);
}

TEST(Experiment, PercentSavedArithmetic)
{
    Aggregate base, subject;
    base.totalEnergyNj = 200;
    subject.totalEnergyNj = 160;
    EXPECT_DOUBLE_EQ(percentSaved(base, subject), 20.0);
    subject.totalEnergyNj = 250;
    EXPECT_DOUBLE_EQ(percentSaved(base, subject), -25.0);
}

TEST(Experiment, NvmrSavesEnergyVsClankOnRmwWorkload)
{
    // The repo's headline claim in miniature: hot accumulators are
    // repeatedly evicted read-dominated, and every such eviction
    // costs Clank a full backup while NvMR just renames the block.
    Program prog = assemble("hot", R"(
        .data
acc:    .space 512              # 128 hot accumulators
idx:    .rand 2048 77 0 127
        .text
main:
        li   r1, 0
loop:
        slli r3, r1, 2          # j = idx[i]
        li   r4, idx
        add  r3, r3, r4
        ld   r5, 0(r3)
        slli r5, r5, 2          # acc[j] += i
        li   r4, acc
        add  r5, r5, r4
        ld   r6, 0(r5)
        add  r6, r6, r1
        st   r6, 0(r5)
        addi r1, r1, 1
        li   r6, 2048
        blt  r1, r6, loop
        halt
)");
    SystemConfig cfg;
    PolicySpec spec;
    auto traces = HarvestTrace::standardSet(3);
    Aggregate clank =
        runAveraged(prog, ArchKind::Clank, cfg, spec, traces);
    Aggregate nvmr =
        runAveraged(prog, ArchKind::Nvmr, cfg, spec, traces);
    ASSERT_TRUE(clank.allValidated && nvmr.allValidated);
    EXPECT_GT(percentSaved(clank, nvmr), 0.0);
    EXPECT_LT(nvmr.backups, clank.backups);
}

TEST(Experiment, TrainsSpendthriftModel)
{
    SystemConfig cfg;
    // Shrink the capacitor so JIT actually fires during training.
    cfg.capacitorFarads = 500e-6;
    double acc = 0;
    SpendthriftModel model =
        trainSpendthriftModel(ArchKind::Clank, cfg, {"hist"}, &acc);
    EXPECT_GT(acc, 0.6);
    // The model must be usable as a policy.
    float p = model.infer(8.0f, 2.0f);
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
}

std::vector<SpendthriftSample>
makeSamples(size_t negatives, size_t positives)
{
    std::vector<SpendthriftSample> s;
    for (size_t i = 0; i < negatives; ++i)
        s.push_back({1.0f + static_cast<float>(i), 2.0f, 0.0f});
    for (size_t i = 0; i < positives; ++i)
        s.push_back({9.0f + static_cast<float>(i), 3.0f, 1.0f});
    return s;
}

size_t
countPositives(const std::vector<SpendthriftSample> &s)
{
    size_t n = 0;
    for (const auto &x : s)
        n += x.label > 0.5f;
    return n;
}

TEST(Experiment, BalanceSamplesReachesQuarterRatio)
{
    // Rare positives get duplicated until they are at least 1/4 of
    // the set -- and only just: one duplicate fewer must fall short.
    for (size_t neg : {30u, 97u, 400u}) {
        for (size_t pos : {1u, 3u, 7u}) {
            auto s = makeSamples(neg, pos);
            balanceSamples(s);
            size_t balanced = countPositives(s);
            EXPECT_GE(4 * balanced, s.size())
                << neg << " negatives, " << pos << " positives";
            EXPECT_LT(4 * (balanced - 1), s.size() - 1)
                << "overshot: " << neg << "/" << pos;
            // Only positives were appended; negatives are untouched.
            EXPECT_EQ(s.size() - balanced, neg);
        }
    }
}

TEST(Experiment, BalanceSamplesLeavesBalancedSetsAlone)
{
    // Already at or above the 1/4 ratio: no duplication.
    auto s = makeSamples(12, 4);
    balanceSamples(s);
    EXPECT_EQ(s.size(), 16u);
    EXPECT_EQ(countPositives(s), 4u);

    // All-negative sets cannot be balanced by duplication.
    auto none = makeSamples(10, 0);
    balanceSamples(none);
    EXPECT_EQ(none.size(), 10u);
}

} // namespace
} // namespace nvmr

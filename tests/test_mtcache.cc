/**
 * @file
 * Unit tests for the map-table cache: set-associative lookup, LRU
 * victims, dirty accounting and the pending-new-tag count that bounds
 * map-table insertions.
 */

#include <gtest/gtest.h>

#include "core/mtcache.hh"

namespace nvmr
{
namespace
{

struct MtcTest : public ::testing::Test
{
    TechParams tech;
    NullEnergySink sink;
    MapTableCache mtc{16, 4, tech, sink};
};

TEST_F(MtcTest, MissThenHit)
{
    EXPECT_EQ(mtc.lookup(0x100), nullptr);
    MtcEntry &slot = mtc.victim(0x100);
    mtc.install(slot, 0x100, 0x100, 0x9000, true, false);
    MtcEntry *hit = mtc.lookup(0x100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->oldMap, 0x100u);
    EXPECT_EQ(hit->newMap, 0x9000u);
    EXPECT_TRUE(hit->dirty);
    EXPECT_FALSE(hit->inMapTable);
}

TEST_F(MtcTest, DirtyCountTracksInstallAndMarks)
{
    MtcEntry &a = mtc.victim(0x100);
    mtc.install(a, 0x100, 0x100, 0x9000, true, false);
    EXPECT_EQ(mtc.dirtyCount(), 1u);

    MtcEntry &b = mtc.victim(0x200);
    mtc.install(b, 0x200, 0x200, 0x200, false, true);
    EXPECT_EQ(mtc.dirtyCount(), 1u);

    mtc.markDirty(b);
    EXPECT_EQ(mtc.dirtyCount(), 2u);
    mtc.markDirty(b); // idempotent
    EXPECT_EQ(mtc.dirtyCount(), 2u);
    mtc.markClean(a);
    EXPECT_EQ(mtc.dirtyCount(), 1u);
    mtc.markClean(a);
    EXPECT_EQ(mtc.dirtyCount(), 1u);
}

TEST_F(MtcTest, InvalidateTagAdjustsDirtyCount)
{
    MtcEntry &a = mtc.victim(0x100);
    mtc.install(a, 0x100, 0x100, 0x9000, true, false);
    mtc.invalidateTag(0x100);
    EXPECT_EQ(mtc.dirtyCount(), 0u);
    EXPECT_EQ(mtc.lookup(0x100), nullptr);
}

TEST_F(MtcTest, InvalidateAllResets)
{
    for (Addr a = 0; a < 8; ++a) {
        MtcEntry &s = mtc.victim(a * 16);
        mtc.install(s, a * 16, a * 16, 0x9000 + a * 16, true, false);
    }
    mtc.invalidateAll();
    EXPECT_EQ(mtc.dirtyCount(), 0u);
    EXPECT_EQ(mtc.pendingNewTags(), 0u);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(mtc.lookup(a * 16), nullptr);
}

TEST_F(MtcTest, PendingNewTagsCountsUnpersistedTags)
{
    MtcEntry &a = mtc.victim(0x100);
    mtc.install(a, 0x100, 0x100, 0x9000, true, false); // new tag
    MtcEntry &b = mtc.victim(0x200);
    mtc.install(b, 0x200, 0x9100, 0x9100, false, true); // from MT
    EXPECT_EQ(mtc.pendingNewTags(), 1u);
}

TEST_F(MtcTest, VictimPrefersInvalid)
{
    MtcEntry &a = mtc.victim(0x100);
    mtc.install(a, 0x100, 0, 0, false, true);
    MtcEntry &b = mtc.victim(0x100);
    EXPECT_FALSE(b.valid);
    EXPECT_NE(&a, &b);
}

TEST_F(MtcTest, FullyAssociativeMode)
{
    // ways == 0 selects fully associative.
    MapTableCache fa(8, 0, tech, sink);
    for (Addr a = 0; a < 8; ++a) {
        MtcEntry &s = fa.victim(a * 16);
        EXPECT_FALSE(s.valid);
        fa.install(s, a * 16, a * 16, a * 16, false, true);
    }
    for (Addr a = 0; a < 8; ++a)
        EXPECT_NE(fa.lookup(a * 16), nullptr);
    // Ninth install must evict the LRU (tag 0, never re-touched).
    MtcEntry &v = fa.victim(0x900);
    EXPECT_TRUE(v.valid);
}

TEST_F(MtcTest, LruWithinSet)
{
    // Fully associative cache makes the LRU order easy to control.
    MapTableCache fa(4, 0, tech, sink);
    for (Addr a = 1; a <= 4; ++a) {
        MtcEntry &s = fa.victim(a * 16);
        fa.install(s, a * 16, 0, 0, false, true);
    }
    fa.lookup(16);  // refresh tag 1
    fa.lookup(48);  // refresh tag 3
    fa.lookup(64);  // refresh tag 4
    MtcEntry &v = fa.victim(0x900);
    EXPECT_EQ(v.tag, 32u); // tag 2 is LRU
}

} // namespace
} // namespace nvmr

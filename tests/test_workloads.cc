/**
 * @file
 * Workload validation: every benchmark assembles, halts on the
 * continuous interpreter, and its final memory matches the C++
 * golden model of the kernel (parameterized across all ten
 * workloads).
 */

#include <gtest/gtest.h>

#include "workloads/golden.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

class WorkloadGolden : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadGolden, AssemblesAndPassesGoldenCheck)
{
    const WorkloadInfo &info = findWorkload(GetParam());
    Program prog = assembleWorkload(info.name);
    EXPECT_FALSE(prog.text.empty());
    EXPECT_GT(prog.dataSize(), 0u);

    GoldenResult golden = runContinuous(prog);
    ASSERT_TRUE(golden.halted)
        << info.name << " did not halt within the instruction budget";
    std::string err = info.check(prog, golden);
    EXPECT_EQ(err, "") << info.name << ": " << err;
}

TEST_P(WorkloadGolden, InstructionCountInExpectedBand)
{
    // Workloads are sized for 50K..1M instructions so intermittent
    // sweeps stay tractable (DESIGN.md).
    Program prog = assembleWorkload(GetParam());
    GoldenResult golden = runContinuous(prog);
    EXPECT_GT(golden.instructions, 50000u) << GetParam();
    EXPECT_LT(golden.instructions, 1500000u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadGolden,
    ::testing::Values("adpcm_encode", "basicmath", "blowfish",
                      "dijkstra", "picojpeg", "qsort", "stringsearch",
                      "2dconv", "dwt", "hist"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Workloads, RegistryHasAllTen)
{
    EXPECT_EQ(allWorkloads().size(), 10u);
}

TEST(Workloads, DataFitsInApplicationRegion)
{
    // Program data must stay clear of the reserved renaming region
    // (2 MB NVM minus 4609 16-byte mappings).
    SystemConfig cfg;
    uint32_t reserved_base =
        cfg.nvmBytes -
        cfg.effectiveFreeListEntries() * cfg.cache.blockBytes;
    for (const WorkloadInfo &w : allWorkloads()) {
        Program prog = assembleWorkload(w.name);
        EXPECT_LT(prog.dataSize(), reserved_base) << w.name;
    }
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests for the ASCII bar-chart renderer used by the figure
 * harnesses.
 */

#include <gtest/gtest.h>

#include "common/barchart.hh"

namespace nvmr
{
namespace
{

TEST(BarChart, ScalesToWidth)
{
    BarChart chart("%", 10);
    chart.add("a", 100.0);
    chart.add("b", 50.0);
    std::string out = chart.render();
    EXPECT_NE(out.find("|##########"), std::string::npos);
    EXPECT_NE(out.find("|#####"), std::string::npos);
    EXPECT_NE(out.find("100.0%"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
}

TEST(BarChart, NegativeBarsExtendLeft)
{
    BarChart chart("%", 10);
    chart.add("win", 20.0);
    chart.add("loss", -10.0);
    std::string out = chart.render();
    // Negative bar: hashes before the axis.
    EXPECT_NE(out.find("#####|"), std::string::npos);
    EXPECT_NE(out.find("-10.0%"), std::string::npos);
}

TEST(BarChart, AxisIsAlignedAcrossRows)
{
    BarChart chart("", 4);
    chart.add("x", 1.0);
    chart.add("longer", 1.0);
    std::string out = chart.render();
    size_t nl = out.find('\n');
    std::string line1 = out.substr(0, nl);
    std::string line2 = out.substr(nl + 1);
    EXPECT_EQ(line1.find('|'), line2.find('|'));
}

TEST(BarChart, EmptyChartRendersNothing)
{
    BarChart chart;
    EXPECT_EQ(chart.render(), "");
}

TEST(BarChart, AllZeroValuesDoNotDivideByZero)
{
    BarChart chart("%", 8);
    chart.add("z", 0.0);
    std::string out = chart.render();
    EXPECT_NE(out.find("0.0%"), std::string::npos);
}

} // namespace
} // namespace nvmr

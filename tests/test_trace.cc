/**
 * @file
 * Unit tests for the synthetic harvest traces: determinism, mean
 * power, wrap-around and energy integration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "power/trace.hh"

namespace nvmr
{
namespace
{

TEST(HarvestTrace, Deterministic)
{
    HarvestTrace a(TraceKind::Rf, 42, 8.0);
    HarvestTrace b(TraceKind::Rf, 42, 8.0);
    for (Cycles c = 0; c < 100000; c += 7777)
        EXPECT_DOUBLE_EQ(a.powerMwAtCycle(c), b.powerMwAtCycle(c));
}

TEST(HarvestTrace, DifferentSeedsDiffer)
{
    HarvestTrace a(TraceKind::Wind, 1, 8.0);
    HarvestTrace b(TraceKind::Wind, 2, 8.0);
    bool differ = false;
    for (Cycles c = 0; c < 1000000 && !differ; c += 8000)
        differ = a.powerMwAtCycle(c) != b.powerMwAtCycle(c);
    EXPECT_TRUE(differ);
}

TEST(HarvestTrace, MeanNearTarget)
{
    for (TraceKind kind :
         {TraceKind::Rf, TraceKind::Solar, TraceKind::Wind}) {
        HarvestTrace t(kind, 7, 10.0);
        EXPECT_GT(t.meanMw(), 3.0) << t.name();
        EXPECT_LT(t.meanMw(), 30.0) << t.name();
    }
}

TEST(HarvestTrace, PowerIsNonNegative)
{
    for (TraceKind kind :
         {TraceKind::Rf, TraceKind::Solar, TraceKind::Wind}) {
        HarvestTrace t(kind, 11, 8.0);
        for (Cycles c = 0; c < 8000u * 30000u; c += 80000)
            EXPECT_GE(t.powerMwAtCycle(c), 0.0) << t.name();
    }
}

TEST(HarvestTrace, WrapsAround)
{
    HarvestTrace t(TraceKind::Solar, 3, 8.0, 100);
    Cycles period = 100 * HarvestTrace::cyclesPerSample;
    EXPECT_DOUBLE_EQ(t.powerMwAtCycle(0), t.powerMwAtCycle(period));
    EXPECT_DOUBLE_EQ(t.powerMwAtCycle(8000),
                     t.powerMwAtCycle(period + 8000));
}

TEST(HarvestTrace, HarvestedEnergyMatchesConstantPower)
{
    // Within one 1 ms sample the power is constant: E = P * t.
    HarvestTrace t(TraceKind::Wind, 5, 8.0);
    double p = t.powerMwAtCycle(0);
    NanoJoules e = t.harvestedNj(0, 1000);
    EXPECT_NEAR(e, p * 0.125 * 1000, 1e-9);
}

TEST(HarvestTrace, HarvestedEnergyIsAdditive)
{
    HarvestTrace t(TraceKind::Rf, 9, 8.0);
    NanoJoules whole = t.harvestedNj(0, 50000);
    NanoJoules split = t.harvestedNj(0, 20000) +
                       t.harvestedNj(20000, 30000);
    EXPECT_NEAR(whole, split, 1e-6);
}

TEST(HarvestTrace, StandardSetHasTenTraces)
{
    auto set = HarvestTrace::standardSet();
    EXPECT_EQ(set.size(), 10u);
    // Names must be distinct (distinct seeds).
    for (size_t i = 0; i < set.size(); ++i)
        for (size_t j = i + 1; j < set.size(); ++j)
            EXPECT_NE(set[i].name(), set[j].name());
}

TEST(HarvestTrace, TrainTestSplitMatchesPaper)
{
    EXPECT_EQ(HarvestTrace::trainingSet().size(), 7u);
    EXPECT_EQ(HarvestTrace::testSet().size(), 3u);
}

TEST(HarvestTrace, ContainsHardOutages)
{
    // Outage overlay: every trace must have stretches of exactly
    // zero power (these are what force restores).
    HarvestTrace t(TraceKind::Solar, 21, 9.0);
    size_t zero_run = 0, longest = 0;
    for (double s : t.samples()) {
        zero_run = s == 0.0 ? zero_run + 1 : 0;
        longest = std::max(longest, zero_run);
    }
    EXPECT_GE(longest, 200u); // at least one >= 200 ms outage
}

TEST(HarvestTrace, FromSamplesRoundTrip)
{
    std::vector<double> samples = {1.0, 2.5, 0.0, 7.75};
    HarvestTrace t = HarvestTrace::fromSamples("custom", samples);
    EXPECT_EQ(t.name(), "custom");
    EXPECT_EQ(t.samples(), samples);
    EXPECT_DOUBLE_EQ(t.meanMw(), (1.0 + 2.5 + 0.0 + 7.75) / 4.0);
    EXPECT_DOUBLE_EQ(
        t.powerMwAtCycle(HarvestTrace::cyclesPerSample), 2.5);
}

TEST(HarvestTrace, CsvRoundTrip)
{
    HarvestTrace original(TraceKind::Rf, 5, 8.0, 500);
    std::string path = ::testing::TempDir() + "/trace_rt.csv";
    original.toCsvFile(path);
    HarvestTrace loaded = HarvestTrace::fromCsvFile(path);
    ASSERT_EQ(loaded.samples().size(), original.samples().size());
    for (size_t i = 0; i < loaded.samples().size(); ++i)
        EXPECT_DOUBLE_EQ(loaded.samples()[i],
                         original.samples()[i]);
}

TEST(HarvestTrace, CsvIgnoresCommentsAndBlanks)
{
    std::string path = ::testing::TempDir() + "/trace_c.csv";
    {
        std::ofstream out(path);
        out << "# header\n\n1.5\n  2.5\n# tail\n3.5\n";
    }
    HarvestTrace t = HarvestTrace::fromCsvFile(path);
    ASSERT_EQ(t.samples().size(), 3u);
    EXPECT_DOUBLE_EQ(t.samples()[1], 2.5);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Unit tests for the NvMR free list: FIFO behaviour, pointer
 * persistence and the power-loss rollback of un-persisted pops.
 */

#include <gtest/gtest.h>

#include "core/freelist.hh"

namespace nvmr
{
namespace
{

struct FreeListTest : public ::testing::Test
{
    TechParams tech;
    NullEnergySink sink;
    FreeList fl{8, tech, sink};

    void
    fill(uint32_t n = 8)
    {
        fl.initFill(0x1000, 16, n);
    }
};

TEST_F(FreeListTest, InitFillPopulatesReservedMappings)
{
    fill(4);
    EXPECT_EQ(fl.size(), 4u);
    EXPECT_EQ(fl.pop(), 0x1000u);
    EXPECT_EQ(fl.pop(), 0x1010u);
    EXPECT_EQ(fl.pop(), 0x1020u);
    EXPECT_EQ(fl.pop(), 0x1030u);
    EXPECT_TRUE(fl.empty());
}

TEST_F(FreeListTest, PushPopFifoOrder)
{
    fill(2);
    fl.pop();
    fl.pop();
    fl.push(0xaa0);
    fl.push(0xbb0);
    EXPECT_EQ(fl.pop(), 0xaa0u);
    EXPECT_EQ(fl.pop(), 0xbb0u);
}

TEST_F(FreeListTest, PowerLossRollsBackUnpersistedPops)
{
    fill(4);
    fl.pop();
    fl.pop();
    EXPECT_EQ(fl.size(), 2u);
    // No persistPointers since initFill: a power loss restores all 4.
    fl.restorePointers();
    EXPECT_EQ(fl.size(), 4u);
    EXPECT_EQ(fl.pop(), 0x1000u); // the same mappings come back out
}

TEST_F(FreeListTest, PersistPointersCommitsPops)
{
    fill(4);
    fl.pop();
    fl.persistPointers();
    fl.pop();
    fl.restorePointers();
    EXPECT_EQ(fl.size(), 3u);
    EXPECT_EQ(fl.pop(), 0x1010u);
}

TEST_F(FreeListTest, PushesAtBackupArePersistedWithPointers)
{
    fill(2);
    fl.pop();
    fl.pop();
    // Backup: pushes followed by pointer persist.
    fl.push(0x2000);
    fl.persistPointers();
    fl.restorePointers();
    EXPECT_EQ(fl.size(), 1u);
    EXPECT_EQ(fl.pop(), 0x2000u);
}

TEST_F(FreeListTest, WrapAroundRing)
{
    fill(8);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 8; ++i) {
            Addr a = fl.pop();
            fl.push(a);
        }
        fl.persistPointers();
    }
    EXPECT_EQ(fl.size(), 8u);
}

TEST_F(FreeListTest, FullAndEmptyFlags)
{
    fill(8);
    EXPECT_TRUE(fl.full());
    EXPECT_FALSE(fl.empty());
    for (int i = 0; i < 8; ++i)
        fl.pop();
    EXPECT_TRUE(fl.empty());
    EXPECT_FALSE(fl.full());
}

TEST_F(FreeListTest, PersistCostIsTwoWordWrites)
{
    NanoJoules expect =
        2 * (tech.flashWriteWordNj +
             static_cast<double>(tech.flashWriteCycles) *
                 tech.cpuCycleNj);
    EXPECT_DOUBLE_EQ(fl.persistPointersCostNj(), expect);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests for the JSON layer and the run-manifest writer: writer
 * escaping/nesting, strict validator acceptance and rejection, stat
 * snapshots of all three stat kinds, and a full manifest from a real
 * simulated run parsed back with the validator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/assembler.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

TEST(JsonWriter, NestingAndCommas)
{
    JsonWriter w;
    w.beginObject();
    w.kv("a", 1);
    w.key("b");
    w.beginArray();
    w.value(1.5);
    w.value("two");
    w.value(true);
    w.valueNull();
    w.endArray();
    w.kv("c", std::string("x"));
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":[1.5,\"two\",true,null],\"c\":\"x\"}");
    std::string err;
    EXPECT_TRUE(jsonValidate(w.str(), &err)) << err;
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    JsonWriter w;
    w.beginObject();
    w.kv("k", std::string("a\"b\\c\n\t\x01"));
    w.endObject();
    EXPECT_TRUE(jsonValidate(w.str()));
    EXPECT_NE(w.str().find("\\\"b"), std::string::npos);
    EXPECT_NE(w.str().find("\\n"), std::string::npos);
    EXPECT_NE(w.str().find("\\u0001"), std::string::npos);
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonValidate, AcceptsAndRejects)
{
    EXPECT_TRUE(jsonValidate("{}"));
    EXPECT_TRUE(jsonValidate("[1, 2.5e-3, \"x\", null, true]"));
    EXPECT_TRUE(jsonValidate("  {\"a\": [{}]}  "));
    std::string err;
    EXPECT_FALSE(jsonValidate("", &err));
    EXPECT_FALSE(jsonValidate("{", &err));
    EXPECT_FALSE(jsonValidate("{} extra", &err));
    EXPECT_FALSE(jsonValidate("{\"a\":01}", &err));
    EXPECT_FALSE(jsonValidate("[1,]", &err));
    EXPECT_FALSE(jsonValidate("{'a':1}", &err));
    EXPECT_FALSE(jsonValidate("[\"\\x\"]", &err));
    EXPECT_FALSE(jsonValidate("nul", &err));
}

TEST(Manifest, StatJsonCoversAllKinds)
{
    Scalar s("backups", "committed backups");
    s += 42;
    std::string sj = ManifestWriter::statJson(s);
    EXPECT_TRUE(jsonValidate(sj));
    EXPECT_NE(sj.find("\"backups\""), std::string::npos);
    EXPECT_NE(sj.find("\"scalar\""), std::string::npos);

    Histogram h("intervals", "");
    h.sample(3.0);
    h.sample(700.0);
    std::string hj = ManifestWriter::statJson(h);
    EXPECT_TRUE(jsonValidate(hj));
    EXPECT_NE(hj.find("\"histogram\""), std::string::npos);
    EXPECT_NE(hj.find("\"buckets\""), std::string::npos);
    EXPECT_NE(hj.find("\"p99\""), std::string::npos);

    Distribution d("residency", "");
    d.sample(1.0);
    d.sample(2.0);
    std::string dj = ManifestWriter::statJson(d);
    EXPECT_TRUE(jsonValidate(dj));
    EXPECT_NE(dj.find("\"distribution\""), std::string::npos);
    EXPECT_NE(dj.find("\"stddev\""), std::string::npos);
}

TEST(Manifest, FullDocumentFromARealRun)
{
    Program prog = assemble("tiny", R"(
        .data
arr:    .rand 64 3 0 100
        .text
main:
        li   r1, 0
loop:
        slli r2, r1, 2
        li   r3, arr
        add  r2, r2, r3
        ld   r4, 0(r2)
        addi r4, r4, 1
        st   r4, 0(r2)
        addi r1, r1, 1
        li   r5, 64
        blt  r1, r5, loop
        halt
)");
    SystemConfig cfg;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Solar, 3, 8.0);
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);

    ManifestWriter m("test_manifest");
    m.setConfig(cfg);
    m.addRun(r);
    m.addStatGroup("tiny/nvmr", sim.archRef().statGroup());
    m.addExtra("note", std::string("unit test"));
    m.addExtra("iterations", 1.0);

    std::string doc = m.json();
    std::string err;
    ASSERT_TRUE(jsonValidate(doc, &err)) << err;
    EXPECT_NE(doc.find("\"nvmr-run-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"test_manifest\""), std::string::npos);
    EXPECT_NE(doc.find("\"capacitor_farads\""), std::string::npos);
    EXPECT_NE(doc.find("\"backup_interval_cycles\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"rename_chain_depth\""), std::string::npos);
    EXPECT_NE(doc.find("\"mtcache_residency\""), std::string::npos);
    EXPECT_NE(doc.find("\"nvm_wear_per_word\""), std::string::npos);
    EXPECT_NE(doc.find("\"tiny/nvmr\""), std::string::npos);
    EXPECT_NE(doc.find("\"unit test\""), std::string::npos);

    // writeFile round trip.
    std::string path =
        testing::TempDir() + "/nvmr_manifest_test.json";
    m.writeFile(path);
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_TRUE(jsonValidate(ss.str(), &err)) << err;
    std::remove(path.c_str());
}

} // namespace
} // namespace nvmr

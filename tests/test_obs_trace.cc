/**
 * @file
 * Unit and integration tests for the trace layer: ring-buffer wrap,
 * event ordering across a simulated power cycle, Chrome/Perfetto
 * JSON validity (parsed back with the strict validator), the binary
 * round trip, the --events text format, and the bit-identity
 * guarantee that attaching a sink changes no simulation results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

TEST(TraceBuffer, RecordsAndStampsBoundClocks)
{
    uint64_t wall = 100, active = 40;
    TraceBuffer buf(16);
    buf.bindClocks(&wall, &active);
    buf.record(EventKind::BackupBegin, 3);
    wall = 200;
    active = 90;
    buf.record(EventKind::BackupCommit, 3, 1);
    auto evs = buf.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].cycle, 100u);
    EXPECT_EQ(evs[0].active, 40u);
    EXPECT_EQ(evs[0].kind, EventKind::BackupBegin);
    EXPECT_EQ(evs[0].a0, 3u);
    EXPECT_EQ(evs[1].cycle, 200u);
    EXPECT_EQ(evs[1].a1, 1u);
}

TEST(TraceBuffer, UnboundClocksStampZero)
{
    TraceBuffer buf(4);
    buf.record(EventKind::PowerOn);
    EXPECT_EQ(buf.events()[0].cycle, 0u);
    EXPECT_EQ(buf.events()[0].active, 0u);
}

TEST(TraceBuffer, RingWrapKeepsNewestInOrder)
{
    TraceBuffer buf(8);
    for (uint64_t i = 0; i < 20; ++i)
        buf.recordAt(i, i, EventKind::CacheHit, i);
    EXPECT_EQ(buf.size(), 8u);
    EXPECT_EQ(buf.capacity(), 8u);
    EXPECT_EQ(buf.totalRecorded(), 20u);
    EXPECT_EQ(buf.dropped(), 12u);
    auto evs = buf.events();
    ASSERT_EQ(evs.size(), 8u);
    for (size_t i = 0; i < evs.size(); ++i)
        EXPECT_EQ(evs[i].a0, 12 + i) << "slot " << i;
}

TEST(TraceBuffer, WrapExactlyAtCapacityBoundary)
{
    TraceBuffer buf(4);
    for (uint64_t i = 0; i < 4; ++i)
        buf.recordAt(i, i, EventKind::CacheMiss, i);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_EQ(buf.events().front().a0, 0u);
    buf.recordAt(4, 4, EventKind::CacheMiss, 4);
    EXPECT_EQ(buf.dropped(), 1u);
    EXPECT_EQ(buf.events().front().a0, 1u);
    EXPECT_EQ(buf.events().back().a0, 4u);
}

TEST(TraceBuffer, ClearResetsEverything)
{
    TraceBuffer buf(2);
    buf.recordAt(1, 1, EventKind::Rename);
    buf.recordAt(2, 2, EventKind::Rename);
    buf.recordAt(3, 3, EventKind::Rename);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.totalRecorded(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    buf.recordAt(9, 9, EventKind::Reclaim, 7);
    ASSERT_EQ(buf.events().size(), 1u);
    EXPECT_EQ(buf.events()[0].a0, 7u);
}

TEST(TraceEventNames, AreStableAndExhaustive)
{
    EXPECT_STREQ(eventKindName(EventKind::PowerFail),
                 "power_failure");
    EXPECT_STREQ(eventKindName(EventKind::BackupCommit),
                 "backup_commit");
    EXPECT_STREQ(eventKindName(EventKind::Rename), "rename");
    EXPECT_STREQ(eventKindName(EventKind::EccCorrected),
                 "ecc_corrected");
    for (unsigned k = 0; k < kNumEventKinds; ++k) {
        const char *name =
            eventKindName(static_cast<EventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u) << "kind " << k;
    }
}

TEST(ChromeExport, ProducesValidJsonWithTracks)
{
    TraceBuffer buf(64);
    buf.recordAt(0, 0, EventKind::PowerOn);
    buf.recordAt(10, 10, EventKind::BackupBegin, 1);
    buf.recordAt(20, 20, EventKind::BackupCommit, 1, 1);
    buf.recordAt(30, 25, EventKind::CacheMiss, 0x100);
    buf.recordAt(40, 30, EventKind::PowerFail);
    std::string json = buf.toChromeJson();
    std::string err;
    EXPECT_TRUE(jsonValidate(json, &err)) << err;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("backup_commit"), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ChromeExport, EmptyBufferStillValid)
{
    TraceBuffer buf(4);
    std::string err;
    EXPECT_TRUE(jsonValidate(buf.toChromeJson(), &err)) << err;
}

TEST(BinaryExport, RoundTripsExactly)
{
    TraceBuffer buf(16);
    buf.recordAt(1, 1, EventKind::PowerOn);
    buf.recordAt(123456789012ull, 42, EventKind::Rename, 0x2000,
                 0x180400);
    buf.recordAt(~0ull, ~0ull, EventKind::FaultCrash, 17, 99);
    std::stringstream ss;
    buf.writeBinary(ss);
    auto back = TraceBuffer::readBinary(ss);
    auto orig = buf.events();
    ASSERT_EQ(back.size(), orig.size());
    for (size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].cycle, orig[i].cycle);
        EXPECT_EQ(back[i].active, orig[i].active);
        EXPECT_EQ(back[i].kind, orig[i].kind);
        EXPECT_EQ(back[i].a0, orig[i].a0);
        EXPECT_EQ(back[i].a1, orig[i].a1);
    }
}

TEST(TextSink, FormatsNarrativeEventsLikeTheLegacyPrinter)
{
    TraceEvent backup{500, 152, EventKind::BackupCommit,
                      /*reason Initial*/ 0, 1};
    EXPECT_EQ(TextSink::formatEvent(backup, false),
              "[         152] backup (initial)");
    TraceEvent fail{900, 7003, EventKind::PowerFail, 0, 0};
    EXPECT_EQ(TextSink::formatEvent(fail, false),
              "[        7003] power failure");
    TraceEvent restore{950, 7022, EventKind::Restore, 0, 2};
    EXPECT_EQ(TextSink::formatEvent(restore, false),
              "[        7022] restore");
    // Non-narrative kinds render empty unless verbose.
    TraceEvent hit{10, 10, EventKind::CacheHit, 0x100, 0};
    EXPECT_EQ(TextSink::formatEvent(hit, false), "");
    EXPECT_NE(TextSink::formatEvent(hit, true).find("cache_hit"),
              std::string::npos);
}

// ----------------------------------------------------------------------
// Integration: tracing a real intermittent run
// ----------------------------------------------------------------------

const char *kRmwProgram = R"(
        .data
arr:    .rand 256 31 0 1000
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 256
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 4
        blt  r1, r6, pass
        halt
)";

struct TracedSim : public ::testing::Test
{
    Program prog = assemble("rmw", kRmwProgram);
    SystemConfig cfg;

    TracedSim() { cfg.capacitorFarads = 7.5e-3; }

    RunResult
    run(TraceSink *sink)
    {
        WatchdogPolicy policy(4000);
        HarvestTrace trace(TraceKind::Rf, 21, 8.0);
        Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
        if (sink)
            sim.attachTrace(sink);
        return sim.run();
    }
};

TEST_F(TracedSim, EventOrderingAcrossPowerCycles)
{
    TraceBuffer buf;
    RunResult r = run(&buf);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.validated);
    ASSERT_GT(r.powerFailures, 0u) << "test needs real outages";

    auto evs = buf.events();
    ASSERT_GT(evs.size(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);

    // Wall-cycle stamps never go backwards.
    for (size_t i = 1; i < evs.size(); ++i)
        ASSERT_GE(evs[i].cycle, evs[i - 1].cycle) << "event " << i;

    // The stream starts with power-on and every power failure is
    // eventually followed by a restore (the program completed).
    EXPECT_EQ(evs.front().kind, EventKind::PowerOn);
    uint64_t fails = 0, restores = 0, commits = 0;
    int pending = 0;
    for (const TraceEvent &ev : evs) {
        if (ev.kind == EventKind::PowerFail) {
            ++fails;
            ++pending;
        } else if (ev.kind == EventKind::Restore) {
            ++restores;
            ASSERT_GT(pending, 0)
                << "restore without a preceding power failure";
            --pending;
        } else if (ev.kind == EventKind::BackupCommit) {
            ++commits;
        }
    }
    EXPECT_EQ(fails, r.powerFailures);
    EXPECT_EQ(restores, r.restores);
    EXPECT_EQ(commits, r.backups);

    // Committed backup sequence numbers strictly increase.
    uint64_t last_seq = 0;
    for (const TraceEvent &ev : evs)
        if (ev.kind == EventKind::BackupCommit) {
            EXPECT_GT(ev.a1, last_seq);
            last_seq = ev.a1;
        }
}

TEST_F(TracedSim, DisabledSinkIsBitIdentical)
{
    TraceBuffer buf;
    RunResult traced = run(&buf);
    RunResult bare = run(nullptr);
    ASSERT_GT(buf.totalRecorded(), 0u);

    EXPECT_EQ(bare.completed, traced.completed);
    EXPECT_EQ(bare.validated, traced.validated);
    EXPECT_EQ(bare.activeCycles, traced.activeCycles);
    EXPECT_EQ(bare.totalCycles, traced.totalCycles);
    EXPECT_EQ(bare.instructions, traced.instructions);
    EXPECT_EQ(bare.backups, traced.backups);
    EXPECT_EQ(bare.violations, traced.violations);
    EXPECT_EQ(bare.renames, traced.renames);
    EXPECT_EQ(bare.reclaims, traced.reclaims);
    EXPECT_EQ(bare.restores, traced.restores);
    EXPECT_EQ(bare.powerFailures, traced.powerFailures);
    EXPECT_EQ(bare.nvmReads, traced.nvmReads);
    EXPECT_EQ(bare.nvmWrites, traced.nvmWrites);
    EXPECT_EQ(bare.maxWear, traced.maxWear);
    EXPECT_EQ(bare.cacheHits, traced.cacheHits);
    EXPECT_EQ(bare.cacheMisses, traced.cacheMisses);
    // Energy is the most sensitive accumulator: bit-identical.
    for (size_t c = 0; c < kNumECats; ++c)
        EXPECT_EQ(bare.energy[c], traced.energy[c]) << "cat " << c;
    EXPECT_EQ(bare.totalEnergyNj, traced.totalEnergyNj);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Property tests of the dominance-tracking protocol (Section 3.2):
 * against a precise oracle that remembers every access since the
 * last backup, the GBF/LBF machinery must *never* classify a
 * truly-read-dominated dirty eviction as safe (no false negatives);
 * false positives (extra conservatism) are allowed and measured.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "arch_harness.hh"
#include "common/xorshift.hh"

namespace nvmr
{
namespace
{

/**
 * Precise dominance oracle: tracks, per word, whether the first
 * access since the last backup was a load; a block is truly
 * read-dominated if any word in it was read first.
 */
class DominanceOracle
{
  public:
    void
    access(Addr addr, bool is_store)
    {
        Addr word = addr & ~3u;
        if (!first.count(word))
            first[word] = is_store ? WordState::WriteDom
                                   : WordState::ReadDom;
    }

    bool
    blockReadDominated(Addr block) const
    {
        for (Addr w = block; w < block + 16; w += 4) {
            auto it = first.find(w);
            if (it != first.end() &&
                it->second == WordState::ReadDom)
                return true;
        }
        return false;
    }

    void reset() { first.clear(); }

  private:
    std::map<Addr, WordState> first;
};

/**
 * Clank variant that cross-checks every violation decision against
 * the oracle. We use Clank because its violation handling (a backup)
 * resets the section, exercising the oracle reset path too.
 */
struct DominanceHarness
{
    ArchHarness h{ArchKind::Clank};
    DominanceOracle oracle;
    XorShift rng;

    explicit DominanceHarness(uint64_t seed) : rng(seed) {}

    uint64_t
    backups() const
    {
        return h.backups();
    }
};

TEST(Dominance, NoFalseNegativesUnderRandomTraffic)
{
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        DominanceHarness d(seed);
        // Drive random word traffic over 2 KB; after every eviction
        // storm, check: if the oracle says some evicted dirty block
        // was read-dominated, the architecture must have either
        // backed up or treated it conservatively -- it must never
        // have written a truly read-dominated dirty block home
        // without a backup.
        uint64_t backups_before = d.h.backups();
        std::set<Addr> dirtied;
        for (int step = 0; step < 400; ++step) {
            Addr addr = static_cast<Addr>(
                            d.rng.range(0, 511)) * 4;
            bool is_store = d.rng.range(0, 1) == 1;
            d.oracle.access(addr, is_store);
            if (is_store) {
                d.h.arch->storeWord(addr, step);
                dirtied.insert(addr & ~15u);
            } else {
                d.h.arch->loadWord(addr);
            }
            if (d.h.backups() != backups_before) {
                // A violation backup starts a fresh code section.
                d.oracle.reset();
                backups_before = d.h.backups();
                dirtied.clear();
            }
        }
        // Force everything out and verify the decision for every
        // truly read-dominated dirty block: each such eviction must
        // coincide with a backup.
        for (Addr block : dirtied) {
            bool truly_rd = d.oracle.blockReadDominated(block);
            uint64_t before = d.h.backups();
            d.h.evict(block);
            if (truly_rd) {
                // For Clank the only safe outcome is a backup (the
                // write-back would otherwise corrupt recovery).
                EXPECT_GT(d.h.backups(), before)
                    << "seed " << seed << " block " << block
                    << ": truly read-dominated dirty eviction "
                       "without a backup";
            }
            if (d.h.backups() != before)
                d.oracle.reset();
        }
    }
}

TEST(Dominance, ConservatismIsBoundedWithLargeGbf)
{
    // With a large GBF, false positives should be rare: write-only
    // traffic must mostly avoid violations.
    SystemConfig cfg;
    cfg.gbfBits = 4096;
    ArchHarness h(ArchKind::Clank, cfg);
    for (Addr a = 0x100; a < 0x100 + 64 * 16; a += 16) {
        h.arch->storeWord(a, a); // write-first everywhere
    }
    // Touch enough blocks to force evictions of all of them.
    for (Addr a = 0x2000; a < 0x2000 + 32 * 16; a += 16)
        h.arch->loadWord(a);
    EXPECT_EQ(h.violations(), 0u)
        << "write-first traffic must not violate";
}

TEST(Dominance, TinyGbfIsConservativeNotWrong)
{
    // An 8-bit GBF saturates and flags extra violations -- that is
    // allowed (costs energy, not correctness). This documents the
    // direction of the error.
    SystemConfig cfg;
    cfg.gbfBits = 8;
    ArchHarness h(ArchKind::Clank, cfg);
    // Read-dominate many blocks and evict them (clean): saturates
    // the GBF.
    for (Addr a = 0x100; a < 0x100 + 64 * 16; a += 16)
        h.arch->loadWord(a);
    for (Addr a = 0x2000; a < 0x2000 + 32 * 16; a += 16)
        h.arch->loadWord(a);
    // Now write-first traffic to fresh blocks still looks
    // read-dominated through GBF false positives on refetch; the
    // implementation may flag violations but must never lose data.
    for (Addr a = 0x4000; a < 0x4000 + 16 * 16; a += 16)
        h.arch->storeWord(a, a);
    for (Addr a = 0x6000; a < 0x6000 + 32 * 16; a += 16)
        h.arch->loadWord(a);
    for (Addr a = 0x4000; a < 0x4000 + 16 * 16; a += 16)
        EXPECT_EQ(h.arch->inspectWord(a), a);
}

TEST(Dominance, PartialWordStoreDoesNotMakeWordWriteDominated)
{
    // Regression (found by differential fuzzing, seed 77023): a byte
    // store only partially overwrites its word. If it marked the
    // word write-dominated, a later full-word read-modify-write in
    // the same section would evade violation detection, its home
    // write-back would corrupt the recovery image, and re-execution
    // would double-apply the increment.
    ArchHarness h(ArchKind::Clank);
    uint64_t base = h.backups();
    h.arch->storeByte(0x101, 0xab); // first access: partial write
    h.arch->loadWord(0x100);        // program read of the word
    h.arch->storeWord(0x100, 42);   // full write after the read
    h.evict(0x100);
    EXPECT_GE(h.violations(), 1u);
    EXPECT_GT(h.backups(), base);
}

TEST(Dominance, FullWordStoreFirstStaysWriteDominated)
{
    // The counterpart: a *full* word store first really is
    // write-dominated; later reads of the word see the value that
    // re-execution would rewrite, so no violation is needed.
    ArchHarness h(ArchKind::Clank);
    uint64_t base = h.backups();
    h.arch->storeWord(0x100, 7);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 8);
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 0u);
    EXPECT_EQ(h.backups(), base);
}

TEST(Dominance, Seed77023PatternValidatesEndToEnd)
{
    // The distilled failing pattern: a byte store lands in the same
    // word as a +7 read-modify-write chain, under a watchdog policy
    // on a tiny capacitor (many failures).
    Program prog = assemble("p77023", R"(
        .data
arr:    .rand 64 123 0 10000
        .text
main:
        li   r1, arr
        li   r2, 40
outer:
        ldb  r5, 12(r1)
        stb  r5, 33(r1)         # byte 1 of word 32
        ld   r5, 32(r1)         # +7 RMW on the same word
        addi r5, r5, 7
        st   r5, 32(r1)
        slli r6, r2, 2          # roving traffic forces evictions
        andi r6, r6, 63
        slli r6, r6, 2
        add  r6, r6, r1
        ld   r4, 0(r6)
        add  r4, r4, r5
        st   r4, 0(r6)
        addi r2, r2, -1
        bne  r2, r0, outer
        halt
)");
    for (ArchKind kind : {ArchKind::Clank, ArchKind::ClankOriginal,
                          ArchKind::Nvmr, ArchKind::Hoop}) {
        SystemConfig cfg = SystemConfig::smallPlatform();
        WatchdogPolicy policy(300);
        HarvestTrace trace(TraceKind::Rf, 117023, 7.0);
        Simulator sim(prog, kind, cfg, policy, trace);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << archKindName(kind);
        EXPECT_TRUE(r.validated) << archKindName(kind);
    }
}

TEST(Dominance, ByteGranularLbfTracksPartialStoresPrecisely)
{
    // With byte-granular LBF, a byte store really is a full
    // overwrite of its unit: a block touched only by byte stores is
    // write-dominated (no violation), while a byte store next to a
    // program read still violates.
    SystemConfig cfg;
    cfg.cache.lbfGranularityBytes = 1;

    {
        ArchHarness h(ArchKind::Clank, cfg);
        uint64_t base = h.backups();
        h.arch->storeByte(0x101, 0x11);
        h.arch->storeByte(0x102, 0x22);
        h.evict(0x100);
        EXPECT_EQ(h.violations(), 0u)
            << "pure byte stores are precise overwrites at byte "
               "granularity";
        EXPECT_EQ(h.backups(), base);
    }
    {
        ArchHarness h(ArchKind::Clank, cfg);
        uint64_t base = h.backups();
        h.arch->loadByte(0x101);        // read byte 1
        h.arch->storeByte(0x101, 0x33); // overwrite the read byte
        h.evict(0x100);
        EXPECT_EQ(h.violations(), 1u);
        EXPECT_GT(h.backups(), base);
    }
}

TEST(Dominance, ByteGranularLbfStillCatchesWordRmw)
{
    SystemConfig cfg;
    cfg.cache.lbfGranularityBytes = 1;
    ArchHarness h(ArchKind::Clank, cfg);
    uint64_t base = h.backups();
    h.arch->storeByte(0x101, 0xab); // byte overwrite: W
    h.arch->loadWord(0x100);        // reads bytes 0,2,3: R
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    EXPECT_GE(h.violations(), 1u);
    EXPECT_GT(h.backups(), base);
}

TEST(Dominance, ByteGranularLbfValidatesEndToEnd)
{
    Program prog = assemble("bg", R"(
        .data
arr:    .rand 64 55 0 10000
        .text
main:
        li   r1, arr
        li   r2, 30
outer:
        ldb  r5, 12(r1)
        stb  r5, 33(r1)
        ld   r5, 32(r1)
        addi r5, r5, 7
        st   r5, 32(r1)
        slli r6, r2, 2
        andi r6, r6, 63
        slli r6, r6, 2
        add  r6, r6, r1
        ldb  r4, 1(r6)
        stb  r4, 2(r6)
        addi r2, r2, -1
        bne  r2, r0, outer
        halt
)");
    for (ArchKind kind : {ArchKind::Clank, ArchKind::Nvmr}) {
        SystemConfig cfg = SystemConfig::smallPlatform();
        cfg.cache.lbfGranularityBytes = 1;
        WatchdogPolicy policy(300);
        HarvestTrace trace(TraceKind::Rf, 424242, 7.0);
        Simulator sim(prog, kind, cfg, policy, trace);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << archKindName(kind);
        EXPECT_TRUE(r.validated) << archKindName(kind);
    }
}

TEST(Dominance, LbfStatesResetAtBackupButDataSurvives)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x104, 5);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    // Post-backup: same block still cached with its data, LBF clear.
    EXPECT_EQ(h.arch->loadWord(0x104), 5u);
    // This load re-marked 0x104 read-dominated in the *new* section;
    // a store then makes it a genuine violation pattern again.
    h.arch->storeWord(0x104, 6);
    uint64_t before = h.backups();
    h.evict(0x100);
    EXPECT_EQ(h.backups(), before + 1);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Property tests for the CPU's arithmetic semantics: random
 * straight-line instruction streams are executed both by the
 * interpreter and by a C++ reference evaluator operating on the same
 * register model; all 16 registers must agree afterwards. Covers the
 * signed/unsigned corner cases (shift masking, division edge cases,
 * wrap-around) across thousands of random operand combinations.
 */

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "common/xorshift.hh"
#include "cpu/cpu.hh"
#include "isa/assembler.hh"
#include "mem/port.hh"

namespace nvmr
{
namespace
{

/** Reference implementation of the iisa arithmetic semantics. */
Word
refAlu(Op op, Word a, Word b, int32_t imm)
{
    SWord sa = static_cast<SWord>(a);
    SWord sb = static_cast<SWord>(b);
    Word ib = static_cast<Word>(imm);
    switch (op) {
      case Op::ADD: return a + b;
      case Op::SUB: return a - b;
      case Op::MUL: return a * b;
      case Op::DIV:
        if (sb == 0)
            return static_cast<Word>(-1);
        if (sa == INT32_MIN && sb == -1)
            return static_cast<Word>(INT32_MIN);
        return static_cast<Word>(sa / sb);
      case Op::REM:
        if (sb == 0)
            return a;
        if (sa == INT32_MIN && sb == -1)
            return 0;
        return static_cast<Word>(sa % sb);
      case Op::AND: return a & b;
      case Op::OR: return a | b;
      case Op::XOR: return a ^ b;
      case Op::SLL: return a << (b & 31);
      case Op::SRL: return a >> (b & 31);
      case Op::SRA: return static_cast<Word>(sa >> (b & 31));
      case Op::SLT: return sa < sb ? 1 : 0;
      case Op::SLTU: return a < b ? 1 : 0;
      case Op::ADDI: return a + ib;
      case Op::ANDI: return a & ib;
      case Op::ORI: return a | ib;
      case Op::XORI: return a ^ ib;
      case Op::SLLI: return a << (imm & 31);
      case Op::SRLI: return a >> (imm & 31);
      case Op::SRAI: return static_cast<Word>(sa >> (imm & 31));
      case Op::SLTI: return sa < imm ? 1 : 0;
      case Op::MULI: return a * ib;
      default: return 0;
    }
}

class NullPort : public DataPort
{
  public:
    Word loadWord(Addr) override { return 0; }
    void storeWord(Addr, Word) override {}
    uint8_t loadByte(Addr) override { return 0; }
    void storeByte(Addr, uint8_t) override {}
};

struct GeneratedProgram
{
    std::string source;
    std::vector<Instruction> ref_stream;
};

const char *kRTypeNames[] = {"add", "sub", "mul", "div", "rem",
                             "and", "or", "xor", "sll", "srl",
                             "sra", "slt", "sltu"};
const Op kRTypeOps[] = {Op::ADD, Op::SUB, Op::MUL, Op::DIV, Op::REM,
                        Op::AND, Op::OR, Op::XOR, Op::SLL, Op::SRL,
                        Op::SRA, Op::SLT, Op::SLTU};
const char *kITypeNames[] = {"addi", "andi", "ori", "xori", "slli",
                             "srli", "srai", "slti", "muli"};
const Op kITypeOps[] = {Op::ADDI, Op::ANDI, Op::ORI, Op::XORI,
                        Op::SLLI, Op::SRLI, Op::SRAI, Op::SLTI,
                        Op::MULI};

GeneratedProgram
generate(uint64_t seed, int length)
{
    XorShift rng(seed);
    GeneratedProgram g;
    std::ostringstream os;
    // Seed the registers with interesting values.
    const int64_t interesting[] = {0,          1,       -1,
                                   2147483647, -2147483648ll,
                                   65536,      -65536,  31,
                                   32,         255};
    for (unsigned r = 1; r < kNumRegs; ++r) {
        int64_t v = rng.range(0, 2) == 0
                        ? interesting[rng.range(0, 9)]
                        : static_cast<int64_t>(
                              static_cast<int32_t>(rng.next32()));
        os << "        li   r" << r << ", " << v << "\n";
    }
    for (int i = 0; i < length; ++i) {
        unsigned rd = static_cast<unsigned>(rng.range(1, 13));
        unsigned rs1 = static_cast<unsigned>(rng.range(0, 13));
        if (rng.range(0, 1) == 0) {
            int k = static_cast<int>(rng.range(0, 12));
            unsigned rs2 = static_cast<unsigned>(rng.range(0, 13));
            os << "        " << kRTypeNames[k] << " r" << rd << ", r"
               << rs1 << ", r" << rs2 << "\n";
            g.ref_stream.push_back({kRTypeOps[k],
                                    static_cast<uint8_t>(rd),
                                    static_cast<uint8_t>(rs1),
                                    static_cast<uint8_t>(rs2), 0});
        } else {
            int k = static_cast<int>(rng.range(0, 8));
            int32_t imm = static_cast<int32_t>(
                rng.range(0, 3) == 0 ? rng.range(-40, 40)
                                     : static_cast<int64_t>(
                                           static_cast<int32_t>(
                                               rng.next32())));
            os << "        " << kITypeNames[k] << " r" << rd << ", r"
               << rs1 << ", " << imm << "\n";
            g.ref_stream.push_back({kITypeOps[k],
                                    static_cast<uint8_t>(rd),
                                    static_cast<uint8_t>(rs1), 0,
                                    imm});
        }
    }
    os << "        halt\n";
    g.source = os.str();
    return g;
}

class CpuProperties : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CpuProperties, RandomAluStreamMatchesReference)
{
    GeneratedProgram g = generate(GetParam(), 60);
    Program prog = assemble("alu", g.source);
    NullPort port;
    Cpu cpu(prog, port);

    // Reference register file, following the same li prologue.
    std::array<Word, kNumRegs> ref{};
    size_t pc = 0;
    for (unsigned r = 1; r < kNumRegs; ++r, ++pc)
        ref[r] = static_cast<Word>(prog.text[pc].imm);

    for (const Instruction &inst : g.ref_stream) {
        Word result = refAlu(inst.op, ref[inst.rs1], ref[inst.rs2],
                             inst.imm);
        if (inst.rd != kRegZero)
            ref[inst.rd] = result;
    }

    while (!cpu.halted())
        cpu.step();

    for (unsigned r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(cpu.reg(r), ref[r]) << "register r" << r;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuProperties,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace nvmr

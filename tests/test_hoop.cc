/**
 * @file
 * Behavioural tests for the simplified HOOP architecture: evictions
 * buffer word updates out of place, backups commit the buffer to the
 * OOP region, restore garbage-collects the redo log, and the home
 * addresses are never corrupted by un-committed updates.
 */

#include <gtest/gtest.h>

#include "arch_harness.hh"
#include "arch/hoop.hh"

namespace nvmr
{
namespace
{

HoopArch &
hoopOf(ArchHarness &h)
{
    return *static_cast<HoopArch *>(h.arch.get());
}

TEST(Hoop, EvictionBuffersUpdatesWithoutTouchingHome)
{
    ArchHarness h(ArchKind::Hoop);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    EXPECT_GT(hoopOf(h).oopBufferFill(), 0u);
    EXPECT_EQ(h.nvm->peekWord(0x100), 0u); // home untouched
    EXPECT_EQ(h.arch->loadWord(0x100), 42u); // served from buffer
}

TEST(Hoop, EvictionBuffersWholeBlocks)
{
    // The cache has no per-word dirty bits: a dirty eviction pushes
    // every word of the block into the OOP buffer, which is why the
    // paper notes that store locality determines HOOP's packing
    // efficiency.
    ArchHarness h(ArchKind::Hoop);
    h.arch->loadWord(0x100);   // fetch whole block
    h.arch->storeWord(0x104, 7);
    h.evict(0x100);
    EXPECT_EQ(hoopOf(h).oopBufferFill(), 4u);
}

TEST(Hoop, BackupCommitsBufferToRegion)
{
    ArchHarness h(ArchKind::Hoop);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    EXPECT_EQ(hoopOf(h).oopBufferFill(), 0u);
    EXPECT_GT(hoopOf(h).oopRegionFill(), 0u);
    // Home is still not updated (the log holds the value)...
    EXPECT_EQ(h.nvm->peekWord(0x100), 0u);
    // ...but reads see it.
    EXPECT_EQ(h.arch->loadWord(0x100), 42u);
}

TEST(Hoop, BackupCommitsDirtyCacheWordsToo)
{
    ArchHarness h(ArchKind::Hoop);
    h.arch->storeWord(0x200, 9); // still in the cache, never evicted
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    h.arch->onPowerFail();
    EXPECT_EQ(h.arch->loadWord(0x200), 9u);
}

TEST(Hoop, PowerLossDropsUncommittedBuffer)
{
    ArchHarness h(ArchKind::Hoop);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);              // buffered, not committed
    h.arch->onPowerFail();
    EXPECT_EQ(hoopOf(h).oopBufferFill(), 0u);
    EXPECT_EQ(h.arch->loadWord(0x100), 0u); // recovery sees home
}

TEST(Hoop, RestoreGarbageCollectsLogOntoHome)
{
    ArchHarness h(ArchKind::Hoop);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    h.arch->onPowerFail();
    uint64_t gcs_before = hoopOf(h).gcCount();
    h.arch->performRestore();
    EXPECT_EQ(hoopOf(h).gcCount(), gcs_before + 1);
    EXPECT_EQ(hoopOf(h).oopRegionFill(), 0u);
    EXPECT_EQ(h.nvm->peekWord(0x100), 42u); // applied to home
    EXPECT_EQ(h.arch->loadWord(0x100), 42u);
}

TEST(Hoop, BufferFullForcesBackup)
{
    SystemConfig cfg;
    cfg.oopBufferEntries = 4;
    ArchHarness h(ArchKind::Hoop, cfg);
    uint64_t base = h.backups();
    // Dirty 3 words in each of 3 blocks and evict them: 9 updates
    // overflow a 4-entry buffer.
    for (Addr blk : {0x100u, 0x200u, 0x300u}) {
        h.arch->storeWord(blk, blk);
        h.arch->storeWord(blk + 4, blk + 4);
        h.arch->storeWord(blk + 8, blk + 8);
        h.evict(blk);
    }
    uint64_t full_backups = h.arch->stats().backupsByReason[
        static_cast<size_t>(BackupReason::OopBufferFull)];
    EXPECT_GE(full_backups, 1u);
    EXPECT_GT(h.backups(), base);
    EXPECT_EQ(h.arch->loadWord(0x300), 0x300u);
}

TEST(Hoop, RegionFullTriggersGarbageCollection)
{
    SystemConfig cfg;
    cfg.oopBufferEntries = 8;
    cfg.oopRegionEntries = 12;
    ArchHarness h(ArchKind::Hoop, cfg);
    uint64_t gcs_before = hoopOf(h).gcCount();
    // Commit more than 12 distinct word updates across backups.
    for (int round = 0; round < 4; ++round) {
        for (int w = 0; w < 6; ++w)
            h.arch->storeWord(0x400u + 64u * round + 4u * w,
                              round * 10 + w);
        h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    }
    EXPECT_GT(hoopOf(h).gcCount(), gcs_before);
    // All committed values remain readable.
    EXPECT_EQ(h.arch->loadWord(0x400), 0u * 10u + 0u);
    EXPECT_EQ(h.arch->loadWord(0x400 + 64 * 3 + 4 * 5), 35u);
}

TEST(Hoop, BufferIsAnAppendOnlyLog)
{
    ArchHarness h(ArchKind::Hoop);
    for (int i = 0; i < 5; ++i) {
        h.arch->storeWord(0x100, i);
        h.evict(0x100);
    }
    // Every eviction appends the whole block: no coalescing (this is
    // why low store locality hurts HOOP in the paper). Reads still
    // see the newest value.
    EXPECT_EQ(hoopOf(h).oopBufferFill(), 20u);
    EXPECT_EQ(h.arch->loadWord(0x100), 4u);
}

TEST(Hoop, NoViolationsEver)
{
    ArchHarness h(ArchKind::Hoop);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 1);
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 0u);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Unit tests for the Spendthrift MLP: training on separable data,
 * determinism, probability outputs and accuracy reporting.
 */

#include <gtest/gtest.h>

#include "common/xorshift.hh"
#include "power/spendthrift.hh"

namespace nvmr
{
namespace
{

std::vector<SpendthriftSample>
thresholdData(size_t n, uint64_t seed)
{
    // Fire when voltage is low and harvest is weak.
    XorShift rng(seed);
    std::vector<SpendthriftSample> samples;
    for (size_t i = 0; i < n; ++i) {
        float h = static_cast<float>(rng.uniform()) * 20.0f;
        float v = 1.8f + static_cast<float>(rng.uniform()) * 0.6f;
        float label = (v < 1.95f && h < 10.0f) ? 1.0f : 0.0f;
        samples.push_back({h, v, label});
    }
    return samples;
}

TEST(Spendthrift, OutputsAreProbabilities)
{
    SpendthriftModel model;
    for (float v = 1.8f; v <= 2.4f; v += 0.1f) {
        float p = model.infer(8.0f, v);
        EXPECT_GT(p, 0.0f);
        EXPECT_LT(p, 1.0f);
    }
}

TEST(Spendthrift, LearnsSeparableData)
{
    SpendthriftModel model;
    auto train = thresholdData(2000, 1);
    model.train(train, 40);
    auto test = thresholdData(500, 2);
    EXPECT_GT(model.accuracy(test), 0.9);
}

TEST(Spendthrift, TrainingIsDeterministic)
{
    auto data = thresholdData(500, 3);
    SpendthriftModel a, b;
    a.train(data, 10, 0.05f, 42);
    b.train(data, 10, 0.05f, 42);
    for (float v = 1.8f; v <= 2.4f; v += 0.07f)
        EXPECT_FLOAT_EQ(a.infer(5.0f, v), b.infer(5.0f, v));
}

TEST(Spendthrift, AccuracyOfUntrainedModelIsPoorOrTrivial)
{
    SpendthriftModel model;
    auto data = thresholdData(500, 4);
    double acc = model.accuracy(data);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(Spendthrift, AccuracyOnEmptySetIsZero)
{
    SpendthriftModel model;
    EXPECT_DOUBLE_EQ(model.accuracy({}), 0.0);
}

TEST(Spendthrift, PredictUsesHalfThreshold)
{
    SpendthriftModel model;
    std::vector<SpendthriftSample> always = {{5, 1.9f, 1}};
    for (int i = 0; i < 50; ++i)
        always.push_back({5, 1.9f, 1});
    model.train(always, 100);
    EXPECT_TRUE(model.predict(5, 1.9f));
}

} // namespace
} // namespace nvmr

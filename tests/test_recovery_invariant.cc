/**
 * @file
 * The recovery invariant, checked live: at every persisted backup the
 * architecture's view of the application data is captured, and at
 * every restore the view must match the most recent capture exactly
 * — renaming, log replay and pointer rollback included. This is the
 * operational form of DESIGN.md's "renaming recovery invariant".
 */

#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

const char *kProgram = R"(
        .data
arr:    .rand 192 13 0 2000
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        muli r5, r5, 3
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 192
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 6
        blt  r1, r6, pass
        halt
)";

/** Captures the app image at backups, checks it at restores. */
class RecoveryChecker : public SimObserver
{
  public:
    RecoveryChecker(Simulator &simulator, uint32_t app_words)
        : sim(simulator), words(app_words)
    {
    }

    void
    onBackup(BackupReason, Cycles) override
    {
        image.resize(words);
        for (uint32_t w = 0; w < words; ++w)
            image[w] = sim.archRef().inspectWord(w * kWordBytes);
        haveImage = true;
    }

    void
    onRestore(Cycles at) override
    {
        ASSERT_TRUE(haveImage) << "restore before any backup";
        ++restoresChecked;
        for (uint32_t w = 0; w < words; ++w) {
            Word got = sim.archRef().inspectWord(w * kWordBytes);
            ASSERT_EQ(got, image[w])
                << "recovery mismatch at word " << w
                << " after restore @" << at;
        }
    }

    Simulator &sim;
    uint32_t words;
    std::vector<Word> image;
    bool haveImage = false;
    uint64_t restoresChecked = 0;
};

class RecoveryInvariant : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(RecoveryInvariant, RestoreAlwaysSeesLastBackupImage)
{
    Program prog = assemble("recov", kProgram);
    SystemConfig cfg = SystemConfig::smallPlatform();
    cfg.mapTableEntries = 64;
    // A leaky standby regulator: every JIT hibernation browns out
    // instead of recovering, so restores actually happen within this
    // short program.
    cfg.tech.hibernateLeakNjPerCycle = 5.0;

    uint64_t restores_checked = 0;
    for (uint64_t seed : {2024u, 2025u, 2026u}) {
        JitPolicy policy;
        HarvestTrace trace(TraceKind::Rf, seed, 7.0);
        Simulator sim(prog, GetParam(), cfg, policy, trace);
        RecoveryChecker checker(sim, 192);
        sim.attachObserver(&checker);

        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << "seed " << seed;
        EXPECT_TRUE(r.validated) << "seed " << seed;
        restores_checked += checker.restoresChecked;
    }
    EXPECT_GT(restores_checked, 0u)
        << "test needs at least one power failure to be meaningful";
}

TEST_P(RecoveryInvariant, HoldsUnderWatchdogToo)
{
    Program prog = assemble("recov", kProgram);
    SystemConfig cfg = SystemConfig::smallPlatform();
    cfg.mapTableEntries = 64;

    WatchdogPolicy policy(300);
    HarvestTrace trace(TraceKind::Wind, 999, 7.0);
    Simulator sim(prog, GetParam(), cfg, policy, trace);
    RecoveryChecker checker(sim, 192);
    sim.attachObserver(&checker);

    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(checker.restoresChecked, 0u);
}

/**
 * The invariant under injected crashes: cut power at every persist
 * boundary of two early backups (so every phase of the backup
 * protocol -- snapshot staging, journal copies, map-table and
 * free-list updates, commit, post-commit replay and reclamation --
 * gets torn at least once) and require that every crashed run still
 * recovers, completes, and matches the golden continuous execution.
 */
TEST_P(RecoveryInvariant, SurvivesCrashAtEveryBackupPhase)
{
    Program prog = assemble("recov", kProgram);
    SystemConfig cfg = SystemConfig::smallPlatform();
    cfg.mapTableEntries = 64;

    // Census pass: record each backup's persist-boundary window.
    std::vector<FaultInjector::BackupWindow> windows;
    {
        RunOptions census;
        census.faults.enabled = true;
        census.validate = false;
        WatchdogPolicy policy(300);
        HarvestTrace trace(TraceKind::Wind, 999, 7.0);
        Simulator sim(prog, GetParam(), cfg, policy, trace, census);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed);
        windows = sim.faultInjector().backupWindows();
    }
    ASSERT_GE(windows.size(), 4u);

    uint64_t torn_total = 0;
    for (size_t i : {size_t(1), size_t(2)}) {
        for (uint64_t p = windows[i].firstPersist;
             p <= windows[i].lastPersist; ++p) {
            RunOptions opts;
            opts.faults.enabled = true;
            opts.faults.crashAtPersist = p;
            WatchdogPolicy policy(300);
            HarvestTrace trace(TraceKind::Wind, 999, 7.0);
            Simulator sim(prog, GetParam(), cfg, policy, trace,
                          opts);
            RunResult r = sim.run();
            ASSERT_TRUE(r.completed) << "stuck at persist " << p;
            ASSERT_TRUE(r.validated) << "diverged at persist " << p;
            ASSERT_EQ(r.injectedCrashes, 1u) << "persist " << p;
            torn_total += r.tornBackups;
        }
    }
    EXPECT_GT(torn_total, 0u)
        << "at least one crash point must tear a backup";
}

INSTANTIATE_TEST_SUITE_P(
    Archs, RecoveryInvariant,
    ::testing::Values(ArchKind::Clank, ArchKind::Nvmr,
                      ArchKind::Hoop, ArchKind::Task),
    [](const ::testing::TestParamInfo<ArchKind> &info) {
        return archKindName(info.param);
    });

} // namespace
} // namespace nvmr

# Determinism-contract check for the parallel engine
# (docs/performance.md): every campaign driver must produce
# byte-identical stdout and stats JSON whatever the worker count.
# Invoked by the `par-determinism` ctest with the tool paths:
#
#   cmake -DSWEEP=... -DFUZZ=... -DDIFF=... -DWORKDIR=... \
#         -P par_determinism.cmake

foreach(var SWEEP FUZZ DIFF WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=... (see tests/CMakeLists.txt)")
    endif()
endforeach()
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_case label exe)
    foreach(jobs 1 8)
        execute_process(
            COMMAND "${exe}" ${ARGN} --jobs ${jobs}
                    --stats-json "${WORKDIR}/${label}_j${jobs}.json"
            OUTPUT_FILE "${WORKDIR}/${label}_j${jobs}.out"
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                    "${label} --jobs ${jobs} exited with ${rc}")
        endif()
    endforeach()
    foreach(ext out json)
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                    "${WORKDIR}/${label}_j1.${ext}"
                    "${WORKDIR}/${label}_j8.${ext}"
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                    "${label}: --jobs 1 vs --jobs 8 .${ext} differs "
                    "(determinism contract violated)")
        endif()
    endforeach()
    message(STATUS "${label}: byte-identical across worker counts")
endfunction()

run_case(sweep "${SWEEP}" --workloads hist --traces 2)
run_case(fuzz "${FUZZ}" --oracle 6)
run_case(diff "${DIFF}" --smoke)

/**
 * @file
 * Shared fixture for driving an intermittent architecture directly
 * (no full simulator): a recording energy sink, a backup host that
 * performs backups immediately, and helpers to force evictions on
 * the 2-set data cache of Table 2.
 */

#ifndef NVMR_TESTS_ARCH_HARNESS_HH
#define NVMR_TESTS_ARCH_HARNESS_HH

#include <memory>

#include "arch/arch.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"

namespace nvmr
{

/** Sink that records spending but never browns out. */
class RecordingTestSink : public EnergySink
{
  public:
    void consume(NanoJoules nj) override { energy += nj; }
    void consumeOverhead(NanoJoules nj) override { overhead += nj; }
    void addCycles(Cycles n) override { cycles += n; }

    NanoJoules energy = 0;
    NanoJoules overhead = 0;
    Cycles cycles = 0;
};

/** Host that performs requested backups unconditionally. */
class ImmediateBackupHost : public BackupHost
{
  public:
    explicit ImmediateBackupHost(IntermittentArch *a) : arch(a) {}

    void
    requestBackup(BackupReason reason) override
    {
        arch->performBackup(snapshot, reason);
        arch->postBackup(reason);
        ++requests;
    }

    IntermittentArch *arch;
    CpuSnapshot snapshot;
    int requests = 0;
};

/** Harness owning one architecture over a small program image. */
struct ArchHarness
{
    SystemConfig cfg;
    RecordingTestSink sink;
    std::unique_ptr<Nvm> nvm;
    std::unique_ptr<IntermittentArch> arch;
    std::unique_ptr<ImmediateBackupHost> host;
    Program prog;

    explicit ArchHarness(ArchKind kind, SystemConfig config = {})
        : cfg(config)
    {
        prog = assemble("t", R"(
        .data
d:      .space 8192
        .text
        halt
)");
        nvm = std::make_unique<Nvm>(cfg.nvmBytes, cfg.tech, sink);
        arch = makeArch(kind, cfg, *nvm, sink);
        host = std::make_unique<ImmediateBackupHost>(arch.get());
        arch->attachHost(host.get());
        arch->initialize(prog);
        // Establish an initial recovery point like the simulator.
        arch->performBackup(CpuSnapshot{}, BackupReason::Initial);
    }

    /**
     * Force the block containing `addr` out of the cache by filling
     * its set with conflicting clean blocks from high addresses.
     * Table 2's cache has 2 sets of 8 ways; blocks with the same
     * (blockIndex & 1) map to the same set.
     */
    void
    evict(Addr addr)
    {
        Addr block = addr & ~0xfu;
        uint32_t parity = (block / 16) & 1;
        Addr base = 0x1000 + parity * 16;
        for (int i = 0; i < 8; ++i)
            arch->loadWord(base + 32u * i);
    }

    uint64_t backups() const
    {
        return static_cast<uint64_t>(arch->stats().backups.value());
    }
    uint64_t violations() const
    {
        return static_cast<uint64_t>(
            arch->stats().violations.value());
    }
    uint64_t renames() const
    {
        return static_cast<uint64_t>(arch->stats().renames.value());
    }
    uint64_t reclaims() const
    {
        return static_cast<uint64_t>(arch->stats().reclaims.value());
    }
};

} // namespace nvmr

#endif // NVMR_TESTS_ARCH_HARNESS_HH

/**
 * @file
 * Unit tests for the stat registry and the table printer.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/table.hh"

namespace nvmr
{
namespace
{

TEST(Stats, ScalarArithmetic)
{
    Scalar s("n", "a counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, GroupLookup)
{
    Scalar a("a", ""), b("b", "");
    StatGroup g;
    g.add(&a);
    g.add(&b);
    a += 7;
    EXPECT_EQ(g.find("a"), &a);
    EXPECT_EQ(g.find("zzz"), nullptr);
    EXPECT_DOUBLE_EQ(g.get("a"), 7.0);
    EXPECT_DOUBLE_EQ(g.get("zzz"), 0.0);
}

TEST(Stats, HasReportsExistenceAcrossKinds)
{
    Scalar a("a", "");
    Histogram h("h", "");
    Distribution d("d", "");
    StatGroup g;
    g.add(&a);
    g.add(&h);
    g.add(&d);
    EXPECT_TRUE(g.has("a"));
    EXPECT_TRUE(g.has("h"));
    EXPECT_TRUE(g.has("d"));
    EXPECT_FALSE(g.has("zzz"));
    EXPECT_EQ(g.findHistogram("h"), &h);
    EXPECT_EQ(g.findDistribution("d"), &d);
    // Kind-checked lookups reject the wrong shape.
    EXPECT_EQ(g.find("h"), nullptr);
    EXPECT_EQ(g.findHistogram("a"), nullptr);
    EXPECT_EQ(g.findDistribution("h"), nullptr);
    EXPECT_EQ(g.findStat("h"), &h);
}

TEST(StatsDeathTest, ValuePanicsOnMissingStat)
{
    Scalar a("a", "");
    StatGroup g;
    g.add(&a);
    EXPECT_DOUBLE_EQ(g.value("a"), 0.0);
    EXPECT_DEATH(g.value("renamed_counter"), "renamed_counter");
}

TEST(Stats, GroupResetAll)
{
    Scalar a("a", ""), b("b", "");
    StatGroup g;
    g.add(&a);
    g.add(&b);
    a += 1;
    b += 2;
    g.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, PreservesRegistrationOrder)
{
    Scalar a("a", ""), b("b", ""), c("c", "");
    StatGroup g;
    g.add(&b);
    g.add(&a);
    g.add(&c);
    ASSERT_EQ(g.all().size(), 3u);
    EXPECT_EQ(g.all()[0], &b);
    EXPECT_EQ(g.all()[1], &a);
}

TEST(Table, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(Table, ShortRowsPadWithEmptyCells)
{
    TablePrinter t({"a", "b", "c"});
    t.addRow({"1"});
    std::string out = t.render();
    EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

} // namespace
} // namespace nvmr

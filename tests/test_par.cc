/**
 * @file
 * Tests for the parallel execution engine: deterministic gather
 * order, worker-count independence, nested calls, exception
 * propagation, job-count resolution and the NVMR_JOBS override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "par/par.hh"

namespace nvmr
{
namespace
{

/** A deterministic, order-sensitive function of the index. */
uint64_t
mix(size_t i)
{
    uint64_t x = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull + 1;
    x ^= x >> 27;
    return x * 0x2545f4914f6cdd1dull;
}

TEST(Par, HardwareJobsIsPositive)
{
    EXPECT_GE(par::hardwareJobs(), 1u);
    EXPECT_GE(par::defaultJobs(), 1u);
}

TEST(Par, GlobalJobsRoundTrip)
{
    unsigned before = par::globalJobs();
    par::setGlobalJobs(3);
    EXPECT_EQ(par::globalJobs(), 3u);
    par::setGlobalJobs(0); // restore the default resolution
    EXPECT_EQ(par::globalJobs(), par::defaultJobs());
    par::setGlobalJobs(before == par::defaultJobs() ? 0 : before);
}

TEST(Par, ParseJobsValueAcceptsPositiveIntegers)
{
    EXPECT_EQ(par::parseJobsValue("1"), 1u);
    EXPECT_EQ(par::parseJobsValue("8"), 8u);
    EXPECT_EQ(par::parseJobsValue("64"), 64u);
}

TEST(Par, EveryIndexRunsExactlyOnce)
{
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    par::parallelFor(
        n, [&](size_t i) { hits[i].fetch_add(1); }, 8);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Par, GatherOrderIsCanonical)
{
    constexpr size_t n = 513;
    auto out = par::parallelMap<uint64_t>(
        n, [](size_t i) { return mix(i); }, 8);
    ASSERT_EQ(out.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], mix(i)) << "index " << i;
}

TEST(Par, ResultsAreIdenticalAcrossWorkerCounts)
{
    constexpr size_t n = 777;
    auto serial = par::parallelMap<uint64_t>(
        n, [](size_t i) { return mix(i) ^ i; }, 1);
    for (unsigned jobs : {2u, 4u, 8u, 16u}) {
        auto parallel = par::parallelMap<uint64_t>(
            n, [](size_t i) { return mix(i) ^ i; }, jobs);
        EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
    }
}

TEST(Par, NestedParallelForRunsInline)
{
    constexpr size_t outer = 16;
    constexpr size_t inner = 32;
    auto out = par::parallelMap<uint64_t>(
        outer,
        [](size_t i) {
            // The nested call must run inline on this worker (no
            // deadlock, no new pool) and still cover every index.
            EXPECT_TRUE(par::inWorker());
            auto sub = par::parallelMap<uint64_t>(
                inner, [&](size_t j) { return mix(i * inner + j); });
            return std::accumulate(sub.begin(), sub.end(),
                                   uint64_t{0});
        },
        4);
    for (size_t i = 0; i < outer; ++i) {
        uint64_t expect = 0;
        for (size_t j = 0; j < inner; ++j)
            expect += mix(i * inner + j);
        EXPECT_EQ(out[i], expect) << "outer " << i;
    }
}

TEST(Par, LowestIndexExceptionWins)
{
    // Several indices throw; the engine must rethrow the lowest one
    // so failure reports are deterministic across worker counts.
    for (unsigned jobs : {1u, 4u, 8u}) {
        try {
            par::parallelFor(
                100,
                [](size_t i) {
                    if (i == 17 || i == 55 || i == 92)
                        throw std::runtime_error(
                            "idx" + std::to_string(i));
                },
                jobs);
            FAIL() << "no exception at jobs=" << jobs;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "idx17") << "jobs=" << jobs;
        }
    }
}

TEST(Par, EmptyAndSingletonRanges)
{
    int ran = 0;
    par::parallelFor(0, [&](size_t) { ++ran; }, 8);
    EXPECT_EQ(ran, 0);
    par::parallelFor(1, [&](size_t) { ++ran; }, 8);
    EXPECT_EQ(ran, 1);
}

TEST(Par, ProgressIsSideEffectFreeOffTty)
{
    // Progress renders only on a terminal; under ctest it must be a
    // cheap no-op that never perturbs results.
    par::Progress progress("test", 64);
    auto out = par::parallelMap<uint64_t>(
        64, [](size_t i) { return mix(i); }, 4, &progress);
    progress.finish();
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], mix(i));
}

} // namespace
} // namespace nvmr

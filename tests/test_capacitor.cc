/**
 * @file
 * Unit tests for the supercapacitor model: E = 1/2 C V^2 accounting,
 * thresholds and clamping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/capacitor.hh"

namespace nvmr
{
namespace
{

TEST(Capacitor, StartsFull)
{
    Capacitor cap(0.1);
    EXPECT_DOUBLE_EQ(cap.voltage(), 2.4);
    EXPECT_FALSE(cap.dead());
    EXPECT_TRUE(cap.canTurnOn());
}

TEST(Capacitor, EnergyFollowsHalfCVSquared)
{
    // 100 mF label compressed by the power law: 8e-4 * 0.1^0.607.
    Capacitor cap(0.1);
    double c_eff = cap.effectiveFarads();
    EXPECT_NEAR(c_eff, 8e-4 * std::pow(0.1, 0.607), 1e-9);
    EXPECT_NEAR(cap.energyNj(), 0.5 * c_eff * 2.4 * 2.4 * 1e9, 1.0);
}

TEST(Capacitor, PowerLawPreservesSizeOrderingWithCompression)
{
    // The paper's 200x range (500 uF .. 100 mF) compresses to ~25x
    // but keeps the ordering and rough spacing.
    Capacitor small(500e-6), big(0.1);
    double ratio = big.effectiveFarads() / small.effectiveFarads();
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 50.0);
}

TEST(Capacitor, UsableEnergyIsAboveVoff)
{
    Capacitor cap(0.1);
    double c_eff = cap.effectiveFarads();
    double expect =
        0.5 * c_eff * (2.4 * 2.4 - 1.8 * 1.8) * 1e9;
    EXPECT_NEAR(cap.usableNj(), expect, 1.0);
    cap.setVoltage(1.8);
    EXPECT_NEAR(cap.usableNj(), 0.0, 1e-6);
}

TEST(Capacitor, DrainLowersVoltage)
{
    Capacitor cap(0.1);
    double v0 = cap.voltage();
    cap.drainNj(1000.0);
    EXPECT_LT(cap.voltage(), v0);
}

TEST(Capacitor, DrainAndHarvestRoundTrip)
{
    Capacitor cap(0.1);
    cap.setVoltage(2.0);
    double e0 = cap.energyNj();
    cap.drainNj(5000.0);
    EXPECT_NEAR(cap.energyNj(), e0 - 5000.0, 1e-3);
    cap.harvestNj(5000.0);
    EXPECT_NEAR(cap.energyNj(), e0, 1e-3);
}

TEST(Capacitor, HarvestClampsAtVmax)
{
    Capacitor cap(0.1);
    cap.harvestNj(1e12);
    EXPECT_DOUBLE_EQ(cap.voltage(), 2.4);
}

TEST(Capacitor, DrainClampsAtZero)
{
    Capacitor cap(0.1);
    cap.drainNj(1e12);
    EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
    EXPECT_TRUE(cap.dead());
}

TEST(Capacitor, DeadAndTurnOnThresholds)
{
    Capacitor cap(0.1);
    cap.setVoltage(1.9);
    EXPECT_FALSE(cap.dead());
    EXPECT_FALSE(cap.canTurnOn());
    cap.setVoltage(1.8);
    EXPECT_TRUE(cap.dead());
    cap.setVoltage(2.2);
    EXPECT_TRUE(cap.canTurnOn());
}

TEST(Capacitor, SmallerCapacitorStoresLessEnergy)
{
    // Figure 13d's sweep: 500 uF < 7.5 mF < 100 mF.
    Capacitor small(500e-6), mid(7.5e-3), big(0.1);
    EXPECT_LT(small.usableNj(), mid.usableNj());
    EXPECT_LT(mid.usableNj(), big.usableNj());
}

TEST(Capacitor, HeadroomShrinksAsItCharges)
{
    Capacitor cap(0.1);
    cap.setVoltage(1.9);
    double h0 = cap.headroomNj();
    cap.harvestNj(h0 / 2);
    EXPECT_LT(cap.headroomNj(), h0);
    cap.harvestNj(h0);
    EXPECT_NEAR(cap.headroomNj(), 0.0, 1e-6);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Behavioural tests for the NvMR architecture: renaming instead of
 * violation backups, the recovery invariant (the persisted mapping of
 * every block always holds its last-backed-up value), map-table /
 * free-list lifecycle, structural-hazard backups and reclamation.
 */

#include <gtest/gtest.h>

#include "arch_harness.hh"
#include "core/nvmr_arch.hh"

namespace nvmr
{
namespace
{

NvmrArch &
nvmrOf(ArchHarness &h)
{
    return *static_cast<NvmrArch *>(h.arch.get());
}

TEST(NvmrArch, ViolatingEvictionRenamesInsteadOfBackingUp)
{
    ArchHarness h(ArchKind::Nvmr);
    uint64_t base = h.backups();

    h.arch->loadWord(0x100);      // home holds 0
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);

    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.renames(), 1u);
    EXPECT_EQ(h.backups(), base); // no backup needed
    // The home address is untouched: it is the recovery image.
    EXPECT_EQ(h.nvm->peekWord(0x100), 0u);
    // The renamed location holds the new data.
    Addr reserved = nvmrOf(h).reservedBase();
    EXPECT_EQ(h.nvm->peekWord(reserved), 42u);
}

TEST(NvmrArch, RefetchReadsTheRenamedData)
{
    ArchHarness h(ArchKind::Nvmr);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    EXPECT_EQ(h.arch->loadWord(0x100), 42u);
    EXPECT_EQ(h.arch->inspectWord(0x100), 42u);
}

TEST(NvmrArch, PowerLossBeforeBackupDiscardsRename)
{
    ArchHarness h(ArchKind::Nvmr);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100); // renamed, recorded only in the volatile MT$
    h.arch->onPowerFail();
    // Recovery: the map table has no entry, so the home address (and
    // its pre-store value) is what re-execution reads.
    EXPECT_EQ(h.arch->loadWord(0x100), 0u);
}

TEST(NvmrArch, BackupPersistsMappingAndRetiresOldOne)
{
    ArchHarness h(ArchKind::Nvmr);
    NvmrArch &arch = nvmrOf(h);
    uint32_t fl_before = arch.freeListRef().size();

    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    EXPECT_EQ(arch.freeListRef().size(), fl_before - 1);

    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    // The map table now maps the block to its renamed location...
    auto mapping = arch.mapTableRef().peek(0x100);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(*mapping, arch.reservedBase());
    // ...and the old mapping (the home address) went to the free
    // list, restoring its size.
    EXPECT_EQ(arch.freeListRef().size(), fl_before);
}

TEST(NvmrArch, RenameAfterBackupSurvivesPowerLoss)
{
    ArchHarness h(ArchKind::Nvmr);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    h.arch->onPowerFail();
    h.arch->performRestore();
    // The mapping was persisted with the backup: recovery reads 42.
    EXPECT_EQ(h.arch->loadWord(0x100), 42u);
}

TEST(NvmrArch, SecondViolationBeforeBackupReusesScratch)
{
    ArchHarness h(ArchKind::Nvmr);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    uint64_t renames_after_first = h.renames();

    // Refetch (reads 42 via the dirty MT$ entry), dirty it again.
    // The GBF marks it read-dominated again, so the next eviction is
    // another violation -- but the dirty entry's scratch location can
    // be overwritten without a fresh rename.
    h.arch->storeWord(0x100, 43);
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 2u);
    EXPECT_EQ(h.renames(), renames_after_first);
    EXPECT_EQ(h.arch->loadWord(0x100), 43u);
    EXPECT_EQ(h.nvm->peekWord(0x100), 0u); // home still pristine
}

TEST(NvmrArch, ViolationAfterBackupRenamesToFreshLocation)
{
    ArchHarness h(ArchKind::Nvmr);
    NvmrArch &arch = nvmrOf(h);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    Addr first_mapping = *arch.mapTableRef().peek(0x100);

    // New section: the persisted mapping is now the recovery image,
    // so another violating eviction must rename to a new location.
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 99);
    h.evict(0x100);
    EXPECT_EQ(h.renames(), 2u);
    EXPECT_EQ(h.nvm->peekWord(first_mapping), 42u); // intact
    EXPECT_EQ(h.arch->loadWord(0x100), 99u);

    // Power loss discards the second rename.
    h.arch->onPowerFail();
    EXPECT_EQ(h.arch->loadWord(0x100), 42u);
}

TEST(NvmrArch, WriteDominatedEvictionGoesToLatestMapping)
{
    ArchHarness h(ArchKind::Nvmr);
    NvmrArch &arch = nvmrOf(h);
    // Rename block 0x100 and persist the mapping.
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    Addr mapping = *arch.mapTableRef().peek(0x100);

    // Write-dominated access in the new section: eviction writes the
    // latest mapping directly (Section 3.5 allows this).
    h.arch->storeWord(0x100, 7);
    h.evict(0x100);
    EXPECT_EQ(h.nvm->peekWord(mapping), 7u);
    EXPECT_EQ(h.nvm->peekWord(0x100), 0u);
}

TEST(NvmrArch, MapTableFullForcesBackup)
{
    SystemConfig cfg;
    cfg.mapTableEntries = 2;
    ArchHarness h(ArchKind::Nvmr, cfg);
    uint64_t base = h.backups();

    // Rename three distinct blocks; the third needs a map-table slot
    // that does not exist.
    for (Addr a : {0x100u, 0x200u, 0x300u}) {
        h.arch->loadWord(a);
        h.arch->storeWord(a, a);
        h.evict(a);
    }
    EXPECT_EQ(h.renames(), 2u);
    uint64_t full_backups = h.arch->stats().backupsByReason[
        static_cast<size_t>(BackupReason::MapTableFull)];
    EXPECT_GE(full_backups, 1u);
    EXPECT_GT(h.backups(), base);
    // Correctness holds either way.
    EXPECT_EQ(h.arch->loadWord(0x300), 0x300u);
}

TEST(NvmrArch, ReclaimFreesMapTableEntries)
{
    SystemConfig cfg;
    cfg.mapTableEntries = 2;
    cfg.reclaimEnabled = true;
    cfg.reclaimBatch = 1;
    ArchHarness h(ArchKind::Nvmr, cfg);
    NvmrArch &arch = nvmrOf(h);

    for (Addr a : {0x100u, 0x200u, 0x300u}) {
        h.arch->loadWord(a);
        h.arch->storeWord(a, a + 1);
        h.evict(a);
    }
    EXPECT_GE(h.reclaims(), 1u);
    EXPECT_LT(arch.mapTableRef().size(), 2u + 1u);
    // Reclaimed blocks were copied back to their home addresses and
    // stay readable.
    EXPECT_EQ(h.arch->loadWord(0x100), 0x101u);
    EXPECT_EQ(h.arch->loadWord(0x200), 0x201u);
    EXPECT_EQ(h.arch->loadWord(0x300), 0x301u);
}

TEST(NvmrArch, DirtyMtCacheEvictionForcesBackup)
{
    SystemConfig cfg;
    cfg.mtCacheEntries = 2;
    cfg.mtCacheWays = 0; // fully associative, 2 entries
    ArchHarness h(ArchKind::Nvmr, cfg);

    // Three renamed blocks need three MT$ entries; installing the
    // third evicts a dirty one, which must force a backup first.
    for (Addr a : {0x100u, 0x200u, 0x300u}) {
        h.arch->loadWord(a);
        h.arch->storeWord(a, a);
        h.evict(a);
    }
    uint64_t mtc_backups = h.arch->stats().backupsByReason[
        static_cast<size_t>(BackupReason::MtCacheEviction)];
    EXPECT_GE(mtc_backups, 1u);
    EXPECT_EQ(h.arch->loadWord(0x100), 0x100u);
    EXPECT_EQ(h.arch->loadWord(0x300), 0x300u);
}

TEST(NvmrArch, FreeListEmptyForcesBackup)
{
    SystemConfig cfg;
    cfg.freeListEntries = 1;
    ArchHarness h(ArchKind::Nvmr, cfg);

    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 1);
    h.evict(0x100); // consumes the only free mapping

    h.arch->loadWord(0x200);
    h.arch->storeWord(0x200, 2);
    h.evict(0x200); // no mapping left -> backup instead

    uint64_t fl_backups = h.arch->stats().backupsByReason[
        static_cast<size_t>(BackupReason::FreeListEmpty)];
    EXPECT_GE(fl_backups, 1u);
    EXPECT_EQ(h.arch->loadWord(0x200), 2u);
}

TEST(NvmrArch, RenamingSpreadsWear)
{
    ArchHarness h(ArchKind::Nvmr);
    // Hammer one block with violating evictions across backups: the
    // writes land on rotating renamed locations, not the home word.
    for (int i = 0; i < 8; ++i) {
        h.arch->loadWord(0x100);
        h.arch->storeWord(0x100, i);
        h.evict(0x100);
        h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    }
    EXPECT_EQ(h.nvm->wearOf(0x100), 0u);
}

TEST(NvmrArch, RestoreRollsBackFreeListPointer)
{
    ArchHarness h(ArchKind::Nvmr);
    NvmrArch &arch = nvmrOf(h);
    uint32_t before = arch.freeListRef().size();
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 42);
    h.evict(0x100); // pop without backup
    EXPECT_EQ(arch.freeListRef().size(), before - 1);
    h.arch->onPowerFail();
    EXPECT_EQ(arch.freeListRef().size(), before);
}

} // namespace
} // namespace nvmr

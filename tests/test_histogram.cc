/**
 * @file
 * Unit tests for the log2-bucketed Histogram and the moment-tracking
 * Distribution: bucket-edge behavior at powers of two, saturation at
 * the last bucket, empty-histogram conventions and moment math.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace nvmr
{
namespace
{

TEST(Histogram, BucketEdgesAtPowersOfTwo)
{
    // Bucket 0 holds [0, 1); bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketOf(0.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(0.999), 0u);
    EXPECT_EQ(Histogram::bucketOf(1.0), 1u);
    EXPECT_EQ(Histogram::bucketOf(1.999), 1u);
    EXPECT_EQ(Histogram::bucketOf(2.0), 2u);
    EXPECT_EQ(Histogram::bucketOf(3.0), 2u);
    EXPECT_EQ(Histogram::bucketOf(4.0), 3u);
    EXPECT_EQ(Histogram::bucketOf(1024.0), 11u);
    EXPECT_EQ(Histogram::bucketOf(1025.0), 11u);
    EXPECT_EQ(Histogram::bucketOf(2047.0), 11u);
    EXPECT_EQ(Histogram::bucketOf(2048.0), 12u);
}

TEST(Histogram, BucketEdgesMatchLowHigh)
{
    for (unsigned b = 0; b < 20; ++b) {
        double low = Histogram::bucketLow(b);
        double high = Histogram::bucketHigh(b);
        EXPECT_EQ(Histogram::bucketOf(low), b) << "bucket " << b;
        // The upper edge is exclusive: it belongs to the next bucket.
        EXPECT_EQ(Histogram::bucketOf(high), b + 1) << "bucket " << b;
        EXPECT_LT(low, high);
    }
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(1), 1.0);
}

TEST(Histogram, HugeValuesSaturateLastBucket)
{
    Histogram h("h", "");
    h.sample(1e300);
    EXPECT_EQ(h.bucketCount(Histogram::kMaxBuckets - 1), 1u);
    EXPECT_EQ(h.numBuckets(), Histogram::kMaxBuckets);
}

TEST(Histogram, NegativeSamplesClampToZeroBucket)
{
    Histogram h("h", "");
    h.sample(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, EmptyHistogramConventions)
{
    Histogram h("h", "");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.numBuckets(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, MomentsAndCounts)
{
    Histogram h("h", "");
    h.sample(1.0);
    h.sample(3.0);
    h.sample(8.0, 2); // weighted sample
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 20.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 8.0);
    EXPECT_EQ(h.bucketCount(1), 1u); // 1.0
    EXPECT_EQ(h.bucketCount(2), 1u); // 3.0
    EXPECT_EQ(h.bucketCount(4), 2u); // 8.0 in [8, 16)
    h.sample(4.0, 0); // zero weight: a no-op
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, PercentileAtBucketResolution)
{
    Histogram h("h", "");
    for (int i = 0; i < 99; ++i)
        h.sample(2.0); // bucket 2: [2, 4)
    h.sample(1000.0); // bucket 10: [512, 1024)
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1024.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h("h", "");
    h.sample(7.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.numBuckets(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Distribution, MomentMath)
{
    Distribution d("d", "");
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    d.sample(2.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0); // < 2 samples
    d.sample(4.0);
    d.sample(4.0);
    d.sample(4.0);
    d.sample(5.0);
    d.sample(5.0);
    d.sample(7.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.138, 1e-3); // sample stddev
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Unit tests for the CPU interpreter/timing model: instruction
 * semantics, branches, calls, memory access, snapshots and the
 * hardwired zero register.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.hh"
#include "cpu/cpu.hh"
#include "isa/assembler.hh"
#include "mem/port.hh"

namespace nvmr
{
namespace
{

/** Simple flat test memory. */
class TestPort : public DataPort
{
  public:
    explicit TestPort(size_t size = 4096) : mem(size, 0) {}

    Word
    loadWord(Addr a) override
    {
        Word w = 0;
        for (unsigned i = 0; i < 4; ++i)
            w |= static_cast<Word>(mem.at(a + i)) << (8 * i);
        return w;
    }

    void
    storeWord(Addr a, Word v) override
    {
        for (unsigned i = 0; i < 4; ++i)
            mem.at(a + i) = static_cast<uint8_t>(v >> (8 * i));
    }

    uint8_t loadByte(Addr a) override { return mem.at(a); }
    void storeByte(Addr a, uint8_t v) override { mem.at(a) = v; }

    std::vector<uint8_t> mem;
};

/** Run a source program to completion; returns the CPU for checks. */
struct RunHarness
{
    Program prog;
    TestPort port;
    Cpu cpu;

    explicit RunHarness(const std::string &src)
        : prog(assemble("t", src)), port(), cpu(prog, port)
    {
        for (size_t i = 0; i < prog.data.size(); ++i)
            port.mem[i] = prog.data[i];
    }

    uint64_t
    runToHalt(uint64_t max_steps = 100000)
    {
        uint64_t steps = 0;
        while (!cpu.halted() && steps < max_steps) {
            cpu.step();
            ++steps;
        }
        EXPECT_TRUE(cpu.halted()) << "program did not halt";
        return steps;
    }
};

TEST(Cpu, ArithmeticBasics)
{
    RunHarness h(R"(
        li   r1, 7
        li   r2, 5
        add  r3, r1, r2
        sub  r4, r1, r2
        mul  r5, r1, r2
        div  r6, r1, r2
        rem  r7, r1, r2
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(3), 12u);
    EXPECT_EQ(h.cpu.reg(4), 2u);
    EXPECT_EQ(h.cpu.reg(5), 35u);
    EXPECT_EQ(h.cpu.reg(6), 1u);
    EXPECT_EQ(h.cpu.reg(7), 2u);
}

TEST(Cpu, SignedDivisionSemantics)
{
    RunHarness h(R"(
        li   r1, -7
        li   r2, 2
        div  r3, r1, r2
        rem  r4, r1, r2
        li   r5, 5
        div  r6, r5, r0
        rem  r7, r5, r0
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(static_cast<SWord>(h.cpu.reg(3)), -3);
    EXPECT_EQ(static_cast<SWord>(h.cpu.reg(4)), -1);
    // Division by zero: quotient -1, remainder = dividend.
    EXPECT_EQ(h.cpu.reg(6), 0xffffffffu);
    EXPECT_EQ(h.cpu.reg(7), 5u);
}

TEST(Cpu, ShiftsAndLogic)
{
    RunHarness h(R"(
        li   r1, -8
        srai r2, r1, 1
        srli r3, r1, 28
        slli r4, r1, 1
        li   r5, 0xf0
        andi r6, r5, 0x3c
        ori  r7, r5, 0x0f
        xori r8, r5, 0xff
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(static_cast<SWord>(h.cpu.reg(2)), -4);
    EXPECT_EQ(h.cpu.reg(3), 0xfu);
    EXPECT_EQ(static_cast<SWord>(h.cpu.reg(4)), -16);
    EXPECT_EQ(h.cpu.reg(6), 0x30u);
    EXPECT_EQ(h.cpu.reg(7), 0xffu);
    EXPECT_EQ(h.cpu.reg(8), 0x0fu);
}

TEST(Cpu, SetLessThan)
{
    RunHarness h(R"(
        li   r1, -1
        li   r2, 1
        slt  r3, r1, r2
        sltu r4, r1, r2
        slti r5, r2, 10
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(3), 1u);  // signed: -1 < 1
    EXPECT_EQ(h.cpu.reg(4), 0u);  // unsigned: 0xffffffff > 1
    EXPECT_EQ(h.cpu.reg(5), 1u);
}

TEST(Cpu, ZeroRegisterIsHardwired)
{
    RunHarness h(R"(
        li   r0, 99
        addi r1, r0, 3
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(0), 0u);
    EXPECT_EQ(h.cpu.reg(1), 3u);
}

TEST(Cpu, BranchesTakenAndNotTaken)
{
    RunHarness h(R"(
        li   r1, 5
        li   r2, 5
        li   r3, 0
        bne  r1, r2, bad
        beq  r1, r2, good
bad:
        li   r3, 111
        halt
good:
        li   r3, 222
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(3), 222u);
}

TEST(Cpu, SignedVsUnsignedBranches)
{
    RunHarness h(R"(
        li   r1, -1
        li   r2, 1
        li   r3, 0
        blt  r1, r2, s1       # signed taken
        jmp  end
s1:
        addi r3, r3, 1
        bltu r1, r2, u1       # unsigned not taken (0xffffffff > 1)
        addi r3, r3, 2
u1:
end:
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(3), 3u);
}

TEST(Cpu, CallAndReturn)
{
    RunHarness h(R"(
main:
        li   r1, 10
        call double
        mv   r3, r2
        call double
        halt
double:
        add  r2, r1, r1
        mv   r1, r2
        ret
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(3), 20u);
    EXPECT_EQ(h.cpu.reg(2), 40u);
}

TEST(Cpu, LoadStoreWordAndByte)
{
    RunHarness h(R"(
        .data
buf:    .word 0x11223344 0
        .text
        li   r1, buf
        ld   r2, 0(r1)
        st   r2, 4(r1)
        ldb  r3, 1(r1)
        li   r4, 0xaa
        stb  r4, 6(r1)
        ld   r5, 4(r1)
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(2), 0x11223344u);
    EXPECT_EQ(h.cpu.reg(3), 0x33u);
    EXPECT_EQ(h.cpu.reg(5), 0x11aa3344u);
}

TEST(Cpu, TakenBranchCostsPipelineRefill)
{
    Program p = assemble("t", R"(
        beq  r0, r0, t
t:      halt
    )");
    TestPort port;
    Cpu cpu(p, port);
    StepResult r = cpu.step();
    EXPECT_EQ(r.cycles, 3u); // 1 + 2 refill
}

TEST(Cpu, SnapshotAndRestoreRoundTrip)
{
    RunHarness h(R"(
        li   r1, 42
        li   r2, 43
        halt
    )");
    h.cpu.step();
    CpuSnapshot snap = h.cpu.snapshot();
    EXPECT_EQ(snap.regs[1], 42u);
    EXPECT_EQ(snap.pc, 1u);

    h.cpu.step();
    h.cpu.step();
    EXPECT_TRUE(h.cpu.halted());

    h.cpu.restore(snap);
    EXPECT_FALSE(h.cpu.halted());
    EXPECT_EQ(h.cpu.pc(), 1u);
    h.cpu.step();
    EXPECT_EQ(h.cpu.reg(2), 43u);
}

TEST(Cpu, InstretCountsExecutedInstructions)
{
    RunHarness h(R"(
        li   r1, 3
loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    uint64_t steps = h.runToHalt();
    EXPECT_EQ(h.cpu.instret(), steps);
    EXPECT_EQ(h.cpu.instret(), 1u + 3u * 2u + 1u);
}

TEST(Cpu, MulOverflowWraps)
{
    RunHarness h(R"(
        li   r1, 0x40000000
        li   r2, 4
        mul  r3, r1, r2
        halt
    )");
    h.runToHalt();
    EXPECT_EQ(h.cpu.reg(3), 0u);
}

#if NVMR_DEBUG_ASSERTS
// The register bounds check is a debug_assert shared by setReg and
// the decoder's writeReg path (the decoder guarantees the range, so
// release builds skip the branch). Only a Debug build can observe it.
TEST(CpuDeathTest, RegisterIndexBoundsAreDebugAsserted)
{
    RunHarness h("halt");
    EXPECT_DEATH(h.cpu.setReg(kNumRegs, 1), "bad register index");
}
#endif

} // namespace
} // namespace nvmr

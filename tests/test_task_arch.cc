/**
 * @file
 * Tests for the task-based checkpointing architecture (Figure 2c):
 * the `task` instruction forces a backup, task counts line up, and
 * annotated workloads run correctly with no policy at all.
 */

#include <gtest/gtest.h>

#include "arch/task.hh"
#include "arch_harness.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

TEST(TaskArch, TaskInstructionForcesBackup)
{
    Program prog = assemble("t", R"(
main:
        task
        task
        halt
)");
    SystemConfig cfg;
    NonePolicy policy;
    HarvestTrace trace(TraceKind::Rf, 1, 8.0);
    Simulator sim(prog, ArchKind::Task, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    uint64_t boundary_backups = r.backupsByReason[
        static_cast<size_t>(BackupReason::TaskBoundary)];
    EXPECT_EQ(boundary_backups, 2u);
}

TEST(TaskArch, BoundariesPersistPrecedingWork)
{
    Program prog = assemble("t", R"(
        .data
x:      .word 0
        .text
main:
        li   r1, x
        li   r2, 41
        st   r2, 0(r1)
        task                    # checkpoint: x=41 is now durable
        ld   r2, 0(r1)
        addi r2, r2, 1
        st   r2, 0(r1)
        halt
)");
    SystemConfig cfg;
    NonePolicy policy;
    HarvestTrace trace(TraceKind::Rf, 2, 8.0);
    Simulator sim(prog, ArchKind::Task, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_EQ(sim.archRef().inspectWord(0), 42u);
}

TEST(TaskArch, ViolationSafetyNetStillWorks)
{
    // A read-modify-write *between* task boundaries is an imperfect
    // decomposition: the inherited Clank machinery must still back
    // up on the violating eviction.
    ArchHarness h(ArchKind::Task);
    uint64_t base = h.backups();
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 1);
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 1u);
    EXPECT_GT(h.backups(), base);
}

class TaskWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TaskWorkloads, AnnotatedWorkloadRunsWithNoPolicy)
{
    // Pure software checkpointing: the only planned backups come
    // from the program's own task boundaries.
    Program prog = assembleWorkload(GetParam());
    SystemConfig cfg;
    cfg.capacitorFarads = 7.5e-3;
    NonePolicy policy;
    HarvestTrace trace(TraceKind::Rf, 77, 7.0);
    Simulator sim(prog, ArchKind::Task, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed) << GetParam();
    EXPECT_TRUE(r.validated) << GetParam();
    EXPECT_GT(r.backupsByReason[
                  static_cast<size_t>(BackupReason::TaskBoundary)],
              0u)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Annotated, TaskWorkloads,
    ::testing::Values("hist", "dijkstra", "qsort", "adpcm_encode",
                      "dwt"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(TaskArch, TaskIsNoOpForHardwareSchemes)
{
    // The same annotated program on Clank/NvMR/HOOP: task
    // instructions cost one cycle and nothing else.
    Program prog = assembleWorkload("hist");
    SystemConfig cfg;
    for (ArchKind kind :
         {ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop}) {
        JitPolicy policy;
        HarvestTrace trace(TraceKind::Rf, 78, 8.0);
        Simulator sim(prog, kind, cfg, policy, trace);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << archKindName(kind);
        EXPECT_TRUE(r.validated) << archKindName(kind);
        EXPECT_EQ(r.backupsByReason[static_cast<size_t>(
                      BackupReason::TaskBoundary)],
                  0u)
            << archKindName(kind);
    }
}

} // namespace
} // namespace nvmr

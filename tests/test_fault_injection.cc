/**
 * @file
 * Tests for the crash/bit-error fault-injection subsystem: torn-write
 * prefix semantics, crash-once arming, the backup-window census, the
 * SECDED ECC pipeline (correct / detect+retry / uncorrectable), the
 * commit-record fallback to the last complete backup, bit-identity
 * when the injector is disabled, and the --strict-atomic escape
 * hatch.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hh"
#include "isa/assembler.hh"
#include "mem/nvm.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

/** Sink that records total energy and cycles. */
class RecordingSink : public EnergySink
{
  public:
    void consume(NanoJoules nj) override { energy += nj; }
    void consumeOverhead(NanoJoules nj) override { overhead += nj; }
    void addCycles(Cycles n) override { cycles += n; }

    NanoJoules energy = 0;
    NanoJoules overhead = 0;
    Cycles cycles = 0;
};

// ----------------------------------------------------------------------
// Torn writes and crash points
// ----------------------------------------------------------------------

TEST(TornWrite, CrashAtPersistLeavesExactPrefix)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.crashAtPersist = 3;
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    // A five-word persist sequence: the crash must land before the
    // third word, leaving words 0 and 1 and nothing after.
    bool crashed = false;
    for (uint32_t w = 0; w < 5; ++w) {
        try {
            nvm.writeWord(w * kWordBytes, 0xa0 + w);
        } catch (const PowerFailure &) {
            crashed = true;
            break;
        }
    }
    ASSERT_TRUE(crashed);
    EXPECT_EQ(nvm.peekWord(0), 0xa0u);
    EXPECT_EQ(nvm.peekWord(4), 0xa1u);
    EXPECT_EQ(nvm.peekWord(8), 0u) << "torn word must not land";
    EXPECT_EQ(nvm.peekWord(12), 0u);
    EXPECT_EQ(inj.stats().injectedCrashes, 1u);
    EXPECT_EQ(inj.stats().persistPoints, 3u);
    // The interrupted write was never charged or counted.
    EXPECT_EQ(nvm.totalWrites(), 2u);
}

TEST(TornWrite, CrashFiresExactlyOnce)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.crashAtPersist = 2;
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    nvm.writeWord(0, 1);
    EXPECT_THROW(nvm.writeWord(4, 2), PowerFailure);
    // Recovery re-runs the same persists; the armed point is behind
    // the counter now and must never fire again.
    for (uint32_t w = 0; w < 8; ++w)
        EXPECT_NO_THROW(nvm.writeWord(w * kWordBytes, 7));
    EXPECT_EQ(inj.stats().injectedCrashes, 1u);
}

TEST(CrashPoints, CyclePointDisarmsAfterFiring)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.crashAtCycle = 100;
    FaultInjector inj(fc);

    EXPECT_NO_THROW(inj.cyclePoint(99));
    EXPECT_THROW(inj.cyclePoint(100), PowerFailure);
    EXPECT_NO_THROW(inj.cyclePoint(100));
    EXPECT_NO_THROW(inj.cyclePoint(5000));
    EXPECT_EQ(inj.stats().injectedCrashes, 1u);
}

TEST(CrashPoints, BackupWindowCensusRecordsPersistSpans)
{
    FaultConfig fc;
    fc.enabled = true;
    FaultInjector inj(fc);

    inj.noteBackupStart();
    inj.persistPoint();
    inj.persistPoint();
    inj.persistPoint();
    inj.noteBackupEnd();

    // A window with no persists (nothing dirty) is not recorded.
    inj.noteBackupStart();
    inj.noteBackupEnd();

    inj.noteBackupStart();
    inj.persistPoint();
    inj.noteBackupEnd();

    ASSERT_EQ(inj.backupWindows().size(), 2u);
    EXPECT_EQ(inj.backupWindows()[0].firstPersist, 1u);
    EXPECT_EQ(inj.backupWindows()[0].lastPersist, 3u);
    EXPECT_EQ(inj.backupWindows()[1].firstPersist, 4u);
    EXPECT_EQ(inj.backupWindows()[1].lastPersist, 4u);
}

// ----------------------------------------------------------------------
// Bit errors and ECC
// ----------------------------------------------------------------------

TEST(Ecc, SingleStuckBitIsCorrected)
{
    FaultConfig fc;
    fc.enabled = true;
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    nvm.writeWord(0x40, 0x0); // bit 5 will read back stuck high
    inj.forceStuckBit(0x40, 5, true);
    EXPECT_EQ(nvm.readWord(0x40), 0x0u) << "SECDED corrects one bit";
    EXPECT_GE(inj.stats().eccCorrected, 1u);
    EXPECT_EQ(inj.stats().eccUncorrectable, 0u);
}

TEST(Ecc, DoubleStuckBitExhaustsRetriesThenPropagates)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.maxReadRetries = 2;
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    nvm.writeWord(0x80, 0x0);
    inj.forceStuckBit(0x80, 3, true);
    inj.forceStuckBit(0x80, 9, true);
    // Two hard errors: retries cannot help, the corrupt word is
    // handed up.
    EXPECT_EQ(nvm.readWord(0x80), (1u << 3) | (1u << 9));
    EXPECT_EQ(inj.stats().eccRetries, 2u);
    EXPECT_GE(inj.stats().eccUncorrectable, 1u);
}

TEST(Ecc, DisabledEccReturnsRawCorruption)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.eccEnabled = false;
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    nvm.writeWord(0xc0, 0x0);
    inj.forceStuckBit(0xc0, 0, true);
    EXPECT_EQ(nvm.readWord(0xc0), 1u);
    EXPECT_EQ(inj.stats().eccCorrected, 0u);
}

TEST(Ecc, TransientFlipsAlwaysCorrectedWhenSingleBit)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.transientBitErrorRate = 1.0; // flip on every read
    fc.doubleBitFraction = 0.0;     // but only ever one bit
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    nvm.writeWord(0x100, 0x12345678);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(nvm.readWord(0x100), 0x12345678u);
    EXPECT_GE(inj.stats().transientFlips, 50u);
    EXPECT_GE(inj.stats().eccCorrected, 50u);
    EXPECT_EQ(inj.stats().eccUncorrectable, 0u);
}

TEST(Ecc, InspectStoredIsDeterministicAndRngFree)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.transientBitErrorRate = 1.0; // must NOT affect inspection
    FaultInjector inj(fc);

    EXPECT_EQ(inj.inspectStored(0x10, 0xff), 0xffu);
    inj.forceStuckBit(0x10, 2, false); // one stuck bit: corrected
    EXPECT_EQ(inj.inspectStored(0x10, 0xff), 0xffu);
    inj.forceStuckBit(0x10, 4, false); // two: uncorrectable
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(inj.inspectStored(0x10, 0xff),
                  0xffu & ~((1u << 2) | (1u << 4)));
}

TEST(Ecc, WearCoupledStuckBitsAppear)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.stuckBitRatePerWrite = 0.2;
    fc.stuckWearThreshold = 4;
    fc.seed = 99;
    FaultInjector inj(fc);

    TechParams tech;
    RecordingSink sink;
    Nvm nvm(1 << 16, tech, sink);
    nvm.attachFaults(&inj);

    // Hammer one word far past the wear threshold.
    for (int i = 0; i < 200; ++i)
        nvm.writeWord(0x200, static_cast<Word>(i));
    EXPECT_GE(inj.stats().stuckBitsCreated, 1u);
}

// ----------------------------------------------------------------------
// Whole-system: torn backups, commit-record fallback, bit-identity
// ----------------------------------------------------------------------

const char *kProgram = R"(
        .data
arr:    .rand 96 17 0 5000
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        muli r5, r5, 5
        addi r5, r5, 3
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 96
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 5
        blt  r1, r6, pass
        halt
)";

SystemConfig
faultTestConfig()
{
    SystemConfig cfg = SystemConfig::smallPlatform();
    cfg.mapTableEntries = 64;
    return cfg;
}

class FaultedArch : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(FaultedArch, TornBackupFallsBackToLastCompleteBackup)
{
    Program prog = assemble("fault", kProgram);
    SystemConfig cfg = faultTestConfig();

    // Census pass: where do the backups persist?
    RunOptions census;
    census.faults.enabled = true;
    census.validate = false;
    std::vector<FaultInjector::BackupWindow> windows;
    {
        WatchdogPolicy policy(300);
        HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
        Simulator sim(prog, GetParam(), cfg, policy, trace, census);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed);
        windows = sim.faultInjector().backupWindows();
    }
    ASSERT_GE(windows.size(), 3u);

    // Crash at the very first persist of the second backup: the
    // second backup is torn before anything committed, so recovery
    // must fall back to the first backup's commit record and the run
    // must still reach the golden final state.
    RunOptions opts;
    opts.faults.enabled = true;
    opts.faults.crashAtPersist = windows[1].firstPersist;
    WatchdogPolicy policy(300);
    HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
    Simulator sim(prog, GetParam(), cfg, policy, trace, opts);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_EQ(r.injectedCrashes, 1u);
    EXPECT_GE(r.tornBackups, 1u);
    EXPECT_GE(r.powerFailures, 1u);
}

TEST_P(FaultedArch, SurvivesCrashBeforeTheFirstBackupCommits)
{
    Program prog = assemble("fault", kProgram);
    SystemConfig cfg = faultTestConfig();

    // Crash inside the very first (Initial) backup: no commit record
    // exists yet, so recovery must reboot from reset and retake it.
    RunOptions opts;
    opts.faults.enabled = true;
    opts.faults.crashAtPersist = 1;
    WatchdogPolicy policy(300);
    HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
    Simulator sim(prog, GetParam(), cfg, policy, trace, opts);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_EQ(r.injectedCrashes, 1u);
}

TEST_P(FaultedArch, CompletesUnderCorrectableBitErrorLoad)
{
    Program prog = assemble("fault", kProgram);
    SystemConfig cfg = faultTestConfig();

    RunOptions opts;
    opts.faults.enabled = true;
    // High enough that even HOOP's few direct NVM word reads sample
    // at least one flip; single-bit only, so ECC always corrects.
    opts.faults.transientBitErrorRate = 2e-2;
    opts.faults.doubleBitFraction = 0;
    opts.faults.seed = 7;
    WatchdogPolicy policy(300);
    HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
    Simulator sim(prog, GetParam(), cfg, policy, trace, opts);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated)
        << "corrected bit errors must not change the final state";
    EXPECT_GE(r.eccCorrected, 1u);
    EXPECT_EQ(r.eccUncorrectable, 0u);
}

TEST_P(FaultedArch, DisabledInjectorIsBitIdenticalToDefaultRun)
{
    Program prog = assemble("fault", kProgram);
    SystemConfig cfg = faultTestConfig();

    auto runWith = [&](const RunOptions &opts) {
        WatchdogPolicy policy(300);
        HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
        Simulator sim(prog, GetParam(), cfg, policy, trace, opts);
        return sim.run();
    };

    RunResult plain = runWith(RunOptions{});

    // Same run with every fault knob populated but the master switch
    // off: all accounting must be bit-identical.
    RunOptions armed;
    armed.faults.enabled = false;
    armed.faults.crashAtPersist = 100;
    armed.faults.crashAtCycle = 12345;
    armed.faults.transientBitErrorRate = 0.5;
    armed.faults.stuckBitRatePerWrite = 0.5;
    RunResult off = runWith(armed);

    EXPECT_EQ(off.totalCycles, plain.totalCycles);
    EXPECT_EQ(off.activeCycles, plain.activeCycles);
    EXPECT_EQ(off.instructions, plain.instructions);
    EXPECT_EQ(off.backups, plain.backups);
    EXPECT_EQ(off.restores, plain.restores);
    EXPECT_EQ(off.nvmReads, plain.nvmReads);
    EXPECT_EQ(off.nvmWrites, plain.nvmWrites);
    EXPECT_EQ(off.totalEnergyNj, plain.totalEnergyNj)
        << "energy must match to the last bit";
    EXPECT_EQ(off.injectedCrashes, 0u);
    EXPECT_EQ(off.tornBackups, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Archs, FaultedArch,
    ::testing::Values(ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop,
                      ArchKind::Task),
    [](const ::testing::TestParamInfo<ArchKind> &info) {
        return archKindName(info.param);
    });

// ----------------------------------------------------------------------
// --strict-atomic escape hatch
// ----------------------------------------------------------------------

using StrictAtomicDeathTest = ::testing::Test;

TEST(StrictAtomicDeathTest, PowerFailureInsideAtomicBackupPanics)
{
    // A crash injected at the first persist lands inside the Initial
    // backup's atomic section. Under --strict-atomic that is the old
    // fatal error instead of a recoverable torn backup.
    Program prog = assemble("fault", kProgram);
    SystemConfig cfg = faultTestConfig();
    cfg.strictAtomic = true;

    RunOptions opts;
    opts.faults.enabled = true;
    opts.faults.crashAtPersist = 1;

    EXPECT_DEATH(
        {
            WatchdogPolicy policy(300);
            HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
            Simulator sim(prog, ArchKind::Clank, cfg, policy, trace,
                          opts);
            sim.run();
        },
        "atomic");
}

TEST(StrictAtomic, DefaultModeRecoversFromTheSameCrash)
{
    Program prog = assemble("fault", kProgram);
    SystemConfig cfg = faultTestConfig();

    RunOptions opts;
    opts.faults.enabled = true;
    opts.faults.crashAtPersist = 1;
    WatchdogPolicy policy(300);
    HarvestTrace trace(TraceKind::Wind, 4242, 7.0);
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace, opts);
    RunResult r = sim.run(); // must recover, not abort
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Edge cases across the stack: simulator run options, NvMR free-list
 * recycling under reclamation, map-table state across power cycles,
 * golden helpers, and task-annotation sanity on every workload.
 */

#include <gtest/gtest.h>

#include "arch_harness.hh"
#include "core/nvmr_arch.hh"
#include "sim/randprog.hh"
#include "workloads/golden.hh"
#include "workloads/workloads.hh"

namespace nvmr
{
namespace
{

TEST(SimOptions, InitialVoltageIsRespected)
{
    Program prog = assemble("p", "main:\n nop\n halt\n");
    SystemConfig cfg;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Rf, 1, 8.0);
    RunOptions opts;
    opts.initialVoltage = 2.35;
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace, opts);
    // Before run() the capacitor sits at the requested voltage.
    EXPECT_NEAR(sim.capacitorRef().voltage(), 2.35, 1e-9);
}

TEST(SimOptions, DefaultBootIsTurnOnVoltage)
{
    Program prog = assemble("p", "main:\n nop\n halt\n");
    SystemConfig cfg;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Rf, 1, 8.0);
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace);
    EXPECT_NEAR(sim.capacitorRef().voltage(), cfg.vOn, 1e-9);
}

TEST(SimOptions, ValidateFalseSkipsGoldenComparison)
{
    Program prog = assemble("p", makeRandomProgram(3));
    SystemConfig cfg;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Rf, 3, 8.0);
    RunOptions opts;
    opts.validate = false;
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace, opts);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.validated); // never checked
}

TEST(NvmrEdge, FreeListRecyclesThroughManyReclaimCycles)
{
    // Hammer a tiny map table with reclamation across many sections:
    // the free list must keep recycling reserved mappings without
    // leaking them all.
    SystemConfig cfg;
    cfg.mapTableEntries = 4;
    cfg.mtCacheEntries = 4;
    cfg.mtCacheWays = 2;
    cfg.reclaimEnabled = true;
    cfg.reclaimBatch = 2;
    ArchHarness h(ArchKind::Nvmr, cfg);
    auto &arch = *static_cast<NvmrArch *>(h.arch.get());

    for (int round = 0; round < 30; ++round) {
        Addr base = 0x100 + (round % 6) * 0x100;
        for (Addr a = base; a < base + 4 * 16; a += 16) {
            h.arch->loadWord(a);
            h.arch->storeWord(a, a + round);
            h.evict(a);
        }
        h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    }
    EXPECT_GT(h.reclaims(), 0u);
    EXPECT_FALSE(arch.freeListRef().empty());
    // Everything still reads back correctly.
    for (int g = 0; g < 6; ++g) {
        Addr base = 0x100 + g * 0x100;
        int last_round = g + 24; // last round that touched group g
        for (Addr a = base; a < base + 4 * 16; a += 16)
            EXPECT_EQ(h.arch->inspectWord(a), a + last_round)
                << "group " << g;
    }
}

TEST(NvmrEdge, MapTableSurvivesPowerCycles)
{
    ArchHarness h(ArchKind::Nvmr);
    auto &arch = *static_cast<NvmrArch *>(h.arch.get());
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 7);
    h.evict(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    Addr mapping = *arch.mapTableRef().peek(0x100);

    // Several power cycles: the NVM map table must keep its
    // contents; only the volatile cache of it resets.
    for (int i = 0; i < 3; ++i) {
        h.arch->onPowerFail();
        h.arch->performRestore();
        EXPECT_EQ(*arch.mapTableRef().peek(0x100), mapping);
        EXPECT_EQ(h.arch->loadWord(0x100), 7u);
        h.arch->onPowerFail(); // drop the refetched line again
        h.arch->performRestore();
    }
}

TEST(GoldenHelpers, RandWordsMatchesAssemblerDirective)
{
    Program prog = assemble("g", R"(
        .data
a:      .rand 16 99 -50 50
        .text
        halt
)");
    auto words = randWords(16, 99, -50, 50);
    for (size_t i = 0; i < words.size(); ++i)
        EXPECT_EQ(prog.initialWord(static_cast<Addr>(i * 4)),
                  words[i]);
}

TEST(GoldenHelpers, GoldenWordReadsLittleEndian)
{
    GoldenResult g;
    g.data = {0x44, 0x33, 0x22, 0x11, 0xff, 0, 0, 0};
    EXPECT_EQ(goldenWord(g, 0), 0x11223344u);
    EXPECT_EQ(goldenWord(g, 4), 0xffu);
    auto v = goldenWords(g, 0, 2);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[1], 0xffu);
}

TEST(Workloads, EveryWorkloadHasTaskAnnotations)
{
    // Figure 2's taxonomy needs every benchmark decomposed into
    // tasks; the assembler keeps them as explicit TASK ops.
    for (const WorkloadInfo &w : allWorkloads()) {
        Program prog = assembleWorkload(w.name);
        size_t tasks = 0;
        for (const Instruction &inst : prog.text)
            tasks += inst.op == Op::TASK;
        EXPECT_GE(tasks, 1u) << w.name;
    }
}

TEST(Workloads, TaskCountsAreModerate)
{
    // Tasks should fire often enough to matter but not swamp the
    // instruction stream (more than ~10% of executed instructions
    // would distort every architecture's numbers).
    for (const WorkloadInfo &w : allWorkloads()) {
        Program prog = assembleWorkload(w.name);
        GoldenResult g = runContinuous(prog);
        uint64_t boundaries = 0;
        // Count dynamically by running on the Task arch quickly.
        SystemConfig cfg;
        NonePolicy policy;
        HarvestTrace trace(TraceKind::Rf, 5, 9.0);
        RunOptions opts;
        opts.validate = false;
        Simulator sim(prog, ArchKind::Task, cfg, policy, trace, opts);
        RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << w.name;
        boundaries = r.backupsByReason[
            static_cast<size_t>(BackupReason::TaskBoundary)];
        EXPECT_GT(boundaries, 0u) << w.name;
        EXPECT_LT(boundaries, g.instructions / 10) << w.name;
    }
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Behavioural tests for our-version Clank: violations force backups,
 * write-dominated evictions do not, backups reset dominance state,
 * and the GBF keeps evicted read-dominance visible.
 */

#include <gtest/gtest.h>

#include "arch_harness.hh"

namespace nvmr
{
namespace
{

TEST(Clank, ReadThenWriteEvictionBacksUp)
{
    ArchHarness h(ArchKind::Clank);
    uint64_t base = h.backups();

    h.arch->loadWord(0x100);        // read-dominate the word
    h.arch->storeWord(0x100, 42);   // dirty the block
    h.evict(0x100);                 // violating eviction

    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.backups(), base + 1);
    // The backup persisted the block home.
    EXPECT_EQ(h.nvm->peekWord(0x100), 42u);
}

TEST(Clank, WriteFirstEvictionDoesNotBackUp)
{
    ArchHarness h(ArchKind::Clank);
    uint64_t base = h.backups();

    h.arch->storeWord(0x100, 7);    // write-dominated
    h.evict(0x100);

    EXPECT_EQ(h.violations(), 0u);
    EXPECT_EQ(h.backups(), base);
    // Still written back (normal write-dominated writeback).
    EXPECT_EQ(h.nvm->peekWord(0x100), 7u);
}

TEST(Clank, CleanEvictionNeverBacksUp)
{
    ArchHarness h(ArchKind::Clank);
    uint64_t base = h.backups();
    h.arch->loadWord(0x100);
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 0u);
    EXPECT_EQ(h.backups(), base);
}

TEST(Clank, BackupResetsDominanceState)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->loadWord(0x100);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    // New code section: a store is now the first access.
    h.arch->storeWord(0x100, 9);
    uint64_t base = h.backups();
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 0u);
    EXPECT_EQ(h.backups(), base);
}

TEST(Clank, GbfKeepsEvictedReadDominanceVisible)
{
    ArchHarness h(ArchKind::Clank);
    // Read, evict clean (GBF records read-dominance), refetch and
    // store: without the GBF the LBF would claim write-dominance.
    h.arch->loadWord(0x100);
    h.evict(0x100);
    h.arch->storeWord(0x100, 5);
    uint64_t base = h.backups();
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.backups(), base + 1);
}

TEST(Clank, BackupPersistsAllDirtyBlocks)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->storeWord(0x200, 1);
    h.arch->storeWord(0x300, 2);
    h.arch->storeWord(0x404, 3);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    EXPECT_EQ(h.nvm->peekWord(0x200), 1u);
    EXPECT_EQ(h.nvm->peekWord(0x300), 2u);
    EXPECT_EQ(h.nvm->peekWord(0x404), 3u);
    EXPECT_EQ(h.arch->dataCache().dirtyCount(), 0u);
}

TEST(Clank, PowerFailDropsVolatileState)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->storeWord(0x200, 99);   // dirty, never persisted
    h.arch->onPowerFail();
    // The cache is gone; the load must see the NVM value (0).
    EXPECT_EQ(h.arch->loadWord(0x200), 0u);
}

TEST(Clank, RestoreReturnsPersistedSnapshot)
{
    ArchHarness h(ArchKind::Clank);
    CpuSnapshot snap;
    snap.pc = 123;
    snap.regs[5] = 77;
    h.arch->performBackup(snap, BackupReason::Policy);
    h.arch->onPowerFail();
    CpuSnapshot restored = h.arch->performRestore();
    EXPECT_EQ(restored.pc, 123u);
    EXPECT_EQ(restored.regs[5], 77u);
}

TEST(Clank, BackupCostGrowsWithDirtyBlocks)
{
    ArchHarness h(ArchKind::Clank);
    NanoJoules clean_cost = h.arch->backupCostNowNj();
    h.arch->storeWord(0x200, 1);
    h.arch->storeWord(0x300, 2);
    NanoJoules dirty_cost = h.arch->backupCostNowNj();
    EXPECT_GT(dirty_cost, clean_cost);
}

TEST(Clank, InspectWordSeesCacheAndNvm)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->storeWord(0x200, 5);
    EXPECT_EQ(h.arch->inspectWord(0x200), 5u); // still only in cache
    EXPECT_EQ(h.nvm->peekWord(0x200), 0u);
    h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
    EXPECT_EQ(h.arch->inspectWord(0x200), 5u);
}

TEST(Clank, ByteStoresTrackWordDominance)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->loadByte(0x101);        // read-dominates the word
    h.arch->storeByte(0x102, 0xee); // same word: violation pending
    uint64_t base = h.backups();
    h.evict(0x100);
    EXPECT_EQ(h.violations(), 1u);
    EXPECT_EQ(h.backups(), base + 1);
}

} // namespace
} // namespace nvmr

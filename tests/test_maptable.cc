/**
 * @file
 * Unit tests for the NVM map table: capacity, LRU victim selection
 * for reclamation, and update semantics.
 */

#include <gtest/gtest.h>

#include "core/maptable.hh"

namespace nvmr
{
namespace
{

struct MapTableTest : public ::testing::Test
{
    TechParams tech;
    NullEnergySink sink;
    MapTable mt{4, tech, sink};
};

TEST_F(MapTableTest, LookupMissAndHit)
{
    EXPECT_FALSE(mt.lookup(0x100).has_value());
    mt.set(0x100, 0x9000);
    auto m = mt.lookup(0x100);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, 0x9000u);
}

TEST_F(MapTableTest, UpdateOverwritesMapping)
{
    mt.set(0x100, 0x9000);
    mt.set(0x100, 0x9010);
    EXPECT_EQ(*mt.lookup(0x100), 0x9010u);
    EXPECT_EQ(mt.size(), 1u);
}

TEST_F(MapTableTest, HasRoomSemantics)
{
    for (Addr a = 0; a < 4; ++a)
        mt.set(a * 16, 0x9000 + a * 16);
    EXPECT_EQ(mt.size(), 4u);
    EXPECT_FALSE(mt.hasRoomFor(0x500));   // new tag, full
    EXPECT_TRUE(mt.hasRoomFor(0));        // existing tag: update ok
}

TEST_F(MapTableTest, EraseFreesCapacity)
{
    for (Addr a = 0; a < 4; ++a)
        mt.set(a * 16, 0x9000 + a * 16);
    mt.erase(16);
    EXPECT_EQ(mt.size(), 3u);
    EXPECT_TRUE(mt.hasRoomFor(0x500));
    EXPECT_FALSE(mt.lookup(16).has_value());
}

TEST_F(MapTableTest, LruVictimIsLeastRecentlyUsed)
{
    mt.set(0x10, 0x9010);
    mt.set(0x20, 0x9020);
    mt.set(0x30, 0x9030);
    // Touch 0x10 and 0x30; 0x20 becomes LRU.
    mt.lookup(0x10);
    mt.lookup(0x30);
    auto victim = mt.lruEntry();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->first, 0x20u);
    EXPECT_EQ(victim->second, 0x9020u);
}

TEST_F(MapTableTest, LruEmptyTable)
{
    EXPECT_FALSE(mt.lruEntry().has_value());
}

TEST_F(MapTableTest, PeekIsUnaccountedLookup)
{
    mt.set(0x40, 0x9040);
    EXPECT_EQ(*mt.peek(0x40), 0x9040u);
    EXPECT_FALSE(mt.peek(0x50).has_value());
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests for the campaign journal (nvmr-campaign-journal-v1): framed
 * record round-trips through JournalWriter/loadJournal, torn-tail and
 * CRC-corruption recovery (trust everything before the first bad
 * record, reject everything after), resume-append after truncation,
 * header validation, and the cell-key / payload helpers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hh"
#include "campaign/cellio.hh"
#include "campaign/journal.hh"

namespace nvmr::campaign
{
namespace
{

std::string
tempPath(const std::string &name)
{
    std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** A journal with a header and two cell records. */
std::string
makeJournal(const std::string &path, uint64_t config_hash)
{
    JournalWriter w;
    EXPECT_TRUE(w.openFresh(path, config_hash, "nvmr_test"));
    EXPECT_TRUE(w.append(RecordType::Cell, cellKey("grid", 0),
                         std::string("alpha\0beta", 10)));
    EXPECT_TRUE(w.append(RecordType::Cell, cellKey("grid", 1),
                         "gamma"));
    w.close();
    return path;
}

TEST(CampaignJournal, RoundTrip)
{
    std::string path = tempPath("journal_roundtrip.jrn");
    makeJournal(path, 0x1234);

    JournalContents j = loadJournal(path);
    EXPECT_TRUE(j.error.empty()) << j.error;
    EXPECT_FALSE(j.truncatedTail);
    EXPECT_EQ(j.configHash, 0x1234u);
    EXPECT_EQ(j.tool, "nvmr_test");
    ASSERT_EQ(j.cells.size(), 2u);
    EXPECT_EQ(j.cells.at(cellKey("grid", 0)),
              std::string("alpha\0beta", 10));
    EXPECT_EQ(j.cells.at(cellKey("grid", 1)), "gamma");
    EXPECT_EQ(j.validBytes, readFile(path).size());
}

TEST(CampaignJournal, QuarantineRecordRoundTrip)
{
    std::string path = tempPath("journal_quarantine.jrn");
    JournalWriter w;
    ASSERT_TRUE(w.openFresh(path, 7, "nvmr_test"));
    ASSERT_TRUE(w.append(RecordType::Quarantine, cellKey("grid", 3),
                         quarantinePayload(3, "spin hung")));
    w.close();

    JournalContents j = loadJournal(path);
    ASSERT_TRUE(j.error.empty()) << j.error;
    ASSERT_EQ(j.quarantined.size(), 1u);
    unsigned attempts = 0;
    std::string reason;
    ASSERT_TRUE(parseQuarantinePayload(
        j.quarantined.at(cellKey("grid", 3)), attempts, reason));
    EXPECT_EQ(attempts, 3u);
    EXPECT_EQ(reason, "spin hung");
}

TEST(CampaignJournal, TornTailIsDroppedNotFatal)
{
    std::string path = tempPath("journal_torn.jrn");
    makeJournal(path, 9);
    std::string intact = readFile(path);

    // A frame header promising more payload than the file holds --
    // exactly what a crash mid-append leaves behind.
    std::ofstream os(path, std::ios::binary | std::ios::app);
    uint32_t len = 100000;
    uint8_t type = 1;
    uint64_t key = 42;
    os.write(reinterpret_cast<const char *>(&len), 4);
    os.write(reinterpret_cast<const char *>(&type), 1);
    os.write(reinterpret_cast<const char *>(&key), 8);
    os.write("partial", 7);
    os.close();

    JournalContents j = loadJournal(path);
    EXPECT_TRUE(j.error.empty()) << j.error;
    EXPECT_TRUE(j.truncatedTail);
    EXPECT_EQ(j.validBytes, intact.size());
    EXPECT_EQ(j.cells.size(), 2u);
}

TEST(CampaignJournal, CrcCorruptionRejectsRecordAndTail)
{
    std::string path = tempPath("journal_crc.jrn");
    makeJournal(path, 9);
    std::string bytes = readFile(path);

    // Flip one payload byte of the *last* record; the reader must
    // keep the first cell and reject from the corrupt record on.
    bytes[bytes.size() - 6] ^= 0x40;
    writeFile(path, bytes);

    JournalContents j = loadJournal(path);
    EXPECT_TRUE(j.error.empty()) << j.error;
    EXPECT_TRUE(j.truncatedTail);
    EXPECT_EQ(j.cells.size(), 1u);
    EXPECT_EQ(j.cells.count(cellKey("grid", 0)), 1u);
    EXPECT_EQ(j.cells.count(cellKey("grid", 1)), 0u);
    EXPECT_LT(j.validBytes, bytes.size());
}

TEST(CampaignJournal, ResumeAppendAfterTruncatedTail)
{
    std::string path = tempPath("journal_resume.jrn");
    makeJournal(path, 9);
    std::ofstream(path, std::ios::binary | std::ios::app)
        << "garbage tail";

    JournalContents j = loadJournal(path);
    ASSERT_TRUE(j.error.empty()) << j.error;
    ASSERT_TRUE(j.truncatedTail);

    // openResume truncates the garbage away; the next append lands
    // on a clean frame boundary.
    JournalWriter w;
    ASSERT_TRUE(w.openResume(path, j.validBytes));
    ASSERT_TRUE(w.append(RecordType::Cell, cellKey("grid", 2),
                         "delta"));
    w.close();

    JournalContents j2 = loadJournal(path);
    EXPECT_TRUE(j2.error.empty()) << j2.error;
    EXPECT_FALSE(j2.truncatedTail);
    EXPECT_EQ(j2.cells.size(), 3u);
    EXPECT_EQ(j2.cells.at(cellKey("grid", 2)), "delta");
}

TEST(CampaignJournal, MissingFileIsAnError)
{
    JournalContents j =
        loadJournal(tempPath("journal_missing.jrn"));
    EXPECT_FALSE(j.error.empty());
}

TEST(CampaignJournal, EmptyFileIsAnError)
{
    std::string path = tempPath("journal_empty.jrn");
    writeFile(path, "");
    EXPECT_FALSE(loadJournal(path).error.empty());
}

TEST(CampaignJournal, BadMagicIsAnError)
{
    std::string path = tempPath("journal_badmagic.jrn");
    writeFile(path, "notajrn1 some other file format entirely");
    EXPECT_FALSE(loadJournal(path).error.empty());
}

TEST(CampaignJournal, MissingHeaderRecordIsAnError)
{
    // Magic only, no intact Header record: unusable, not resumable.
    std::string path = tempPath("journal_noheader.jrn");
    writeFile(path, kJournalMagic);
    EXPECT_FALSE(loadJournal(path).error.empty());
}

TEST(CampaignJournal, HeaderPayloadRoundTrip)
{
    uint64_t hash = 0;
    std::string tool;
    ASSERT_TRUE(parseHeaderPayload(
        headerPayload(0xfeedfacecafebeefull, "nvmr_sweep"), hash,
        tool));
    EXPECT_EQ(hash, 0xfeedfacecafebeefull);
    EXPECT_EQ(tool, "nvmr_sweep");
}

TEST(CampaignJournal, CellKeysAreStableAndDistinct)
{
    EXPECT_EQ(cellKey("grid", 5), cellKey("grid", 5));
    EXPECT_NE(cellKey("grid", 5), cellKey("grid", 6));
    EXPECT_NE(cellKey("grid", 5), cellKey("test", 5));
    // "a"/index 1 vs "a1"/index-elsewhere style collisions are what
    // the stage:index separator prevents.
    EXPECT_NE(cellKey("s1", 0), cellKey("s", 10));
}

TEST(CampaignJournal, Crc32MatchesKnownVector)
{
    // IEEE 802.3 CRC of "123456789" is the classic check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(CampaignCellIo, DecodersRejectOversizedElementCounts)
{
    // A corrupt element count must not turn into a giant resize().
    std::string bogus(12, '\0');
    bogus[0] = static_cast<char>(0xff);
    bogus[1] = static_cast<char>(0xff);
    bogus[2] = static_cast<char>(0xff);
    bogus[3] = static_cast<char>(0x7f);

    std::vector<RunResult> runs;
    EXPECT_FALSE(decodeRunResults(bogus, runs));
    std::vector<SpendthriftSample> samples;
    EXPECT_FALSE(decodeSamples(bogus, samples));
    CensusResult census;
    EXPECT_FALSE(decodeCensus(bogus, census));
}

} // namespace
} // namespace nvmr::campaign

/**
 * @file
 * Unit tests for the iisa two-pass assembler: directives, labels,
 * pseudo-instructions, operand forms and error-free encodings.
 */

#include <gtest/gtest.h>

#include "common/xorshift.hh"
#include "isa/assembler.hh"

namespace nvmr
{
namespace
{

TEST(Assembler, EncodesRType)
{
    Program p = assemble("t", R"(
        add r1, r2, r3
        sub r4, r5, r6
        halt
    )");
    ASSERT_EQ(p.text.size(), 3u);
    EXPECT_EQ(p.text[0].op, Op::ADD);
    EXPECT_EQ(p.text[0].rd, 1u);
    EXPECT_EQ(p.text[0].rs1, 2u);
    EXPECT_EQ(p.text[0].rs2, 3u);
    EXPECT_EQ(p.text[1].op, Op::SUB);
    EXPECT_EQ(p.text[2].op, Op::HALT);
}

TEST(Assembler, EncodesITypeWithNegativeImmediate)
{
    Program p = assemble("t", "addi r1, r2, -42\nhalt\n");
    EXPECT_EQ(p.text[0].op, Op::ADDI);
    EXPECT_EQ(p.text[0].imm, -42);
}

TEST(Assembler, EncodesHexImmediate)
{
    Program p = assemble("t", "li r1, 0x3fffffff\nhalt\n");
    EXPECT_EQ(p.text[0].op, Op::LUI);
    EXPECT_EQ(p.text[0].imm, 0x3fffffff);
}

TEST(Assembler, EncodesMemoryOperands)
{
    Program p = assemble("t", R"(
        ld r1, 8(r2)
        st r3, -4(r4)
        ldb r5, 0(r6)
        stb r7, 1(r8)
        halt
    )");
    EXPECT_EQ(p.text[0].op, Op::LD);
    EXPECT_EQ(p.text[0].rd, 1u);
    EXPECT_EQ(p.text[0].rs1, 2u);
    EXPECT_EQ(p.text[0].imm, 8);
    EXPECT_EQ(p.text[1].op, Op::ST);
    EXPECT_EQ(p.text[1].rs2, 3u);
    EXPECT_EQ(p.text[1].rs1, 4u);
    EXPECT_EQ(p.text[1].imm, -4);
    EXPECT_EQ(p.text[2].op, Op::LDB);
    EXPECT_EQ(p.text[3].op, Op::STB);
    EXPECT_EQ(p.text[3].rs2, 7u);
}

TEST(Assembler, ResolvesTextLabels)
{
    Program p = assemble("t", R"(
main:
        jmp target
        nop
target:
        halt
    )");
    EXPECT_EQ(p.text[0].op, Op::JMP);
    EXPECT_EQ(p.text[0].imm, 2);
    EXPECT_EQ(p.entry, 0u);
}

TEST(Assembler, ResolvesDataLabelsWithOffsets)
{
    Program p = assemble("t", R"(
        .data
a:      .word 1 2 3
b:      .word 4
        .text
        li r1, a
        li r2, b
        li r3, a+8
        halt
    )");
    EXPECT_EQ(p.text[0].imm, 0);
    EXPECT_EQ(p.text[1].imm, 12);
    EXPECT_EQ(p.text[2].imm, 8);
    EXPECT_EQ(p.initialWord(0), 1u);
    EXPECT_EQ(p.initialWord(8), 3u);
    EXPECT_EQ(p.initialWord(12), 4u);
}

TEST(Assembler, WordDirectiveAcceptsLabelReferences)
{
    Program p = assemble("t", R"(
        .data
ptrs:   .word tail 0
tail:   .word 99
        .text
        halt
    )");
    EXPECT_EQ(p.initialWord(0), 8u); // address of tail
    EXPECT_EQ(p.initialWord(8), 99u);
}

TEST(Assembler, SpaceZeroFills)
{
    Program p = assemble("t", R"(
        .data
buf:    .space 16
        .text
        halt
    )");
    ASSERT_EQ(p.dataSize(), 16u);
    for (Addr a = 0; a < 16; a += 4)
        EXPECT_EQ(p.initialWord(a), 0u);
}

TEST(Assembler, RandMatchesXorShift)
{
    Program p = assemble("t", R"(
        .data
r:      .rand 8 42 0 1000
        .text
        halt
    )");
    XorShift rng(42);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(p.initialWord(i * 4),
                  static_cast<Word>(rng.range(0, 1000)));
}

TEST(Assembler, RandSupportsNegativeRanges)
{
    Program p = assemble("t", R"(
        .data
r:      .rand 4 7 -100 -1
        .text
        halt
    )");
    XorShift rng(7);
    for (unsigned i = 0; i < 4; ++i) {
        Word expect = static_cast<Word>(rng.range(-100, -1));
        EXPECT_EQ(p.initialWord(i * 4), expect);
        EXPECT_LT(static_cast<SWord>(expect), 0);
    }
}

TEST(Assembler, AsciizAppendsNul)
{
    Program p = assemble("t", R"(
        .data
s:      .asciiz "ab"
        .text
        halt
    )");
    EXPECT_EQ(p.data.size(), 3u);
    EXPECT_EQ(p.data[0], 'a');
    EXPECT_EQ(p.data[1], 'b');
    EXPECT_EQ(p.data[2], 0u);
}

TEST(Assembler, AlignPadsData)
{
    Program p = assemble("t", R"(
        .data
s:      .asciiz "abc"
        .align 4
w:      .word 5
        .text
        halt
    )");
    EXPECT_EQ(p.labelOf("w"), 4u);
    EXPECT_EQ(p.initialWord(4), 5u);
}

TEST(Assembler, PseudoInstructions)
{
    Program p = assemble("t", R"(
        nop
        mv r1, r2
        neg r3, r4
        not r5, r6
        call fn
        ret
        bgt r1, r2, fn
        ble r1, r2, fn
fn:
        halt
    )");
    EXPECT_EQ(p.text[0].op, Op::ADDI);
    EXPECT_EQ(p.text[0].rd, kRegZero);
    EXPECT_EQ(p.text[1].op, Op::ADDI);
    EXPECT_EQ(p.text[1].rs1, 2u);
    EXPECT_EQ(p.text[2].op, Op::SUB);
    EXPECT_EQ(p.text[2].rs1, kRegZero);
    EXPECT_EQ(p.text[3].op, Op::XORI);
    EXPECT_EQ(p.text[3].imm, -1);
    EXPECT_EQ(p.text[4].op, Op::JAL);
    EXPECT_EQ(p.text[4].rd, kRegRa);
    EXPECT_EQ(p.text[5].op, Op::JR);
    EXPECT_EQ(p.text[5].rs1, kRegRa);
    // bgt a,b -> blt b,a ; ble a,b -> bge b,a
    EXPECT_EQ(p.text[6].op, Op::BLT);
    EXPECT_EQ(p.text[6].rs1, 2u);
    EXPECT_EQ(p.text[6].rs2, 1u);
    EXPECT_EQ(p.text[7].op, Op::BGE);
}

TEST(Assembler, RegisterAliases)
{
    Program p = assemble("t", R"(
        add r1, zero, sp
        jr ra
        halt
    )");
    EXPECT_EQ(p.text[0].rs1, kRegZero);
    EXPECT_EQ(p.text[0].rs2, kRegSp);
    EXPECT_EQ(p.text[1].rs1, kRegRa);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble("t", R"(
# leading comment
        nop           # trailing comment
        ; alt comment style

        halt
    )");
    EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, MultipleLabelsOnOneLine)
{
    Program p = assemble("t", R"(
a: b:   nop
        halt
    )");
    EXPECT_EQ(p.labelOf("a"), 0u);
    EXPECT_EQ(p.labelOf("b"), 0u);
}

TEST(Assembler, EntryDefaultsToMainLabel)
{
    Program p = assemble("t", R"(
        nop
main:
        halt
    )");
    EXPECT_EQ(p.entry, 1u);
}

TEST(Assembler, DisassembleRoundTripNames)
{
    Program p = assemble("t", R"(
        add r1, r2, r3
        ld r4, 8(r5)
        beq r6, r7, 0
        halt
    )");
    EXPECT_EQ(disassemble(p.text[0]), "add r1, r2, r3");
    EXPECT_EQ(disassemble(p.text[1]), "ld r4, 8(r5)");
    EXPECT_EQ(disassemble(p.text[2]), "beq r6, r7, 0");
    EXPECT_EQ(disassemble(p.text[3]), "halt");
}

} // namespace
} // namespace nvmr

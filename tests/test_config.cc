/**
 * @file
 * Tests that the default SystemConfig reproduces Table 2 (and
 * Table 4), and that the derived-parameter helpers behave.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

namespace nvmr
{
namespace
{

TEST(Config, Table2Defaults)
{
    SystemConfig cfg;
    // Data cache: 256 B, 8-way, 16 B blocks.
    EXPECT_EQ(cfg.cache.sizeBytes, 256u);
    EXPECT_EQ(cfg.cache.ways, 8u);
    EXPECT_EQ(cfg.cache.blockBytes, 16u);
    // GBF: 8 one-bit entries. LBF: 4 two-bit entries per line
    // (implied by 16 B blocks / 4 B words).
    EXPECT_EQ(cfg.gbfBits, 8u);
    EXPECT_EQ(cfg.cache.wordsPerBlock(), 4u);
    // Map table cache: 512 entries, 8-way.
    EXPECT_EQ(cfg.mtCacheEntries, 512u);
    EXPECT_EQ(cfg.mtCacheWays, 8u);
    // Map table: 4096 entries.
    EXPECT_EQ(cfg.mapTableEntries, 4096u);
    // Flash: 2 MB. Supercap: 100 mF, 2.4 V max.
    EXPECT_EQ(cfg.nvmBytes, 2u << 20);
    EXPECT_DOUBLE_EQ(cfg.capacitorFarads, 0.1);
    EXPECT_DOUBLE_EQ(cfg.vMax, 2.4);
}

TEST(Config, WorstCaseFreeListSizing)
{
    // Section 5.1: #mappings = #map table + #map table cache + 1.
    SystemConfig cfg;
    EXPECT_EQ(cfg.effectiveFreeListEntries(), 4096u + 512u + 1u);
    cfg.freeListEntries = 99;
    EXPECT_EQ(cfg.effectiveFreeListEntries(), 99u);
}

TEST(Config, ReclaimBatchDefaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.effectiveReclaimBatch(), 4096u / 8u);
    cfg.reclaimBatch = 7;
    EXPECT_EQ(cfg.effectiveReclaimBatch(), 7u);
    cfg.reclaimBatch = 0;
    cfg.mapTableEntries = 4; // batch would round to zero
    EXPECT_EQ(cfg.effectiveReclaimBatch(), 1u);
}

TEST(Config, Table4HoopDefaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.oopBufferEntries, 128u);
    EXPECT_EQ(cfg.oopRegionEntries, 2048u);
}

TEST(Config, OriginalClankBuffersMatchCacheBudget)
{
    // 32 + 32 word addresses ~ the 256 B cache's 64 words of data.
    SystemConfig cfg;
    EXPECT_EQ((cfg.rfBufferEntries + cfg.wfBufferEntries) *
                  kWordBytes,
              cfg.cache.sizeBytes);
}

TEST(Config, AtomicityModeledByDefault)
{
    SystemConfig cfg;
    EXPECT_TRUE(cfg.modelBackupAtomicity);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Integration tests for the intermittent simulator: completion,
 * validation against the continuous run, energy conservation across
 * categories, and power-failure re-execution behaviour.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

/** A small program with read-modify-write traffic over 2 KB. */
const char *kRmwProgram = R"(
        .data
arr:    .rand 512 31 0 1000
        .text
main:
        li   r1, 0              # pass
pass:
        li   r2, 0              # i
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        ld   r5, 0(r3)
        addi r5, r5, 1
        st   r5, 0(r3)
        addi r2, r2, 1
        li   r6, 512
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 6
        blt  r1, r6, pass
        halt
)";

struct SimTest : public ::testing::Test
{
    Program prog = assemble("rmw", kRmwProgram);
    SystemConfig cfg;
    HarvestTrace trace{TraceKind::Solar, 77, 8.0};
};

TEST_F(SimTest, ClankCompletesAndValidates)
{
    JitPolicy policy;
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.backups, 0u);
}

TEST_F(SimTest, NvmrCompletesAndValidates)
{
    JitPolicy policy;
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
}

TEST_F(SimTest, HoopCompletesAndValidates)
{
    JitPolicy policy;
    Simulator sim(prog, ArchKind::Hoop, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
}

TEST_F(SimTest, IdealWithJitValidates)
{
    JitPolicy policy;
    Simulator sim(prog, ArchKind::Ideal, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.violations, 0u);
}

TEST_F(SimTest, EnergyCategoriesSumToTotal)
{
    JitPolicy policy;
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace);
    RunResult r = sim.run();
    NanoJoules sum = 0;
    for (NanoJoules e : r.energy)
        sum += e;
    EXPECT_NEAR(sum, r.totalEnergyNj, 1e-6);
    EXPECT_GT(r.energyOf(ECat::Forward), 0.0);
    EXPECT_GT(r.energyOf(ECat::Backup), 0.0);
}

TEST_F(SimTest, JitHasNegligibleDeadEnergy)
{
    // Section 6.1.4: with the JIT scheme there is no dead energy.
    JitPolicy policy;
    Simulator sim(prog, ArchKind::Clank, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_LE(r.energyOf(ECat::Dead),
              0.01 * r.totalEnergyNj);
}

TEST_F(SimTest, WatchdogBacksUpPeriodically)
{
    // A store-only (write-dominated) program: no violation backups
    // interfere, so the watchdog timer drives the backup count.
    Program wr_only = assemble("wronly", R"(
        .data
arr:    .space 2048
        .text
main:
        li   r1, 0
pass:
        li   r2, 0
elem:
        slli r3, r2, 2
        li   r4, arr
        add  r3, r3, r4
        st   r1, 0(r3)
        addi r2, r2, 1
        li   r6, 512
        blt  r2, r6, elem
        addi r1, r1, 1
        li   r6, 8
        blt  r1, r6, pass
        halt
)");
    WatchdogPolicy policy(8000);
    Simulator sim(wr_only, ArchKind::Clank, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    // Roughly one policy backup per 8000 active cycles.
    uint64_t policy_backups =
        r.backupsByReason[static_cast<size_t>(BackupReason::Policy)];
    EXPECT_GE(policy_backups, r.activeCycles / 8000 / 2);
}

TEST_F(SimTest, SmallCapacitorCausesPowerFailures)
{
    // The co-sized platform: a full 256 B cache's atomic backup does
    // not fit a 500 uF charge, and the watchdog period must be well
    // under the charge lifetime.
    SystemConfig small = SystemConfig::smallPlatform();
    WatchdogPolicy policy(300);
    Simulator sim(prog, ArchKind::Clank, small, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.powerFailures, 0u);
    EXPECT_EQ(r.restores, r.powerFailures);
    EXPECT_GT(r.energyOf(ECat::Restore), 0.0);
}

TEST_F(SimTest, ReExecutionInflatesInstructionCount)
{
    SystemConfig small = SystemConfig::smallPlatform();
    WatchdogPolicy policy(300);
    Simulator sim(prog, ArchKind::Clank, small, policy, trace);
    RunResult r = sim.run();
    GoldenResult golden = runContinuous(prog);
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.instructions, golden.instructions);
}

TEST_F(SimTest, NvmrUsesFewerBackupsThanClank)
{
    JitPolicy p1, p2;
    Simulator clank(prog, ArchKind::Clank, cfg, p1, trace);
    Simulator nvmr(prog, ArchKind::Nvmr, cfg, p2, trace);
    RunResult rc = clank.run();
    RunResult rn = nvmr.run();
    ASSERT_TRUE(rc.completed && rn.completed);
    EXPECT_LT(rn.backups, rc.backups);
    EXPECT_GT(rn.renames, 0u);
}

TEST_F(SimTest, GoldenRunnerHaltsAndCounts)
{
    GoldenResult golden = runContinuous(prog);
    EXPECT_TRUE(golden.halted);
    // 6 passes x 512 elements, value starts as rand +6.
    EXPECT_GT(golden.instructions, 6u * 512u * 8u);
}

TEST_F(SimTest, MaxCyclesGuardStopsRun)
{
    Program spin = assemble("spin", R"(
main:
        jmp main
)");
    JitPolicy policy;
    RunOptions opts;
    opts.maxCycles = 200000;
    opts.validate = false;
    Simulator sim(spin, ArchKind::Clank, cfg, policy, trace, opts);
    RunResult r = sim.run();
    EXPECT_FALSE(r.completed);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * The central correctness property of the repository: for randomly
 * generated programs, every intermittent architecture x backup policy
 * x capacitor size combination must finish with exactly the NVM state
 * a continuously-powered execution produces — across power failures,
 * re-execution, renaming and log replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

struct CorrectnessCase
{
    ArchKind arch;
    PolicyKind policy;
    double farads;
    uint64_t seed;
};

std::string
caseName(const ::testing::TestParamInfo<CorrectnessCase> &info)
{
    std::ostringstream os;
    os << archKindName(info.param.arch) << "_"
       << policyKindName(info.param.policy) << "_"
       << static_cast<int>(info.param.farads * 1e6) << "uF_s"
       << info.param.seed;
    return os.str();
}

class IntermittentCorrectness
    : public ::testing::TestWithParam<CorrectnessCase>
{
};

TEST_P(IntermittentCorrectness, FinalStateMatchesContinuousRun)
{
    const CorrectnessCase &c = GetParam();
    Program prog = assemble(
        "rand" + std::to_string(c.seed), makeRandomProgram(c.seed));

    // A tiny capacitor can only make forward progress if the
    // backup interval, the worst-case (atomic) backup cost and
    // HOOP's restore-time log GC all fit inside one charge: the
    // small platform co-sizes every structure with the capacitor
    // (the paper's watchdog/HOOP runs use the 100 mF default).
    SystemConfig cfg = c.farads < 1e-3
                           ? SystemConfig::smallPlatform()
                           : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    // Small structures stress the structural-hazard paths.
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;

    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;
    auto policy = makePolicy(spec);

    HarvestTrace trace(TraceKind::Rf, 4000 + c.seed, 7.0);
    Simulator sim(prog, c.arch, cfg, *policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed) << "did not complete";
    EXPECT_TRUE(r.validated) << "final NVM state diverged";
}

std::vector<CorrectnessCase>
allCases()
{
    std::vector<CorrectnessCase> cases;
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        for (double farads : {0.1, 500e-6}) {
            for (PolicyKind pol :
                 {PolicyKind::Jit, PolicyKind::Watchdog}) {
                cases.push_back(
                    {ArchKind::Clank, pol, farads, seed});
                cases.push_back(
                    {ArchKind::ClankOriginal, pol, farads, seed});
                cases.push_back({ArchKind::Nvmr, pol, farads, seed});
                cases.push_back({ArchKind::Hoop, pol, farads, seed});
            }
            // The ideal architecture is only safe under perfect JIT.
            cases.push_back(
                {ArchKind::Ideal, PolicyKind::Jit, farads, seed});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, IntermittentCorrectness,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(IntermittentCorrectnessExtras, ReclaimModeStaysCorrect)
{
    Program prog = assemble("rand13", makeRandomProgram(13));
    SystemConfig cfg;
    // A big capacitor keeps JIT backups rare, so renames accumulate
    // and the (tiny) map table actually fills up.
    cfg.capacitorFarads = 0.1;
    cfg.mapTableEntries = 8;
    cfg.mtCacheEntries = 8;
    cfg.mtCacheWays = 2;
    cfg.reclaimEnabled = true;
    cfg.reclaimBatch = 4;

    JitPolicy policy;
    HarvestTrace trace(TraceKind::Wind, 555, 7.0);
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.reclaims, 0u);
}

TEST(IntermittentCorrectnessExtras, TinyOopStructuresStayCorrect)
{
    Program prog = assemble("rand11", makeRandomProgram(11));
    SystemConfig cfg;
    cfg.capacitorFarads = 500e-6;
    cfg.oopBufferEntries = 8;
    cfg.oopRegionEntries = 64;

    WatchdogPolicy policy(8000);
    HarvestTrace trace(TraceKind::Solar, 777, 7.0);
    Simulator sim(prog, ArchKind::Hoop, cfg, policy, trace);
    RunResult r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
}

} // namespace
} // namespace nvmr

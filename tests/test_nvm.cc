/**
 * @file
 * Unit tests for the NVM (Flash) model: persistence, wear counters
 * and access accounting.
 */

#include <gtest/gtest.h>

#include "mem/nvm.hh"

namespace nvmr
{
namespace
{

/** Sink that records total energy and cycles. */
class RecordingSink : public EnergySink
{
  public:
    void consume(NanoJoules nj) override { energy += nj; }
    void consumeOverhead(NanoJoules nj) override { overhead += nj; }
    void addCycles(Cycles n) override { cycles += n; }

    NanoJoules energy = 0;
    NanoJoules overhead = 0;
    Cycles cycles = 0;
};

struct NvmTest : public ::testing::Test
{
    TechParams tech;
    RecordingSink sink;
    Nvm nvm{1 << 16, tech, sink};
};

TEST_F(NvmTest, ReadWriteRoundTrip)
{
    nvm.writeWord(0x100, 0xdeadbeef);
    EXPECT_EQ(nvm.readWord(0x100), 0xdeadbeefu);
    EXPECT_EQ(nvm.peekWord(0x100), 0xdeadbeefu);
}

TEST_F(NvmTest, LittleEndianLayout)
{
    nvm.pokeWord(0, 0x11223344);
    EXPECT_EQ(nvm.peekByte(0), 0x44u);
    EXPECT_EQ(nvm.peekByte(3), 0x11u);
}

TEST_F(NvmTest, AccountedAccessesChargeEnergyAndCycles)
{
    nvm.writeWord(0, 1);
    EXPECT_DOUBLE_EQ(sink.energy, tech.flashWriteWordNj);
    EXPECT_EQ(sink.cycles, tech.flashWriteCycles);
    nvm.readWord(0);
    EXPECT_DOUBLE_EQ(sink.energy,
                     tech.flashWriteWordNj + tech.flashReadWordNj);
    EXPECT_EQ(sink.cycles,
              tech.flashWriteCycles + tech.flashReadCycles);
}

TEST_F(NvmTest, PeekPokeAreFree)
{
    nvm.pokeWord(0, 5);
    nvm.peekWord(0);
    EXPECT_DOUBLE_EQ(sink.energy, 0.0);
    EXPECT_EQ(nvm.totalWrites(), 0u);
    EXPECT_EQ(nvm.totalReads(), 0u);
}

TEST_F(NvmTest, WearTracksPerWordWrites)
{
    for (int i = 0; i < 5; ++i)
        nvm.writeWord(0x40, i);
    nvm.writeWord(0x44, 1);
    EXPECT_EQ(nvm.wearOf(0x40), 5u);
    EXPECT_EQ(nvm.wearOf(0x42), 5u); // same word
    EXPECT_EQ(nvm.wearOf(0x44), 1u);
    EXPECT_EQ(nvm.maxWear(), 5u);
    EXPECT_EQ(nvm.totalWrites(), 6u);
}

TEST_F(NvmTest, LoadImagePlacesBytes)
{
    std::vector<uint8_t> img = {1, 2, 3, 4, 5};
    nvm.loadImage(0x80, img);
    EXPECT_EQ(nvm.peekByte(0x80), 1u);
    EXPECT_EQ(nvm.peekByte(0x84), 5u);
    EXPECT_EQ(nvm.maxWear(), 0u); // image load has no wear
}

TEST_F(NvmTest, WearPercentileOverWornWords)
{
    // Wear profile: one word at 10, three at 2, rest untouched.
    for (int i = 0; i < 10; ++i)
        nvm.writeWord(0x100, i);
    for (Addr a : {0x200u, 0x204u, 0x208u})
        for (int i = 0; i < 2; ++i)
            nvm.writeWord(a, i);
    EXPECT_EQ(nvm.wornWords(), 4u);
    EXPECT_EQ(nvm.wearPercentile(1.0), 10u);
    EXPECT_EQ(nvm.wearPercentile(0.0), 2u);
    EXPECT_EQ(nvm.wearPercentile(0.5), 2u);
}

TEST_F(NvmTest, WearPercentileEmpty)
{
    EXPECT_EQ(nvm.wearPercentile(0.99), 0u);
    EXPECT_EQ(nvm.wornWords(), 0u);
}

TEST_F(NvmTest, ResetStatsClearsCounters)
{
    nvm.writeWord(0, 1);
    nvm.readWord(0);
    nvm.resetStats();
    EXPECT_EQ(nvm.totalWrites(), 0u);
    EXPECT_EQ(nvm.totalReads(), 0u);
    EXPECT_EQ(nvm.maxWear(), 0u);
    // Contents survive a stats reset.
    EXPECT_EQ(nvm.peekWord(0), 1u);
}

} // namespace
} // namespace nvmr

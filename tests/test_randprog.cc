/**
 * @file
 * Tests for the random program generator: determinism, assembly
 * validity, termination and parameter handling.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

TEST(RandProg, DeterministicPerSeed)
{
    EXPECT_EQ(makeRandomProgram(7), makeRandomProgram(7));
    EXPECT_NE(makeRandomProgram(7), makeRandomProgram(8));
}

TEST(RandProg, AssemblesAndHalts)
{
    for (uint64_t seed = 100; seed < 110; ++seed) {
        Program prog = assemble("rp", makeRandomProgram(seed));
        GoldenResult g = runContinuous(prog);
        EXPECT_TRUE(g.halted) << seed;
        EXPECT_GT(g.instructions, 100u) << seed;
        EXPECT_LT(g.instructions, 1000000u) << seed;
    }
}

TEST(RandProg, RespectsArraySize)
{
    RandProgParams params;
    params.arrayWords = 64;
    Program prog = assemble("rp", makeRandomProgram(3, params));
    // Data segment: exactly 64 words.
    EXPECT_EQ(prog.dataSize(), 64u * 4u);
    // The continuous run must stay in bounds (DirectPort panics on
    // out-of-range access).
    GoldenResult g = runContinuous(prog);
    EXPECT_TRUE(g.halted);
}

TEST(RandProg, IterationBoundsHonoured)
{
    RandProgParams params;
    params.minIterations = 5;
    params.maxIterations = 5;
    params.minBodyOps = 10;
    params.maxBodyOps = 10;
    Program prog = assemble("rp", makeRandomProgram(11, params));
    GoldenResult g = runContinuous(prog);
    EXPECT_TRUE(g.halted);
    // 5 iterations x (<= 10 ops x <= 6 instructions) + prologue.
    EXPECT_LT(g.instructions, 5u * 10u * 6u + 20u);
}

TEST(RandProg, ProgramsAreIntermittentSafe)
{
    // Smoke variant of the big property suite: one seed, one arch.
    Program prog = assemble("rp", makeRandomProgram(555));
    SystemConfig cfg;
    cfg.capacitorFarads = 500e-6;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Solar, 5550, 7.0);
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
}

} // namespace
} // namespace nvmr

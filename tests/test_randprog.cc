/**
 * @file
 * Tests for the random program generator: determinism, assembly
 * validity, termination and parameter handling.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

namespace nvmr
{
namespace
{

TEST(RandProg, DeterministicPerSeed)
{
    EXPECT_EQ(makeRandomProgram(7), makeRandomProgram(7));
    EXPECT_NE(makeRandomProgram(7), makeRandomProgram(8));
}

TEST(RandProg, AssemblesAndHalts)
{
    for (uint64_t seed = 100; seed < 110; ++seed) {
        Program prog = assemble("rp", makeRandomProgram(seed));
        GoldenResult g = runContinuous(prog);
        EXPECT_TRUE(g.halted) << seed;
        EXPECT_GT(g.instructions, 100u) << seed;
        EXPECT_LT(g.instructions, 1000000u) << seed;
    }
}

TEST(RandProg, RespectsArraySize)
{
    RandProgParams params;
    params.arrayWords = 64;
    Program prog = assemble("rp", makeRandomProgram(3, params));
    // Data segment: exactly 64 words.
    EXPECT_EQ(prog.dataSize(), 64u * 4u);
    // The continuous run must stay in bounds (DirectPort panics on
    // out-of-range access).
    GoldenResult g = runContinuous(prog);
    EXPECT_TRUE(g.halted);
}

TEST(RandProg, IterationBoundsHonoured)
{
    RandProgParams params;
    params.minIterations = 5;
    params.maxIterations = 5;
    params.minBodyOps = 10;
    params.maxBodyOps = 10;
    params.maxInnerIterations = 0; // flat body: bound is exact
    Program prog = assemble("rp", makeRandomProgram(11, params));
    GoldenResult g = runContinuous(prog);
    EXPECT_TRUE(g.halted);
    // 5 iterations x (<= 10 ops x <= 6 instructions) + prologue.
    EXPECT_LT(g.instructions, 5u * 10u * 6u + 20u);
}

TEST(RandProg, BackwardBranchBoundClampsIterations)
{
    // A tiny taken-backward-branch budget must clamp the outer loop
    // (and with it total executed instructions), whatever the seed.
    RandProgParams params;
    params.minIterations = 1000;
    params.maxIterations = 1000;
    params.maxBackwardBranches = 50;
    for (uint64_t seed = 40; seed < 48; ++seed) {
        Program prog =
            assemble("rp", makeRandomProgram(seed, params));
        GoldenResult g = runContinuous(prog);
        EXPECT_TRUE(g.halted) << seed;
        // Worst case: 50 taken backward branches, each loop level
        // re-runs a <=40-op body of <=7 instructions, plus prologue.
        EXPECT_LT(g.instructions, 51u * 40u * 7u + 20u) << seed;
    }
}

TEST(RandProg, InnerLoopsStillTerminate)
{
    RandProgParams params;
    params.maxInnerIterations = 6;
    for (uint64_t seed = 900; seed < 905; ++seed) {
        Program prog =
            assemble("rp", makeRandomProgram(seed, params));
        GoldenResult g = runContinuous(prog);
        EXPECT_TRUE(g.halted) << seed;
    }
}

TEST(RandProg, ProgramsAreIntermittentSafe)
{
    // Smoke variant of the big property suite: one seed, one arch.
    Program prog = assemble("rp", makeRandomProgram(555));
    SystemConfig cfg;
    cfg.capacitorFarads = 500e-6;
    JitPolicy policy;
    HarvestTrace trace(TraceKind::Solar, 5550, 7.0);
    Simulator sim(prog, ArchKind::Nvmr, cfg, policy, trace);
    RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.validated);
}

} // namespace
} // namespace nvmr

/**
 * @file
 * Tests of the shared IntermittentArch machinery: the byte access
 * path, inspectWord's cache-first resolution, region layout, journal
 * charging and the backup-cost interfaces.
 */

#include <gtest/gtest.h>

#include "arch_harness.hh"

namespace nvmr
{
namespace
{

TEST(ArchCommon, ByteAccessesComposeIntoWords)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->storeByte(0x200, 0x11);
    h.arch->storeByte(0x201, 0x22);
    h.arch->storeByte(0x202, 0x33);
    h.arch->storeByte(0x203, 0x44);
    EXPECT_EQ(h.arch->loadWord(0x200), 0x44332211u);
    EXPECT_EQ(h.arch->loadByte(0x202), 0x33u);
}

TEST(ArchCommon, ByteStorePreservesNeighbours)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->storeWord(0x200, 0xaabbccdd);
    h.arch->storeByte(0x201, 0x00);
    EXPECT_EQ(h.arch->loadWord(0x200), 0xaabb00ddu);
}

TEST(ArchCommon, InspectWordPrefersCacheOverNvm)
{
    ArchHarness h(ArchKind::Clank);
    h.nvm->pokeWord(0x200, 111);
    EXPECT_EQ(h.arch->inspectWord(0x200), 111u);
    h.arch->storeWord(0x200, 222); // only in the cache
    EXPECT_EQ(h.arch->inspectWord(0x200), 222u);
    EXPECT_EQ(h.nvm->peekWord(0x200), 111u);
}

TEST(ArchCommon, AppRegionEndIsBlockAligned)
{
    ArchHarness h(ArchKind::Clank);
    EXPECT_EQ(h.arch->appRegionEnd() % 16, 0u);
    EXPECT_GE(h.arch->appRegionEnd(), h.prog.dataSize());
}

TEST(ArchCommon, InitializeLoadsDataImage)
{
    SystemConfig cfg;
    RecordingTestSink sink;
    Nvm nvm(cfg.nvmBytes, cfg.tech, sink);
    auto arch = makeArch(ArchKind::Clank, cfg, nvm, sink);
    Program prog = assemble("img", R"(
        .data
w:      .word 0xdeadbeef 42
        .text
        halt
)");
    arch->initialize(prog);
    EXPECT_EQ(nvm.peekWord(0), 0xdeadbeefu);
    EXPECT_EQ(nvm.peekWord(4), 42u);
}

TEST(ArchCommon, JournalChargeRespectsAtomicityFlag)
{
    SystemConfig with;
    SystemConfig without;
    without.modelBackupAtomicity = false;

    // A dirty read-dominated block makes Clank journal at backup.
    auto backup_energy = [](SystemConfig cfg) {
        ArchHarness h(ArchKind::Clank, cfg);
        h.arch->loadWord(0x100);
        h.arch->storeWord(0x100, 1);
        NanoJoules before = h.sink.energy;
        h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
        return h.sink.energy - before;
    };
    NanoJoules cost_with = backup_energy(with);
    NanoJoules cost_without = backup_energy(without);
    EXPECT_GT(cost_with, cost_without);
    // The difference is exactly one journalled block write.
    TechParams tech;
    EXPECT_NEAR(cost_with - cost_without,
                4 * tech.flashWriteWordNj, 1e-9);
}

TEST(ArchCommon, BackupCostEstimateIsUpperBoundOnBackupEnergy)
{
    for (ArchKind kind :
         {ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop}) {
        ArchHarness h(kind);
        // Dirty a spread of blocks, some read-dominated.
        for (Addr a = 0x100; a < 0x200; a += 16) {
            h.arch->loadWord(a);
            h.arch->storeWord(a, a);
        }
        NanoJoules estimate = h.arch->backupCostNowNj();
        NanoJoules before = h.sink.energy + h.sink.overhead +
                            static_cast<double>(h.sink.cycles) *
                                h.cfg.tech.cpuCycleNj;
        h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
        NanoJoules after = h.sink.energy + h.sink.overhead +
                           static_cast<double>(h.sink.cycles) *
                               h.cfg.tech.cpuCycleNj;
        EXPECT_GE(estimate, after - before)
            << archKindName(kind)
            << ": estimate must upper-bound the real cost (the "
               "atomic-backup precheck depends on it)";
    }
}

TEST(ArchCommon, RestoreCostEstimateIsUpperBound)
{
    for (ArchKind kind :
         {ArchKind::Clank, ArchKind::Nvmr, ArchKind::Hoop}) {
        ArchHarness h(kind);
        h.arch->storeWord(0x100, 1);
        h.arch->performBackup(CpuSnapshot{}, BackupReason::Policy);
        h.arch->onPowerFail();
        NanoJoules estimate = h.arch->restoreCostNowNj();
        NanoJoules before = h.sink.energy + h.sink.overhead +
                            static_cast<double>(h.sink.cycles) *
                                h.cfg.tech.cpuCycleNj;
        h.arch->performRestore();
        NanoJoules after = h.sink.energy + h.sink.overhead +
                           static_cast<double>(h.sink.cycles) *
                               h.cfg.tech.cpuCycleNj;
        EXPECT_GE(estimate, after - before) << archKindName(kind);
    }
}

TEST(ArchCommon, ArchNamesAreStable)
{
    EXPECT_STREQ(archKindName(ArchKind::Ideal), "ideal");
    EXPECT_STREQ(archKindName(ArchKind::Clank), "clank");
    EXPECT_STREQ(archKindName(ArchKind::Nvmr), "nvmr");
    EXPECT_STREQ(archKindName(ArchKind::Hoop), "hoop");
    ArchHarness h(ArchKind::Nvmr);
    EXPECT_STREQ(h.arch->name(), "nvmr");
}

TEST(ArchCommon, BackupReasonNamesAreStable)
{
    EXPECT_STREQ(backupReasonName(BackupReason::Initial), "initial");
    EXPECT_STREQ(backupReasonName(BackupReason::IdempotencyViolation),
                 "violation");
    EXPECT_STREQ(backupReasonName(BackupReason::MtCacheEviction),
                 "mtcache_eviction");
    EXPECT_STREQ(backupReasonName(BackupReason::Final), "final");
}

TEST(ArchCommon, StatGroupExposesCountersByName)
{
    ArchHarness h(ArchKind::Nvmr);
    h.arch->loadWord(0x100);
    h.arch->storeWord(0x100, 1);
    h.evict(0x100); // one violation, one rename
    const StatGroup &stats = h.arch->statGroup();
    ASSERT_TRUE(stats.has("violations"));
    ASSERT_TRUE(stats.has("renames"));
    EXPECT_DOUBLE_EQ(stats.value("violations"), 1.0);
    EXPECT_DOUBLE_EQ(stats.value("renames"), 1.0);
    EXPECT_NE(stats.find("backups"), nullptr);
    EXPECT_EQ(stats.find("nonexistent"), nullptr);
    EXPECT_FALSE(stats.has("nonexistent"));
    // Values mirror the struct view.
    EXPECT_DOUBLE_EQ(stats.value("backups"),
                     h.arch->stats().backups.value());
}

TEST(ArchCommon, CacheHitsDoNotTouchNvm)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->loadWord(0x100); // miss: fills from NVM
    uint64_t reads = h.nvm->totalReads();
    for (int i = 0; i < 10; ++i)
        h.arch->loadWord(0x104); // same block: hits
    EXPECT_EQ(h.nvm->totalReads(), reads);
}

TEST(ArchCommon, WritebackReachesNvmOnlyAtEviction)
{
    ArchHarness h(ArchKind::Clank);
    h.arch->storeWord(0x100, 7);
    EXPECT_EQ(h.nvm->totalWrites(), 0u);
    h.evict(0x100);
    EXPECT_GT(h.nvm->totalWrites(), 0u);
    EXPECT_EQ(h.nvm->peekWord(0x100), 7u);
}

} // namespace
} // namespace nvmr

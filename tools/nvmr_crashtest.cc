/**
 * @file
 * Systematic crash-point explorer: the crash-consistency analogue of
 * nvmr_fuzz. For each workload x architecture it first runs a census
 * pass that records the persist-boundary span of every backup, then
 * re-runs the workload with a power failure injected at every persist
 * boundary of the first N backups (and at sampled mid-execution
 * cycles), requiring that every crashed run recovers, completes, and
 * ends with an NVM state identical to the golden continuous run.
 *
 *     nvmr_crashtest                       # full sweep, 50 backups
 *     nvmr_crashtest --smoke               # <30 s fixed-seed subset
 *     nvmr_crashtest -w hist,qsort -a nvmr --max-backups 10
 *     nvmr_crashtest --stride 4 --jobs 8   # --threads is an alias
 *     nvmr_crashtest --journal c.jrn       # checkpoint; --resume
 *
 * The (workload, arch) census and crash-point cells run through the
 * campaign layer (docs/operations.md). Unlike the fuzzer, point
 * failures ARE journaled -- a stuck or divergent crash point is a
 * finding, the sweep keeps going and reports it in the summary -- so
 * a resumed sweep replays recorded findings instead of re-running
 * their cells.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/cellio.hh"
#include "campaign/sig.hh"
#include "cli.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"
#include "common/xorshift.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

struct Options
{
    std::vector<std::string> workloads;
    std::vector<ArchKind> archs = {ArchKind::Nvmr, ArchKind::Clank,
                                   ArchKind::Hoop, ArchKind::Task};
    uint64_t maxBackups = 50;
    uint64_t stride = 1;       ///< take every Nth persist boundary
    uint64_t cycleSamples = 8; ///< random mid-execution crash cycles
    uint64_t seed = 1;
    unsigned jobs = 0; ///< 0 = engine default (NVMR_JOBS / cores)
    bool verbose = false;
    std::string statsJsonPath;
};

void
usage()
{
    std::puts(
        "nvmr_crashtest: systematic crash-consistency explorer\n"
        "\n"
        "  -w, --workloads A,B   comma list (default: all workloads)\n"
        "  -a, --archs A,B       nvmr | clank | hoop | task | \n"
        "                        clank_original (default: nvmr,clank,"
        "hoop,task)\n"
        "  --max-backups N       explore the first N backups "
        "(default 50)\n"
        "  --stride N            crash at every Nth persist boundary "
        "(default 1)\n"
        "  --cycle-samples N     extra random crash cycles "
        "(default 8)\n"
        "  --seed N              seed for the cycle sampling "
        "(default 1)\n"
        "  --jobs N              worker threads (default: NVMR_JOBS "
        "or all cores;\n"
        "                        --threads is an alias)\n"
        "  --smoke               fixed small subset for CI (<30 s)\n"
        "  --stats-json FILE     write the sweep manifest as JSON\n"
        "  -v, --verbose         per-combination progress\n");
}

ArchKind
parseArch(const std::string &name)
{
    ArchKind kind = cli::parseArchKind(name);
    if (kind == ArchKind::Ideal)
        fatal("the ideal architecture relies on the perfect-JIT "
              "assumption that power never fails unexpectedly; "
              "injected crashes break it by construction");
    return kind;
}

std::vector<std::string>
splitList(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg; *p; ++p) {
        if (*p == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += *p;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** The platform every crash run uses: the default system with small
 *  NvMR structures (more metadata traffic per backup, so the crash
 *  points cover map-table and free-list updates) and a watchdog
 *  policy so backups come at a steady cadence. */
SystemConfig
crashConfig()
{
    SystemConfig cfg;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    cfg.reclaimEnabled = true;
    return cfg;
}

RunResult
runOnce(const Program &prog, ArchKind arch, const FaultConfig &faults,
        const Simulator **sim_out, const GoldenResult &golden,
        bool *matched, uint64_t budget_cycles = 0)
{
    SystemConfig cfg = crashConfig();
    PolicySpec spec;
    spec.kind = PolicyKind::Watchdog;
    spec.watchdogPeriod = 4000;
    auto policy = makePolicy(spec);
    HarvestTrace trace(TraceKind::Rf, 7, 8.0);
    RunOptions opts;
    opts.validate = false;
    opts.faults = faults;
    if (budget_cycles)
        opts.maxCycles = budget_cycles;
    Simulator sim(prog, arch, cfg, *policy, trace, opts);
    (void)sim_out;
    RunResult r = sim.run();
    *matched = r.completed && sim.validateAgainstGolden(golden);
    return r;
}

/** One crash case: either a persist boundary or a raw cycle. */
struct CrashPoint
{
    uint64_t persist = 0; ///< 1-based persist boundary, 0 = unused
    uint64_t cycle = 0;   ///< absolute cycle, 0 = unused
};

struct ComboReport
{
    uint64_t points = 0;
    uint64_t crashed = 0; ///< runs where the armed crash actually fired
    uint64_t divergent = 0;
    uint64_t stuck = 0;
};

bool
exploreCombo(campaign::Campaign &cam, const std::string &workload,
             ArchKind arch, const Options &opt, ComboReport &report)
{
    std::string tag = workload + "/" + archKindName(arch);
    std::string census_stage = tag + "/census";
    std::string points_stage = tag + "/points";

    // The program and its golden run are only needed when some cell
    // still has to execute; a fully-journaled combo skips both. They
    // are always prepared on the main thread (workers must not race
    // the assembler caches).
    Program prog;
    GoldenResult golden;
    bool have_prog = false;
    auto ensureProg = [&]() {
        if (have_prog)
            return;
        prog = assembleWorkload(workload);
        golden = runContinuous(prog);
        fatal_if(!golden.halted, "golden run of ", workload,
                 " did not halt");
        have_prog = true;
    };

    // Census cell: fault layer on, nothing armed. Records the
    // persist-boundary window of every backup. A census that cannot
    // complete cleanly is a finding like any other, so it IS
    // journaled (completed=false) and the combo fails without
    // aborting the sweep.
    if (!cam.cellDone(census_stage, 0))
        ensureProg();
    auto census_cells = cam.runStage(
        census_stage, 1,
        [&](const campaign::CellContext &ctx)
            -> std::optional<std::string> {
            SystemConfig cfg = crashConfig();
            PolicySpec spec;
            spec.kind = PolicyKind::Watchdog;
            spec.watchdogPeriod = 4000;
            auto policy = makePolicy(spec);
            HarvestTrace trace(TraceKind::Rf, 7, 8.0);
            RunOptions opts;
            opts.validate = false;
            FaultConfig census_faults;
            census_faults.enabled = true;
            opts.faults = census_faults;
            if (ctx.budgetCycles)
                opts.maxCycles = ctx.budgetCycles;
            Simulator sim(prog, arch, cfg, *policy, trace, opts);
            RunResult r = sim.run();
            if (ctx.budgetCycles && !r.completed)
                throw campaign::CellTimeout{
                    tag + " census exceeded " +
                    std::to_string(ctx.budgetCycles) + " cycles"};
            CensusResult c;
            c.completed = r.completed &&
                          sim.validateAgainstGolden(golden);
            c.totalCycles = r.totalCycles;
            c.windows = sim.faultInjector().backupWindows();
            return campaign::encodeCensus(c);
        });
    if (census_cells[0].status == campaign::CellStatus::Skipped ||
        census_cells[0].status == campaign::CellStatus::Quarantined)
        return true; // interrupted / reported via quarantine list
    CensusResult census;
    fatal_if(!campaign::decodeCensus(census_cells[0].payload, census),
             "corrupt journal payload for ", census_stage);
    if (!census.completed) {
        std::printf("FAILURE: %s/%s census run did not complete "
                    "cleanly\n",
                    workload.c_str(), archKindName(arch));
        return false;
    }

    // Crash-point list: every (strided) persist boundary of the
    // first maxBackups backups, plus sampled raw cycles. Derived
    // deterministically from the census, so a resume regenerates the
    // identical list.
    std::vector<CrashPoint> points;
    uint64_t nwin =
        std::min<uint64_t>(census.windows.size(), opt.maxBackups);
    for (uint64_t i = 0; i < nwin; ++i) {
        for (uint64_t p = census.windows[i].firstPersist;
             p <= census.windows[i].lastPersist; p += opt.stride)
            points.push_back(CrashPoint{p, 0});
    }
    XorShift rng(opt.seed + static_cast<uint64_t>(arch) * 131);
    for (uint64_t i = 0; i < opt.cycleSamples; ++i) {
        uint64_t c = 1 + rng.next() % (census.totalCycles + 1);
        points.push_back(CrashPoint{0, c});
    }

    report.points = points.size();

    bool any_fresh = false;
    for (size_t i = 0; i < points.size() && !any_fresh; ++i)
        any_fresh = !cam.cellDone(points_stage, i);
    if (any_fresh)
        ensureProg();

    // Fan the crash points across the engine; workers only simulate.
    // Each point journals a 1-byte outcome (crashed/completed/
    // matched flags). The gathered outcomes are scanned in point
    // order afterwards, so failure lines come out in a deterministic
    // order whatever the worker count.
    auto results = cam.runStage(
        points_stage, points.size(),
        [&](const campaign::CellContext &ctx)
            -> std::optional<std::string> {
            const CrashPoint &cp = points[ctx.index];
            FaultConfig faults;
            faults.enabled = true;
            faults.crashAtPersist = cp.persist;
            faults.crashAtCycle = cp.cycle;
            bool matched = false;
            RunResult r = runOnce(prog, arch, faults, nullptr, golden,
                                  &matched, ctx.budgetCycles);
            if (ctx.budgetCycles && !r.completed)
                throw campaign::CellTimeout{
                    tag + " point " + std::to_string(ctx.index) +
                    " exceeded " + std::to_string(ctx.budgetCycles) +
                    " cycles"};
            char flags =
                static_cast<char>((r.injectedCrashes > 0 ? 1 : 0) |
                                  (r.completed ? 2 : 0) |
                                  (matched ? 4 : 0));
            return std::string(1, flags);
        });

    for (size_t idx = 0; idx < points.size(); ++idx) {
        if (results[idx].status == campaign::CellStatus::Skipped ||
            results[idx].status == campaign::CellStatus::Quarantined)
            continue; // interrupted / reported via quarantine list
        const CrashPoint &cp = points[idx];
        char flags =
            results[idx].payload.empty() ? 0 : results[idx].payload[0];
        if (flags & 1)
            ++report.crashed;
        if (!(flags & 2)) {
            ++report.stuck;
            std::printf("FAILURE: %s/%s stuck with crash at %s %llu\n",
                        workload.c_str(), archKindName(arch),
                        cp.persist ? "persist" : "cycle",
                        static_cast<unsigned long long>(
                            cp.persist ? cp.persist : cp.cycle));
        } else if (!(flags & 4)) {
            ++report.divergent;
            std::printf("FAILURE: %s/%s diverged with crash at "
                        "%s %llu\n",
                        workload.c_str(), archKindName(arch),
                        cp.persist ? "persist" : "cycle",
                        static_cast<unsigned long long>(
                            cp.persist ? cp.persist : cp.cycle));
        }
    }
    return report.divergent == 0 && report.stuck == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    campaign::installSignalHandlers();
    // Line-buffer even when piped so long sweeps show live progress.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    Options opt;
    campaign::Options copts;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        if (cli::handleCampaignArg(argc, argv, i, copts))
            continue;
        std::string a = argv[i];
        if (a == "-w" || a == "--workloads") {
            opt.workloads = splitList(need(i));
        } else if (a == "-a" || a == "--archs") {
            opt.archs.clear();
            for (const std::string &n : splitList(need(i)))
                opt.archs.push_back(parseArch(n));
        } else if (a == "--max-backups") {
            opt.maxBackups = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--stride") {
            opt.stride = std::max<uint64_t>(
                1, std::strtoull(need(i), nullptr, 10));
        } else if (a == "--cycle-samples") {
            opt.cycleSamples = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--jobs" || a == "--threads") {
            // --threads predates the engine; 0 keeps the old
            // "use all cores" meaning (the engine's default).
            opt.jobs = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
            par::setGlobalJobs(opt.jobs);
        } else if (a == "--smoke") {
            opt.workloads = {"hist", "qsort"};
            opt.maxBackups = 5;
            opt.stride = 9;
            opt.cycleSamples = 2;
            opt.seed = 1;
        } else if (a == "--stats-json") {
            opt.statsJsonPath = need(i);
        } else if (a == "-v" || a == "--verbose") {
            opt.verbose = true;
        } else if (a == "-h" || a == "--help") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", a, "'");
        }
    }

    if (opt.workloads.empty())
        for (const WorkloadInfo &w : allWorkloads())
            opt.workloads.push_back(w.name);

    std::string config_spec = "crashtest|workloads=";
    for (size_t i = 0; i < opt.workloads.size(); ++i) {
        if (i)
            config_spec += ',';
        config_spec += opt.workloads[i];
    }
    config_spec += "|archs=";
    for (size_t i = 0; i < opt.archs.size(); ++i) {
        if (i)
            config_spec += ',';
        config_spec += archKindName(opt.archs[i]);
    }
    config_spec += "|max_backups=" + std::to_string(opt.maxBackups) +
                   "|stride=" + std::to_string(opt.stride) +
                   "|cycle_samples=" +
                   std::to_string(opt.cycleSamples) +
                   "|seed=" + std::to_string(opt.seed);
    cli::appendWatchdogSpec(config_spec, copts);
    campaign::Campaign cam("nvmr_crashtest", config_spec, copts);

    uint64_t total_points = 0;
    uint64_t total_crashed = 0;
    bool ok = true;
    JsonWriter combos;
    combos.beginArray();
    for (const std::string &w : opt.workloads) {
        for (ArchKind arch : opt.archs) {
            if (cam.interrupted())
                break;
            ComboReport report;
            bool combo_ok = exploreCombo(cam, w, arch, opt, report);
            if (cam.interrupted())
                break;
            total_points += report.points;
            total_crashed += report.crashed;
            combos.beginObject();
            combos.kv("workload", w);
            combos.kv("arch", archKindName(arch));
            combos.kv("points", report.points);
            combos.kv("crashed", report.crashed);
            combos.kv("divergent", report.divergent);
            combos.kv("stuck", report.stuck);
            combos.kv("ok", combo_ok);
            combos.endObject();
            if (opt.verbose || !combo_ok)
                std::printf(
                    "%-14s %-14s %6llu points, %6llu crashed, "
                    "%llu divergent, %llu stuck%s\n",
                    w.c_str(), archKindName(arch),
                    static_cast<unsigned long long>(report.points),
                    static_cast<unsigned long long>(report.crashed),
                    static_cast<unsigned long long>(report.divergent),
                    static_cast<unsigned long long>(report.stuck),
                    combo_ok ? "" : "  <-- FAIL");
            ok = ok && combo_ok;
        }
        if (cam.interrupted())
            break;
    }
    combos.endArray();

    if (cam.interrupted())
        std::printf("interrupted: progress checkpointed%s\n",
                    copts.journalPath.empty() ? " (no --journal)"
                                              : "");
    else
        std::printf("crashtest %s: %llu crash points (%llu fired), "
                    "%llu workloads x %llu archs\n",
                    ok ? "passed" : "FAILED",
                    static_cast<unsigned long long>(total_points),
                    static_cast<unsigned long long>(total_crashed),
                    static_cast<unsigned long long>(
                        opt.workloads.size()),
                    static_cast<unsigned long long>(opt.archs.size()));
    for (const auto &q : cam.quarantined())
        warn("quarantined ", q.stage, "/", q.index, " after ",
             q.attempts, " attempt(s): ", q.reason);

    int rc = ok ? kExitOk : kExitMismatch;
    if (!opt.statsJsonPath.empty()) {
        ManifestWriter manifest("nvmr_crashtest");
        manifest.setConfig(crashConfig());
        manifest.addExtra("crash_points",
                          static_cast<double>(total_points));
        manifest.addExtra("crashes_fired",
                          static_cast<double>(total_crashed));
        manifest.addExtra("result", cam.interrupted() ? "interrupted"
                                    : ok              ? "passed"
                                                      : "failed");
        manifest.addExtraJson("combos", combos.str());
        manifest.addExtraJson("quarantine", cam.quarantineJson());
        if (!manifest.tryWriteFile(opt.statsJsonPath) &&
            rc == kExitOk)
            rc = kExitDegraded;
    }
    if ((std::fflush(stdout) != 0 || std::ferror(stdout)) &&
        rc == kExitOk) {
        warn("error writing to stdout");
        rc = kExitDegraded;
    }
    return cam.exitCode(rc);
}

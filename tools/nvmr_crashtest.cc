/**
 * @file
 * Systematic crash-point explorer: the crash-consistency analogue of
 * nvmr_fuzz. For each workload x architecture it first runs a census
 * pass that records the persist-boundary span of every backup, then
 * re-runs the workload with a power failure injected at every persist
 * boundary of the first N backups (and at sampled mid-execution
 * cycles), requiring that every crashed run recovers, completes, and
 * ends with an NVM state identical to the golden continuous run.
 *
 *     nvmr_crashtest                       # full sweep, 50 backups
 *     nvmr_crashtest --smoke               # <30 s fixed-seed subset
 *     nvmr_crashtest -w hist,qsort -a nvmr --max-backups 10
 *     nvmr_crashtest --stride 4 --jobs 8   # --threads is an alias
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli.hh"
#include "common/log.hh"
#include "common/xorshift.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

namespace
{

struct Options
{
    std::vector<std::string> workloads;
    std::vector<ArchKind> archs = {ArchKind::Nvmr, ArchKind::Clank,
                                   ArchKind::Hoop, ArchKind::Task};
    uint64_t maxBackups = 50;
    uint64_t stride = 1;       ///< take every Nth persist boundary
    uint64_t cycleSamples = 8; ///< random mid-execution crash cycles
    uint64_t seed = 1;
    unsigned jobs = 0; ///< 0 = engine default (NVMR_JOBS / cores)
    bool verbose = false;
    std::string statsJsonPath;
};

void
usage()
{
    std::puts(
        "nvmr_crashtest: systematic crash-consistency explorer\n"
        "\n"
        "  -w, --workloads A,B   comma list (default: all workloads)\n"
        "  -a, --archs A,B       nvmr | clank | hoop | task | \n"
        "                        clank_original (default: nvmr,clank,"
        "hoop,task)\n"
        "  --max-backups N       explore the first N backups "
        "(default 50)\n"
        "  --stride N            crash at every Nth persist boundary "
        "(default 1)\n"
        "  --cycle-samples N     extra random crash cycles "
        "(default 8)\n"
        "  --seed N              seed for the cycle sampling "
        "(default 1)\n"
        "  --jobs N              worker threads (default: NVMR_JOBS "
        "or all cores;\n"
        "                        --threads is an alias)\n"
        "  --smoke               fixed small subset for CI (<30 s)\n"
        "  --stats-json FILE     write the sweep manifest as JSON\n"
        "  -v, --verbose         per-combination progress\n");
}

ArchKind
parseArch(const std::string &name)
{
    ArchKind kind = cli::parseArchKind(name);
    if (kind == ArchKind::Ideal)
        fatal("the ideal architecture relies on the perfect-JIT "
              "assumption that power never fails unexpectedly; "
              "injected crashes break it by construction");
    return kind;
}

std::vector<std::string>
splitList(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg; *p; ++p) {
        if (*p == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += *p;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** The platform every crash run uses: the default system with small
 *  NvMR structures (more metadata traffic per backup, so the crash
 *  points cover map-table and free-list updates) and a watchdog
 *  policy so backups come at a steady cadence. */
SystemConfig
crashConfig()
{
    SystemConfig cfg;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    cfg.reclaimEnabled = true;
    return cfg;
}

RunResult
runOnce(const Program &prog, ArchKind arch, const FaultConfig &faults,
        const Simulator **sim_out, const GoldenResult &golden,
        bool *matched)
{
    SystemConfig cfg = crashConfig();
    PolicySpec spec;
    spec.kind = PolicyKind::Watchdog;
    spec.watchdogPeriod = 4000;
    auto policy = makePolicy(spec);
    HarvestTrace trace(TraceKind::Rf, 7, 8.0);
    RunOptions opts;
    opts.validate = false;
    opts.faults = faults;
    Simulator sim(prog, arch, cfg, *policy, trace, opts);
    (void)sim_out;
    RunResult r = sim.run();
    *matched = r.completed && sim.validateAgainstGolden(golden);
    return r;
}

/** One crash case: either a persist boundary or a raw cycle. */
struct CrashPoint
{
    uint64_t persist = 0; ///< 1-based persist boundary, 0 = unused
    uint64_t cycle = 0;   ///< absolute cycle, 0 = unused
};

struct ComboReport
{
    uint64_t points = 0;
    uint64_t crashed = 0; ///< runs where the armed crash actually fired
    uint64_t divergent = 0;
    uint64_t stuck = 0;
};

bool
exploreCombo(const std::string &workload, ArchKind arch,
             const Options &opt, ComboReport &report)
{
    Program prog = assembleWorkload(workload);
    GoldenResult golden = runContinuous(prog);
    fatal_if(!golden.halted, "golden run of ", workload,
             " did not halt");

    // Census pass: fault layer on, nothing armed. Records the
    // persist-boundary window of every backup.
    FaultConfig census;
    census.enabled = true;
    bool census_ok = false;
    std::vector<FaultInjector::BackupWindow> windows;
    uint64_t census_cycles = 0;
    {
        SystemConfig cfg = crashConfig();
        PolicySpec spec;
        spec.kind = PolicyKind::Watchdog;
        spec.watchdogPeriod = 4000;
        auto policy = makePolicy(spec);
        HarvestTrace trace(TraceKind::Rf, 7, 8.0);
        RunOptions opts;
        opts.validate = false;
        opts.faults = census;
        Simulator sim(prog, arch, cfg, *policy, trace, opts);
        RunResult r = sim.run();
        census_ok = r.completed &&
                    sim.validateAgainstGolden(golden);
        windows = sim.faultInjector().backupWindows();
        census_cycles = r.totalCycles;
    }
    if (!census_ok) {
        std::printf("FAILURE: %s/%s census run did not complete "
                    "cleanly\n",
                    workload.c_str(), archKindName(arch));
        return false;
    }

    // Crash-point list: every (strided) persist boundary of the
    // first maxBackups backups, plus sampled raw cycles.
    std::vector<CrashPoint> points;
    uint64_t nwin = std::min<uint64_t>(windows.size(), opt.maxBackups);
    for (uint64_t i = 0; i < nwin; ++i) {
        for (uint64_t p = windows[i].firstPersist;
             p <= windows[i].lastPersist; p += opt.stride)
            points.push_back(CrashPoint{p, 0});
    }
    XorShift rng(opt.seed + static_cast<uint64_t>(arch) * 131);
    for (uint64_t i = 0; i < opt.cycleSamples; ++i) {
        uint64_t c = 1 + rng.next() % (census_cycles + 1);
        points.push_back(CrashPoint{0, c});
    }

    report.points = points.size();

    // Fan the crash points across the engine; workers only simulate.
    // The gathered outcomes are scanned in point order afterwards, so
    // failure lines come out in a deterministic order whatever the
    // worker count.
    struct PointOutcome
    {
        bool crashed = false;
        bool completed = false;
        bool matched = false;
    };
    std::vector<PointOutcome> outs =
        par::parallelMap<PointOutcome>(points.size(), [&](size_t idx) {
            const CrashPoint &cp = points[idx];
            FaultConfig faults;
            faults.enabled = true;
            faults.crashAtPersist = cp.persist;
            faults.crashAtCycle = cp.cycle;
            PointOutcome out;
            RunResult r = runOnce(prog, arch, faults, nullptr, golden,
                                  &out.matched);
            out.crashed = r.injectedCrashes > 0;
            out.completed = r.completed;
            return out;
        });

    for (size_t idx = 0; idx < points.size(); ++idx) {
        const CrashPoint &cp = points[idx];
        const PointOutcome &out = outs[idx];
        if (out.crashed)
            ++report.crashed;
        if (!out.completed) {
            ++report.stuck;
            std::printf("FAILURE: %s/%s stuck with crash at %s %llu\n",
                        workload.c_str(), archKindName(arch),
                        cp.persist ? "persist" : "cycle",
                        static_cast<unsigned long long>(
                            cp.persist ? cp.persist : cp.cycle));
        } else if (!out.matched) {
            ++report.divergent;
            std::printf("FAILURE: %s/%s diverged with crash at "
                        "%s %llu\n",
                        workload.c_str(), archKindName(arch),
                        cp.persist ? "persist" : "cycle",
                        static_cast<unsigned long long>(
                            cp.persist ? cp.persist : cp.cycle));
        }
    }
    return report.divergent == 0 && report.stuck == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    // Line-buffer even when piped so long sweeps show live progress.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    Options opt;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "-w" || a == "--workloads") {
            opt.workloads = splitList(need(i));
        } else if (a == "-a" || a == "--archs") {
            opt.archs.clear();
            for (const std::string &n : splitList(need(i)))
                opt.archs.push_back(parseArch(n));
        } else if (a == "--max-backups") {
            opt.maxBackups = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--stride") {
            opt.stride = std::max<uint64_t>(
                1, std::strtoull(need(i), nullptr, 10));
        } else if (a == "--cycle-samples") {
            opt.cycleSamples = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--jobs" || a == "--threads") {
            // --threads predates the engine; 0 keeps the old
            // "use all cores" meaning (the engine's default).
            opt.jobs = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
            par::setGlobalJobs(opt.jobs);
        } else if (a == "--smoke") {
            opt.workloads = {"hist", "qsort"};
            opt.maxBackups = 5;
            opt.stride = 9;
            opt.cycleSamples = 2;
            opt.seed = 1;
        } else if (a == "--stats-json") {
            opt.statsJsonPath = need(i);
        } else if (a == "-v" || a == "--verbose") {
            opt.verbose = true;
        } else if (a == "-h" || a == "--help") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", a, "'");
        }
    }

    if (opt.workloads.empty())
        for (const WorkloadInfo &w : allWorkloads())
            opt.workloads.push_back(w.name);

    uint64_t total_points = 0;
    uint64_t total_crashed = 0;
    bool ok = true;
    JsonWriter combos;
    combos.beginArray();
    for (const std::string &w : opt.workloads) {
        for (ArchKind arch : opt.archs) {
            ComboReport report;
            bool combo_ok = exploreCombo(w, arch, opt, report);
            total_points += report.points;
            total_crashed += report.crashed;
            combos.beginObject();
            combos.kv("workload", w);
            combos.kv("arch", archKindName(arch));
            combos.kv("points", report.points);
            combos.kv("crashed", report.crashed);
            combos.kv("divergent", report.divergent);
            combos.kv("stuck", report.stuck);
            combos.kv("ok", combo_ok);
            combos.endObject();
            if (opt.verbose || !combo_ok)
                std::printf(
                    "%-14s %-14s %6llu points, %6llu crashed, "
                    "%llu divergent, %llu stuck%s\n",
                    w.c_str(), archKindName(arch),
                    static_cast<unsigned long long>(report.points),
                    static_cast<unsigned long long>(report.crashed),
                    static_cast<unsigned long long>(report.divergent),
                    static_cast<unsigned long long>(report.stuck),
                    combo_ok ? "" : "  <-- FAIL");
            ok = ok && combo_ok;
        }
    }

    std::printf("crashtest %s: %llu crash points (%llu fired), "
                "%llu workloads x %llu archs\n",
                ok ? "passed" : "FAILED",
                static_cast<unsigned long long>(total_points),
                static_cast<unsigned long long>(total_crashed),
                static_cast<unsigned long long>(opt.workloads.size()),
                static_cast<unsigned long long>(opt.archs.size()));

    if (!opt.statsJsonPath.empty()) {
        combos.endArray();
        ManifestWriter manifest("nvmr_crashtest");
        manifest.setConfig(crashConfig());
        manifest.addExtra("crash_points",
                          static_cast<double>(total_points));
        manifest.addExtra("crashes_fired",
                          static_cast<double>(total_crashed));
        manifest.addExtra("result", ok ? "passed" : "failed");
        manifest.addExtraJson("combos", combos.str());
        manifest.writeFile(opt.statsJsonPath);
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Shared command-line parsing for the tool drivers: enum-valued
 * arguments are validated the moment they are read, and a bad value
 * dies with the full list of valid choices instead of a bare
 * "unknown" complaint deep into the run.
 */

#ifndef NVMR_TOOLS_CLI_HH
#define NVMR_TOOLS_CLI_HH

#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.hh"
#include "common/log.hh"
#include "par/par.hh"
#include "power/policy.hh"
#include "power/trace.hh"
#include "sim/config.hh"

namespace nvmr::cli
{

/**
 * Handle a `--jobs N` argument pair inside a tool's arg loop: when
 * argv[i] is `--jobs`, consume its value, wire it into the parallel
 * engine (par::setGlobalJobs) and return true. The NVMR_JOBS
 * environment variable provides the same control without a flag;
 * results are bit-identical for every worker count
 * (docs/performance.md).
 */
inline bool
handleJobsArg(int argc, char **argv, int &i)
{
    if (std::strcmp(argv[i], "--jobs") != 0)
        return false;
    if (i + 1 >= argc)
        fatal("missing value for --jobs");
    par::setGlobalJobs(par::parseJobsValue(argv[++i]));
    return true;
}

/**
 * Handle the shared crash-safety flags inside a tool's arg loop
 * (docs/operations.md):
 *
 *     --journal FILE          checkpoint completed cells to FILE
 *     --resume FILE           skip cells already completed in FILE
 *     --watchdog-cycles N     per-cell simulated-cycle budget
 *     --watchdog-retries N    budget-doubling retries before quarantine
 *
 * Returns true when argv[i] was one of them (consuming its value).
 */
inline bool
handleCampaignArg(int argc, char **argv, int &i,
                  campaign::Options &opts)
{
    auto need = [&]() -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };
    std::string a = argv[i];
    if (a == "--journal") {
        opts.journalPath = need();
        return true;
    }
    if (a == "--resume") {
        opts.journalPath = need();
        opts.resume = true;
        return true;
    }
    if (a == "--watchdog-cycles") {
        opts.watchdogCycles = std::strtoull(need(), nullptr, 10);
        return true;
    }
    if (a == "--watchdog-retries") {
        opts.watchdogRetries =
            static_cast<unsigned>(std::strtoul(need(), nullptr, 10));
        return true;
    }
    return false;
}

/** Append the watchdog knobs to a campaign config-spec string (they
 *  shape per-cell results, so a resume must match them; --jobs and
 *  output paths deliberately stay out). */
inline void
appendWatchdogSpec(std::string &spec, const campaign::Options &opts)
{
    spec += "|watchdog_cycles=";
    spec += std::to_string(opts.watchdogCycles);
    spec += "|watchdog_retries=";
    spec += std::to_string(opts.watchdogRetries);
}

inline ArchKind
parseArchKind(const std::string &name)
{
    if (name == "ideal")
        return ArchKind::Ideal;
    if (name == "clank")
        return ArchKind::Clank;
    if (name == "clank_original")
        return ArchKind::ClankOriginal;
    if (name == "task")
        return ArchKind::Task;
    if (name == "nvmr")
        return ArchKind::Nvmr;
    if (name == "hoop")
        return ArchKind::Hoop;
    fatal("unknown architecture '", name,
          "' (valid: ideal, clank, clank_original, task, nvmr, "
          "hoop)");
}

inline PolicyKind
parsePolicyKind(const std::string &name)
{
    if (name == "jit")
        return PolicyKind::Jit;
    if (name == "watchdog")
        return PolicyKind::Watchdog;
    if (name == "spendthrift")
        return PolicyKind::Spendthrift;
    if (name == "none")
        return PolicyKind::None;
    fatal("unknown policy '", name,
          "' (valid: jit, watchdog, spendthrift, none)");
}

inline TraceKind
parseTraceKind(const std::string &name)
{
    if (name == "rf")
        return TraceKind::Rf;
    if (name == "solar")
        return TraceKind::Solar;
    if (name == "wind")
        return TraceKind::Wind;
    fatal("unknown trace kind '", name, "' (valid: rf, solar, wind)");
}

} // namespace nvmr::cli

#endif // NVMR_TOOLS_CLI_HH

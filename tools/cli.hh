/**
 * @file
 * Shared command-line parsing for the tool drivers: enum-valued
 * arguments are validated the moment they are read, and a bad value
 * dies with the full list of valid choices instead of a bare
 * "unknown" complaint deep into the run.
 */

#ifndef NVMR_TOOLS_CLI_HH
#define NVMR_TOOLS_CLI_HH

#include <cstring>
#include <string>

#include "common/log.hh"
#include "par/par.hh"
#include "power/policy.hh"
#include "power/trace.hh"
#include "sim/config.hh"

namespace nvmr::cli
{

/**
 * Handle a `--jobs N` argument pair inside a tool's arg loop: when
 * argv[i] is `--jobs`, consume its value, wire it into the parallel
 * engine (par::setGlobalJobs) and return true. The NVMR_JOBS
 * environment variable provides the same control without a flag;
 * results are bit-identical for every worker count
 * (docs/performance.md).
 */
inline bool
handleJobsArg(int argc, char **argv, int &i)
{
    if (std::strcmp(argv[i], "--jobs") != 0)
        return false;
    if (i + 1 >= argc)
        fatal("missing value for --jobs");
    par::setGlobalJobs(par::parseJobsValue(argv[++i]));
    return true;
}

inline ArchKind
parseArchKind(const std::string &name)
{
    if (name == "ideal")
        return ArchKind::Ideal;
    if (name == "clank")
        return ArchKind::Clank;
    if (name == "clank_original")
        return ArchKind::ClankOriginal;
    if (name == "task")
        return ArchKind::Task;
    if (name == "nvmr")
        return ArchKind::Nvmr;
    if (name == "hoop")
        return ArchKind::Hoop;
    fatal("unknown architecture '", name,
          "' (valid: ideal, clank, clank_original, task, nvmr, "
          "hoop)");
}

inline PolicyKind
parsePolicyKind(const std::string &name)
{
    if (name == "jit")
        return PolicyKind::Jit;
    if (name == "watchdog")
        return PolicyKind::Watchdog;
    if (name == "spendthrift")
        return PolicyKind::Spendthrift;
    if (name == "none")
        return PolicyKind::None;
    fatal("unknown policy '", name,
          "' (valid: jit, watchdog, spendthrift, none)");
}

inline TraceKind
parseTraceKind(const std::string &name)
{
    if (name == "rf")
        return TraceKind::Rf;
    if (name == "solar")
        return TraceKind::Solar;
    if (name == "wind")
        return TraceKind::Wind;
    fatal("unknown trace kind '", name, "' (valid: rf, solar, wind)");
}

} // namespace nvmr::cli

#endif // NVMR_TOOLS_CLI_HH

/**
 * @file
 * Differential correctness fuzzer: generate random programs and run
 * them intermittently across every architecture, policy and a grid
 * of capacitor sizes, comparing each final NVM state against the
 * continuously-powered execution. Any divergence (or stuck run)
 * prints a one-line repro command and stops with a non-zero exit.
 *
 *     nvmr_fuzz                 # 100 iterations from seed 1
 *     nvmr_fuzz 2000            # more iterations
 *     nvmr_fuzz 500 12345       # iterations + base seed
 *     nvmr_fuzz --faults 500    # also randomize crash points and
 *                               # correctable NVM bit-error rates
 *     nvmr_fuzz --oracle 500    # run every case under the golden
 *                               # oracle + lockstep invariant checker
 *                               # (src/check) instead of the plain
 *                               # golden-image comparison
 *     nvmr_fuzz --one SEED IDX  # re-run one (seed, case) pair -- the
 *                               # command a failure prints
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/runner.hh"
#include "common/log.hh"
#include "common/xorshift.hh"
#include "isa/assembler.hh"
#include "obs/manifest.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

using namespace nvmr;

namespace
{

struct FuzzCase
{
    ArchKind arch;
    PolicyKind policy;
    double farads;
    bool byteLbf = false;
};

/** The fixed case grid; --one indexes into it 1-based. */
const FuzzCase kCases[] = {
    {ArchKind::Clank, PolicyKind::Jit, 0.1},
    {ArchKind::Clank, PolicyKind::Watchdog, 500e-6},
    {ArchKind::ClankOriginal, PolicyKind::Jit, 0.1},
    {ArchKind::ClankOriginal, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Nvmr, PolicyKind::Jit, 0.1},
    {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Nvmr, PolicyKind::Jit, 500e-6},
    {ArchKind::Hoop, PolicyKind::Jit, 0.1},
    {ArchKind::Hoop, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Ideal, PolicyKind::Jit, 0.1},
    {ArchKind::Clank, PolicyKind::Watchdog, 500e-6, true},
    {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, true},
};
constexpr size_t kNumCases = sizeof(kCases) / sizeof(kCases[0]);

/**
 * Derive a random-but-reproducible fault load for one (seed, case)
 * pair: a crash armed at a random persist boundary, sometimes a
 * second one at a raw cycle, and sometimes a transient bit-error
 * rate. Only single-bit transients are enabled so SECDED always
 * corrects them: any divergence is still a simulator bug, never the
 * fault manifesting.
 */
FaultConfig
randomFaults(uint64_t seed, uint64_t case_idx)
{
    XorShift rng(seed * 1315423911ull + case_idx + 1);
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.crashAtPersist = 1 + rng.next() % 1500;
    if (rng.next() % 4 == 0)
        fc.crashAtCycle = 1 + rng.next() % 200000;
    if (rng.next() % 2 == 0) {
        fc.transientBitErrorRate = 1e-5 * (1 + rng.next() % 20);
        fc.doubleBitFraction = 0;
        fc.maxReadRetries = 4;
    }
    return fc;
}

/** The one-line command that replays exactly this (seed, case). */
void
printReproLine(uint64_t seed, uint64_t case_idx, const FuzzCase &c,
               bool faults_mode, bool oracle_mode)
{
    std::printf("repro: nvmr_fuzz%s%s --one %llu %llu   # %s/%s at "
                "%g F%s\n",
                faults_mode ? " --faults" : "",
                oracle_mode ? " --oracle" : "",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(case_idx),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads, c.byteLbf ? " (byte LBF)" : "");
}

/** Map one fuzz case onto the src/check harness description. */
CheckCase
makeCheckCase(const Program &, const std::string &text, uint64_t seed,
              const FuzzCase &c, const FaultConfig *faults)
{
    CheckCase cc;
    cc.name = "fuzz" + std::to_string(seed);
    cc.arch = c.arch;
    cc.policy = c.policy;
    cc.farads = c.farads;
    cc.byteLbf = c.byteLbf;
    cc.traceSeed = 40000 + seed;
    cc.programText = text;
    cc.programSeed = seed;
    if (faults)
        cc.faults = *faults;
    return cc;
}

bool
runCase(const Program &prog, const std::string &text, uint64_t seed,
        uint64_t case_idx, const FuzzCase &c,
        const FaultConfig *faults, bool oracle_mode,
        ManifestWriter *manifest)
{
    // The ideal architecture is only safe under perfect JIT.
    if (c.arch == ArchKind::Ideal && c.policy != PolicyKind::Jit)
        return true;

    if (oracle_mode) {
        // Full checked harness: lockstep invariants + oracle diff.
        CheckCase cc = makeCheckCase(prog, text, seed, c, faults);
        CheckOutcome out = runChecked(cc);
        if (out.clean())
            return true;
        if (manifest)
            manifest->addRun(out.run);
        std::printf("\nFAILURE: seed %llu on %s/%s at %g F: %s\n",
                    static_cast<unsigned long long>(seed),
                    archKindName(c.arch), policyKindName(c.policy),
                    c.farads, out.describe().c_str());
        std::fputs(out.detail().c_str(), stdout);
        printReproLine(seed, case_idx, c, faults != nullptr, true);
        if (saveRepro("nvmr_fuzz_failure.repro", cc))
            std::printf("also saved nvmr_fuzz_failure.repro; shrink "
                        "with: nvmr_diff --shrink "
                        "nvmr_fuzz_failure.repro\n");
        return false;
    }

    // Small capacitors need the co-sized platform (atomic backups
    // must fit one charge; see SystemConfig::smallPlatform).
    SystemConfig cfg = c.farads < 1e-3 ? SystemConfig::smallPlatform()
                                       : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    if (c.byteLbf)
        cfg.cache.lbfGranularityBytes = 1;
    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;

    auto policy = makePolicy(spec);
    HarvestTrace trace(TraceKind::Rf, 40000 + seed, 7.0);
    RunOptions opts;
    if (faults)
        opts.faults = *faults;
    Simulator sim(prog, c.arch, cfg, *policy, trace, opts);
    RunResult r = sim.run();
    if (r.completed && r.validated)
        return true;

    // Only failures land in the manifest: a fuzz campaign makes tens
    // of thousands of runs and the interesting ones are the repros.
    if (manifest)
        manifest->addRun(r);
    std::printf("\nFAILURE: seed %llu on %s/%s at %g F: %s\n",
                static_cast<unsigned long long>(seed),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads,
                r.completed ? "final state diverged"
                            : "did not complete");
    if (faults)
        std::printf("faults: crashAtPersist=%llu crashAtCycle=%llu "
                    "transientBitErrorRate=%g\n",
                    static_cast<unsigned long long>(
                        faults->crashAtPersist),
                    static_cast<unsigned long long>(
                        faults->crashAtCycle),
                    faults->transientBitErrorRate);
    printReproLine(seed, case_idx, c, faults != nullptr, false);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bool faults_mode = false;
    bool oracle_mode = false;
    bool one_mode = false;
    uint64_t one_seed = 0;
    uint64_t one_case = 0;
    std::string stats_json_path;
    uint64_t positional[2] = {100, 1};
    int npos = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--faults") == 0) {
            faults_mode = true;
        } else if (std::strcmp(argv[i], "--oracle") == 0) {
            oracle_mode = true;
        } else if (std::strcmp(argv[i], "--one") == 0) {
            if (i + 2 >= argc)
                fatal("--one needs SEED and CASE_IDX");
            one_mode = true;
            one_seed = std::strtoull(argv[++i], nullptr, 10);
            one_case = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--stats-json") == 0) {
            if (i + 1 >= argc)
                fatal("missing value for --stats-json");
            stats_json_path = argv[++i];
        } else if (npos < 2) {
            positional[npos++] = std::strtoull(argv[i], nullptr, 10);
        }
    }
    uint64_t iterations = positional[0];
    uint64_t base_seed = positional[1];

    if (one_mode) {
        if (one_case < 1 || one_case > kNumCases)
            fatal("case index out of range (1..",
                  static_cast<uint64_t>(kNumCases), ")");
        std::string text = makeRandomProgram(one_seed);
        Program prog =
            assemble("fuzz" + std::to_string(one_seed), text);
        const FuzzCase &c = kCases[one_case - 1];
        FaultConfig fc;
        if (faults_mode)
            fc = randomFaults(one_seed, one_case);
        bool ok = runCase(prog, text, one_seed, one_case, c,
                          faults_mode ? &fc : nullptr, oracle_mode,
                          nullptr);
        std::printf(ok ? "case clean\n" : "case FAILED\n");
        return ok ? 0 : 1;
    }

    ManifestWriter manifest("nvmr_fuzz");
    ManifestWriter *mptr =
        stats_json_path.empty() ? nullptr : &manifest;
    auto writeManifest = [&](uint64_t runs, bool clean) {
        if (!mptr)
            return;
        manifest.addExtra("iterations",
                          static_cast<double>(iterations));
        manifest.addExtra("base_seed",
                          static_cast<double>(base_seed));
        manifest.addExtra("faults_mode", faults_mode ? 1.0 : 0.0);
        manifest.addExtra("oracle_mode", oracle_mode ? 1.0 : 0.0);
        manifest.addExtra("runs", static_cast<double>(runs));
        manifest.addExtra("result",
                          clean ? "no divergence" : "divergence");
        manifest.writeFile(stats_json_path);
    };

    uint64_t runs = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
        uint64_t seed = base_seed + i;
        std::string text = makeRandomProgram(seed);
        Program prog =
            assemble("fuzz" + std::to_string(seed), text);
        uint64_t case_idx = 0;
        for (const FuzzCase &c : kCases) {
            ++case_idx;
            // Ideal relies on the perfect-JIT assumption that power
            // never fails unexpectedly; injected crashes break it.
            if (faults_mode && c.arch == ArchKind::Ideal)
                continue;
            FaultConfig fc;
            if (faults_mode)
                fc = randomFaults(seed, case_idx);
            if (!runCase(prog, text, seed, case_idx, c,
                         faults_mode ? &fc : nullptr, oracle_mode,
                         mptr)) {
                writeManifest(runs, false);
                return 1;
            }
            ++runs;
        }
        if ((i + 1) % 10 == 0)
            std::printf("%llu programs, %llu runs, all consistent\n",
                        static_cast<unsigned long long>(i + 1),
                        static_cast<unsigned long long>(runs));
    }
    std::printf("fuzzing done: %llu runs, no divergence\n",
                static_cast<unsigned long long>(runs));
    writeManifest(runs, true);
    return 0;
}

/**
 * @file
 * Differential correctness fuzzer: generate random programs and run
 * them intermittently across every architecture, policy and a grid
 * of capacitor sizes, comparing each final NVM state against the
 * continuously-powered execution. Any divergence (or stuck run)
 * prints a one-line repro command and stops with a non-zero exit.
 *
 *     nvmr_fuzz                 # 100 iterations from seed 1
 *     nvmr_fuzz 2000            # more iterations
 *     nvmr_fuzz 500 12345       # iterations + base seed
 *     nvmr_fuzz --faults 500    # also randomize crash points and
 *                               # correctable NVM bit-error rates
 *     nvmr_fuzz --oracle 500    # run every case under the golden
 *                               # oracle + lockstep invariant checker
 *                               # (src/check) instead of the plain
 *                               # golden-image comparison
 *     nvmr_fuzz --one SEED IDX  # re-run one (seed, case) pair -- the
 *                               # command a failure prints
 *     nvmr_fuzz --jobs 8 2000   # worker count (or NVMR_JOBS)
 *     nvmr_fuzz --journal f.jrn 2000   # checkpoint; --resume f.jrn
 *
 * The (program, case) grid runs through the campaign layer
 * (docs/operations.md): clean cells are journaled so a killed
 * campaign resumes without re-fuzzing them, a watchdog budget
 * quarantines hung cells, and any divergence exits nonzero (1) with
 * the repro line -- divergences are never journaled, so a resume
 * reproduces them.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/sig.hh"
#include "check/runner.hh"
#include "cli.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"
#include "common/xorshift.hh"
#include "isa/assembler.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

using namespace nvmr;

namespace
{

struct FuzzCase
{
    ArchKind arch;
    PolicyKind policy;
    double farads;
    bool byteLbf = false;
};

/** The fixed case grid; --one indexes into it 1-based. */
const FuzzCase kCases[] = {
    {ArchKind::Clank, PolicyKind::Jit, 0.1},
    {ArchKind::Clank, PolicyKind::Watchdog, 500e-6},
    {ArchKind::ClankOriginal, PolicyKind::Jit, 0.1},
    {ArchKind::ClankOriginal, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Nvmr, PolicyKind::Jit, 0.1},
    {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Nvmr, PolicyKind::Jit, 500e-6},
    {ArchKind::Hoop, PolicyKind::Jit, 0.1},
    {ArchKind::Hoop, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Ideal, PolicyKind::Jit, 0.1},
    {ArchKind::Clank, PolicyKind::Watchdog, 500e-6, true},
    {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, true},
};
constexpr size_t kNumCases = sizeof(kCases) / sizeof(kCases[0]);

/**
 * Derive a random-but-reproducible fault load for one (seed, case)
 * pair: a crash armed at a random persist boundary, sometimes a
 * second one at a raw cycle, and sometimes a transient bit-error
 * rate. Only single-bit transients are enabled so SECDED always
 * corrects them: any divergence is still a simulator bug, never the
 * fault manifesting.
 */
FaultConfig
randomFaults(uint64_t seed, uint64_t case_idx)
{
    XorShift rng(seed * 1315423911ull + case_idx + 1);
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.crashAtPersist = 1 + rng.next() % 1500;
    if (rng.next() % 4 == 0)
        fc.crashAtCycle = 1 + rng.next() % 200000;
    if (rng.next() % 2 == 0) {
        fc.transientBitErrorRate = 1e-5 * (1 + rng.next() % 20);
        fc.doubleBitFraction = 0;
        fc.maxReadRetries = 4;
    }
    return fc;
}

/** The one-line command that replays exactly this (seed, case). */
void
printReproLine(uint64_t seed, uint64_t case_idx, const FuzzCase &c,
               bool faults_mode, bool oracle_mode)
{
    std::printf("repro: nvmr_fuzz%s%s --one %llu %llu   # %s/%s at "
                "%g F%s\n",
                faults_mode ? " --faults" : "",
                oracle_mode ? " --oracle" : "",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(case_idx),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads, c.byteLbf ? " (byte LBF)" : "");
}

/** Map one fuzz case onto the src/check harness description. */
CheckCase
makeCheckCase(const Program &, const std::string &text, uint64_t seed,
              const FuzzCase &c, const FaultConfig *faults)
{
    CheckCase cc;
    cc.name = "fuzz" + std::to_string(seed);
    cc.arch = c.arch;
    cc.policy = c.policy;
    cc.farads = c.farads;
    cc.byteLbf = c.byteLbf;
    cc.traceSeed = 40000 + seed;
    cc.programText = text;
    cc.programSeed = seed;
    if (faults)
        cc.faults = *faults;
    return cc;
}

/** What one (seed, case) evaluation produced. Workers only compute;
 *  all printing, manifest writes and repro saving stay on the main
 *  thread so output order and side effects are deterministic. */
struct CaseOutcome
{
    bool skipped = false;  ///< case not applicable (ideal + non-JIT)
    bool ok = true;
    RunResult run;          ///< failure detail (both modes)
    std::string checkText;  ///< oracle mode: describe() + detail()
    CheckCase cc;           ///< oracle mode: repro payload
    FaultConfig faults;
    bool haveFaults = false;
};

CaseOutcome
evalCase(const Program &prog, const std::string &text, uint64_t seed,
         const FuzzCase &c, const FaultConfig *faults,
         bool oracle_mode, uint64_t budget_cycles = 0)
{
    CaseOutcome out;
    if (faults) {
        out.faults = *faults;
        out.haveFaults = true;
    }

    // The ideal architecture is only safe under perfect JIT.
    if (c.arch == ArchKind::Ideal && c.policy != PolicyKind::Jit) {
        out.skipped = true;
        return out;
    }

    if (oracle_mode) {
        // Full checked harness: lockstep invariants + oracle diff.
        out.cc = makeCheckCase(prog, text, seed, c, faults);
        if (budget_cycles)
            out.cc.maxCycles = budget_cycles;
        CheckOutcome res = runChecked(out.cc);
        out.ok = res.clean();
        if (!out.ok) {
            out.run = res.run;
            out.checkText = res.describe() + "\n" + res.detail();
        }
        return out;
    }

    // Small capacitors need the co-sized platform (atomic backups
    // must fit one charge; see SystemConfig::smallPlatform).
    SystemConfig cfg = c.farads < 1e-3 ? SystemConfig::smallPlatform()
                                       : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    if (c.byteLbf)
        cfg.cache.lbfGranularityBytes = 1;
    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;

    auto policy = makePolicy(spec);
    HarvestTrace trace(TraceKind::Rf, 40000 + seed, 7.0);
    RunOptions opts;
    if (faults)
        opts.faults = *faults;
    if (budget_cycles)
        opts.maxCycles = budget_cycles;
    Simulator sim(prog, c.arch, cfg, *policy, trace, opts);
    out.run = sim.run();
    out.ok = out.run.completed && out.run.validated;
    return out;
}

/** Print a failed outcome and save its repro (main thread only). */
void
reportFailure(const CaseOutcome &out, uint64_t seed,
              uint64_t case_idx, const FuzzCase &c, bool faults_mode,
              bool oracle_mode, ManifestWriter *manifest)
{
    // Only failures land in the manifest: a fuzz campaign makes tens
    // of thousands of runs and the interesting ones are the repros.
    if (manifest)
        manifest->addRun(out.run);
    if (oracle_mode) {
        std::printf("\nFAILURE: seed %llu on %s/%s at %g F: ",
                    static_cast<unsigned long long>(seed),
                    archKindName(c.arch), policyKindName(c.policy),
                    c.farads);
        std::fputs(out.checkText.c_str(), stdout);
        printReproLine(seed, case_idx, c, faults_mode, true);
        if (saveRepro("nvmr_fuzz_failure.repro", out.cc))
            std::printf("also saved nvmr_fuzz_failure.repro; shrink "
                        "with: nvmr_diff --shrink "
                        "nvmr_fuzz_failure.repro\n");
        return;
    }
    std::printf("\nFAILURE: seed %llu on %s/%s at %g F: %s\n",
                static_cast<unsigned long long>(seed),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads,
                out.run.completed ? "final state diverged"
                                  : "did not complete");
    if (out.haveFaults)
        std::printf("faults: crashAtPersist=%llu crashAtCycle=%llu "
                    "transientBitErrorRate=%g\n",
                    static_cast<unsigned long long>(
                        out.faults.crashAtPersist),
                    static_cast<unsigned long long>(
                        out.faults.crashAtCycle),
                    out.faults.transientBitErrorRate);
    printReproLine(seed, case_idx, c, faults_mode, false);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    campaign::installSignalHandlers();
    bool faults_mode = false;
    bool oracle_mode = false;
    bool one_mode = false;
    uint64_t one_seed = 0;
    uint64_t one_case = 0;
    std::string stats_json_path;
    campaign::Options copts;
    uint64_t positional[2] = {100, 1};
    int npos = 0;
    for (int i = 1; i < argc; ++i) {
        if (cli::handleJobsArg(argc, argv, i)) {
        } else if (cli::handleCampaignArg(argc, argv, i, copts)) {
        } else if (std::strcmp(argv[i], "--faults") == 0) {
            faults_mode = true;
        } else if (std::strcmp(argv[i], "--oracle") == 0) {
            oracle_mode = true;
        } else if (std::strcmp(argv[i], "--one") == 0) {
            if (i + 2 >= argc)
                fatal("--one needs SEED and CASE_IDX");
            one_mode = true;
            one_seed = std::strtoull(argv[++i], nullptr, 10);
            one_case = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--stats-json") == 0) {
            if (i + 1 >= argc)
                fatal("missing value for --stats-json");
            stats_json_path = argv[++i];
        } else if (npos < 2) {
            positional[npos++] = std::strtoull(argv[i], nullptr, 10);
        }
    }
    uint64_t iterations = positional[0];
    uint64_t base_seed = positional[1];

    if (one_mode) {
        if (one_case < 1 || one_case > kNumCases)
            fatal("case index out of range (1..",
                  static_cast<uint64_t>(kNumCases), ")");
        std::string text = makeRandomProgram(one_seed);
        Program prog =
            assemble("fuzz" + std::to_string(one_seed), text);
        const FuzzCase &c = kCases[one_case - 1];
        FaultConfig fc;
        if (faults_mode)
            fc = randomFaults(one_seed, one_case);
        CaseOutcome out =
            evalCase(prog, text, one_seed, c,
                     faults_mode ? &fc : nullptr, oracle_mode);
        if (!out.ok)
            reportFailure(out, one_seed, one_case, c, faults_mode,
                          oracle_mode, nullptr);
        std::printf(out.ok ? "case clean\n" : "case FAILED\n");
        return out.ok ? kExitOk : kExitMismatch;
    }

    // Everything that shapes the (program, case) grid or the per-cell
    // verdicts gates --resume.
    std::string config_spec =
        "fuzz|iterations=" + std::to_string(iterations) +
        "|base_seed=" + std::to_string(base_seed) +
        "|faults=" + std::to_string(faults_mode ? 1 : 0) +
        "|oracle=" + std::to_string(oracle_mode ? 1 : 0);
    cli::appendWatchdogSpec(config_spec, copts);
    campaign::Campaign cam("nvmr_fuzz", config_spec, copts);

    ManifestWriter manifest("nvmr_fuzz");
    ManifestWriter *mptr =
        stats_json_path.empty() ? nullptr : &manifest;
    bool manifest_ok = true;
    auto writeManifest = [&](uint64_t runs, const char *result) {
        if (!mptr)
            return;
        manifest.addExtra("iterations",
                          static_cast<double>(iterations));
        manifest.addExtra("base_seed",
                          static_cast<double>(base_seed));
        manifest.addExtra("faults_mode", faults_mode ? 1.0 : 0.0);
        manifest.addExtra("oracle_mode", oracle_mode ? 1.0 : 0.0);
        manifest.addExtra("runs", static_cast<double>(runs));
        manifest.addExtra("result", result);
        manifest.addExtraJson("quarantine", cam.quarantineJson());
        manifest_ok = manifest.tryWriteFile(stats_json_path);
    };

    // Fan (program, case) pairs across the engine in chunks of 10
    // programs. Workers only simulate; the main thread scans each
    // chunk's outcomes in canonical order, so the first failure
    // reported -- and the run count at that point -- is the same
    // whatever the worker count. Each chunk is one campaign stage:
    // clean cells are journaled, so a resume skips straight past
    // fully-checked chunks without even re-assembling their programs.
    struct Pair
    {
        uint64_t seed;
        uint64_t caseIdx; ///< 1-based index into kCases
        size_t prog;      ///< index into the chunk's program vector
    };
    constexpr uint64_t kChunkProgs = 10;
    uint64_t cases_per_prog =
        kNumCases - (faults_mode ? 1 : 0); // ideal skipped on faults
    par::Progress progress("fuzz", iterations * cases_per_prog);

    uint64_t runs = 0;
    for (uint64_t i = 0; i < iterations && !cam.interrupted();
         i += kChunkProgs) {
        uint64_t chunk = std::min(kChunkProgs, iterations - i);
        std::string stage = "c" + std::to_string(i);
        std::vector<Pair> pairs;
        for (uint64_t p = 0; p < chunk; ++p) {
            uint64_t seed = base_seed + i + p;
            for (uint64_t ci = 1; ci <= kNumCases; ++ci) {
                // Ideal relies on the perfect-JIT assumption that
                // power never fails unexpectedly; injected crashes
                // break it.
                if (faults_mode &&
                    kCases[ci - 1].arch == ArchKind::Ideal)
                    continue;
                pairs.push_back(Pair{seed, ci, p});
            }
        }
        bool any_fresh = false;
        for (size_t k = 0; k < pairs.size() && !any_fresh; ++k)
            any_fresh = !cam.cellDone(stage, k);
        std::vector<std::string> texts(chunk);
        std::vector<Program> progs(chunk);
        if (any_fresh) {
            // Assembly stays on the main thread: workers must not
            // race the assembler caches.
            for (uint64_t p = 0; p < chunk; ++p) {
                uint64_t seed = base_seed + i + p;
                texts[p] = makeRandomProgram(seed);
                progs[p] = assemble("fuzz" + std::to_string(seed),
                                    texts[p]);
            }
        }
        // Failure detail rides in this side table; the journal only
        // carries an "ok" marker (failures are never journaled, so a
        // resumed campaign re-runs and reproduces them).
        std::vector<CaseOutcome> outs(pairs.size());
        auto results = cam.runStage(
            stage, pairs.size(),
            [&](const campaign::CellContext &ctx)
                -> std::optional<std::string> {
                const Pair &pr = pairs[ctx.index];
                const FuzzCase &c = kCases[pr.caseIdx - 1];
                FaultConfig fc;
                if (faults_mode)
                    fc = randomFaults(pr.seed, pr.caseIdx);
                CaseOutcome out = evalCase(
                    progs[pr.prog], texts[pr.prog], pr.seed, c,
                    faults_mode ? &fc : nullptr, oracle_mode,
                    ctx.budgetCycles);
                if (ctx.budgetCycles && !out.ok && !out.skipped &&
                    !out.run.completed)
                    throw campaign::CellTimeout{
                        "seed " + std::to_string(pr.seed) + " case " +
                        std::to_string(pr.caseIdx) + " exceeded " +
                        std::to_string(ctx.budgetCycles) + " cycles"};
                if (!out.ok) {
                    outs[ctx.index] = std::move(out);
                    return std::nullopt;
                }
                return std::string("ok");
            },
            &progress);
        for (size_t k = 0; k < pairs.size(); ++k) {
            const campaign::CellResult &res = results[k];
            if (res.status == campaign::CellStatus::Skipped ||
                res.status == campaign::CellStatus::Quarantined)
                continue; // interrupt / reported at the end
            if (res.status == campaign::CellStatus::Failed) {
                const Pair &pr = pairs[k];
                reportFailure(outs[k], pr.seed, pr.caseIdx,
                              kCases[pr.caseIdx - 1], faults_mode,
                              oracle_mode, mptr);
                writeManifest(runs, "divergence");
                std::fflush(stdout);
                return cam.exitCode(kExitMismatch);
            }
            ++runs;
        }
        uint64_t done = i + chunk;
        if (done % 10 == 0 && !cam.interrupted())
            std::printf("%llu programs, %llu runs, all consistent\n",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(runs));
    }
    progress.finish();

    if (cam.interrupted()) {
        std::printf("interrupted: %llu clean runs checkpointed\n",
                    static_cast<unsigned long long>(runs));
        writeManifest(runs, "interrupted");
        std::fflush(stdout);
        return cam.exitCode(kExitOk);
    }

    for (const auto &q : cam.quarantined())
        warn("quarantined ", q.stage, "/", q.index, " after ",
             q.attempts, " attempt(s): ", q.reason);

    std::printf("fuzzing done: %llu runs, no divergence\n",
                static_cast<unsigned long long>(runs));
    writeManifest(runs, cam.quarantined().empty() ? "no divergence"
                                                  : "quarantined");
    int rc = kExitOk;
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
        warn("error writing to stdout");
        rc = kExitDegraded;
    }
    if (!manifest_ok)
        rc = kExitDegraded;
    return cam.exitCode(rc);
}

/**
 * @file
 * Differential correctness fuzzer: generate random programs and run
 * them intermittently across every architecture, policy and a grid
 * of capacitor sizes, comparing each final NVM state against the
 * continuously-powered execution. Any divergence (or stuck run)
 * prints a one-line repro command and stops with a non-zero exit.
 *
 *     nvmr_fuzz                 # 100 iterations from seed 1
 *     nvmr_fuzz 2000            # more iterations
 *     nvmr_fuzz 500 12345       # iterations + base seed
 *     nvmr_fuzz --faults 500    # also randomize crash points and
 *                               # correctable NVM bit-error rates
 *     nvmr_fuzz --oracle 500    # run every case under the golden
 *                               # oracle + lockstep invariant checker
 *                               # (src/check) instead of the plain
 *                               # golden-image comparison
 *     nvmr_fuzz --one SEED IDX  # re-run one (seed, case) pair -- the
 *                               # command a failure prints
 *     nvmr_fuzz --jobs 8 2000   # worker count (or NVMR_JOBS)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/runner.hh"
#include "cli.hh"
#include "common/log.hh"
#include "common/xorshift.hh"
#include "isa/assembler.hh"
#include "obs/manifest.hh"
#include "par/par.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

using namespace nvmr;

namespace
{

struct FuzzCase
{
    ArchKind arch;
    PolicyKind policy;
    double farads;
    bool byteLbf = false;
};

/** The fixed case grid; --one indexes into it 1-based. */
const FuzzCase kCases[] = {
    {ArchKind::Clank, PolicyKind::Jit, 0.1},
    {ArchKind::Clank, PolicyKind::Watchdog, 500e-6},
    {ArchKind::ClankOriginal, PolicyKind::Jit, 0.1},
    {ArchKind::ClankOriginal, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Nvmr, PolicyKind::Jit, 0.1},
    {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Nvmr, PolicyKind::Jit, 500e-6},
    {ArchKind::Hoop, PolicyKind::Jit, 0.1},
    {ArchKind::Hoop, PolicyKind::Watchdog, 500e-6},
    {ArchKind::Ideal, PolicyKind::Jit, 0.1},
    {ArchKind::Clank, PolicyKind::Watchdog, 500e-6, true},
    {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, true},
};
constexpr size_t kNumCases = sizeof(kCases) / sizeof(kCases[0]);

/**
 * Derive a random-but-reproducible fault load for one (seed, case)
 * pair: a crash armed at a random persist boundary, sometimes a
 * second one at a raw cycle, and sometimes a transient bit-error
 * rate. Only single-bit transients are enabled so SECDED always
 * corrects them: any divergence is still a simulator bug, never the
 * fault manifesting.
 */
FaultConfig
randomFaults(uint64_t seed, uint64_t case_idx)
{
    XorShift rng(seed * 1315423911ull + case_idx + 1);
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.crashAtPersist = 1 + rng.next() % 1500;
    if (rng.next() % 4 == 0)
        fc.crashAtCycle = 1 + rng.next() % 200000;
    if (rng.next() % 2 == 0) {
        fc.transientBitErrorRate = 1e-5 * (1 + rng.next() % 20);
        fc.doubleBitFraction = 0;
        fc.maxReadRetries = 4;
    }
    return fc;
}

/** The one-line command that replays exactly this (seed, case). */
void
printReproLine(uint64_t seed, uint64_t case_idx, const FuzzCase &c,
               bool faults_mode, bool oracle_mode)
{
    std::printf("repro: nvmr_fuzz%s%s --one %llu %llu   # %s/%s at "
                "%g F%s\n",
                faults_mode ? " --faults" : "",
                oracle_mode ? " --oracle" : "",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(case_idx),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads, c.byteLbf ? " (byte LBF)" : "");
}

/** Map one fuzz case onto the src/check harness description. */
CheckCase
makeCheckCase(const Program &, const std::string &text, uint64_t seed,
              const FuzzCase &c, const FaultConfig *faults)
{
    CheckCase cc;
    cc.name = "fuzz" + std::to_string(seed);
    cc.arch = c.arch;
    cc.policy = c.policy;
    cc.farads = c.farads;
    cc.byteLbf = c.byteLbf;
    cc.traceSeed = 40000 + seed;
    cc.programText = text;
    cc.programSeed = seed;
    if (faults)
        cc.faults = *faults;
    return cc;
}

/** What one (seed, case) evaluation produced. Workers only compute;
 *  all printing, manifest writes and repro saving stay on the main
 *  thread so output order and side effects are deterministic. */
struct CaseOutcome
{
    bool skipped = false;  ///< case not applicable (ideal + non-JIT)
    bool ok = true;
    RunResult run;          ///< failure detail (both modes)
    std::string checkText;  ///< oracle mode: describe() + detail()
    CheckCase cc;           ///< oracle mode: repro payload
    FaultConfig faults;
    bool haveFaults = false;
};

CaseOutcome
evalCase(const Program &prog, const std::string &text, uint64_t seed,
         const FuzzCase &c, const FaultConfig *faults,
         bool oracle_mode)
{
    CaseOutcome out;
    if (faults) {
        out.faults = *faults;
        out.haveFaults = true;
    }

    // The ideal architecture is only safe under perfect JIT.
    if (c.arch == ArchKind::Ideal && c.policy != PolicyKind::Jit) {
        out.skipped = true;
        return out;
    }

    if (oracle_mode) {
        // Full checked harness: lockstep invariants + oracle diff.
        out.cc = makeCheckCase(prog, text, seed, c, faults);
        CheckOutcome res = runChecked(out.cc);
        out.ok = res.clean();
        if (!out.ok) {
            out.run = res.run;
            out.checkText = res.describe() + "\n" + res.detail();
        }
        return out;
    }

    // Small capacitors need the co-sized platform (atomic backups
    // must fit one charge; see SystemConfig::smallPlatform).
    SystemConfig cfg = c.farads < 1e-3 ? SystemConfig::smallPlatform()
                                       : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    if (c.byteLbf)
        cfg.cache.lbfGranularityBytes = 1;
    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;

    auto policy = makePolicy(spec);
    HarvestTrace trace(TraceKind::Rf, 40000 + seed, 7.0);
    RunOptions opts;
    if (faults)
        opts.faults = *faults;
    Simulator sim(prog, c.arch, cfg, *policy, trace, opts);
    out.run = sim.run();
    out.ok = out.run.completed && out.run.validated;
    return out;
}

/** Print a failed outcome and save its repro (main thread only). */
void
reportFailure(const CaseOutcome &out, uint64_t seed,
              uint64_t case_idx, const FuzzCase &c, bool faults_mode,
              bool oracle_mode, ManifestWriter *manifest)
{
    // Only failures land in the manifest: a fuzz campaign makes tens
    // of thousands of runs and the interesting ones are the repros.
    if (manifest)
        manifest->addRun(out.run);
    if (oracle_mode) {
        std::printf("\nFAILURE: seed %llu on %s/%s at %g F: ",
                    static_cast<unsigned long long>(seed),
                    archKindName(c.arch), policyKindName(c.policy),
                    c.farads);
        std::fputs(out.checkText.c_str(), stdout);
        printReproLine(seed, case_idx, c, faults_mode, true);
        if (saveRepro("nvmr_fuzz_failure.repro", out.cc))
            std::printf("also saved nvmr_fuzz_failure.repro; shrink "
                        "with: nvmr_diff --shrink "
                        "nvmr_fuzz_failure.repro\n");
        return;
    }
    std::printf("\nFAILURE: seed %llu on %s/%s at %g F: %s\n",
                static_cast<unsigned long long>(seed),
                archKindName(c.arch), policyKindName(c.policy),
                c.farads,
                out.run.completed ? "final state diverged"
                                  : "did not complete");
    if (out.haveFaults)
        std::printf("faults: crashAtPersist=%llu crashAtCycle=%llu "
                    "transientBitErrorRate=%g\n",
                    static_cast<unsigned long long>(
                        out.faults.crashAtPersist),
                    static_cast<unsigned long long>(
                        out.faults.crashAtCycle),
                    out.faults.transientBitErrorRate);
    printReproLine(seed, case_idx, c, faults_mode, false);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bool faults_mode = false;
    bool oracle_mode = false;
    bool one_mode = false;
    uint64_t one_seed = 0;
    uint64_t one_case = 0;
    std::string stats_json_path;
    uint64_t positional[2] = {100, 1};
    int npos = 0;
    for (int i = 1; i < argc; ++i) {
        if (cli::handleJobsArg(argc, argv, i)) {
        } else if (std::strcmp(argv[i], "--faults") == 0) {
            faults_mode = true;
        } else if (std::strcmp(argv[i], "--oracle") == 0) {
            oracle_mode = true;
        } else if (std::strcmp(argv[i], "--one") == 0) {
            if (i + 2 >= argc)
                fatal("--one needs SEED and CASE_IDX");
            one_mode = true;
            one_seed = std::strtoull(argv[++i], nullptr, 10);
            one_case = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--stats-json") == 0) {
            if (i + 1 >= argc)
                fatal("missing value for --stats-json");
            stats_json_path = argv[++i];
        } else if (npos < 2) {
            positional[npos++] = std::strtoull(argv[i], nullptr, 10);
        }
    }
    uint64_t iterations = positional[0];
    uint64_t base_seed = positional[1];

    if (one_mode) {
        if (one_case < 1 || one_case > kNumCases)
            fatal("case index out of range (1..",
                  static_cast<uint64_t>(kNumCases), ")");
        std::string text = makeRandomProgram(one_seed);
        Program prog =
            assemble("fuzz" + std::to_string(one_seed), text);
        const FuzzCase &c = kCases[one_case - 1];
        FaultConfig fc;
        if (faults_mode)
            fc = randomFaults(one_seed, one_case);
        CaseOutcome out =
            evalCase(prog, text, one_seed, c,
                     faults_mode ? &fc : nullptr, oracle_mode);
        if (!out.ok)
            reportFailure(out, one_seed, one_case, c, faults_mode,
                          oracle_mode, nullptr);
        std::printf(out.ok ? "case clean\n" : "case FAILED\n");
        return out.ok ? 0 : 1;
    }

    ManifestWriter manifest("nvmr_fuzz");
    ManifestWriter *mptr =
        stats_json_path.empty() ? nullptr : &manifest;
    auto writeManifest = [&](uint64_t runs, bool clean) {
        if (!mptr)
            return;
        manifest.addExtra("iterations",
                          static_cast<double>(iterations));
        manifest.addExtra("base_seed",
                          static_cast<double>(base_seed));
        manifest.addExtra("faults_mode", faults_mode ? 1.0 : 0.0);
        manifest.addExtra("oracle_mode", oracle_mode ? 1.0 : 0.0);
        manifest.addExtra("runs", static_cast<double>(runs));
        manifest.addExtra("result",
                          clean ? "no divergence" : "divergence");
        manifest.writeFile(stats_json_path);
    };

    // Fan (program, case) pairs across the engine in chunks of 10
    // programs. Workers only simulate; the main thread scans each
    // chunk's outcomes in canonical order, so the first failure
    // reported -- and the run count at that point -- is the same
    // whatever the worker count.
    struct Pair
    {
        uint64_t seed;
        uint64_t caseIdx; ///< 1-based index into kCases
        size_t prog;      ///< index into the chunk's program vector
    };
    constexpr uint64_t kChunkProgs = 10;
    uint64_t cases_per_prog =
        kNumCases - (faults_mode ? 1 : 0); // ideal skipped on faults
    par::Progress progress("fuzz", iterations * cases_per_prog);

    uint64_t runs = 0;
    for (uint64_t i = 0; i < iterations; i += kChunkProgs) {
        uint64_t chunk = std::min(kChunkProgs, iterations - i);
        std::vector<std::string> texts(chunk);
        std::vector<Program> progs;
        std::vector<Pair> pairs;
        for (uint64_t p = 0; p < chunk; ++p) {
            uint64_t seed = base_seed + i + p;
            texts[p] = makeRandomProgram(seed);
            progs.push_back(
                assemble("fuzz" + std::to_string(seed), texts[p]));
            for (uint64_t ci = 1; ci <= kNumCases; ++ci) {
                // Ideal relies on the perfect-JIT assumption that
                // power never fails unexpectedly; injected crashes
                // break it.
                if (faults_mode &&
                    kCases[ci - 1].arch == ArchKind::Ideal)
                    continue;
                pairs.push_back(Pair{seed, ci, p});
            }
        }
        std::vector<CaseOutcome> outs =
            par::parallelMap<CaseOutcome>(
                pairs.size(),
                [&](size_t k) {
                    const Pair &pr = pairs[k];
                    const FuzzCase &c = kCases[pr.caseIdx - 1];
                    FaultConfig fc;
                    if (faults_mode)
                        fc = randomFaults(pr.seed, pr.caseIdx);
                    return evalCase(progs[pr.prog], texts[pr.prog],
                                    pr.seed, c,
                                    faults_mode ? &fc : nullptr,
                                    oracle_mode);
                },
                0, &progress);
        for (size_t k = 0; k < pairs.size(); ++k) {
            if (!outs[k].ok) {
                const Pair &pr = pairs[k];
                reportFailure(outs[k], pr.seed, pr.caseIdx,
                              kCases[pr.caseIdx - 1], faults_mode,
                              oracle_mode, mptr);
                writeManifest(runs, false);
                return 1;
            }
            ++runs;
        }
        uint64_t done = i + chunk;
        if (done % 10 == 0)
            std::printf("%llu programs, %llu runs, all consistent\n",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(runs));
    }
    progress.finish();
    std::printf("fuzzing done: %llu runs, no divergence\n",
                static_cast<unsigned long long>(runs));
    writeManifest(runs, true);
    return 0;
}

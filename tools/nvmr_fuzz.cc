/**
 * @file
 * Differential correctness fuzzer: generate random programs and run
 * them intermittently across every architecture, policy and a grid
 * of capacitor sizes, comparing each final NVM state against the
 * continuously-powered execution. Any divergence (or stuck run)
 * prints a full repro recipe and stops.
 *
 *     nvmr_fuzz                 # 100 iterations from seed 1
 *     nvmr_fuzz 2000            # more iterations
 *     nvmr_fuzz 500 12345       # iterations + base seed
 */

#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "sim/randprog.hh"
#include "sim/simulator.hh"

using namespace nvmr;

namespace
{

struct FuzzCase
{
    ArchKind arch;
    PolicyKind policy;
    double farads;
    bool byteLbf = false;
};

bool
runCase(const Program &prog, uint64_t seed, const FuzzCase &c)
{
    // Small capacitors need the co-sized platform (atomic backups
    // must fit one charge; see SystemConfig::smallPlatform).
    SystemConfig cfg = c.farads < 1e-3 ? SystemConfig::smallPlatform()
                                       : SystemConfig{};
    cfg.capacitorFarads = c.farads;
    cfg.mapTableEntries = 64;
    cfg.mtCacheEntries = 16;
    cfg.mtCacheWays = 4;
    if (c.byteLbf)
        cfg.cache.lbfGranularityBytes = 1;
    PolicySpec spec;
    spec.kind = c.policy;
    if (c.farads < 1e-3)
        spec.watchdogPeriod = 300;
    // The ideal architecture is only safe under perfect JIT.
    if (c.arch == ArchKind::Ideal && c.policy != PolicyKind::Jit)
        return true;

    auto policy = makePolicy(spec);
    HarvestTrace trace(TraceKind::Rf, 40000 + seed, 7.0);
    Simulator sim(prog, c.arch, cfg, *policy, trace);
    RunResult r = sim.run();
    if (r.completed && r.validated)
        return true;

    std::printf(
        "\nFAILURE: seed %llu on %s/%s at %g F: %s\n"
        "repro: regenerate with makeRandomProgram(%llu) and rerun\n",
        static_cast<unsigned long long>(seed), archKindName(c.arch),
        policyKindName(c.policy), c.farads,
        r.completed ? "final state diverged" : "did not complete",
        static_cast<unsigned long long>(seed));
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    uint64_t iterations = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 100;
    uint64_t base_seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 1;

    const FuzzCase cases[] = {
        {ArchKind::Clank, PolicyKind::Jit, 0.1},
        {ArchKind::Clank, PolicyKind::Watchdog, 500e-6},
        {ArchKind::ClankOriginal, PolicyKind::Jit, 0.1},
        {ArchKind::ClankOriginal, PolicyKind::Watchdog, 500e-6},
        {ArchKind::Nvmr, PolicyKind::Jit, 0.1},
        {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6},
        {ArchKind::Nvmr, PolicyKind::Jit, 500e-6},
        {ArchKind::Hoop, PolicyKind::Jit, 0.1},
        {ArchKind::Hoop, PolicyKind::Watchdog, 500e-6},
        {ArchKind::Ideal, PolicyKind::Jit, 0.1},
        {ArchKind::Clank, PolicyKind::Watchdog, 500e-6, true},
        {ArchKind::Nvmr, PolicyKind::Watchdog, 500e-6, true},
    };

    uint64_t runs = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
        uint64_t seed = base_seed + i;
        Program prog = assemble("fuzz" + std::to_string(seed),
                                makeRandomProgram(seed));
        for (const FuzzCase &c : cases) {
            if (!runCase(prog, seed, c))
                return 1;
            ++runs;
        }
        if ((i + 1) % 10 == 0)
            std::printf("%llu programs, %llu runs, all consistent\n",
                        static_cast<unsigned long long>(i + 1),
                        static_cast<unsigned long long>(runs));
    }
    std::printf("fuzzing done: %llu runs, no divergence\n",
                static_cast<unsigned long long>(runs));
    return 0;
}

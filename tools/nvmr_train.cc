/**
 * @file
 * Offline Spendthrift training (Section 5.2): run the JIT oracle on
 * the training traces for one architecture, train the 2-8-8-1 MLP on
 * the labelled samples, report held-out accuracy and save the model
 * for nvmr_sim's `--policy spendthrift --model` flag.
 *
 *     nvmr_train clank.model -a clank
 *     nvmr_train nvmr.model -a nvmr -w hist,dwt,adpcm_encode --cap 0.0075
 *     nvmr_train nvmr.model -a nvmr --journal t.jrn   # checkpoint
 *
 * Sample collection runs through the campaign layer
 * (docs/operations.md): each (workload, trace) cell's samples are
 * journaled, so a killed run resumes with the identical sample set
 * and therefore the identical trained model.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/cellio.hh"
#include "campaign/sig.hh"
#include "cli.hh"
#include "common/exitcodes.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    campaign::installSignalHandlers();
    std::string out_path;
    std::string arch_name = "clank";
    std::vector<std::string> workloads = {"hist", "dwt",
                                          "adpcm_encode"};
    double cap = 7.5e-3; // small enough that the oracle fires often
    campaign::Options copts;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        if (cli::handleJobsArg(argc, argv, i))
            continue;
        if (cli::handleCampaignArg(argc, argv, i, copts))
            continue;
        std::string a = argv[i];
        if (a == "-a" || a == "--arch") {
            arch_name = need(i);
        } else if (a == "-w" || a == "--workloads") {
            workloads.clear();
            std::stringstream ss(need(i));
            std::string item;
            while (std::getline(ss, item, ','))
                workloads.push_back(item);
        } else if (a == "--cap") {
            cap = std::strtod(need(i), nullptr);
        } else if (a[0] == '-') {
            fatal("unknown argument '", a, "'");
        } else {
            out_path = a;
        }
    }
    fatal_if(out_path.empty(),
             "usage: nvmr_train OUT.model [-a arch] [-w w1,w2] "
             "[--cap F]");

    ArchKind arch;
    if (arch_name == "clank")
        arch = ArchKind::Clank;
    else if (arch_name == "nvmr")
        arch = ArchKind::Nvmr;
    else if (arch_name == "hoop")
        arch = ArchKind::Hoop;
    else if (arch_name == "clank_original")
        arch = ArchKind::ClankOriginal;
    else
        fatal("unknown architecture '", arch_name, "'");

    SystemConfig cfg;
    cfg.capacitorFarads = cap;

    std::string config_spec = "train|arch=" + arch_name;
    config_spec += "|workloads=";
    for (size_t i = 0; i < workloads.size(); ++i) {
        if (i)
            config_spec += ',';
        config_spec += workloads[i];
    }
    char capbuf[40];
    std::snprintf(capbuf, sizeof(capbuf), "|cap=%.17g", cap);
    config_spec += capbuf;
    cli::appendWatchdogSpec(config_spec, copts);
    campaign::Campaign cam("nvmr_train", config_spec, copts);

    auto train_traces = HarvestTrace::trainingSet();
    auto test_traces = HarvestTrace::testSet();

    // One cell per (workload, trace), workload-major -- the same
    // canonical order the serial collector appended in, so the
    // concatenated sample set (and thus the trained model) is
    // identical with any worker count, with or without a resume.
    auto collectStage = [&](const std::string &stage,
                            const std::vector<Program> &programs,
                            const std::vector<HarvestTrace> &traces) {
        return cam.runStage(
            stage, workloads.size() * traces.size(),
            [&](const campaign::CellContext &ctx)
                -> std::optional<std::string> {
                const Program &prog = programs[ctx.index /
                                               traces.size()];
                const HarvestTrace &trace = traces[ctx.index %
                                                   traces.size()];
                bool completed = true;
                auto samples = collectSpendthriftCell(
                    prog, arch, cfg, trace, ctx.budgetCycles,
                    &completed);
                if (ctx.budgetCycles && !completed)
                    throw campaign::CellTimeout{
                        prog.name + "/" + trace.name() +
                        " exceeded " +
                        std::to_string(ctx.budgetCycles) + " cycles"};
                return campaign::encodeSamples(samples);
            });
    };

    // Assemble only the workloads that still have fresh cells.
    std::vector<Program> programs(workloads.size());
    std::vector<char> needed(workloads.size(), 0);
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        for (size_t t = 0; t < train_traces.size(); ++t)
            if (!cam.cellDone("train", wi * train_traces.size() + t))
                needed[wi] = 1;
        for (size_t t = 0; t < test_traces.size(); ++t)
            if (!cam.cellDone("test", wi * test_traces.size() + t))
                needed[wi] = 1;
    }
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        if (needed[wi])
            programs[wi] = assembleWorkload(workloads[wi]);

    std::printf("training on %zu workloads x 7 traces (%s, %g F)\n",
                workloads.size(), arch_name.c_str(), cap);
    auto train_cells = collectStage("train", programs, train_traces);
    auto test_cells = collectStage("test", programs, test_traces);

    if (cam.interrupted()) {
        std::printf("interrupted: %llu cell(s) checkpointed\n",
                    static_cast<unsigned long long>(
                        cam.resumedCells()));
        std::fflush(stdout);
        return cam.exitCode(kExitOk);
    }

    auto gather = [&](const std::vector<campaign::CellResult> &cells) {
        std::vector<SpendthriftSample> samples;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].status != campaign::CellStatus::Done)
                continue; // quarantined cell: samples omitted
            std::vector<SpendthriftSample> part;
            fatal_if(!campaign::decodeSamples(cells[i].payload, part),
                     "corrupt journal payload for training cell ", i);
            samples.insert(samples.end(), part.begin(), part.end());
        }
        return samples;
    };

    auto train_samples = gather(train_cells);
    fatal_if(train_samples.empty(), "no spendthrift training samples");
    balanceSamples(train_samples);
    SpendthriftModel model;
    model.train(train_samples);
    double accuracy = model.accuracy(gather(test_cells));

    model.saveToFile(out_path);
    std::printf("held-out accuracy: %.1f%% (3 test traces)\n",
                accuracy * 100.0);
    std::printf("saved to %s\n", out_path.c_str());
    for (const auto &q : cam.quarantined())
        warn("quarantined ", q.stage, " cell ", q.index, " (",
             workloads[q.index / (q.stage == "train"
                                      ? train_traces.size()
                                      : test_traces.size())],
             ") after ", q.attempts, " attempt(s): ", q.reason);
    int rc = kExitOk;
    if (std::fflush(stdout) != 0 || std::ferror(stdout))
        rc = kExitDegraded;
    return cam.exitCode(rc);
}

/**
 * @file
 * Offline Spendthrift training (Section 5.2): run the JIT oracle on
 * the training traces for one architecture, train the 2-8-8-1 MLP on
 * the labelled samples, report held-out accuracy and save the model
 * for nvmr_sim's `--policy spendthrift --model` flag.
 *
 *     nvmr_train clank.model -a clank
 *     nvmr_train nvmr.model -a nvmr -w hist,dwt,adpcm_encode --cap 0.0075
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "common/log.hh"
#include "sim/experiment.hh"

using namespace nvmr;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string out_path;
    std::string arch_name = "clank";
    std::vector<std::string> workloads = {"hist", "dwt",
                                          "adpcm_encode"};
    double cap = 7.5e-3; // small enough that the oracle fires often

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for ", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        if (cli::handleJobsArg(argc, argv, i))
            continue;
        std::string a = argv[i];
        if (a == "-a" || a == "--arch") {
            arch_name = need(i);
        } else if (a == "-w" || a == "--workloads") {
            workloads.clear();
            std::stringstream ss(need(i));
            std::string item;
            while (std::getline(ss, item, ','))
                workloads.push_back(item);
        } else if (a == "--cap") {
            cap = std::strtod(need(i), nullptr);
        } else if (a[0] == '-') {
            fatal("unknown argument '", a, "'");
        } else {
            out_path = a;
        }
    }
    fatal_if(out_path.empty(),
             "usage: nvmr_train OUT.model [-a arch] [-w w1,w2] "
             "[--cap F]");

    ArchKind arch;
    if (arch_name == "clank")
        arch = ArchKind::Clank;
    else if (arch_name == "nvmr")
        arch = ArchKind::Nvmr;
    else if (arch_name == "hoop")
        arch = ArchKind::Hoop;
    else if (arch_name == "clank_original")
        arch = ArchKind::ClankOriginal;
    else
        fatal("unknown architecture '", arch_name, "'");

    SystemConfig cfg;
    cfg.capacitorFarads = cap;

    std::printf("training on %zu workloads x 7 traces (%s, %g F)\n",
                workloads.size(), arch_name.c_str(), cap);
    double accuracy = 0;
    SpendthriftModel model =
        trainSpendthriftModel(arch, cfg, workloads, &accuracy);
    model.saveToFile(out_path);
    std::printf("held-out accuracy: %.1f%% (3 test traces)\n",
                accuracy * 100.0);
    std::printf("saved to %s\n", out_path.c_str());
    return 0;
}

/**
 * @file
 * Crash-resume self-test harness (docs/operations.md): repeatedly
 * SIGKILLs a journaled campaign at randomized points, resumes it,
 * and asserts the finally-merged output is bit-identical to an
 * uninterrupted run. Between one of the kills it also tears the
 * journal tail mid-record -- a frame header promising more payload
 * than was written -- to prove torn-write recovery, and it repeats
 * the whole scenario at two worker counts.
 *
 *     nvmr_killer [--seed N] [--min-kills N] [--max-restarts N]
 *                 -- TOOL [ARGS...]
 *
 * TOOL must accept --journal/--resume/--stats-json/--jobs (any of
 * the five campaign drivers). Everything after `--` is the victim
 * command; nvmr_killer appends the campaign flags itself. Exit 0
 * when every scenario converged byte-identically, 1 otherwise.
 */

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/xorshift.hh"

using nvmr::XorShift;

namespace
{

/** Run the victim with extra flags, stdout to `out_path`; when
 *  `kill_after_ms` is nonzero, SIGKILL it after that delay. Returns
 *  the wait status, or -1 on spawn failure. Whether the kill landed
 *  must be judged from WIFSIGNALED -- kill(2) "succeeds" even when
 *  the child already exited and is a zombie awaiting waitpid. */
int
runVictim(const std::vector<std::string> &base,
          const std::vector<std::string> &extra,
          const std::string &out_path, unsigned kill_after_ms)
{
    std::vector<const char *> argv;
    for (const std::string &a : base)
        argv.push_back(a.c_str());
    for (const std::string &a : extra)
        argv.push_back(a.c_str());
    argv.push_back(nullptr);

    pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return -1;
    }
    if (pid == 0) {
        int fd = ::open(out_path.c_str(),
                        O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (fd < 0)
            _exit(127);
        dup2(fd, STDOUT_FILENO);
        ::close(fd);
        int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            dup2(devnull, STDERR_FILENO);
            ::close(devnull);
        }
        execv(argv[0], const_cast<char *const *>(argv.data()));
        _exit(127);
    }

    if (kill_after_ms) {
        struct timespec ts;
        ts.tv_sec = kill_after_ms / 1000;
        ts.tv_nsec =
            static_cast<long>(kill_after_ms % 1000) * 1000000L;
        nanosleep(&ts, nullptr);
        // The child may have finished already; a stray ESRCH (or a
        // "successful" kill of its zombie) is fine.
        ::kill(pid, SIGKILL);
    }
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

bool
filesIdentical(const std::string &a, const std::string &b)
{
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    if (!fa || !fb)
        return false;
    std::stringstream sa, sb;
    sa << fa.rdbuf();
    sb << fb.rdbuf();
    return sa.str() == sb.str();
}

uint64_t
fileSize(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0
               ? static_cast<uint64_t>(st.st_size)
               : 0;
}

/** Append a torn record to the journal: a frame header promising a
 *  large payload, followed by only a few payload bytes. The loader
 *  must drop it as a truncated tail and the resume must truncate it
 *  away. */
bool
tearJournalTail(const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!os)
        return false;
    uint32_t len = 100000; // promised payload, never delivered
    uint8_t type = 1;      // Cell
    uint64_t key = 0xdeadbeefdeadbeefull;
    os.write(reinterpret_cast<const char *>(&len), 4);
    os.write(reinterpret_cast<const char *>(&type), 1);
    os.write(reinterpret_cast<const char *>(&key), 8);
    os.write("torn", 4);
    return os.good();
}

/**
 * One full scenario: kill the campaign at random points until it
 * completes, then compare against the clean reference. Returns the
 * number of kills landed, or -1 on harness/compare failure.
 */
int
runScenario(const std::vector<std::string> &victim,
            const std::string &dir, const std::string &jobs,
            unsigned max_delay_ms, XorShift &rng,
            const std::string &clean_out,
            const std::string &clean_json)
{
    std::string journal = dir + "/killer_j" + jobs + ".jrn";
    std::string out = dir + "/killer_j" + jobs + ".out";
    std::string json = dir + "/killer_j" + jobs + ".json";
    std::remove(journal.c_str());

    int kills = 0;
    bool tore_tail = false;
    bool first = true;
    // The kill window adapts: when a kill lands without the journal
    // having grown, the window was shorter than one cell's compute
    // time (plus startup), so it widens until resumes make progress.
    unsigned delay_cap = max_delay_ms;
    uint64_t last_size = 0;
    for (int attempt = 0; attempt < 1000; ++attempt) {
        std::vector<std::string> extra = {
            first ? "--journal" : "--resume", journal,
            "--stats-json",      json,
            "--jobs",            jobs,
        };
        first = false;
        unsigned delay = 40 + rng.next() % (delay_cap - 39);
        int status = runVictim(victim, extra, out, delay);
        if (status < 0)
            return -1;
        if (WIFSIGNALED(status)) {
            ++kills;
            uint64_t size = fileSize(journal);
            if (size <= last_size && delay_cap < 10000)
                delay_cap *= 2;
            last_size = size;
            // Tear the tail once, mid-scenario, to exercise the
            // torn-write recovery path on the next resume.
            if (!tore_tail && kills >= 2) {
                if (!tearJournalTail(journal)) {
                    std::fprintf(stderr,
                                 "killer: cannot tear %s\n",
                                 journal.c_str());
                    return -1;
                }
                tore_tail = true;
            }
            continue;
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "killer: victim exited with status %d "
                         "after %d kill(s)\n",
                         WEXITSTATUS(status), kills);
            return -1;
        }
        // Completed: the merged output must match the clean run.
        if (!filesIdentical(out, clean_out)) {
            std::fprintf(stderr,
                         "killer: stdout differs from clean run "
                         "(--jobs %s, %d kills)\n",
                         jobs.c_str(), kills);
            return -1;
        }
        if (!filesIdentical(json, clean_json)) {
            std::fprintf(stderr,
                         "killer: stats JSON differs from clean run "
                         "(--jobs %s, %d kills)\n",
                         jobs.c_str(), kills);
            return -1;
        }
        return kills;
    }
    std::fprintf(stderr, "killer: campaign never completed\n");
    return -1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 1;
    int min_kills = 5;
    int max_restarts = 25;
    std::vector<std::string> victim;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--" && i + 1 < argc) {
            for (int k = i + 1; k < argc; ++k)
                victim.push_back(argv[k]);
            break;
        }
        auto need = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             argv[i]);
                exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed")
            seed = std::strtoull(need(), nullptr, 10);
        else if (a == "--min-kills")
            min_kills = std::atoi(need());
        else if (a == "--max-restarts")
            max_restarts = std::atoi(need());
        else {
            std::fprintf(stderr, "unknown argument %s\n", a.c_str());
            return 2;
        }
    }
    if (victim.empty()) {
        std::fprintf(stderr,
                     "usage: nvmr_killer [--seed N] [--min-kills N] "
                     "-- TOOL ARGS...\n");
        return 2;
    }

    const char *dir_env = std::getenv("NVMR_KILLER_DIR");
    std::string dir = dir_env ? dir_env : ".";
    ::mkdir(dir.c_str(), 0755); // best-effort; may already exist

    // Clean reference run (no journal, default worker count).
    std::string clean_out = dir + "/killer_clean.out";
    std::string clean_json = dir + "/killer_clean.json";
    int status = runVictim(victim,
                           {"--stats-json", clean_json}, clean_out,
                           0);
    if (status < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "killer: clean run failed\n");
        return 1;
    }

    XorShift rng(seed * 2654435761ull + 1);
    for (const char *jobs : {"1", "4"}) {
        // The kill delays shrink on every restart until enough kills
        // land before the campaign finishes.
        unsigned max_delay_ms = 400;
        int kills = -1;
        for (int restart = 0; restart < max_restarts; ++restart) {
            kills = runScenario(victim, dir, jobs, max_delay_ms, rng,
                                clean_out, clean_json);
            if (kills < 0)
                return 1;
            if (kills >= min_kills)
                break;
            max_delay_ms = max_delay_ms > 80
                               ? max_delay_ms / 2
                               : 80;
            std::printf("killer: --jobs %s converged after only %d "
                        "kill(s); retrying with <=%u ms delays\n",
                        jobs, kills, max_delay_ms);
        }
        if (kills < min_kills) {
            std::fprintf(stderr,
                         "killer: could not land %d kills at "
                         "--jobs %s (campaign too short?)\n",
                         min_kills, jobs);
            return 1;
        }
        std::printf("killer: --jobs %s survived %d SIGKILLs "
                    "(1 torn tail) with byte-identical output\n",
                    jobs, kills);
    }
    std::puts("killer: all scenarios byte-identical");
    return 0;
}
